"""Tests for the chunked, vectorized, parallel generation engine.

The engine's contract has three legs, each pinned here:

1. *Equivalence*: the vectorized/chunked path reproduces the reference
   per-flow loop's ``RateSeries`` bit-for-bit for the same seed, for
   every shot family.
2. *Determinism*: output never depends on ``workers`` or (for the exact
   scatter path, bitwise) on ``chunk``, in both compat and streamed
   sampling modes.
3. *Exactness of the shortcuts*: the rectangular closed-form fast path
   and the streamed packet writer agree with their general counterparts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EmpiricalEnsemble,
    GenericShot,
    ParabolicShot,
    PowerShot,
    RectangularShot,
    TriangularShot,
)
from repro.exceptions import ParameterError
from repro.generation import (
    EngineConfig,
    GenerationEngine,
    generate_packet_trace,
    generate_rate_series,
    reference_rate_series,
)
from repro.generation.engine import _splitmix_uniform
from repro.trace import read_trace

SHOT_FAMILIES = [
    RectangularShot(),
    TriangularShot(),
    ParabolicShot(),
    PowerShot(0.7),
    GenericShot(lambda v: np.sqrt(v + 0.01), name="sqrt"),
]


@pytest.fixture(scope="module")
def small_ensemble():
    gen = np.random.default_rng(99)
    n = 2000
    sizes = gen.pareto(2.2, n) * 8000.0 + 3000.0
    rates = gen.lognormal(np.log(2e4), 0.5, n)
    return EmpiricalEnsemble(sizes, sizes / rates)


class TestReferenceEquivalence:
    """Engine output == seed implementation output, bit for bit."""

    @pytest.mark.parametrize("shot", SHOT_FAMILIES, ids=lambda s: s.name)
    def test_bit_for_bit_per_shot_family(self, small_ensemble, shot):
        ref = reference_rate_series(
            40.0, small_ensemble, shot, duration=90.0, delta=0.2, rng=3
        )
        out = generate_rate_series(
            40.0, small_ensemble, shot, duration=90.0, delta=0.2, rng=3
        )
        np.testing.assert_array_equal(ref.values, out.values)
        assert out.delta == ref.delta

    @pytest.mark.parametrize("chunk", [0.2, 3.7, 10.0, 60.0, None])
    def test_bit_for_bit_any_chunk(self, small_ensemble, chunk):
        ref = reference_rate_series(
            40.0, small_ensemble, TriangularShot(), duration=60.0, delta=0.2,
            rng=11,
        )
        out = generate_rate_series(
            40.0, small_ensemble, TriangularShot(), duration=60.0, delta=0.2,
            rng=11, chunk=chunk, workers=1,
        )
        np.testing.assert_array_equal(ref.values, out.values)

    def test_explicit_warmup_and_generator_rng(self, small_ensemble):
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        ref = reference_rate_series(
            40.0, small_ensemble, ParabolicShot(), duration=45.0, delta=0.5,
            warmup=2.0, rng=rng_a,
        )
        out = generate_rate_series(
            40.0, small_ensemble, ParabolicShot(), duration=45.0, delta=0.5,
            warmup=2.0, rng=rng_b, chunk=4.0,
        )
        np.testing.assert_array_equal(ref.values, out.values)

    def test_validation_matches_reference(self, small_ensemble):
        with pytest.raises(ParameterError):
            generate_rate_series(
                40.0, small_ensemble, TriangularShot(), duration=1.0, delta=2.0
            )
        with pytest.raises(ParameterError):
            generate_rate_series(
                1e-9, small_ensemble, TriangularShot(), duration=0.1,
                delta=0.05, warmup=0.0, rng=5,
            )


class TestDeterminism:
    """Same seed => same output, whatever the execution geometry."""

    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("chunk", [1.1, 7.0, None])
    def test_compat_invariant_to_geometry(self, small_ensemble, chunk, workers):
        base = generate_rate_series(
            40.0, small_ensemble, TriangularShot(), duration=60.0, delta=0.2,
            rng=21,
        )
        out = generate_rate_series(
            40.0, small_ensemble, TriangularShot(), duration=60.0, delta=0.2,
            rng=21, chunk=chunk, workers=workers,
        )
        np.testing.assert_array_equal(base.values, out.values)

    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("chunk", [2.3, 15.0, None])
    def test_streamed_invariant_to_geometry(self, small_ensemble, chunk, workers):
        base = GenerationEngine(chunk=6.0, workers=1).rate_series_streamed(
            40.0, small_ensemble, TriangularShot(), 60.0, 0.2, seed=8
        )
        out = GenerationEngine(chunk=chunk, workers=workers).rate_series_streamed(
            40.0, small_ensemble, TriangularShot(), 60.0, 0.2, seed=8
        )
        np.testing.assert_array_equal(base.values, out.values)

    def test_streamed_depends_on_seed_and_cell(self, small_ensemble):
        kwargs = dict(duration=60.0, delta=0.2)
        a = GenerationEngine().rate_series_streamed(
            40.0, small_ensemble, TriangularShot(), seed=1, **kwargs
        )
        b = GenerationEngine().rate_series_streamed(
            40.0, small_ensemble, TriangularShot(), seed=2, **kwargs
        )
        c = GenerationEngine(arrival_cell=16.0).rate_series_streamed(
            40.0, small_ensemble, TriangularShot(), seed=1, **kwargs
        )
        assert not np.array_equal(a.values, b.values)
        assert not np.array_equal(a.values, c.values)

    def test_streamed_statistics_match_model(self, small_ensemble):
        series = GenerationEngine(chunk=10.0).rate_series_streamed(
            50.0, small_ensemble, TriangularShot(), 300.0, 0.2, seed=4
        )
        expected_mean = 50.0 * small_ensemble.mean_size
        assert series.mean == pytest.approx(expected_mean, rel=0.05)


class TestRectangularFastPath:
    def test_matches_scatter_to_roundoff(self, small_ensemble):
        engine = GenerationEngine(chunk=5.0)
        fast = engine.rate_series_streamed(
            40.0, small_ensemble, RectangularShot(), 90.0, 0.2, seed=13,
            exact=False,
        )
        slow = engine.rate_series_streamed(
            40.0, small_ensemble, RectangularShot(), 90.0, 0.2, seed=13,
            exact=True,
        )
        np.testing.assert_allclose(fast.values, slow.values, rtol=1e-9)

    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("chunk", [3.0, 20.0, None])
    def test_fast_path_geometry_roundoff_only(
        self, small_ensemble, chunk, workers
    ):
        base = GenerationEngine(chunk=5.0, workers=1).rate_series_streamed(
            40.0, small_ensemble, RectangularShot(), 60.0, 0.2, seed=13,
            exact=False,
        )
        out = GenerationEngine(chunk=chunk, workers=workers).rate_series_streamed(
            40.0, small_ensemble, RectangularShot(), 60.0, 0.2, seed=13,
            exact=False,
        )
        np.testing.assert_allclose(base.values, out.values, rtol=1e-9)

    def test_compat_default_stays_bitwise_for_rectangles(self, small_ensemble):
        """exact=True (the generate_rate_series default) must not trade
        reference equality for the fast path."""
        ref = reference_rate_series(
            40.0, small_ensemble, RectangularShot(), duration=60.0, delta=0.2,
            rng=17,
        )
        out = generate_rate_series(
            40.0, small_ensemble, RectangularShot(), duration=60.0, delta=0.2,
            rng=17, chunk=3.0,
        )
        np.testing.assert_array_equal(ref.values, out.values)


class TestPacketPaths:
    def test_chunked_packet_trace_identical(self, small_ensemble):
        base = generate_packet_trace(
            40.0, small_ensemble, TriangularShot(), duration=45.0,
            link_capacity=1e8, rng=6,
        )
        for chunk in (4.0, 13.0):
            out = generate_packet_trace(
                40.0, small_ensemble, TriangularShot(), duration=45.0,
                link_capacity=1e8, rng=6, chunk=chunk,
            )
            np.testing.assert_array_equal(base.packets, out.packets)
        assert base.is_sorted()

    def test_streamed_writer_chunk_invariant_and_sorted(
        self, small_ensemble, tmp_path
    ):
        paths = []
        for chunk in (7.0, 22.0):
            path = tmp_path / f"gen_{chunk}.rptr"
            n = GenerationEngine(chunk=chunk).write_packet_trace(
                path, 40.0, small_ensemble, TriangularShot(), 45.0,
                link_capacity=1e8, seed=9,
            )
            assert n > 0
            paths.append(path)
        a, b = (read_trace(p) for p in paths)
        np.testing.assert_array_equal(a.packets, b.packets)
        assert a.is_sorted()
        assert a.duration == pytest.approx(45.0)

    def test_streamed_writer_no_flows_leaves_no_file(
        self, small_ensemble, tmp_path
    ):
        path = tmp_path / "empty.rptr"
        with pytest.raises(ParameterError):
            GenerationEngine().write_packet_trace(
                path, 1e-9, small_ensemble, TriangularShot(), 0.1,
                link_capacity=1e8, seed=0, warmup=0.0,
            )
        assert not path.exists()

    def test_streamed_writer_rate_matches_model(self, small_ensemble, tmp_path):
        path = tmp_path / "gen.rptr"
        GenerationEngine(chunk=20.0).write_packet_trace(
            path, 40.0, small_ensemble, TriangularShot(), 120.0,
            link_capacity=1e8, seed=3, header_bytes=0, jitter=0.0,
        )
        trace = read_trace(path)
        expected = 40.0 * small_ensemble.mean_size
        assert trace.mean_rate_bps / 8.0 == pytest.approx(expected, rel=0.1)


class TestEngineConfig:
    def test_validation(self):
        with pytest.raises(ParameterError):
            EngineConfig(chunk=-1.0)
        with pytest.raises(ParameterError):
            EngineConfig(workers=0)
        with pytest.raises(ParameterError):
            EngineConfig(workers=2.5)
        with pytest.raises(ParameterError):
            EngineConfig(arrival_cell=0.0)

    def test_integral_float_workers_coerced(self):
        assert EngineConfig(workers=2.0).workers == 2
        assert isinstance(EngineConfig(workers=2.0).workers, int)

    def test_kwarg_overrides(self):
        engine = GenerationEngine(chunk=3.0, workers=2)
        assert engine.config.chunk == 3.0
        assert engine.config.workers == 2
        assert engine.config.arrival_cell == EngineConfig().arrival_cell

    def test_map_seeded_deterministic_and_ordered(self):
        def task(index, child):
            return index, float(np.random.default_rng(child).random())

        a = GenerationEngine(workers=1).map_seeded(task, 6, seed=5)
        b = GenerationEngine(workers=4).map_seeded(task, 6, seed=5)
        assert a == b
        assert [i for i, _ in a] == list(range(6))


class TestSplitmixJitter:
    def test_uniform_range_and_determinism(self):
        keys = np.arange(1000, dtype=np.uint64) * np.uint64(2654435761)
        idx = np.arange(1000, dtype=np.int64) % 7
        u = _splitmix_uniform(keys, idx)
        assert np.all((u >= 0.0) & (u < 1.0))
        np.testing.assert_array_equal(u, _splitmix_uniform(keys, idx))
        # roughly uniform: mean near 0.5, no mass collapse
        assert abs(u.mean() - 0.5) < 0.05
        assert len(np.unique(u)) == len(u)
