"""Tests for repro.generation: section VII-C traffic synthesis."""

from __future__ import annotations

import pytest

from repro.core import (
    EmpiricalEnsemble,
    ParabolicShot,
    PoissonShotNoiseModel,
    RectangularShot,
    TriangularShot,
)
from repro.exceptions import ParameterError
from repro.flows import export_five_tuple_flows
from repro.generation import generate_packet_trace, generate_rate_series
from repro.stats import RateSeries


class TestFluidGeneration:
    def test_mean_matches_model(self, ensemble):
        model = PoissonShotNoiseModel(50.0, ensemble, TriangularShot())
        series = generate_rate_series(
            50.0, ensemble, TriangularShot(), duration=300.0, delta=0.2, rng=0
        )
        assert series.mean == pytest.approx(model.mean, rel=0.05)

    def test_variance_matches_averaged_model(self, ensemble):
        """The generated bin variance matches eq. (7), not Gamma(0)."""
        model = PoissonShotNoiseModel(50.0, ensemble, TriangularShot())
        delta = 0.2
        series = generate_rate_series(
            50.0, ensemble, TriangularShot(), duration=600.0, delta=delta, rng=1
        )
        assert series.variance == pytest.approx(
            model.averaged_variance(delta), rel=0.15
        )

    def test_shot_shape_changes_variance(self, ensemble):
        """Parabolic shots generate burstier traffic than rectangles — the
        paper's central point for simulation-traffic realism."""
        kwargs = dict(duration=400.0, delta=0.2)
        rect = generate_rate_series(
            50.0, ensemble, RectangularShot(), rng=2, **kwargs
        )
        para = generate_rate_series(
            50.0, ensemble, ParabolicShot(), rng=2, **kwargs
        )
        assert para.variance > 1.2 * rect.variance
        assert para.mean == pytest.approx(rect.mean, rel=0.05)

    def test_stationary_after_warmup(self, ensemble):
        series = generate_rate_series(
            50.0, ensemble, TriangularShot(), duration=400.0, delta=0.5, rng=3
        )
        half = len(series) // 2
        first = series.window(0, half)
        second = series.window(half, len(series))
        assert first.mean == pytest.approx(second.mean, rel=0.1)

    def test_volume_conservation_deterministic_flows(self):
        """With deterministic (S, D), generated volume ~ lambda * S * T."""
        ens = EmpiricalEnsemble([1e4], [1.0])
        duration, lam = 200.0, 20.0
        series = generate_rate_series(
            lam, ens, RectangularShot(), duration=duration, delta=0.5, rng=4
        )
        total = series.values.sum() * series.delta
        assert total == pytest.approx(lam * 1e4 * duration, rel=0.05)

    def test_validation(self, ensemble):
        with pytest.raises(ParameterError):
            generate_rate_series(
                50.0, ensemble, TriangularShot(), duration=1.0, delta=2.0
            )
        with pytest.raises(ParameterError):
            generate_rate_series(
                1e-9, ensemble, TriangularShot(), duration=0.1, delta=0.05,
                warmup=0.0, rng=5,
            )


class TestPacketGeneration:
    def test_trace_rate_matches_model(self, ensemble):
        model = PoissonShotNoiseModel(50.0, ensemble, TriangularShot())
        trace = generate_packet_trace(
            50.0, ensemble, TriangularShot(), duration=120.0,
            link_capacity=1e8, rng=6,
        )
        # wire overhead inflates the byte rate slightly; edge truncation
        # removes a little
        assert trace.mean_rate_bps / 8.0 == pytest.approx(model.mean, rel=0.15)

    def test_remesurable_by_flow_pipeline(self, ensemble):
        """Generated traffic re-measured through the exporter produces flow
        statistics close to the generating ensemble."""
        trace = generate_packet_trace(
            50.0, ensemble, TriangularShot(), duration=120.0,
            link_capacity=1e8, rng=7,
        )
        flows = export_five_tuple_flows(trace, timeout=8.0)
        assert len(flows) > 100
        measured_mean_size = flows.sizes.mean()
        # header overhead ~ +3-6%
        assert measured_mean_size == pytest.approx(
            ensemble.mean_size, rel=0.25
        )

    def test_sorted_and_windowed(self, ensemble):
        trace = generate_packet_trace(
            30.0, ensemble, RectangularShot(), duration=60.0,
            link_capacity=1e8, rng=8,
        )
        assert trace.is_sorted()
        assert trace.packets["timestamp"].max() < 60.0

    def test_generated_bins_match_fluid_statistics(self, ensemble):
        """Packetized generation agrees with fluid generation moments."""
        fluid = generate_rate_series(
            40.0, ensemble, TriangularShot(), duration=300.0, delta=0.5, rng=9
        )
        trace = generate_packet_trace(
            40.0, ensemble, TriangularShot(), duration=300.0,
            link_capacity=1e8, header_bytes=0, rng=10,
        )
        binned = RateSeries.from_packets(trace, 0.5)
        assert binned.mean == pytest.approx(fluid.mean, rel=0.1)
        assert binned.std == pytest.approx(fluid.std, rel=0.35)
