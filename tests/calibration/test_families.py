"""Family registry, CDF/PPF consistency, scale closure, literal pins."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import (
    CALIBRATION_FAMILIES,
    SELECTION_CRITERIA,
    build_distribution,
    family_cdf,
    family_ppf,
    get_family,
    scale_params,
)
from repro.exceptions import ParameterError
from repro.flows import LognormalParetoMixture
from repro.netsim.sizes import BoundedPareto, Exponential, LogNormal

PARAMS = {
    "lognormal": {"median": 3000.0, "sigma": 0.8},
    "pareto": {"alpha": 1.4, "minimum": 300.0, "maximum": 1e7},
    "exponential": {"mean_bytes": 9000.0},
    "lognormal_pareto": {
        "body_weight": 0.9, "median": 3000.0, "sigma": 0.8,
        "alpha": 2.2, "minimum": 3e4, "maximum": 2e6,
    },
}


class TestRegistry:
    def test_all_families_registered(self):
        for name in CALIBRATION_FAMILIES:
            spec = get_family(name)
            assert spec.name == name
            # n_params counts FREE parameters (the mixture pins its
            # maximum to the sample max, so it declares 5 of 6)
            assert 0 < spec.n_params <= len(spec.param_names)

    def test_unknown_family(self):
        with pytest.raises(ParameterError, match="weibull"):
            get_family("weibull")

    def test_build_distribution_types(self):
        assert isinstance(
            build_distribution("lognormal", PARAMS["lognormal"]), LogNormal
        )
        assert isinstance(
            build_distribution("pareto", PARAMS["pareto"]), BoundedPareto
        )
        assert isinstance(
            build_distribution("exponential", PARAMS["exponential"]),
            Exponential,
        )
        assert isinstance(
            build_distribution(
                "lognormal_pareto", PARAMS["lognormal_pareto"]
            ),
            LognormalParetoMixture,
        )


class TestCdfPpf:
    @pytest.mark.parametrize("family", CALIBRATION_FAMILIES)
    def test_cdf_monotone_and_bounded(self, family):
        x = np.logspace(0, 8, 200)
        cdf = family_cdf(family, PARAMS[family], x)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert np.all((cdf >= 0.0) & (cdf <= 1.0))

    @pytest.mark.parametrize("family", CALIBRATION_FAMILIES)
    def test_ppf_inverts_cdf(self, family):
        q = np.array([0.05, 0.25, 0.5, 0.75, 0.95, 0.995])
        x = family_ppf(family, PARAMS[family], q)
        back = family_cdf(family, PARAMS[family], x)
        np.testing.assert_allclose(back, q, atol=2e-3)

    @pytest.mark.parametrize("family", CALIBRATION_FAMILIES)
    def test_cdf_matches_sample(self, family):
        dist = build_distribution(family, PARAMS[family])
        rng = np.random.default_rng(11)
        sample = dist.rvs(40000, rng)
        x = np.quantile(sample, [0.2, 0.5, 0.8])
        model = family_cdf(family, PARAMS[family], x)
        empirical = np.searchsorted(np.sort(sample), x) / sample.size
        np.testing.assert_allclose(model, empirical, atol=0.02)


class TestScaleClosure:
    """Scaling the length parameters by c rescales the law exactly."""

    @pytest.mark.parametrize("family", CALIBRATION_FAMILIES)
    @pytest.mark.parametrize("factor", [0.5, 0.93, 2.0])
    def test_cdf_closure(self, family, factor):
        params = PARAMS[family]
        scaled = scale_params(family, params, factor)
        x = np.logspace(1, 7, 100)
        np.testing.assert_allclose(
            family_cdf(family, scaled, x * factor),
            family_cdf(family, params, x),
            rtol=1e-12, atol=1e-12,
        )

    def test_mean_scales(self):
        for family in CALIBRATION_FAMILIES:
            dist = build_distribution(family, PARAMS[family])
            scaled = build_distribution(
                family, scale_params(family, PARAMS[family], 0.75)
            )
            assert scaled.mean() == pytest.approx(0.75 * dist.mean())


class TestLiteralMirrors:
    """The import-light literals in pipeline.spec stay pinned to the
    canonical tuples in repro.calibration."""

    def test_calibration_families_mirror(self):
        from repro.pipeline.spec import CALIBRATION_FAMILIES as mirrored

        assert mirrored == CALIBRATION_FAMILIES

    def test_selection_criteria_mirror(self):
        from repro.pipeline.spec import SELECTION_CRITERIA as mirrored

        assert mirrored == SELECTION_CRITERIA

    def test_size_kinds_mirror(self):
        from repro.pipeline.spec import SIZE_DISTRIBUTION_KINDS

        assert SIZE_DISTRIBUTION_KINDS == CALIBRATION_FAMILIES
