"""Golden CalibrationReport from a small NetFlow v5 archive.

The archive is generated deterministically (fixed seed, fixed record
layout), calibrated with a fixed seed, and the resulting report is
compared field-for-field against the committed fixture.  Any change to
the accumulator binning, the fitters, the selection rule or the report
schema shows up here as a diff against
``tests/calibration/golden_report.json``.

Regenerate (after an *intentional* change) with::

    REPRO_REGEN_GOLDEN=1 python -m pytest tests/calibration/test_golden_report.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.calibration import calibrate_archive
from repro.interop import FLOW_RECORD_DTYPE, write_netflow5

GOLDEN = Path(__file__).with_name("golden_report.json")


def golden_records(n=800, seed=42):
    """A deterministic flow archive: lognormal body, Pareto elephants."""
    rng = np.random.default_rng(seed)
    records = np.zeros(n, dtype=FLOW_RECORD_DTYPE)
    starts = np.sort(rng.uniform(0.0, 120.0, n))
    records["start"] = np.round(starts, 3)  # NetFlow ms timestamps
    records["end"] = records["start"] + np.round(rng.uniform(0.1, 5.0, n), 3)
    records["src_addr"] = rng.integers(1, 2**32 - 1, n, dtype=np.uint32)
    records["dst_addr"] = rng.integers(1, 2**32 - 1, n, dtype=np.uint32)
    records["src_port"] = rng.integers(1024, 65535, n, dtype=np.uint16)
    records["dst_port"] = rng.integers(1, 1024, n, dtype=np.uint16)
    records["protocol"] = rng.choice([6, 17], n)
    body = rng.lognormal(np.log(3000.0), 0.9, n)
    tail = 2e4 * (1.0 - rng.random(n)) ** (-1.0 / 1.8)
    octets = np.where(rng.random(n) < 0.92, body, np.minimum(tail, 5e6))
    records["octets"] = np.maximum(np.rint(octets), 40).astype(np.uint64)
    records["packets"] = np.maximum(records["octets"] // 1460, 1)
    return records


def assert_json_equal(actual, expected, path="report"):
    assert type(actual) is type(expected), (
        f"{path}: {type(actual).__name__} != {type(expected).__name__}"
    )
    if isinstance(actual, dict):
        assert sorted(actual) == sorted(expected), f"{path}: key mismatch"
        for key in actual:
            assert_json_equal(actual[key], expected[key], f"{path}.{key}")
    elif isinstance(actual, list):
        assert len(actual) == len(expected), f"{path}: length mismatch"
        for i, (a, e) in enumerate(zip(actual, expected)):
            assert_json_equal(a, e, f"{path}[{i}]")
    elif isinstance(actual, float):
        if np.isnan(expected):
            assert np.isnan(actual), f"{path}: {actual} != nan"
        else:
            assert actual == pytest.approx(expected, rel=1e-9, abs=1e-12), path
    else:
        assert actual == expected, f"{path}: {actual!r} != {expected!r}"


def test_golden_netflow5_calibration(tmp_path):
    archive = tmp_path / "golden.nf5"
    write_netflow5(golden_records(), archive)
    report = calibrate_archive(archive, seed=0)
    payload = report.to_dict()
    payload["source"] = "golden.nf5"  # drop the tmp_path prefix

    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN.write_text(json.dumps(payload, indent=2) + "\n")
        pytest.skip(f"regenerated {GOLDEN}")

    expected = json.loads(GOLDEN.read_text())
    assert_json_equal(payload, expected)


def test_golden_is_chunk_and_backend_invariant(tmp_path):
    archive = tmp_path / "golden.nf5"
    write_netflow5(golden_records(), archive)
    reference = calibrate_archive(archive, seed=0).to_dict()
    for chunk, workers, backend in (
        (64, 1, "serial"), (100, 4, "thread"), (200, 2, "process"),
    ):
        other = calibrate_archive(
            archive, seed=0, chunk=chunk, workers=workers, backend=backend
        ).to_dict()
        for skip in ("backend", "workers"):
            reference.pop(skip, None), other.pop(skip, None)
        assert other == reference
