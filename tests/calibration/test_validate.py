"""Closed-loop validation: pass on faithful fits, fail on corrupted ones."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.calibration import (
    calibrate_accumulator,
    calibrate_sizes,
    validate_fitted_spec,
    wire_sizes,
)
from repro.exceptions import ParameterError
from repro.netsim.tcp import TcpParameters


@pytest.fixture(scope="module")
def report():
    rng = np.random.default_rng(7)
    sizes = np.maximum(rng.lognormal(np.log(3000.0), 0.8, 40000), 1.0)
    starts = rng.uniform(0.0, 40.0, sizes.size)
    acc = calibrate_sizes(sizes, starts, duration=40.0)
    return calibrate_accumulator(acc, source="unit", seed=3)


class TestClosedLoop:
    def test_faithful_fit_passes(self, report):
        closed = validate_fitted_spec(report, seed=11, duration=40.0)
        assert closed.passed, closed.failures
        assert closed.lambda_rel_err <= 0.02
        assert closed.mean_size_rel_err <= 0.02
        assert closed.to_dict()["passed"] is True

    def test_corrupted_lambda_fails(self, report):
        """A report claiming 1.5x the true rate must be caught."""
        lying = dataclasses.replace(
            report, arrival_rate=1.5 * report.arrival_rate
        )
        # keep the spec honest: it synthesizes the *fitted* workload,
        # whose λ now disagrees with the (corrupted) report value
        closed = validate_fitted_spec(
            lying,
            spec=report.to_scenario_spec(duration=40.0),
            seed=11,
            duration=40.0,
        )
        assert not closed.passed
        assert any("lambda" in failure for failure in closed.failures)

    def test_corrupted_mean_fails(self, report):
        lying = dataclasses.replace(
            report, mean_size=1.3 * report.mean_size
        )
        closed = validate_fitted_spec(
            lying,
            spec=report.to_scenario_spec(duration=40.0),
            seed=11,
            duration=40.0,
        )
        assert not closed.passed
        assert any("E[S]" in failure for failure in closed.failures)

    def test_cov_check_is_optional(self, report):
        closed = validate_fitted_spec(report, seed=11, duration=40.0)
        assert closed.rate_cov_source is None
        assert closed.cov_abs_err is None
        with_cov = validate_fitted_spec(
            report, seed=11, duration=40.0,
            source_rate_cov=closed.rate_cov_synthetic,
        )
        assert with_cov.cov_abs_err == pytest.approx(0.0, abs=1e-12)

    def test_bad_duration_rejected(self, report):
        with pytest.raises(ParameterError, match="duration"):
            validate_fitted_spec(
                report,
                spec=report.to_scenario_spec(),
                seed=11,
                duration=-1.0,
            )

    def test_auto_duration_extends_sparse_sources(self, report):
        """With no explicit window the loop sizes itself to ~50k flows."""
        closed = validate_fitted_spec(report, seed=11)
        assert closed.metadata["flows_in_window"] >= 40000


class TestWireSizes:
    def test_headers_per_packet(self):
        tcp = TcpParameters()
        payload = np.array([100.0, float(tcp.mss), tcp.mss + 1.0])
        wire = wire_sizes(payload, tcp)
        packets = np.array([1.0, 1.0, 2.0])
        np.testing.assert_allclose(
            wire, payload + tcp.header_bytes * packets
        )

    def test_tiny_payloads_clip_to_minimum(self):
        tcp = TcpParameters()
        wire = wire_sizes(np.array([1.0]), tcp)
        assert wire[0] == 40.0 + tcp.header_bytes
