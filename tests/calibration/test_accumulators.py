"""Accumulator state: exactness, merging, and bitwise invariance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import CalibrationAccumulator, calibrate_sizes
from repro.exceptions import ParameterError


def heavy_sample(n=20000, seed=7):
    rng = np.random.default_rng(seed)
    body = rng.lognormal(np.log(3000.0), 0.8, n)
    tail = 3e4 * (1.0 - rng.random(n)) ** (-1.0 / 2.2)
    sizes = np.where(rng.random(n) < 0.9, body, np.minimum(tail, 2e6))
    starts = rng.uniform(0.0, 60.0, n)
    return np.rint(sizes) + 1.0, starts


def state_tuple(acc):
    return (
        acc.n,
        acc.total_bytes,
        acc.min_size,
        acc.max_size,
        acc.counts.tobytes(),
        acc.time_counts.tobytes(),
        acc.tail.tobytes(),
    )


class TestAccumulate:
    def test_exact_totals(self):
        acc = CalibrationAccumulator(duration=10.0)
        acc.update([100.0, 200.0, 700.0], [1.0, 2.0, 3.0])
        assert acc.n == 3
        assert acc.total_bytes == 1000
        assert acc.mean_size == pytest.approx(1000.0 / 3.0)
        assert acc.arrival_rate == pytest.approx(0.3)
        assert acc.mean_rate_bps == pytest.approx(800.0)
        assert acc.min_size == 100.0 and acc.max_size == 700.0

    def test_rejects_bad_sizes(self):
        acc = CalibrationAccumulator(duration=10.0)
        for bad in ([0.0], [-5.0], [np.nan], [np.inf]):
            with pytest.raises(ParameterError, match="finite and > 0"):
                acc.update(bad)

    def test_rejects_misaligned_starts(self):
        acc = CalibrationAccumulator(duration=10.0)
        with pytest.raises(ParameterError, match="align"):
            acc.update([1.0, 2.0], [0.5])

    def test_geometry_validation(self):
        with pytest.raises(ParameterError, match="duration"):
            CalibrationAccumulator(duration=0.0)
        with pytest.raises(ParameterError, match="bins"):
            CalibrationAccumulator(duration=1.0, bins=4)
        with pytest.raises(ParameterError, match="tail_k"):
            CalibrationAccumulator(duration=1.0, tail_k=2)
        with pytest.raises(ParameterError, match="time_bins"):
            CalibrationAccumulator(duration=1.0, time_bins=0)

    def test_empty_requires_data(self):
        acc = CalibrationAccumulator(duration=10.0)
        assert acc.empty
        with pytest.raises(ParameterError, match="no flows"):
            acc.require_data()
        with pytest.raises(ParameterError, match="no flows"):
            _ = acc.mean_size

    def test_merge_rejects_mismatched_binning(self):
        a = CalibrationAccumulator(duration=10.0, bins=64)
        b = CalibrationAccumulator(duration=10.0, bins=128)
        with pytest.raises(ParameterError, match="merge"):
            a.merge(b)

    def test_quantile_exact_in_tail(self):
        sizes, _ = heavy_sample(2000)
        acc = CalibrationAccumulator(duration=60.0, tail_k=512)
        acc.update(sizes)
        # within the exact top-k region the quantile is the order stat
        for q in (0.9, 0.99, 0.999):
            expected = float(np.sort(sizes)[int(np.ceil(q * sizes.size)) - 1])
            assert acc.quantile(q) == expected
        with pytest.raises(ParameterError, match="quantile"):
            acc.quantile(1.5)

    def test_diurnal_rates_sum_to_n(self):
        sizes, starts = heavy_sample(5000)
        acc = CalibrationAccumulator(duration=60.0, time_bins=24)
        acc.update(sizes, starts)
        width = 60.0 / 24
        assert int(round(acc.diurnal_rates().sum() * width)) == 5000


class TestBitwiseInvariance:
    """serial == thread == process for every chunk/workers choice."""

    @pytest.fixture(scope="class")
    def reference(self):
        sizes, starts = heavy_sample()
        acc = calibrate_sizes(sizes, starts, duration=60.0)
        return sizes, starts, state_tuple(acc)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("chunk", [None, 97, 1000])
    @pytest.mark.parametrize("workers", [1, 3])
    def test_battery(self, reference, backend, chunk, workers):
        sizes, starts, expected = reference
        acc = calibrate_sizes(
            sizes, starts, duration=60.0,
            chunk=chunk, workers=workers, backend=backend,
        )
        assert state_tuple(acc) == expected

    def test_merge_is_order_free(self, reference):
        sizes, starts, expected = reference
        thirds = np.array_split(np.arange(sizes.size), 3)
        parts = [
            CalibrationAccumulator(duration=60.0).update(
                sizes[idx], starts[idx]
            )
            for idx in thirds
        ]
        for order in ((0, 1, 2), (2, 0, 1), (1, 2, 0)):
            acc = CalibrationAccumulator(duration=60.0)
            for i in order:
                fresh = CalibrationAccumulator(duration=60.0)
                fresh.merge(parts[i])
                acc.merge(fresh)
            assert state_tuple(acc) == expected

    def test_chunk_validation(self, reference):
        sizes, starts, _ = reference
        with pytest.raises(ParameterError, match="chunk"):
            calibrate_sizes(sizes, starts, duration=60.0, chunk=-1)
