"""CalibrationReport: round-trips, λ-exact spec emission, deflation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import (
    CalibrationReport,
    calibrate_accumulator,
    calibrate_sizes,
    wire_bytes_per_flow,
)
from repro.calibration.report import DiurnalProfile, deflate_for_wire
from repro.netsim.sizes import LogNormal
from repro.netsim.tcp import TcpParameters
from repro.pipeline import ScenarioSpec


@pytest.fixture(scope="module")
def report():
    rng = np.random.default_rng(7)
    sizes = np.maximum(rng.lognormal(np.log(3000.0), 0.8, 30000), 1.0)
    starts = rng.uniform(0.0, 60.0, sizes.size)
    acc = calibrate_sizes(sizes, starts, duration=60.0)
    return calibrate_accumulator(
        acc, source="unit", seed=3, link_capacity_bps=622.08e6,
        metadata={"scenario": "unit"},
    )


class TestRoundTrip:
    def test_json_roundtrip_is_lossless(self, report):
        assert CalibrationReport.from_json(report.to_json()) == report

    def test_dict_roundtrip_is_lossless(self, report):
        assert CalibrationReport.from_dict(report.to_dict()) == report

    def test_diurnal_profile_roundtrip(self, report):
        profile = report.diurnal
        assert DiurnalProfile.from_dict(profile.to_dict()) == profile
        assert profile.mean_rate == pytest.approx(report.arrival_rate)
        assert profile.peak_to_mean >= 1.0

    def test_summary_names_the_choice(self, report):
        summary = report.summary()
        assert summary["family"] == report.family
        assert set(summary["candidates"]) == {
            fit.family for fit in report.candidates
        }


class TestSpecEmission:
    def test_arrival_rate_is_exact(self, report):
        """The emitted spec's workload reproduces λ bitwise.

        target_bps is computed from the same 50k-draw Monte Carlo the
        workload itself uses for mean wire bytes, so the division
        cancels exactly.
        """
        spec = report.to_scenario_spec(name="fitted")
        workload = spec.workload.build()
        assert workload.arrival_rate == report.arrival_rate

    def test_emitted_spec_roundtrips_as_json(self, report):
        spec = report.to_scenario_spec(name="fitted")
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_capacity_defaults_to_twice_target(self):
        rng = np.random.default_rng(7)
        sizes = np.maximum(rng.lognormal(np.log(3000.0), 0.8, 5000), 1.0)
        acc = calibrate_sizes(sizes, duration=60.0)
        bare = calibrate_accumulator(acc, source="unit", seed=3)
        spec = bare.to_scenario_spec()
        assert spec.workload.link_capacity_bps == pytest.approx(
            2.0 * spec.workload.target_mean_rate_bps
        )

    def test_declared_capacity_is_kept(self, report):
        spec = report.to_scenario_spec()
        assert spec.workload.link_capacity_bps == 622.08e6

    def test_duration_override(self, report):
        spec = report.to_scenario_spec(duration=12.5)
        assert spec.workload.duration == 12.5


class TestWireDeflation:
    def test_deflated_wire_mean_hits_target(self):
        tcp = TcpParameters()
        params = {"median": 3000.0, "sigma": 0.8}
        raw_wire = wire_bytes_per_flow(
            LogNormal(median=3000.0, sigma=0.8), tcp
        )
        target = 0.92 * raw_wire  # ask for a slightly lighter trace
        deflated = deflate_for_wire(
            "lognormal", params, target, tcp_params=tcp
        )
        achieved = wire_bytes_per_flow(
            LogNormal(
                median=deflated["median"], sigma=deflated["sigma"]
            ),
            tcp,
        )
        assert achieved == pytest.approx(target, rel=1e-6)
        assert deflated["sigma"] == params["sigma"]  # shape untouched
