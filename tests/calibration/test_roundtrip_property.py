"""Hypothesis property: sample a known family, calibrate, recover it.

The round-trip contract of the whole subsystem: for flows drawn from a
registered family with sane parameters, calibration must (a) recover
the generating parameters to sampling accuracy and (b) let the
generating family win model selection against the alternatives.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.calibration import calibrate_sizes, fit_all_families, fit_family, select_best
from repro.calibration.families import build_distribution

_SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(
    median=st.floats(min_value=500.0, max_value=50_000.0),
    sigma=st.floats(min_value=0.3, max_value=1.8),
    seed=st.integers(0, 2**31),
)
@settings(**_SETTINGS)
def test_lognormal_roundtrip(median, sigma, seed):
    dist = build_distribution(
        "lognormal", {"median": median, "sigma": sigma}
    )
    sizes = np.maximum(dist.rvs(8000, np.random.default_rng(seed)), 1.0)
    acc = calibrate_sizes(sizes, duration=60.0)
    fit = fit_family(acc, "lognormal")
    assert fit.params["median"] == pytest.approx(median, rel=0.12)
    assert fit.params["sigma"] == pytest.approx(sigma, rel=0.12)
    fits = fit_all_families(
        acc, ("lognormal", "exponential", "pareto"), seed=0
    )
    assert select_best(fits, "bic").family == "lognormal"


@given(
    alpha=st.floats(min_value=0.8, max_value=2.5),
    seed=st.integers(0, 2**31),
)
@settings(**_SETTINGS)
def test_pareto_roundtrip(alpha, seed):
    params = {"alpha": alpha, "minimum": 300.0, "maximum": 1e7}
    dist = build_distribution("pareto", params)
    sizes = dist.rvs(8000, np.random.default_rng(seed))
    acc = calibrate_sizes(sizes, duration=60.0)
    fit = fit_family(acc, "pareto")
    assert fit.params["alpha"] == pytest.approx(alpha, rel=0.15)
    fits = fit_all_families(
        acc, ("lognormal", "exponential", "pareto"), seed=0
    )
    assert select_best(fits, "bic").family == "pareto"


@given(
    mean=st.floats(min_value=1_000.0, max_value=100_000.0),
    seed=st.integers(0, 2**31),
)
@settings(**_SETTINGS)
def test_exponential_roundtrip(mean, seed):
    dist = build_distribution("exponential", {"mean_bytes": mean})
    sizes = np.maximum(dist.rvs(8000, np.random.default_rng(seed)), 1.0)
    acc = calibrate_sizes(sizes, duration=60.0)
    fit = fit_family(acc, "exponential")
    assert fit.params["mean_bytes"] == pytest.approx(mean, rel=0.1)
