"""Fitter recovery, model selection, and fit determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import (
    calibrate_sizes,
    fit_all_families,
    fit_family,
    grouped_log_likelihood,
    select_best,
)
from repro.calibration.families import build_distribution
from repro.exceptions import ParameterError


def accumulate(family, params, n=40000, seed=5, duration=60.0):
    dist = build_distribution(family, params)
    sizes = dist.rvs(n, np.random.default_rng(seed))
    return calibrate_sizes(np.maximum(sizes, 1.0), duration=duration)


class TestRecovery:
    def test_lognormal(self):
        acc = accumulate("lognormal", {"median": 3000.0, "sigma": 0.8})
        fit = fit_family(acc, "lognormal")
        assert fit.params["median"] == pytest.approx(3000.0, rel=0.05)
        assert fit.params["sigma"] == pytest.approx(0.8, rel=0.05)

    def test_exponential_mean_is_exact(self):
        acc = accumulate("exponential", {"mean_bytes": 9000.0})
        fit = fit_family(acc, "exponential")
        # the exponential MLE is the integer-exact accumulator mean
        assert fit.params["mean_bytes"] == acc.mean_size

    def test_pareto_alpha(self):
        acc = accumulate(
            "pareto", {"alpha": 1.4, "minimum": 300.0, "maximum": 1e7}
        )
        fit = fit_family(acc, "pareto")
        assert fit.params["alpha"] == pytest.approx(1.4, rel=0.08)

    def test_mixture_recovery(self):
        truth = {
            "body_weight": 0.9, "median": 3000.0, "sigma": 0.8,
            "alpha": 2.2, "minimum": 3e4, "maximum": 2e6,
        }
        acc = accumulate("lognormal_pareto", truth, n=60000, seed=7)
        fit = fit_family(acc, "lognormal_pareto", restarts=4, seed=3)
        assert fit.params["body_weight"] == pytest.approx(0.9, abs=0.05)
        assert fit.params["median"] == pytest.approx(3000.0, rel=0.1)
        assert fit.params["sigma"] == pytest.approx(0.8, rel=0.15)
        assert fit.params["alpha"] == pytest.approx(2.2, rel=0.25)
        assert fit.ks_statistic < 0.02
        assert fit.tail_qq_correlation > 0.98


class TestSelection:
    def test_generating_family_wins(self):
        truth = {
            "body_weight": 0.9, "median": 3000.0, "sigma": 0.8,
            "alpha": 2.2, "minimum": 3e4, "maximum": 2e6,
        }
        acc = accumulate("lognormal_pareto", truth, n=60000, seed=7)
        fits = fit_all_families(acc, restarts=4, seed=3)
        assert select_best(fits, "bic").family == "lognormal_pareto"
        assert select_best(fits, "aic").family == "lognormal_pareto"
        assert select_best(fits, "loglik").family == "lognormal_pareto"
        assert select_best(fits, "ks").family == "lognormal_pareto"

    def test_lognormal_wins_on_lognormal_data(self):
        acc = accumulate("lognormal", {"median": 3000.0, "sigma": 0.8})
        fits = fit_all_families(
            acc, ("lognormal", "pareto", "exponential"), seed=1
        )
        assert select_best(fits, "bic").family == "lognormal"

    def test_select_validation(self):
        acc = accumulate("exponential", {"mean_bytes": 9000.0})
        fits = fit_all_families(acc, ("exponential",))
        with pytest.raises(ParameterError, match="criterion"):
            select_best(fits, "magic")
        with pytest.raises(ParameterError, match="no family"):
            select_best(())

    def test_unknown_family_fit(self):
        acc = accumulate("exponential", {"mean_bytes": 9000.0})
        with pytest.raises(ParameterError, match="weibull"):
            fit_family(acc, "weibull")


class TestDeterminism:
    def test_same_seed_same_params(self):
        truth = {
            "body_weight": 0.85, "median": 2000.0, "sigma": 0.7,
            "alpha": 1.8, "minimum": 2e4, "maximum": 1e6,
        }
        acc = accumulate("lognormal_pareto", truth, n=30000, seed=2)
        first = fit_family(acc, "lognormal_pareto", restarts=3, seed=9)
        second = fit_family(acc, "lognormal_pareto", restarts=3, seed=9)
        assert first == second  # bitwise: identical floats throughout

    def test_fit_depends_only_on_accumulator(self):
        """Any chunk/workers/backend path yields the identical fit."""
        truth = {"median": 4000.0, "sigma": 1.0}
        dist = build_distribution("lognormal", truth)
        sizes = np.maximum(
            dist.rvs(20000, np.random.default_rng(4)), 1.0
        )
        serial = calibrate_sizes(sizes, duration=60.0)
        pooled = calibrate_sizes(
            sizes, duration=60.0, chunk=333, workers=4, backend="thread"
        )
        assert fit_family(serial, "lognormal") == fit_family(
            pooled, "lognormal"
        )

    def test_restarts_validation(self):
        acc = accumulate("exponential", {"mean_bytes": 9000.0})
        with pytest.raises(ParameterError, match="restarts"):
            fit_family(acc, "lognormal_pareto", restarts=0)


class TestGroupedLikelihood:
    def test_truth_beats_perturbed(self):
        truth = {"median": 3000.0, "sigma": 0.8}
        acc = accumulate("lognormal", truth)
        ll_truth = grouped_log_likelihood(acc, "lognormal", truth)
        ll_off = grouped_log_likelihood(
            acc, "lognormal", {"median": 6000.0, "sigma": 0.4}
        )
        assert ll_truth > ll_off
