"""Tests for the experiments harness, figure and table builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    build_table1,
    build_table2,
    fig1_flow_splitting,
    fig2_shot_construction,
    fig3_4_interarrivals,
    fig5_6_sequence_correlation,
    fig7_shot_shapes,
    fig8_rate_autocorrelation,
    fig9_13_scatter,
    fig11_power_histogram,
    measure_trace,
    utilization_class,
)
from repro.netsim import DEFAULT_SCALE, medium_utilization_link, table_i_workload


class TestMeasureTrace:
    def test_fields_populated(self, trace):
        measurement, flows = measure_trace(trace, flow_kind="five_tuple")
        assert measurement.n_flows == len(flows)
        assert measurement.measured_cov > 0
        assert set(measurement.model_cov) == {0.0, 1.0, 2.0}
        assert measurement.model_cov[0.0] < measurement.model_cov[2.0]
        assert np.isfinite(measurement.fitted_power)
        assert measurement.statistics.flow_count == len(flows)

    def test_relative_error_and_band(self, trace):
        measurement, _ = measure_trace(trace, flow_kind="five_tuple")
        for power in (0.0, 1.0, 2.0):
            rel = measurement.relative_error(power)
            assert measurement.within_band(power, 0.20) == (abs(rel) <= 0.20)

    def test_prefix_kind(self, trace):
        measurement, flows = measure_trace(trace, flow_kind="prefix")
        assert measurement.flow_kind == "prefix"
        assert flows.key_kind == "prefix"


class TestUtilizationClass:
    def test_paper_edges_scaled(self):
        scale = DEFAULT_SCALE
        assert utilization_class(49e6 * scale) == "low"
        assert utilization_class(51e6 * scale) == "medium"
        assert utilization_class(126e6 * scale) == "high"

    def test_class_of_presets(self, trace):
        # the medium preset (136 Mbps class) must land in "high"ish band:
        # 136 Mbps > 125 Mbps edge
        assert utilization_class(trace.mean_rate_bps) in ("medium", "high")


class TestFigureBuilders:
    def test_fig1(self, five_tuple_flows, trace):
        data = fig1_flow_splitting(five_tuple_flows, trace.duration)
        assert np.all(np.diff(data.cumulative) >= 0)
        assert data.cumulative[-1] == len(five_tuple_flows)
        assert data.zoom_times[-1] <= trace.duration / 30.0 + 1e-9

    def test_fig2(self):
        data = fig2_shot_construction(n_flows=3)
        assert data.per_flow_rates.shape[0] == 3
        np.testing.assert_allclose(
            data.total_rate, data.per_flow_rates.sum(axis=0)
        )
        # each flow integrates to its size
        for i in range(3):
            integral = np.trapezoid(data.per_flow_rates[i], data.grid)
            assert integral == pytest.approx(data.sizes[i], rel=0.05)

    def test_fig3_4(self, five_tuple_flows):
        data = fig3_4_interarrivals(five_tuple_flows)
        assert data.qq.correlation > 0.98  # Poisson arrivals by design
        assert np.all(np.abs(data.autocorrelation[1:]) < 0.15)
        assert data.mean_interarrival > 0

    def test_fig5_6(self, five_tuple_flows):
        data = fig5_6_sequence_correlation(five_tuple_flows)
        assert data.lags.size == data.size_autocorrelation.size
        assert data.size_autocorrelation[0] == pytest.approx(1.0)
        # iid sequences: correlation drops after lag 0 (paper Figs 5-6)
        assert np.all(np.abs(data.size_autocorrelation[1:]) < 0.2)
        assert np.all(np.abs(data.duration_autocorrelation[1:]) < 0.2)

    def test_fig7(self):
        shapes = fig7_shot_shapes()
        assert set(shapes) == {0.0, 1.0, 0.5, 2.0}
        v = np.linspace(0, 1, 101)
        for b, profile in shapes.items():
            assert np.trapezoid(profile, v) == pytest.approx(1.0, rel=0.02)

    def test_fig8(self, five_tuple_flows, trace):
        lags, curves = fig8_rate_autocorrelation(
            five_tuple_flows, trace.duration, max_lag=0.4
        )
        for b, rho in curves.items():
            assert rho[0] == pytest.approx(1.0, abs=0.01)
            assert np.all(np.diff(rho) <= 1e-9)
            # paper Figure 8: correlation still high at 400 ms
            assert rho[-1] > 0.5

    def test_fig9_13_scatter(self, trace):
        m1, _ = measure_trace(trace, flow_kind="five_tuple", seed=1)
        m2, _ = measure_trace(trace, flow_kind="five_tuple", seed=2)
        scatter = fig9_13_scatter([m1, m2], power=1.0)
        assert scatter.measured.shape == (2,)
        assert 0.0 <= scatter.within_20pct <= 1.0

    def test_fig11_histogram(self, trace):
        m, _ = measure_trace(trace, flow_kind="five_tuple")
        edges, share, mean_b = fig11_power_histogram([m, m])
        assert share.sum() == pytest.approx(100.0)
        assert mean_b == pytest.approx(m.fitted_power)


class TestTableBuilders:
    def test_table1_single_workload(self):
        workload = table_i_workload(3, duration=30.0)
        rows = build_table1([workload], seed=0)
        assert len(rows) == 1
        row = rows[0]
        assert row.measured_mbps == pytest.approx(row.target_mbps, rel=0.25)
        assert row.utilization < 0.5
        assert abs(row.relative_error) < 0.25

    def test_table2_rows(self):
        workload = medium_utilization_link(duration=120.0)
        rows = build_table2(
            workload, seed=0, prediction_intervals=(1.0, 4.0), max_order=4
        )
        assert len(rows) == 2
        for row in rows:
            assert 0.0 < row.empirical_error < 0.6
            assert 0.0 < row.model_error < 0.6
            assert 1 <= row.empirical_order <= 4
            assert 1 <= row.model_order <= 4
