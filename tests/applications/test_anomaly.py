"""Tests for repro.applications.anomaly: model-band detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications import (
    AnomalyDetector,
    inject_flood,
    inject_outage,
)
from repro.core import GaussianApproximation
from repro.exceptions import ParameterError
from repro.stats import RateSeries


@pytest.fixture(scope="module")
def clean_series():
    rng = np.random.default_rng(0)
    return RateSeries(1e5 + rng.normal(0, 1e4, 600), 0.2)


@pytest.fixture(scope="module")
def gaussian():
    return GaussianApproximation(1e5, 1e4)


class TestDetector:
    def test_clean_traffic_no_events(self, clean_series, gaussian):
        detector = AnomalyDetector(gaussian, threshold_sigma=3.5, min_run=3)
        assert detector.detect(clean_series) == []

    def test_detects_flood_run(self, gaussian):
        rng = np.random.default_rng(1)
        values = 1e5 + rng.normal(0, 1e4, 300)
        values[100:140] += 8e4  # +8 sigma for 40 samples
        events = AnomalyDetector(gaussian).detect(RateSeries(values, 0.2))
        assert len(events) == 1
        event = events[0]
        assert event.kind == "flood"
        assert event.start_index == pytest.approx(100, abs=2)
        assert event.end_index == pytest.approx(140, abs=2)
        assert event.peak_z > 3.0
        assert event.start_time(0.2) == pytest.approx(20.0, abs=0.5)

    def test_detects_drop_run(self, gaussian):
        rng = np.random.default_rng(2)
        values = 1e5 + rng.normal(0, 1e4, 300)
        values[200:260] = 1e4  # outage
        events = AnomalyDetector(gaussian).detect(RateSeries(values, 0.2))
        kinds = {e.kind for e in events}
        assert "drop" in kinds

    def test_min_run_suppresses_blips(self, gaussian):
        rng = np.random.default_rng(3)
        values = 1e5 + rng.normal(0, 1e4, 300)
        values[50] += 9e4  # single-sample spike
        detector = AnomalyDetector(gaussian, min_run=3)
        assert detector.detect(RateSeries(values, 0.2)) == []
        eager = AnomalyDetector(gaussian, min_run=1)
        assert len(eager.detect(RateSeries(values, 0.2))) >= 1

    def test_scores_are_standardised(self, clean_series, gaussian):
        z = AnomalyDetector(gaussian).scores(clean_series)
        assert abs(np.mean(z)) < 0.2
        assert np.std(z) == pytest.approx(1.0, abs=0.2)

    def test_validation(self, gaussian):
        with pytest.raises(ParameterError):
            AnomalyDetector(gaussian, threshold_sigma=0.0)
        with pytest.raises(ParameterError):
            AnomalyDetector(gaussian, min_run=0)


class TestInjection:
    def test_flood_raises_rate_in_window(self, trace):
        flooded = inject_flood(
            trace, start=20.0, duration=10.0,
            rate_bytes_per_s=trace.mean_rate_bps / 8.0, rng=0,
        )
        assert len(flooded) > len(trace)
        before = flooded.window(5.0, 15.0).total_bytes
        during = flooded.window(20.0, 30.0).total_bytes
        assert during > 1.5 * before

    def test_flood_packets_are_small_udp(self, trace):
        flooded = inject_flood(
            trace, start=0.0, duration=5.0, rate_bytes_per_s=1e6,
            packet_size=60, rng=1,
        )
        extra = len(flooded) - len(trace)
        assert extra == pytest.approx(5.0 * 1e6 / 60, rel=0.01)

    def test_outage_removes_packets(self, trace):
        broken = inject_outage(
            trace, start=10.0, duration=10.0, drop_fraction=1.0, rng=2
        )
        assert broken.window(10.0, 20.0).total_bytes == 0
        assert broken.window(0.0, 10.0).total_bytes == pytest.approx(
            trace.window(0.0, 10.0).total_bytes
        )

    def test_end_to_end_detection_on_trace(self, trace, five_tuple_flows):
        """Model from clean flows detects an injected flood."""
        stats = five_tuple_flows.statistics(trace.duration)
        gaussian = GaussianApproximation(
            stats.mean_rate, stats.std(1.8)
        )
        flooded = inject_flood(
            trace, start=30.0, duration=15.0,
            rate_bytes_per_s=8.0 * stats.std(1.8), rng=3,
        )
        series = RateSeries.from_packets(flooded, 0.2)
        events = AnomalyDetector(gaussian, threshold_sigma=3.0).detect(series)
        floods = [e for e in events if e.kind == "flood"]
        assert floods
        assert any(25.0 < e.start_time(0.2) < 40.0 for e in floods)

    def test_injection_validation(self, trace):
        with pytest.raises(ParameterError):
            inject_flood(trace, start=999.0, duration=1.0, rate_bytes_per_s=1e5)
        with pytest.raises(ParameterError):
            inject_outage(trace, start=0.0, duration=1.0, drop_fraction=0.0)
