"""Test package marker (enables intra-suite relative imports)."""
