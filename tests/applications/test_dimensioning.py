"""Tests for repro.applications.dimensioning: section VII-A."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.applications import (
    bandwidth_savings,
    provision_capacity,
    smoothing_curve,
    what_if,
)
from repro.core import FlowStatistics


@pytest.fixture()
def stats():
    return FlowStatistics(
        arrival_rate=100.0,
        mean_size=1e4,
        mean_square_size_over_duration=5e7,
        mean_duration=2.0,
        flow_count=5000,
    )


class TestProvisioning:
    def test_capacity_decomposition(self, stats):
        report = provision_capacity(stats, 0.01, shape_factor=1.8)
        assert report.capacity == pytest.approx(
            report.mean_rate + report.quantile * report.std
        )
        assert report.capacity_bps == pytest.approx(8.0 * report.capacity)
        assert report.headroom_ratio > 1.0

    def test_stricter_epsilon_more_capacity(self, stats):
        strict = provision_capacity(stats, 0.001)
        loose = provision_capacity(stats, 0.1)
        assert strict.capacity > loose.capacity

    def test_burstier_shots_more_capacity(self, stats):
        rect = provision_capacity(stats, 0.01, shape_factor=1.0)
        para = provision_capacity(stats, 0.01, shape_factor=1.8)
        assert para.capacity > rect.capacity
        assert para.mean_rate == rect.mean_rate


class TestSmoothing:
    def test_curve_shape(self, stats):
        points = smoothing_curve(stats, [1.0, 4.0, 16.0])
        assert len(points) == 3
        # mean scales linearly
        assert points[1].mean_rate == pytest.approx(4 * points[0].mean_rate)
        # std scales as sqrt
        assert points[1].std == pytest.approx(2 * points[0].std)
        # CoV shrinks as 1/sqrt
        assert points[2].cov == pytest.approx(points[0].cov / 4.0)

    def test_capacity_per_mean_decreases(self, stats):
        """The paper's conclusion: capacity need not scale linearly."""
        points = smoothing_curve(stats, [1.0, 10.0, 100.0])
        ratios = [p.capacity_per_mean for p in points]
        assert ratios[0] > ratios[1] > ratios[2]
        assert ratios[2] > 1.0

    @given(st.floats(min_value=1.5, max_value=200.0))
    @settings(max_examples=40)
    def test_savings_positive_for_growth(self, factor):
        stats = FlowStatistics(
            arrival_rate=100.0,
            mean_size=1e4,
            mean_square_size_over_duration=5e7,
            mean_duration=2.0,
        )
        saving = bandwidth_savings(stats, factor)
        assert 0.0 < saving < 1.0

    def test_no_savings_at_factor_one(self, stats):
        assert bandwidth_savings(stats, 1.0) == pytest.approx(0.0, abs=1e-12)


class TestWhatIf:
    def test_size_factor_algebra(self, stats):
        bigger = what_if(stats, size_factor=2.0)
        assert bigger.mean_size == pytest.approx(2 * stats.mean_size)
        assert bigger.mean_square_size_over_duration == pytest.approx(
            4 * stats.mean_square_size_over_duration
        )

    def test_duration_factor_reduces_burstiness(self, stats):
        """Congested access links (longer D) smooth the backbone."""
        slower = what_if(stats, duration_factor=4.0)
        assert slower.mean_duration == pytest.approx(4 * stats.mean_duration)
        assert slower.variance(1.0) == pytest.approx(stats.variance(1.0) / 4.0)
        assert slower.mean_rate == pytest.approx(stats.mean_rate)

    def test_arrival_factor_matches_scaled_arrivals(self, stats):
        a = what_if(stats, arrival_factor=3.0)
        b = stats.scaled_arrivals(3.0)
        assert a.arrival_rate == b.arrival_rate
        assert a.variance(1.8) == pytest.approx(b.variance(1.8))

    def test_new_application_scenario(self, stats):
        """A new app doubling transfer sizes at equal flow rate doubles the
        mean but quadruples the variance contribution per flow."""
        scenario = what_if(stats, size_factor=2.0, duration_factor=2.0)
        assert scenario.mean_rate == pytest.approx(2 * stats.mean_rate)
        assert scenario.variance(1.0) == pytest.approx(
            2.0 * stats.variance(1.0)
        )
