"""Tests for repro.applications.backbone: edge stats + routing."""

from __future__ import annotations

import pytest

from repro.applications import BackboneNetwork, Demand
from repro.core import FlowStatistics
from repro.exceptions import TopologyError


def stats(rate=50.0):
    return FlowStatistics(
        arrival_rate=rate,
        mean_size=1e4,
        mean_square_size_over_duration=5e7,
        mean_duration=2.0,
    )


@pytest.fixture()
def network():
    net = BackboneNetwork()
    for name in "ABCD":
        net.add_router(name)
    net.add_link("A", "B", capacity_bps=100e6)
    net.add_link("B", "C", capacity_bps=100e6)
    net.add_link("A", "D", capacity_bps=100e6, weight=10.0)
    net.add_link("D", "C", capacity_bps=100e6, weight=10.0)
    return net


class TestRouting:
    def test_shortest_path_by_weight(self, network):
        demand = Demand("A", "C", stats())
        assert network.route(demand) == ["A", "B", "C"]

    def test_weight_changes_route(self, network):
        network.graph.edges[("A", "B")]["weight"] = 100.0
        network.graph.edges[("B", "A")]["weight"] = 100.0
        demand = Demand("A", "C", stats())
        assert network.route(demand) == ["A", "D", "C"]

    def test_no_route_raises(self):
        net = BackboneNetwork()
        net.add_router("X")
        net.add_router("Y")
        net.add_demand.__self__  # no-op; just ensure attribute exists
        with pytest.raises(TopologyError):
            net.route(Demand("X", "Y", stats()))

    def test_unknown_router_rejected(self, network):
        with pytest.raises(TopologyError):
            network.add_demand(Demand("A", "Z", stats()))

    def test_self_demand_rejected(self):
        with pytest.raises(TopologyError):
            Demand("A", "A", stats())


class TestLinkReports:
    def test_superposition_adds(self, network):
        network.add_demand(Demand("A", "C", stats(30.0)))
        network.add_demand(Demand("B", "C", stats(20.0)))
        report = {r.link: r for r in network.link_report(0.01)}
        bc = report[("B", "C")]
        assert bc.n_demands == 2
        assert bc.arrival_rate == pytest.approx(50.0)
        assert bc.mean_rate == pytest.approx(
            stats(30.0).mean_rate + stats(20.0).mean_rate
        )
        # variances add
        expected_var = stats(30.0).variance(1.8) + stats(20.0).variance(1.8)
        assert bc.std**2 == pytest.approx(expected_var)

    def test_unused_links_empty(self, network):
        network.add_demand(Demand("A", "C", stats()))
        report = {r.link: r for r in network.link_report()}
        assert report[("D", "C")].n_demands == 0
        assert report[("D", "C")].mean_rate == 0.0
        assert not report[("D", "C")].overloaded

    def test_overload_detection(self, network):
        network.add_demand(Demand("A", "C", stats(2000.0)))
        overloaded = network.overloaded_links(0.01)
        links = {r.link for r in overloaded}
        assert ("A", "B") in links
        assert ("B", "C") in links

    def test_utilization_vs_required(self, network):
        network.add_demand(Demand("A", "C", stats(40.0)))
        report = {r.link: r for r in network.link_report(0.01)}
        ab = report[("A", "B")]
        assert ab.required_capacity_bps > 8.0 * ab.mean_rate
        assert 0.0 < ab.utilization < 0.5
        assert ab.cov > 0.0

    def test_cov_shrinks_with_aggregation(self, network):
        """Two links, one carrying twice the demands: smoother traffic."""
        network.add_demand(Demand("A", "C", stats(50.0)))
        network.add_demand(Demand("B", "C", stats(50.0)))
        report = {r.link: r for r in network.link_report()}
        assert report[("B", "C")].cov < report[("A", "B")].cov
