"""Tests for the streaming, time-sharded synthesis engine.

The headline contract: the streamed path is **bit-for-bit** equal to
``synthesize_link_trace`` for any ``chunk`` and ``workers`` — trace,
measured FlowSet and RateSeries alike — including cell-boundary-straddling
flows, empty cells, and every arrival family the cell sampler supports
(mirroring the chunk/shard invariance battery of ``tests/measurement``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.measurement import MeasurementEngine
from repro.netsim import (
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    SessionArrivals,
    medium_utilization_link,
    synthesize_link_trace,
    table_i_workload,
)
from repro.netsim.sizes import BoundedPareto
from repro.synthesis import (
    DEFAULT_SYNTHESIS_CELL,
    SynthesisConfig,
    SynthesisEngine,
    reference_synthesize_link_trace,
)
from repro.trace import TraceReader

DURATION = 20.0
SEED = 11


@pytest.fixture(scope="module")
def workload():
    return medium_utilization_link(duration=DURATION)


@pytest.fixture(scope="module")
def canonical(workload):
    return workload.synthesize(seed=SEED)


def drain(stream):
    blocks = list(stream)
    return np.concatenate(blocks) if blocks else np.zeros(0), blocks


class TestChunkWorkerInvariance:
    """Streamed output == materialised output, bitwise, any config."""

    @pytest.mark.parametrize("chunk,workers", [
        (1_000_000, 1), (1000, 1), (997, 3), (50, 2), (1, 1), (5000, 4),
    ])
    def test_stream_equals_synthesize(self, workload, canonical, chunk, workers):
        stream = workload.synthesize_chunks(
            seed=SEED, chunk=chunk, workers=workers
        )
        packets, blocks = drain(stream)
        np.testing.assert_array_equal(packets, canonical.trace.packets)
        assert all(b.size == chunk for b in blocks[:-1])
        assert stream.packet_count == len(canonical.trace)
        assert stream.total_flows == canonical.n_flows
        assert stream.total_bytes == canonical.trace.total_bytes

    def test_chunk_none_yields_emission_blocks(self, workload, canonical):
        stream = SynthesisEngine(workers=2).synthesize_chunks(
            SEED, **workload._synthesis_kwargs()
        )
        packets, _ = drain(stream)
        np.testing.assert_array_equal(packets, canonical.trace.packets)

    def test_synthesize_matches_link_trace_front_door(self, workload, canonical):
        direct = synthesize_link_trace(
            seed=SEED, **workload._synthesis_kwargs()
        )
        np.testing.assert_array_equal(
            direct.trace.packets, canonical.trace.packets
        )
        np.testing.assert_array_equal(
            direct.flow_start_times, canonical.flow_start_times
        )
        np.testing.assert_array_equal(direct.flow_sizes, canonical.flow_sizes)

    def test_small_cells_straddling_flows(self, workload):
        """A 2 s cell forces nearly every flow across cell boundaries."""
        small = SynthesisEngine(cell=2.0)
        base = small.synthesize(SEED, **workload._synthesis_kwargs())
        assert base.trace.is_sorted()
        for chunk, workers in ((313, 1), (4096, 3)):
            stream = SynthesisEngine(
                cell=2.0, chunk=chunk, workers=workers
            ).synthesize_chunks(SEED, **workload._synthesis_kwargs())
            packets, _ = drain(stream)
            np.testing.assert_array_equal(packets, base.trace.packets)

    def test_cell_width_changes_trace(self, workload):
        """The cell is a seeding knob, not an execution knob."""
        a = SynthesisEngine(cell=2.0).synthesize(
            SEED, **workload._synthesis_kwargs()
        )
        b = SynthesisEngine(cell=4.0).synthesize(
            SEED, **workload._synthesis_kwargs()
        )
        assert not np.array_equal(a.trace.packets, b.trace.packets)

    def test_scipy_frozen_dist_worker_invariant(self):
        """scipy frozen dists mutate their own random_state inside rvs;
        the cell sampler serialises those draws, so a shared scipy
        size_dist stays bit-for-bit worker-invariant."""
        from dataclasses import replace as dc_replace

        from scipy import stats

        w = dc_replace(
            medium_utilization_link(duration=10.0),
            size_dist=stats.lognorm(s=1.2, scale=8e3),
        )
        base = w.synthesize(seed=5)
        for workers in (2, 4):
            packets, _ = drain(
                w.synthesize_chunks(seed=5, chunk=1000, workers=workers)
            )
            np.testing.assert_array_equal(packets, base.trace.packets)

    def test_seed_reproducible_and_distinct(self, workload, canonical):
        again = workload.synthesize(seed=SEED)
        np.testing.assert_array_equal(
            again.trace.packets, canonical.trace.packets
        )
        other = workload.synthesize(seed=SEED + 1)
        assert not np.array_equal(
            other.trace.packets, canonical.trace.packets
        )


class TestMeasurementEquivalence:
    """synthesize → measure streamed == measure the materialised trace."""

    @pytest.mark.parametrize("chunk,workers", [(2048, 1), (977, 2)])
    def test_flowset_and_series_bitwise(self, workload, canonical, chunk, workers):
        base = MeasurementEngine().measure_trace(
            canonical.trace, delta=0.2, timeout=8.0
        )
        stream = workload.synthesize_chunks(
            seed=SEED, chunk=chunk, workers=workers
        )
        result = MeasurementEngine(workers=workers).measure_chunks(
            stream, duration=workload.duration, delta=0.2, timeout=8.0
        )
        np.testing.assert_array_equal(result.flows.starts, base.flows.starts)
        np.testing.assert_array_equal(result.flows.ends, base.flows.ends)
        np.testing.assert_array_equal(result.flows.sizes, base.flows.sizes)
        np.testing.assert_array_equal(result.flows.keys, base.flows.keys)
        assert result.flows.discarded_packets == base.flows.discarded_packets
        np.testing.assert_array_equal(
            result.series.values, base.series.values
        )
        assert result.packet_count == len(canonical.trace)

    def test_duration_and_capacity_inferred_from_stream(self, workload):
        """measure_chunks reads the stream's own metadata, like
        measure_file reads the trace header — utilisation comes out
        right without re-plumbing the workload by hand."""
        stream = workload.synthesize_chunks(seed=SEED, chunk=4000)
        result = MeasurementEngine().measure_chunks(stream, timeout=8.0)
        assert result.duration == workload.duration
        assert result.link_capacity == workload.link_capacity_bps
        assert result.utilization > 0.0

    def test_bare_iterable_still_needs_duration(self, canonical):
        with pytest.raises(ParameterError, match="duration"):
            MeasurementEngine().measure_chunks(
                iter([canonical.trace.packets])
            )

    def test_raw_series_matches_from_packets(self, workload, canonical):
        from repro.stats import RateSeries

        stream = workload.synthesize_chunks(seed=SEED, chunk=3000)
        result = MeasurementEngine().measure_chunks(
            stream, duration=workload.duration, delta=0.5, timeout=8.0,
            keep_raw_series=True,
        )
        expected = RateSeries.from_packets(
            canonical.trace, 0.5, duration=workload.duration
        )
        np.testing.assert_array_equal(
            result.raw_series.values, expected.values
        )

    def test_write_trace_round_trip(self, workload, canonical, tmp_path):
        path = tmp_path / "streamed.rptr"
        engine = SynthesisEngine(chunk=2500, workers=2)
        written = engine.write_trace(
            path, SEED, **workload._synthesis_kwargs()
        )
        assert written == len(canonical.trace)
        loaded = TraceReader(path).read()
        np.testing.assert_array_equal(
            loaded.packets, canonical.trace.packets
        )
        assert loaded.duration == canonical.trace.duration


class TestArrivalFamilies:
    """Cellable arrivals stream per cell; MMPP pre-samples — all invariant."""

    def _workload(self, arrivals):
        w = medium_utilization_link(duration=DURATION)
        w.arrivals = arrivals
        return w

    @pytest.mark.parametrize("make", [
        lambda rate: DiurnalArrivals(rate, relative_amplitude=0.6, period=DURATION),
        lambda rate: SessionArrivals(rate / 4.0, flows_per_session=4.0, think_time=1.0),
        lambda rate: MMPPArrivals([rate * 0.5, rate * 2.0], [3.0, 3.0]),
    ])
    def test_stream_invariance(self, make):
        base_rate = medium_utilization_link(duration=DURATION).arrival_rate
        w = self._workload(make(base_rate))
        materialised = w.synthesize(seed=3)
        assert materialised.trace.is_sorted()
        for chunk, workers in ((1500, 1), (700, 3)):
            packets, _ = drain(
                w.synthesize_chunks(seed=3, chunk=chunk, workers=workers)
            )
            np.testing.assert_array_equal(
                packets, materialised.trace.packets
            )

    def test_session_flows_respect_horizon(self):
        rate = 80.0
        arr = SessionArrivals(rate / 4.0, flows_per_session=4.0, think_time=5.0)
        rng = np.random.default_rng(0)
        times = arr.cell_times(10.0, 12.0, 15.0, rng)
        assert np.all(times >= 10.0)
        assert np.all(times < 15.0)  # spill past t1=12 allowed, horizon not

    def test_mmpp_cell_times_raises(self):
        arr = MMPPArrivals([10.0, 40.0], [2.0, 2.0])
        assert not arr.cellable
        with pytest.raises(ParameterError, match="per arrival cell"):
            arr.cell_times(0.0, 1.0, 10.0, np.random.default_rng(0))

    def test_poisson_cell_rate(self):
        """Per-cell sampling preserves the process intensity."""
        arr = PoissonArrivals(200.0)
        rng = np.random.default_rng(1)
        counts = [
            arr.cell_times(k * 1.0, (k + 1) * 1.0, 64.0, rng).size
            for k in range(64)
        ]
        assert np.mean(counts) == pytest.approx(200.0, rel=0.1)


class TestZeroFlows:
    def test_empty_cells_are_legal(self):
        """A rate low enough for empty cells still synthesizes fine."""
        syn = synthesize_link_trace(
            arrivals=PoissonArrivals(0.5),
            size_dist=BoundedPareto(1.2, 2e3, 2e6),
            duration=60.0,
            link_capacity=1e7,
            seed=2,
        )
        assert syn.n_flows > 0
        assert syn.trace.is_sorted()

    def test_whole_workload_zero_flows_raises(self):
        with pytest.raises(ParameterError, match="zero flows"):
            synthesize_link_trace(
                arrivals=PoissonArrivals(1e-6),
                size_dist=BoundedPareto(1.2, 2e3, 2e6),
                duration=0.001,
                link_capacity=1e7,
                seed=0,
            )

    def test_streamed_zero_flows_raises_and_cleans_file(self, tmp_path):
        path = tmp_path / "empty.rptr"
        engine = SynthesisEngine(chunk=1000)
        with pytest.raises(ParameterError, match="zero flows"):
            engine.write_trace(
                path,
                0,
                arrivals=PoissonArrivals(1e-6),
                size_dist=BoundedPareto(1.2, 2e3, 2e6),
                duration=0.001,
                link_capacity=1e7,
            )
        assert not path.exists()


class TestGroundTruthAndScale:
    def test_ground_truth_composition(self, workload, canonical):
        from repro.flows import PROTO_TCP, PROTO_UDP

        protos = set(np.unique(canonical.flow_protocols))
        assert protos <= {PROTO_TCP, PROTO_UDP}
        # warm-up flows genuinely precede the capture
        assert canonical.flow_start_times.min() < 0.0
        assert canonical.flow_start_times.max() < DURATION

    def test_full_rate_table_i_row_streams_end_to_end(self):
        """scale=1.0 synthesize → measure without materialising the trace.

        A short interval keeps the test fast; the arrival *rate* is the
        paper's full OC-12 figure, so per-chunk flow populations are
        full-scale.
        """
        w = table_i_workload(2, scale=1.0, duration=8.0)
        stream = w.synthesize_chunks(seed=1, chunk=20_000)
        result = MeasurementEngine(chunk=20_000).measure_chunks(
            stream, duration=w.duration, delta=0.2, timeout=8.0
        )
        assert result.packet_count > 100_000
        assert len(result.flows) > 5000
        # utilisation lands near the Table I target despite streaming
        # (short intervals under-collect heavy-tail byte mass, hence the
        # generous band; the 120 s preset test pins 15%)
        assert result.mean_rate_bps == pytest.approx(
            w.target_mean_rate_bps, rel=0.45
        )


class TestConfig:
    def test_rejects_bad_chunk(self):
        with pytest.raises(ParameterError):
            SynthesisConfig(chunk=0)
        with pytest.raises(ParameterError):
            SynthesisConfig(chunk=2.5)

    def test_rejects_bad_workers_and_cell(self):
        with pytest.raises(ParameterError):
            SynthesisConfig(workers=0)
        with pytest.raises(ParameterError):
            SynthesisConfig(cell=0.0)

    def test_engine_overrides(self):
        engine = SynthesisEngine(SynthesisConfig(chunk=10), workers=3)
        assert engine.config.chunk == 10
        assert engine.config.workers == 3
        assert engine.config.cell == DEFAULT_SYNTHESIS_CELL


class TestReferencePath:
    """The frozen legacy synthesizer stays available and faithful."""

    def test_reference_statistically_equivalent(self, workload, canonical):
        ref = reference_synthesize_link_trace(
            seed=SEED, **workload._synthesis_kwargs()
        )
        assert ref.trace.is_sorted()
        # same laws, different draws: equal in distribution, not bitwise
        assert not np.array_equal(ref.trace.packets, canonical.trace.packets)
        assert ref.trace.mean_rate_bps == pytest.approx(
            canonical.trace.mean_rate_bps, rel=0.35
        )
        assert ref.n_flows == pytest.approx(canonical.n_flows, rel=0.2)

    def test_reference_zero_flows_raises(self):
        with pytest.raises(ParameterError, match="zero flows"):
            reference_synthesize_link_trace(
                arrivals=PoissonArrivals(1e-6),
                size_dist=BoundedPareto(1.2, 2e3, 2e6),
                duration=0.001,
                link_capacity=1e7,
                seed=0,
            )
