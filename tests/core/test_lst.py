"""Tests for repro.core.lst: Theorem 1, cumulants, distribution, tails."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EmpiricalEnsemble,
    PoissonShotNoiseModel,
    RectangularShot,
    TriangularShot,
)
from repro.core.lst import (
    characteristic_function,
    chernoff_tail_bound,
    cumulant,
    cumulants,
    excess_kurtosis,
    laplace_transform,
    log_laplace_transform,
    rate_pdf,
    skewness,
)
from repro.exceptions import ParameterError

LAM = 60.0


@pytest.fixture(scope="module")
def ens():
    gen = np.random.default_rng(9)
    sizes = gen.uniform(5e3, 5e4, 3000)
    durations = gen.uniform(0.5, 3.0, 3000)
    return EmpiricalEnsemble(sizes, durations)


class TestCumulants:
    def test_first_cumulant_is_mean(self, ens):
        assert cumulant(1, LAM, ens, TriangularShot()) == pytest.approx(
            LAM * ens.mean_size
        )

    def test_second_cumulant_is_variance(self, ens):
        model = PoissonShotNoiseModel(LAM, ens, TriangularShot())
        assert cumulant(2, LAM, ens, TriangularShot()) == pytest.approx(
            model.variance
        )

    def test_cumulants_vector(self, ens):
        ks = cumulants(4, LAM, ens, RectangularShot())
        assert ks.shape == (4,)
        assert np.all(ks > 0)
        with pytest.raises(ParameterError):
            cumulants(0, LAM, ens, RectangularShot())

    def test_rectangular_cumulants_closed_form(self, ens):
        # integral X^k = (S/D)^k * D = S^k / D^(k-1)
        for k in (1, 2, 3, 4):
            expected = LAM * ens.expect(lambda s, d: s**k / d ** (k - 1))
            assert cumulant(k, LAM, ens, RectangularShot()) == pytest.approx(
                expected, rel=1e-9
            )

    def test_shape_measures_scale_with_lambda(self, ens):
        shot = TriangularShot()
        assert skewness(4 * LAM, ens, shot) == pytest.approx(
            skewness(LAM, ens, shot) / 2.0, rel=1e-9
        )
        assert excess_kurtosis(4 * LAM, ens, shot) == pytest.approx(
            excess_kurtosis(LAM, ens, shot) / 4.0, rel=1e-9
        )


class TestLaplaceTransform:
    def test_unity_at_zero(self, ens):
        assert laplace_transform(0.0, LAM, ens, TriangularShot()) == pytest.approx(1.0)

    def test_derivative_gives_mean(self, ens):
        mean = LAM * ens.mean_size
        eps = 1e-4 / mean
        log_lst = log_laplace_transform(
            eps, LAM, ens, TriangularShot(), max_flows=None
        )
        assert -log_lst / eps == pytest.approx(mean, rel=1e-3)

    def test_second_derivative_gives_second_moment(self, ens):
        model = PoissonShotNoiseModel(LAM, ens, RectangularShot())
        mean, var = model.mean, model.variance
        h = 1e-3 / mean
        def f(s):
            return log_laplace_transform(
                s, LAM, ens, RectangularShot(), max_flows=None
            )
        second = (f(2 * h) - 2 * f(h) + f(0.0)) / h**2
        assert second == pytest.approx(var, rel=1e-2)

    def test_monotone_decreasing(self, ens):
        scale = 1.0 / (LAM * ens.mean_size)
        vals = [
            laplace_transform(s * scale, LAM, ens, TriangularShot())
            for s in (0.0, 1.0, 3.0)
        ]
        assert vals[0] > vals[1] > vals[2] > 0.0

    def test_negative_s_rejected(self, ens):
        with pytest.raises(ParameterError):
            log_laplace_transform(-1.0, LAM, ens, TriangularShot())


class TestCharacteristicFunction:
    def test_unit_modulus_at_zero(self, ens):
        phi = characteristic_function(0.0, LAM, ens, TriangularShot())
        assert phi[0] == pytest.approx(1.0 + 0j)

    def test_modulus_bounded(self, ens):
        sigma = PoissonShotNoiseModel(LAM, ens, TriangularShot()).std
        omegas = np.linspace(0.0, 5.0 / sigma, 9)
        phi = characteristic_function(omegas, LAM, ens, TriangularShot())
        assert np.all(np.abs(phi) <= 1.0 + 1e-12)

    def test_decays_like_gaussian(self, ens):
        model = PoissonShotNoiseModel(LAM, ens, TriangularShot())
        omega = 2.0 / model.std
        phi = characteristic_function(omega, LAM, ens, TriangularShot())
        gaussian = np.exp(-0.5 * (omega * model.std) ** 2)
        assert abs(phi[0]) == pytest.approx(gaussian, rel=0.2)


class TestRatePdf:
    def test_integrates_to_one_with_correct_moments(self, ens):
        model = PoissonShotNoiseModel(LAM, ens, TriangularShot())
        x, pdf = rate_pdf(
            LAM, ens, TriangularShot(), n_omega=256, max_flows=1500
        )
        mass = np.trapezoid(pdf, x)
        mean = np.trapezoid(x * pdf, x)
        var = np.trapezoid((x - mean) ** 2 * pdf, x)
        assert mass == pytest.approx(1.0, abs=0.02)
        assert mean == pytest.approx(model.mean, rel=0.03)
        assert var == pytest.approx(model.variance, rel=0.15)

    def test_close_to_gaussian_at_high_aggregation(self, ens):
        model = PoissonShotNoiseModel(LAM, ens, TriangularShot())
        x, pdf = rate_pdf(
            LAM, ens, TriangularShot(), n_omega=256, max_flows=1500
        )
        gaussian = model.gaussian().pdf(x)
        # total variation distance should be small (section V-E)
        tv = 0.5 * np.trapezoid(np.abs(pdf - gaussian), x)
        assert tv < 0.1


class TestChernoffBound:
    def test_vacuous_below_mean(self, ens):
        model = PoissonShotNoiseModel(LAM, ens, TriangularShot())
        assert chernoff_tail_bound(
            model.mean * 0.5, LAM, ens, TriangularShot(), max_flows=500
        ) == pytest.approx(1.0)

    def test_decreasing_in_level(self, ens):
        model = PoissonShotNoiseModel(LAM, ens, TriangularShot())
        levels = model.mean + np.array([2.0, 4.0, 6.0]) * model.std
        bounds = [
            chernoff_tail_bound(lv, LAM, ens, TriangularShot(), max_flows=500)
            for lv in levels
        ]
        assert bounds[0] > bounds[1] > bounds[2]

    def test_valid_upper_bound_vs_gaussian(self, ens):
        # at moderate levels the Chernoff bound must lie above the true
        # (approximately Gaussian) tail, i.e. it is a bound, not an estimate
        model = PoissonShotNoiseModel(LAM, ens, TriangularShot())
        level = model.mean + 3.0 * model.std
        bound = chernoff_tail_bound(level, LAM, ens, TriangularShot(), max_flows=500)
        assert bound <= 1.0
        assert bound > 0.0


class TestVectorizedCharacteristicFunction:
    """The chunked omega broadcast equals the per-omega loop."""

    def test_matches_reference_loop(self, ens):
        from repro.core.lst import (
            characteristic_function,
            reference_characteristic_function,
        )

        k2 = cumulant(2, LAM, ens, TriangularShot())
        omegas = np.linspace(0.0, 8.0 / np.sqrt(k2), 61)
        vec = characteristic_function(omegas, LAM, ens, TriangularShot())
        loop = reference_characteristic_function(omegas, LAM, ens, TriangularShot())
        np.testing.assert_allclose(vec, loop, rtol=1e-12)

    def test_matches_across_block_boundaries(self, ens):
        from repro.core import lst as lst_mod
        from repro.core.lst import (
            characteristic_function,
            reference_characteristic_function,
        )

        rates_elems = min(len(ens.sizes), 20_000) * 48
        block = max(1, lst_mod._OMEGA_BLOCK_ELEMENTS // rates_elems)
        k2 = cumulant(2, LAM, ens, TriangularShot())
        omegas = np.linspace(0.0, 4.0 / np.sqrt(k2), block + 2)
        vec = characteristic_function(omegas, LAM, ens, TriangularShot())
        loop = reference_characteristic_function(omegas, LAM, ens, TriangularShot())
        np.testing.assert_allclose(vec, loop, rtol=1e-12)
