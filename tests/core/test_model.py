"""Tests for repro.core.model: Corollaries 1-2, Theorem 3, superposition."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GenericShot,
    ParabolicShot,
    PoissonShotNoiseModel,
    PowerShot,
    RectangularShot,
    SuperposedModel,
    ThreeParameterModel,
    TriangularShot,
    variance_shape_factor,
)
from repro.exceptions import ModelError, ParameterError


@pytest.fixture()
def model(ensemble):
    return PoissonShotNoiseModel(80.0, ensemble, TriangularShot())


class TestFirstTwoMoments:
    def test_corollary1_mean(self, ensemble):
        model = PoissonShotNoiseModel(80.0, ensemble)
        assert model.mean == pytest.approx(80.0 * ensemble.mean_size)

    def test_corollary2_power_shots(self, ensemble):
        for b in (0.0, 1.0, 2.0, 3.5):
            model = PoissonShotNoiseModel(80.0, ensemble, PowerShot(b))
            expected = (
                variance_shape_factor(b)
                * 80.0
                * ensemble.mean_square_size_over_duration
            )
            assert model.variance == pytest.approx(expected, rel=1e-9)

    def test_mean_independent_of_shot(self, ensemble):
        m0 = PoissonShotNoiseModel(80.0, ensemble, RectangularShot())
        m2 = PoissonShotNoiseModel(80.0, ensemble, ParabolicShot())
        assert m0.mean == pytest.approx(m2.mean)

    def test_cov_consistency(self, model):
        assert model.coefficient_of_variation == pytest.approx(
            model.std / model.mean
        )

    def test_from_flows(self, flow_population):
        sizes, durations = flow_population
        model = PoissonShotNoiseModel.from_flows(sizes, durations, 50.0)
        assert model.arrival_rate == pytest.approx(len(sizes) / 50.0)
        assert model.mean == pytest.approx(model.arrival_rate * np.mean(sizes))

    def test_rejects_nonpositive_rate(self, ensemble):
        with pytest.raises(ParameterError):
            PoissonShotNoiseModel(0.0, ensemble)


class TestTheorem3:
    def test_rectangular_attains_bound(self, ensemble):
        model = PoissonShotNoiseModel(80.0, ensemble, RectangularShot())
        assert model.variance == pytest.approx(model.variance_lower_bound)

    @pytest.mark.parametrize("b", [0.5, 1.0, 2.0, 5.0])
    def test_power_shots_above_bound(self, ensemble, b):
        model = PoissonShotNoiseModel(80.0, ensemble, PowerShot(b))
        assert model.variance >= model.variance_lower_bound

    @given(st.integers(min_value=0, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_generic_shots_above_bound(self, ensemble, profile_index):
        profiles = [
            lambda v: np.exp(1.5 * v),
            lambda v: 1.0 + 0.9 * np.sin(2 * np.pi * v),
            lambda v: np.sqrt(v + 1e-9),
            lambda v: (1.0 - v) ** 2 + 0.01,
        ]
        shot = GenericShot(profiles[profile_index])
        model = PoissonShotNoiseModel(80.0, ensemble, shot)
        assert model.variance >= model.variance_lower_bound * (1 - 1e-6)


class TestHigherOrder:
    def test_cumulant_2_is_variance(self, model):
        assert model.cumulant(2) == pytest.approx(model.variance, rel=1e-9)

    def test_skewness_positive(self, model):
        # shot noise of non-negative shots is right-skewed
        assert model.skewness > 0

    def test_skewness_shrinks_with_aggregation(self, model):
        # Poisson cumulants scale linearly in lambda: skew ~ 1/sqrt(lambda)
        big = model.scaled_arrivals(4.0)
        assert big.skewness == pytest.approx(model.skewness / 2.0, rel=1e-9)

    def test_laplace_transform_at_zero(self, model):
        assert model.laplace_transform(0.0) == pytest.approx(1.0)

    def test_laplace_transform_decreasing(self, model):
        scale = 1.0 / model.mean
        values = [model.laplace_transform(s * scale) for s in (0.0, 0.5, 1.0)]
        assert values[0] > values[1] > values[2]


class TestDerivedViews:
    def test_gaussian_matches_moments(self, model):
        g = model.gaussian()
        assert g.mean == pytest.approx(model.mean)
        assert g.std == pytest.approx(model.std)

    def test_required_capacity_above_mean(self, model):
        assert model.required_capacity(0.01) > model.mean

    def test_active_flows_load(self, model, ensemble):
        mg = model.active_flows()
        assert mg.load == pytest.approx(80.0 * ensemble.mean_duration)

    def test_statistics_roundtrip(self, model, ensemble):
        stats = model.statistics()
        assert stats.arrival_rate == model.arrival_rate
        assert stats.mean_size == pytest.approx(ensemble.mean_size)
        assert stats.flow_count == len(ensemble)

    def test_with_shot_keeps_traffic(self, model):
        other = model.with_shot(ParabolicShot())
        assert other.mean == pytest.approx(model.mean)
        assert other.variance > model.variance

    def test_fit_power_roundtrip(self, model):
        fit = model.fit_power(model.variance)
        assert fit.power == pytest.approx(1.0, abs=1e-6)


class TestThreeParameterModel:
    def test_matches_full_model(self, model):
        reduced = ThreeParameterModel(
            model.statistics(), shape_factor=variance_shape_factor(1.0)
        )
        assert reduced.mean == pytest.approx(model.mean)
        assert reduced.variance == pytest.approx(model.variance, rel=1e-9)
        assert reduced.coefficient_of_variation == pytest.approx(
            model.coefficient_of_variation, rel=1e-9
        )

    def test_scaled_arrivals(self, model):
        reduced = ThreeParameterModel(model.statistics(), 1.8)
        scaled = reduced.scaled_arrivals(9.0)
        assert scaled.mean == pytest.approx(9.0 * reduced.mean)
        assert scaled.std == pytest.approx(3.0 * reduced.std)

    def test_rejects_bad_shape_factor(self, model):
        with pytest.raises(ParameterError):
            ThreeParameterModel(model.statistics(), 0.0)


class TestSuperposition:
    def test_moments_add(self, ensemble):
        a = PoissonShotNoiseModel(40.0, ensemble, TriangularShot())
        b = PoissonShotNoiseModel(60.0, ensemble, RectangularShot())
        total = a.superpose(b)
        assert total.mean == pytest.approx(a.mean + b.mean)
        assert total.variance == pytest.approx(a.variance + b.variance)
        assert total.cumulant(3) == pytest.approx(a.cumulant(3) + b.cumulant(3))

    def test_equivalent_to_single_class_when_same_shot(self, ensemble):
        # superposing two half-rate copies == one full-rate model
        half = PoissonShotNoiseModel(40.0, ensemble, TriangularShot())
        full = PoissonShotNoiseModel(80.0, ensemble, TriangularShot())
        total = SuperposedModel([half, half])
        assert total.mean == pytest.approx(full.mean)
        assert total.variance == pytest.approx(full.variance)

    def test_autocovariance_adds(self, ensemble):
        a = PoissonShotNoiseModel(40.0, ensemble, TriangularShot())
        b = PoissonShotNoiseModel(60.0, ensemble, ParabolicShot())
        total = a.superpose(b)
        lags = np.array([0.0, 0.1])
        np.testing.assert_allclose(
            total.autocovariance(lags),
            a.autocovariance(lags) + b.autocovariance(lags),
            rtol=1e-9,
        )

    def test_autocorrelation_normalised(self, ensemble):
        a = PoissonShotNoiseModel(40.0, ensemble, TriangularShot())
        total = SuperposedModel([a, a])
        assert total.autocorrelation([0.0])[0] == pytest.approx(1.0)

    def test_empty_superposition_rejected(self):
        with pytest.raises(ModelError):
            SuperposedModel([])
