"""Tests for repro.core.shots: the flow rate functions of section V-C/D."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.shots import (
    GenericShot,
    ParabolicShot,
    PowerShot,
    RectangularShot,
    TriangularShot,
    variance_shape_factor,
)
from repro.exceptions import ParameterError

POWERS = [0.0, 0.5, 1.0, 2.0, 3.7]


class TestVarianceShapeFactor:
    def test_paper_anchor_values(self):
        assert variance_shape_factor(0.0) == pytest.approx(1.0)
        assert variance_shape_factor(1.0) == pytest.approx(4.0 / 3.0)
        assert variance_shape_factor(2.0) == pytest.approx(9.0 / 5.0)

    def test_increasing_in_b(self):
        values = [variance_shape_factor(b) for b in np.linspace(0, 8, 33)]
        assert np.all(np.diff(values) > 0)

    def test_rejects_negative_power(self):
        with pytest.raises(ParameterError):
            variance_shape_factor(-0.5)

    @given(st.floats(min_value=0.0, max_value=50.0))
    def test_theorem3_lower_bound(self, b):
        # every power shot has variance factor >= 1 (Theorem 3)
        assert variance_shape_factor(b) >= 1.0 - 1e-12


class TestPowerShotProfile:
    @pytest.mark.parametrize("b", POWERS)
    def test_profile_integrates_to_one(self, b):
        v = np.linspace(0.0, 1.0, 20001)
        integral = np.trapezoid(PowerShot(b).profile(v), v)
        assert integral == pytest.approx(1.0, rel=1e-4)

    @pytest.mark.parametrize("b", POWERS)
    def test_profile_moment_matches_quadrature(self, b):
        shot = PowerShot(b)
        v = np.linspace(0.0, 1.0, 200001)
        for k in (1, 2, 3, 4):
            numeric = np.trapezoid(shot.profile(v) ** k, v)
            assert shot.profile_moment(k) == pytest.approx(numeric, rel=1e-3)

    def test_profile_moment_one_is_one(self):
        for b in POWERS:
            assert PowerShot(b).profile_moment(1) == pytest.approx(1.0)

    def test_moment_order_validated(self):
        with pytest.raises(ParameterError):
            PowerShot(1.0).profile_moment(0)

    def test_negative_power_rejected(self):
        with pytest.raises(ParameterError):
            PowerShot(-0.1)

    def test_equality_and_hash(self):
        assert PowerShot(1.0) == PowerShot(1.0)
        assert PowerShot(1.0) != PowerShot(2.0)
        assert hash(PowerShot(2.0)) == hash(PowerShot(2.0))

    def test_named_subclasses(self):
        assert RectangularShot().power == 0.0
        assert TriangularShot().power == 1.0
        assert ParabolicShot().power == 2.0


class TestCumulativeAndQuantile:
    @pytest.mark.parametrize("b", POWERS)
    def test_cumulative_endpoints(self, b):
        shot = PowerShot(b)
        assert shot.cumulative(0.0, 1e4, 2.0) == pytest.approx(0.0)
        assert shot.cumulative(2.0, 1e4, 2.0) == pytest.approx(1e4)

    @pytest.mark.parametrize("b", POWERS)
    def test_roundtrip(self, b):
        shot = PowerShot(b)
        size, dur = 5e4, 3.0
        u = np.linspace(0.01, dur, 57)
        vol = shot.cumulative(u, size, dur)
        back = shot.inverse_cumulative(vol, size, dur)
        np.testing.assert_allclose(back, u, rtol=1e-9)

    @given(
        b=st.floats(min_value=0.0, max_value=8.0),
        p=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=80)
    def test_quantile_in_unit_interval(self, b, p):
        q = PowerShot(b).profile_quantile(p)
        assert 0.0 <= q <= 1.0

    def test_quantile_monotone(self):
        shot = PowerShot(2.5)
        p = np.linspace(0.0, 1.0, 101)
        q = shot.profile_quantile(p)
        assert np.all(np.diff(q) >= 0)


class TestRate:
    def test_zero_outside_support(self):
        shot = TriangularShot()
        assert shot.rate(-0.1, 1e4, 2.0) == 0.0
        assert shot.rate(2.1, 1e4, 2.0) == 0.0

    def test_rate_integrates_to_size(self):
        shot = ParabolicShot()
        u = np.linspace(0.0, 2.0, 40001)
        total = np.trapezoid(shot.rate(u, 1e4, 2.0), u)
        assert total == pytest.approx(1e4, rel=1e-4)

    def test_rectangular_height(self):
        shot = RectangularShot()
        assert shot.rate(1.0, 1e4, 2.0) == pytest.approx(5e3)

    def test_triangular_peak_is_twice_mean_rate(self):
        shot = TriangularShot()
        assert shot.rate(2.0, 1e4, 2.0) == pytest.approx(2 * 1e4 / 2.0)

    def test_broadcasts_over_flows(self):
        shot = TriangularShot()
        sizes = np.array([1e4, 2e4, 3e4])
        durs = np.array([1.0, 2.0, 3.0])
        rates = shot.rate(0.5, sizes, durs)
        assert rates.shape == (3,)
        assert np.all(rates > 0)


class TestMomentIntegral:
    @pytest.mark.parametrize("b", POWERS)
    def test_first_moment_is_size(self, b):
        shot = PowerShot(b)
        sizes = np.array([1e3, 5e4])
        durs = np.array([0.5, 7.0])
        np.testing.assert_allclose(shot.moment_integral(1, sizes, durs), sizes)

    @pytest.mark.parametrize("b", [0.0, 1.0, 2.0])
    def test_second_moment_closed_form(self, b):
        shot = PowerShot(b)
        s, d = 2e4, 4.0
        expected = variance_shape_factor(b) * s**2 / d
        assert shot.moment_integral(2, s, d) == pytest.approx(expected)

    def test_order_validation(self):
        with pytest.raises(ParameterError):
            TriangularShot().moment_integral(0, 1e4, 1.0)


class TestAutocovarianceIntegral:
    def test_zero_lag_equals_second_moment(self):
        for b in POWERS:
            shot = PowerShot(b)
            s, d = 3e4, 2.0
            assert shot.autocovariance_integral(0.0, s, d) == pytest.approx(
                shot.moment_integral(2, s, d), rel=1e-9
            )

    def test_zero_beyond_duration(self):
        shot = TriangularShot()
        assert shot.autocovariance_integral(2.5, 1e4, 2.0) == 0.0
        assert shot.autocovariance_integral(2.0, 1e4, 2.0) == 0.0

    def test_even_in_lag(self):
        shot = ParabolicShot()
        a = shot.autocovariance_integral(0.7, 1e4, 2.0)
        b = shot.autocovariance_integral(-0.7, 1e4, 2.0)
        assert a == pytest.approx(b)

    def test_rectangular_closed_form(self):
        shot = RectangularShot()
        s, d, tau = 1e4, 2.0, 0.5
        expected = (s / d) ** 2 * (d - tau)
        assert shot.autocovariance_integral(tau, s, d) == pytest.approx(expected)

    def test_triangular_closed_form_vs_quadrature(self):
        s, d = 1e4, 2.0
        shot = TriangularShot()
        for tau in (0.1, 0.9, 1.7):
            u = np.linspace(0.0, d - tau, 100001)
            numeric = np.trapezoid(
                shot.rate(u, s, d) * shot.rate(u + tau, s, d), u
            )
            assert shot.autocovariance_integral(tau, s, d) == pytest.approx(
                numeric, rel=1e-5
            )

    def test_noninteger_power_vs_quadrature(self):
        s, d = 1e4, 2.0
        shot = PowerShot(1.5)
        for tau in (0.2, 1.0):
            u = np.linspace(0.0, d - tau, 100001)
            numeric = np.trapezoid(
                shot.rate(u, s, d) * shot.rate(u + tau, s, d), u
            )
            assert shot.autocovariance_integral(tau, s, d) == pytest.approx(
                numeric, rel=1e-4
            )

    def test_decreasing_in_lag(self):
        shot = ParabolicShot()
        taus = np.linspace(0.0, 1.9, 20)
        vals = shot.autocovariance_integral(taus, 1e4, 2.0)
        assert np.all(np.diff(vals) <= 1e-9)

    def test_broadcast_lags_and_flows(self):
        shot = TriangularShot()
        taus = np.array([[0.0], [0.5], [1.0]])
        sizes = np.array([1e4, 2e4])
        durs = np.array([1.5, 3.0])
        out = shot.autocovariance_integral(taus, sizes, durs)
        assert out.shape == (3, 2)


class TestGenericShot:
    def test_matches_power_shot(self):
        b = 2.0
        generic = GenericShot(lambda v: (b + 1) * v**b, name="pow2")
        power = PowerShot(b)
        assert generic.profile_moment(2) == pytest.approx(
            power.profile_moment(2), rel=1e-3
        )
        s, d = 1e4, 2.0
        for tau in (0.0, 0.5, 1.5):
            assert generic.autocovariance_integral(
                tau, s, d
            ) == pytest.approx(power.autocovariance_integral(tau, s, d), rel=5e-3)

    def test_normalises_arbitrary_scale(self):
        shot = GenericShot(lambda v: 42.0 * np.ones_like(v))
        v = np.linspace(0, 1, 1001)
        assert np.trapezoid(shot.profile(v), v) == pytest.approx(1.0, rel=1e-6)

    def test_cumulative_quantile_roundtrip(self):
        shot = GenericShot(lambda v: 1.0 + np.sin(np.pi * v))
        p = np.linspace(0.01, 0.99, 33)
        v = shot.profile_quantile(p)
        back = shot.profile_cumulative(v)
        np.testing.assert_allclose(back, p, atol=2e-3)

    def test_rejects_negative_profile(self):
        with pytest.raises(ParameterError):
            GenericShot(lambda v: v - 0.5)

    def test_rejects_zero_profile(self):
        with pytest.raises(ParameterError):
            GenericShot(lambda v: np.zeros_like(v))

    def test_variance_factor_at_least_one(self):
        # Cauchy-Schwarz: m2 >= (m1)^2 = 1 for any profile (Theorem 3)
        for fn in (
            lambda v: np.exp(2 * v),
            lambda v: 1.0 + np.cos(3 * v),
            lambda v: np.sqrt(v + 1e-9),
        ):
            assert GenericShot(fn).variance_factor() >= 1.0 - 1e-6


@given(
    b=st.floats(min_value=0.0, max_value=6.0),
    size=st.floats(min_value=100.0, max_value=1e8),
    duration=st.floats(min_value=1e-3, max_value=1e4),
)
@settings(max_examples=60)
def test_property_moment_relations(b, size, duration):
    """Invariants: integral X = S; integral X^2 in [S^2/D, ...] (Thm 3)."""
    shot = PowerShot(b)
    first = float(shot.moment_integral(1, size, duration))
    second = float(shot.moment_integral(2, size, duration))
    assert first == pytest.approx(size, rel=1e-9)
    assert second >= size**2 / duration * (1 - 1e-9)
