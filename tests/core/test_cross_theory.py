"""Cross-theory consistency tests.

Each test ties two independent derivations of the same quantity together:
Theorem 2 vs Campbell spectra vs eq. (7), normal equations vs realised
errors on model-generated traffic, LST cumulants vs direct moments.
These are the strongest internal checks the reproduction has — if any
formula were transcribed wrong, two routes to the same number would
disagree.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EmpiricalEnsemble,
    PoissonShotNoiseModel,
    RectangularShot,
    TriangularShot,
    sinc_squared_filter,
)
from repro.generation import generate_rate_series
from repro.prediction import ModelBasedPredictor, prediction_error, theoretical_mse


@pytest.fixture(scope="module")
def small_model():
    gen = np.random.default_rng(4)
    sizes = gen.uniform(1e4, 8e4, 1500)
    durations = gen.uniform(1.0, 4.0, 1500)
    return PoissonShotNoiseModel(
        30.0, EmpiricalEnsemble(sizes, durations), TriangularShot()
    )


class TestSpectralConsistency:
    def test_filtered_spectrum_equals_eq7(self, small_model):
        """Integrating Psi(f) * sinc^2(f Delta) over f must equal the
        eq. (7) time-domain averaged variance (Wiener-Khintchine, §V-F)."""
        delta = 0.5
        freqs = np.linspace(-16.0, 16.0, 3201)
        psi = small_model.spectral_density(freqs, max_flows=300)
        frequency_domain = np.trapezoid(
            psi * sinc_squared_filter(freqs, delta), freqs
        )
        # eq. (7) on the same 300-flow subsample for apples-to-apples
        sub = small_model.ensemble.subsample(300, rng=0)
        sub_model = PoissonShotNoiseModel(30.0, sub, TriangularShot())
        time_domain = sub_model.averaged_variance(delta)
        assert frequency_domain == pytest.approx(time_domain, rel=0.25)

    def test_spectrum_integrates_to_theorem2_at_zero(self, small_model):
        freqs = np.linspace(-16.0, 16.0, 3201)
        sub = small_model.ensemble.subsample(300, rng=0)
        sub_model = PoissonShotNoiseModel(30.0, sub, TriangularShot())
        psi = sub_model.spectral_density(freqs, max_flows=None)
        assert np.trapezoid(psi, freqs) == pytest.approx(
            sub_model.variance, rel=0.1
        )


class TestPredictionConsistency:
    def test_theoretical_mse_matches_realised_on_generated_traffic(
        self, small_model
    ):
        """Normal-equation MSE (from Theorem 2's rho) vs the realised
        one-step error on traffic generated from the same model."""
        theta = 0.5
        predictor = ModelBasedPredictor(small_model, theta, order=3)
        series = generate_rate_series(
            small_model.arrival_rate,
            small_model.ensemble,
            small_model.shot,
            duration=2000.0,
            delta=theta,
            rng=8,
        )
        realised = prediction_error(predictor, series) * series.mean
        # predicted error uses the *sampled/averaged* process variance; the
        # generated series variance is the right normaliser
        predicted = np.sqrt(
            theoretical_mse(predictor.rho, predictor.coefficients,
                            variance=series.variance)
        )
        assert realised == pytest.approx(predicted, rel=0.2)

    def test_longer_flows_predict_better(self):
        """Stretch durations 4x (same sizes): more correlation at the same
        horizon, hence lower prediction error — the §VII-B horizon rule."""
        gen = np.random.default_rng(5)
        sizes = gen.uniform(1e4, 8e4, 1200)
        durations = gen.uniform(1.0, 3.0, 1200)
        theta = 1.0
        errors = {}
        for stretch in (1.0, 4.0):
            ens = EmpiricalEnsemble(sizes, durations * stretch)
            model = PoissonShotNoiseModel(30.0, ens, RectangularShot())
            predictor = ModelBasedPredictor(model, theta, order=2)
            series = generate_rate_series(
                30.0, ens, RectangularShot(), duration=1200.0, delta=theta,
                rng=9,
            )
            errors[stretch] = prediction_error(predictor, series)
        assert errors[4.0] < errors[1.0]


class TestCumulantConsistency:
    def test_generated_traffic_third_moment(self, small_model):
        """Skewness from Corollary 3 cumulants vs the sample skewness of a
        long generated path (tiny delta to avoid averaging bias)."""
        series = generate_rate_series(
            small_model.arrival_rate,
            small_model.ensemble,
            small_model.shot,
            duration=4000.0,
            delta=0.05,
            rng=10,
        )
        x = series.values
        sample_skew = float(
            np.mean((x - x.mean()) ** 3) / np.std(x) ** 3
        )
        assert sample_skew == pytest.approx(small_model.skewness, rel=0.35)
