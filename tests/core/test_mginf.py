"""Tests for repro.core.mginf: the M/G/infinity active-flow model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MGInfinityModel
from repro.exceptions import ParameterError


@pytest.fixture()
def durations():
    gen = np.random.default_rng(2)
    return gen.exponential(2.0, 4000)


class TestStationaryCount:
    def test_load(self):
        model = MGInfinityModel(10.0, mean_duration=3.0)
        assert model.load == pytest.approx(30.0)

    def test_poisson_marginal(self):
        model = MGInfinityModel(5.0, mean_duration=2.0)
        dist = model.count_distribution
        assert dist.mean() == pytest.approx(10.0)
        assert dist.var() == pytest.approx(10.0)

    def test_pmf_sums_to_one(self):
        model = MGInfinityModel(5.0, mean_duration=2.0)
        ks = np.arange(0, 200)
        assert model.pmf(ks).sum() == pytest.approx(1.0, rel=1e-9)

    def test_pgf_matches_pmf(self):
        model = MGInfinityModel(3.0, mean_duration=1.0)
        z = 0.7
        ks = np.arange(0, 100)
        direct = float(np.sum(model.pmf(ks) * z**ks))
        assert model.pgf(z) == pytest.approx(direct, rel=1e-9)

    def test_pgf_at_one(self):
        model = MGInfinityModel(3.0, mean_duration=1.0)
        assert model.pgf(1.0) == pytest.approx(1.0)

    def test_probability_at_least(self):
        model = MGInfinityModel(5.0, mean_duration=2.0)
        assert model.probability_at_least(0) == 1.0
        assert 0.0 < model.probability_at_least(10) < 1.0
        assert model.probability_at_least(10) == pytest.approx(
            1.0 - float(model.count_distribution.cdf(9)), rel=1e-9
        )

    def test_quantile_for_flow_table_sizing(self):
        model = MGInfinityModel(100.0, mean_duration=2.0)
        k = model.quantile(0.999)
        assert model.count_distribution.cdf(k) >= 0.999
        assert k >= model.load

    def test_duration_inference_from_samples(self, durations):
        model = MGInfinityModel(10.0, durations=durations)
        assert model.mean_duration == pytest.approx(durations.mean())

    def test_needs_some_duration_info(self):
        with pytest.raises(ParameterError):
            MGInfinityModel(10.0)


class TestSecondOrder:
    def test_autocovariance_at_zero_is_load(self, durations):
        model = MGInfinityModel(10.0, durations=durations)
        gamma0 = model.count_autocovariance([0.0])[0]
        assert gamma0 == pytest.approx(model.load, rel=1e-9)

    def test_autocovariance_decreasing(self, durations):
        model = MGInfinityModel(10.0, durations=durations)
        gamma = model.count_autocovariance(np.linspace(0, 8, 9))
        assert np.all(np.diff(gamma) <= 1e-9)

    def test_autocorrelation_normalised(self, durations):
        model = MGInfinityModel(10.0, durations=durations)
        rho = model.count_autocorrelation([1.0, 4.0])
        assert np.all(rho <= 1.0)
        assert rho[0] > rho[1]

    def test_exponential_durations_give_exponential_decay(self):
        # for exp(mean=m) durations: E[(D-t)+] = m * exp(-t/m)
        gen = np.random.default_rng(8)
        mean = 2.0
        durations = gen.exponential(mean, 200_000)
        model = MGInfinityModel(1.0, durations=durations)
        rho = model.count_autocorrelation([1.0, 2.0])
        np.testing.assert_allclose(
            rho, np.exp(-np.array([1.0, 2.0]) / mean), rtol=0.03
        )

    def test_requires_samples(self):
        model = MGInfinityModel(10.0, mean_duration=1.0)
        with pytest.raises(ParameterError):
            model.count_autocovariance([0.0])


class TestLengthBias:
    def test_inspection_paradox(self, durations):
        model = MGInfinityModel(10.0, durations=durations)
        assert model.length_biased_mean_duration >= model.mean_duration

    def test_length_biased_formula(self, durations):
        model = MGInfinityModel(10.0, durations=durations)
        expected = np.mean(durations**2) / np.mean(durations)
        assert model.length_biased_mean_duration == pytest.approx(expected)

    def test_length_biased_sample_mean(self, durations):
        model = MGInfinityModel(10.0, durations=durations)
        sample = model.length_biased_sample(50_000, rng=4)
        assert sample.mean() == pytest.approx(
            model.length_biased_mean_duration, rel=0.05
        )
