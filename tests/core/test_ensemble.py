"""Tests for repro.core.ensemble: expectations over (S, D)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ensemble import (
    EmpiricalEnsemble,
    MonteCarloEnsemble,
    SizeRateEnsemble,
)
from repro.exceptions import ParameterError
from repro.netsim.sizes import Constant, LogNormal


class TestEmpiricalEnsemble:
    def test_expect_is_sample_mean(self):
        ens = EmpiricalEnsemble([1.0, 2.0, 3.0], [1.0, 1.0, 1.0])
        assert ens.expect(lambda s, d: s) == pytest.approx(2.0)
        assert ens.expect(lambda s, d: s * s / d) == pytest.approx(14.0 / 3.0)

    def test_summary_properties(self):
        sizes = np.array([10.0, 20.0])
        durs = np.array([2.0, 5.0])
        ens = EmpiricalEnsemble(sizes, durs)
        assert ens.mean_size == pytest.approx(15.0)
        assert ens.mean_duration == pytest.approx(3.5)
        assert ens.mean_square_size_over_duration == pytest.approx(
            np.mean(sizes**2 / durs)
        )

    def test_moment_size_over_duration(self):
        ens = EmpiricalEnsemble([2.0, 4.0], [1.0, 2.0])
        expected = np.mean(np.array([2.0, 4.0]) ** 3 / np.array([1.0, 2.0]) ** 2)
        assert ens.moment_size_over_duration(3) == pytest.approx(expected)
        with pytest.raises(ParameterError):
            ens.moment_size_over_duration(0)

    def test_len(self):
        assert len(EmpiricalEnsemble([1, 2, 3], [1, 1, 1])) == 3

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ParameterError):
            EmpiricalEnsemble([1.0, 2.0], [1.0])

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ParameterError):
            EmpiricalEnsemble([1.0, 0.0], [1.0, 1.0])

    def test_rejects_zero_durations(self):
        # single-packet flows (duration 0) must have been discarded upstream
        with pytest.raises(ParameterError):
            EmpiricalEnsemble([1.0, 2.0], [1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            EmpiricalEnsemble([], [])

    def test_sample_bootstrap(self):
        ens = EmpiricalEnsemble([5.0, 6.0], [1.0, 2.0])
        s, d = ens.sample(100, rng=0)
        assert s.shape == d.shape == (100,)
        assert set(np.unique(s)) <= {5.0, 6.0}
        # pairing preserved: size 5 always with duration 1
        assert np.all(d[s == 5.0] == 1.0)

    def test_subsample_returns_ensemble(self):
        ens = EmpiricalEnsemble(np.arange(1.0, 101.0), np.ones(100))
        sub = ens.subsample(10, rng=1)
        assert isinstance(sub, EmpiricalEnsemble)
        assert len(sub) == 10


class TestMonteCarloEnsemble:
    @staticmethod
    def _sampler(n, rng):
        sizes = rng.uniform(1.0, 3.0, n)
        return sizes, sizes / 2.0

    def test_reference_is_deterministic(self):
        a = MonteCarloEnsemble(self._sampler, n_reference=1000, seed=5)
        b = MonteCarloEnsemble(self._sampler, n_reference=1000, seed=5)
        assert a.mean_size == b.mean_size

    def test_expectation_close_to_analytic(self):
        ens = MonteCarloEnsemble(self._sampler, n_reference=200_000, seed=1)
        assert ens.mean_size == pytest.approx(2.0, rel=0.01)
        assert ens.mean_duration == pytest.approx(1.0, rel=0.01)

    def test_sample_fresh_draws(self):
        ens = MonteCarloEnsemble(self._sampler, n_reference=100, seed=1)
        s, d = ens.sample(50, rng=2)
        assert s.shape == (50,)
        np.testing.assert_allclose(d, s / 2.0)

    def test_rejects_bad_reference_size(self):
        with pytest.raises(ParameterError):
            MonteCarloEnsemble(self._sampler, n_reference=0)


class TestSizeRateEnsemble:
    def test_analytic_parameters_exact(self):
        size_dist = LogNormal(median=1e4, sigma=0.8)
        rate_dist = LogNormal(median=2e4, sigma=0.3)
        ens = SizeRateEnsemble(size_dist, rate_dist, n_reference=1000, seed=0)
        assert ens.mean_size == pytest.approx(size_dist.mean())
        assert ens.mean_square_size_over_duration == pytest.approx(
            size_dist.mean() * rate_dist.mean()
        )

    def test_monte_carlo_agrees_with_analytic(self):
        ens = SizeRateEnsemble(
            LogNormal(1e4, 0.5), Constant(2e4), n_reference=300_000, seed=3
        )
        mc = ens.reference.mean_square_size_over_duration
        assert mc == pytest.approx(ens.mean_square_size_over_duration, rel=0.02)

    def test_duration_is_size_over_rate(self):
        ens = SizeRateEnsemble(Constant(1e4), Constant(5e3), n_reference=100)
        s, d = ens.sample(10, rng=0)
        np.testing.assert_allclose(d, s / 5e3)

    def test_heavy_tail_sizes_keep_parameter_finite(self):
        # even with a very heavy size tail, E[S^2/D] = E[S]E[r] is finite
        class HeavySize:
            def rvs(self, size=1, random_state=None):
                return random_state.pareto(1.2, size) * 1e3 + 1e3

            def mean(self):
                return 1e3 * 1.2 / 0.2 + 1e3  # pareto mean + shift... approx

        ens = SizeRateEnsemble(HeavySize(), Constant(1e4), n_reference=1000)
        assert np.isfinite(ens.mean_square_size_over_duration)
