"""Tests for repro.core.gaussian: the section V-E approximation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GaussianApproximation, normal_quantile
from repro.exceptions import ParameterError


@pytest.fixture()
def gauss():
    return GaussianApproximation(mean=1e6, std=1e5)


class TestNormalQuantile:
    def test_known_values(self):
        assert normal_quantile(0.05) == pytest.approx(1.6449, abs=1e-3)
        assert normal_quantile(0.01) == pytest.approx(2.3263, abs=1e-3)
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-12)

    def test_rejects_out_of_range(self):
        for bad in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(ParameterError):
                normal_quantile(bad)


class TestGaussianApproximation:
    def test_pdf_peaks_at_mean(self, gauss):
        x = np.array([gauss.mean - gauss.std, gauss.mean, gauss.mean + gauss.std])
        pdf = gauss.pdf(x)
        assert pdf[1] > pdf[0]
        assert pdf[1] > pdf[2]

    def test_cdf_half_at_mean(self, gauss):
        assert gauss.cdf(gauss.mean) == pytest.approx(0.5)

    def test_tail_probability_complements_cdf(self, gauss):
        level = gauss.mean + 2 * gauss.std
        assert gauss.tail_probability(level) == pytest.approx(
            1.0 - float(gauss.cdf(level))
        )

    def test_quantile_inverts_cdf(self, gauss):
        q = gauss.quantile(0.9)
        assert gauss.cdf(q) == pytest.approx(0.9)

    def test_required_capacity(self, gauss):
        cap = gauss.required_capacity(0.05)
        assert cap == pytest.approx(gauss.mean + 1.6449 * gauss.std, rel=1e-3)
        assert gauss.tail_probability(cap) == pytest.approx(0.05, rel=1e-3)

    def test_required_capacity_monotone_in_epsilon(self, gauss):
        assert gauss.required_capacity(0.001) > gauss.required_capacity(0.1)

    def test_seventy_percent_band(self, gauss):
        """The paper's rule: ~70% of time within one sigma of the mean."""
        lo, hi = gauss.symmetric_band(0.70)
        k = (hi - gauss.mean) / gauss.std
        assert k == pytest.approx(1.036, abs=1e-3)
        assert lo == pytest.approx(2 * gauss.mean - hi)

    def test_band_mass(self, gauss):
        lo, hi = gauss.symmetric_band(0.9)
        mass = float(gauss.cdf(hi) - gauss.cdf(lo))
        assert mass == pytest.approx(0.9, rel=1e-9)

    def test_standardize(self, gauss):
        z = gauss.standardize([gauss.mean, gauss.mean + 3 * gauss.std])
        np.testing.assert_allclose(z, [0.0, 3.0])

    def test_cov(self, gauss):
        assert gauss.coefficient_of_variation == pytest.approx(0.1)

    def test_rejects_nonpositive_std(self):
        with pytest.raises(ParameterError):
            GaussianApproximation(1e6, 0.0)
