"""Tests for the section VIII multi-class extension end to end.

Mice/elephants partitioning of measured flows + per-class shots +
superposition — the "different shot for each class" future work the paper
sketches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ParabolicShot,
    PoissonShotNoiseModel,
    RectangularShot,
    SuperposedModel,
)
from repro.exceptions import ParameterError


@pytest.fixture(scope="module")
def partitioned(five_tuple_flows):
    threshold = float(np.quantile(five_tuple_flows.sizes, 0.9))
    return five_tuple_flows.partition_by_size(threshold)


class TestPartition:
    def test_split_covers_everything(self, five_tuple_flows, partitioned):
        mice, elephants = partitioned
        assert len(mice) + len(elephants) == len(five_tuple_flows)
        assert mice.sizes.max() < elephants.sizes.min() + 1e-9

    def test_elephants_carry_disproportionate_bytes(self, partitioned):
        mice, elephants = partitioned
        byte_share = elephants.total_bytes / (
            mice.total_bytes + elephants.total_bytes
        )
        count_share = len(elephants) / (len(mice) + len(elephants))
        assert byte_share > 3 * count_share  # heavy-tailed sizes

    def test_bad_threshold_rejected(self, five_tuple_flows):
        with pytest.raises(ParameterError):
            five_tuple_flows.partition_by_size(1e12)
        with pytest.raises(ParameterError):
            five_tuple_flows.partition_by_size(-1.0)


class TestMultiClassModel:
    def test_superposition_reproduces_single_class_mean(
        self, five_tuple_flows, partitioned, trace
    ):
        """Per-class models with any shots must reproduce the aggregate
        mean (Corollary 1 is shape-free and additive)."""
        mice, elephants = partitioned
        single = PoissonShotNoiseModel.from_flows(
            five_tuple_flows.sizes, five_tuple_flows.durations, trace.duration
        )
        multi = SuperposedModel(
            [
                PoissonShotNoiseModel.from_flows(
                    mice.sizes, mice.durations, trace.duration,
                    ParabolicShot(),
                ),
                PoissonShotNoiseModel.from_flows(
                    elephants.sizes, elephants.durations, trace.duration,
                    RectangularShot(),
                ),
            ]
        )
        assert multi.mean == pytest.approx(single.mean, rel=1e-9)

    def test_per_class_shots_interpolate_variance(
        self, five_tuple_flows, partitioned, trace
    ):
        """Parabolic mice + rectangular elephants lies between the all-
        rectangular and all-parabolic single-class variances."""
        mice, elephants = partitioned
        make = PoissonShotNoiseModel.from_flows
        all_rect = make(
            five_tuple_flows.sizes, five_tuple_flows.durations,
            trace.duration, RectangularShot(),
        )
        all_para = all_rect.with_shot(ParabolicShot())
        multi = SuperposedModel(
            [
                make(mice.sizes, mice.durations, trace.duration, ParabolicShot()),
                make(elephants.sizes, elephants.durations, trace.duration,
                     RectangularShot()),
            ]
        )
        assert all_rect.variance < multi.variance < all_para.variance

    def test_gaussian_of_superposition(self, partitioned, trace):
        mice, elephants = partitioned
        multi = SuperposedModel(
            [
                PoissonShotNoiseModel.from_flows(
                    mice.sizes, mice.durations, trace.duration
                ),
                PoissonShotNoiseModel.from_flows(
                    elephants.sizes, elephants.durations, trace.duration
                ),
            ]
        )
        gauss = multi.gaussian()
        assert gauss.mean == pytest.approx(multi.mean)
        assert multi.required_capacity(0.01) > multi.mean
