"""Tests for the Edgeworth refinement of the section V-E approximation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EdgeworthApproximation,
    EmpiricalEnsemble,
    PoissonShotNoiseModel,
    TriangularShot,
)
from repro.exceptions import ParameterError


@pytest.fixture(scope="module")
def skewed_model():
    gen = np.random.default_rng(1)
    sizes = gen.pareto(2.5, 4000) * 2e4 + 5e3
    durations = gen.uniform(0.5, 2.0, 4000)
    # lambda chosen so skewness ~ 0.5: visible, yet inside the regime
    # where the (asymptotic) Edgeworth series is a valid refinement
    return PoissonShotNoiseModel(
        600.0, EmpiricalEnsemble(sizes, durations), TriangularShot()
    )


class TestConstruction:
    def test_from_cumulants(self):
        edge = EdgeworthApproximation.from_cumulants(10.0, 4.0, 2.0, 1.0)
        assert edge.mean == 10.0
        assert edge.std == 2.0
        assert edge.skewness == pytest.approx(2.0 / 8.0)
        assert edge.excess_kurtosis == pytest.approx(1.0 / 16.0)

    def test_model_builds_it(self, skewed_model):
        edge = skewed_model.edgeworth()
        assert edge.mean == pytest.approx(skewed_model.mean)
        assert edge.skewness == pytest.approx(skewed_model.skewness)
        assert edge.skewness > 0.1  # actually right-skewed

    def test_zero_corrections_reduce_to_gaussian(self):
        edge = EdgeworthApproximation(1e5, 1e4, 0.0, 0.0)
        gauss = edge.gaussian
        x = np.linspace(5e4, 1.5e5, 31)
        np.testing.assert_allclose(edge.pdf(x), gauss.pdf(x), rtol=1e-12)
        np.testing.assert_allclose(edge.cdf(x), gauss.cdf(x), rtol=1e-9)
        assert edge.required_capacity(0.01) == pytest.approx(
            gauss.required_capacity(0.01)
        )

    def test_validation(self):
        with pytest.raises(ParameterError):
            EdgeworthApproximation(1.0, 0.0)


class TestAccuracy:
    def test_matches_inverted_lst_better_than_gaussian(self, skewed_model):
        """Against the exact pdf (numerically inverted LST), the Edgeworth
        pdf should beat the plain Gaussian in total variation."""
        x, exact = skewed_model.rate_pdf(n_omega=384, max_flows=None)
        edge = skewed_model.edgeworth()
        gauss = skewed_model.gaussian()
        tv_edge = 0.5 * np.trapezoid(np.abs(edge.pdf(x) - exact), x)
        tv_gauss = 0.5 * np.trapezoid(np.abs(gauss.pdf(x) - exact), x)
        assert tv_edge < tv_gauss

    def test_upper_tail_heavier_than_gaussian(self, skewed_model):
        """Right-skew means more mass above mean + 2 sigma."""
        edge = skewed_model.edgeworth()
        gauss = skewed_model.gaussian()
        level = skewed_model.mean + 2.5 * skewed_model.std
        assert edge.tail_probability(level) > gauss.tail_probability(level)

    def test_cornish_fisher_capacity_above_gaussian(self, skewed_model):
        edge = skewed_model.edgeworth()
        gauss = skewed_model.gaussian()
        assert edge.required_capacity(0.01) > gauss.required_capacity(0.01)

    def test_correction_vanishes_with_aggregation(self, skewed_model):
        """Skewness ~ 1/sqrt(lambda): at high lambda the Edgeworth capacity
        converges to the Gaussian one (the paper's CLT argument)."""
        small_gap = None
        for factor in (1.0, 100.0):
            model = skewed_model.scaled_arrivals(factor)
            edge, gauss = model.edgeworth(), model.gaussian()
            gap = (
                edge.required_capacity(0.01) - gauss.required_capacity(0.01)
            ) / gauss.std
            if factor == 1.0:
                small_gap = gap
            else:
                assert gap < small_gap / 5.0

    def test_pdf_nonnegative_and_normalised(self, skewed_model):
        edge = skewed_model.edgeworth()
        x = np.linspace(
            max(skewed_model.mean - 6 * skewed_model.std, 0.0),
            skewed_model.mean + 8 * skewed_model.std,
            4001,
        )
        pdf = edge.pdf(x)
        assert np.all(pdf >= 0.0)
        assert np.trapezoid(pdf, x) == pytest.approx(1.0, abs=0.05)
