"""Tests for repro.core.covariance: Theorem 2 and Campbell's theorem."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EmpiricalEnsemble,
    PoissonShotNoiseModel,
    RectangularShot,
    TriangularShot,
    autocorrelation,
    autocovariance,
    correlation_horizon,
    spectral_density,
)
from repro.exceptions import ParameterError


@pytest.fixture(scope="module")
def small_ensemble():
    gen = np.random.default_rng(3)
    sizes = gen.uniform(1e3, 1e5, 2000)
    durations = gen.uniform(0.5, 4.0, 2000)
    return EmpiricalEnsemble(sizes, durations)


class TestAutocovariance:
    def test_zero_lag_is_corollary2(self, small_ensemble):
        model = PoissonShotNoiseModel(50.0, small_ensemble, TriangularShot())
        gamma0 = autocovariance(50.0, small_ensemble, TriangularShot(), [0.0])
        assert gamma0[0] == pytest.approx(model.variance, rel=1e-9)

    def test_even_function(self, small_ensemble):
        shot = TriangularShot()
        pos = autocovariance(50.0, small_ensemble, shot, [0.5])
        neg = autocovariance(50.0, small_ensemble, shot, [-0.5])
        assert pos[0] == pytest.approx(neg[0])

    def test_vanishes_beyond_max_duration(self, small_ensemble):
        shot = RectangularShot()
        far = autocovariance(50.0, small_ensemble, shot, [10.0])
        assert far[0] == 0.0

    def test_rectangular_closed_form(self):
        # deterministic flows: Gamma(tau) = lambda * S^2/D^2 * (D - tau)+
        ens = EmpiricalEnsemble([1e4], [2.0])
        lam, s, d = 30.0, 1e4, 2.0
        for tau in (0.0, 0.5, 1.5, 2.5):
            gamma = autocovariance(lam, ens, RectangularShot(), [tau])[0]
            expected = lam * (s / d) ** 2 * max(d - tau, 0.0)
            assert gamma == pytest.approx(expected, rel=1e-12)

    def test_monotone_decreasing_for_rectangles(self, small_ensemble):
        taus = np.linspace(0.0, 4.0, 17)
        gamma = autocovariance(50.0, small_ensemble, RectangularShot(), taus)
        assert np.all(np.diff(gamma) <= 1e-9)

    def test_scales_linearly_with_lambda(self, small_ensemble):
        shot = TriangularShot()
        g1 = autocovariance(10.0, small_ensemble, shot, [0.3])[0]
        g2 = autocovariance(20.0, small_ensemble, shot, [0.3])[0]
        assert g2 == pytest.approx(2.0 * g1)


class TestAutocorrelation:
    def test_unit_at_zero(self, small_ensemble):
        rho = autocorrelation(50.0, small_ensemble, TriangularShot(), [0.0])
        assert rho[0] == pytest.approx(1.0)

    def test_bounded_by_one(self, small_ensemble):
        taus = np.linspace(0.0, 3.0, 13)
        rho = autocorrelation(50.0, small_ensemble, TriangularShot(), taus)
        assert np.all(rho <= 1.0 + 1e-12)
        assert np.all(rho >= 0.0)

    def test_independent_of_lambda(self, small_ensemble):
        taus = [0.2, 0.8]
        a = autocorrelation(10.0, small_ensemble, TriangularShot(), taus)
        b = autocorrelation(99.0, small_ensemble, TriangularShot(), taus)
        np.testing.assert_allclose(a, b, rtol=1e-9)


class TestSpectralDensity:
    def test_integrates_to_variance(self, small_ensemble):
        """Wiener-Khintchine: integral of Psi over f equals Gamma(0)."""
        model = PoissonShotNoiseModel(50.0, small_ensemble, RectangularShot())
        freqs = np.linspace(-12.0, 12.0, 1201)
        psi = spectral_density(
            50.0, small_ensemble, RectangularShot(), freqs, max_flows=400
        )
        variance = np.trapezoid(psi, freqs)
        # the subsampled flow set differs from the full ensemble: loose tol
        assert variance == pytest.approx(model.variance, rel=0.15)

    def test_symmetric_and_positive(self, small_ensemble):
        freqs = np.array([-2.0, -1.0, 1.0, 2.0])
        psi = spectral_density(
            50.0, small_ensemble, TriangularShot(), freqs, max_flows=200
        )
        assert np.all(psi > 0)
        assert psi[0] == pytest.approx(psi[3], rel=1e-9)
        assert psi[1] == pytest.approx(psi[2], rel=1e-9)

    def test_dc_value_dominates_tail(self, small_ensemble):
        psi = spectral_density(
            50.0, small_ensemble, RectangularShot(), [0.0, 50.0], max_flows=200
        )
        assert psi[0] > 10 * psi[1]


class TestCorrelationHorizon:
    def test_horizon_positive_and_below_max(self, small_ensemble):
        horizon = correlation_horizon(
            50.0, small_ensemble, RectangularShot(), threshold=0.5
        )
        assert 0.0 < horizon <= 4.0 * small_ensemble.mean_duration

    def test_higher_threshold_shorter_horizon(self, small_ensemble):
        shot = RectangularShot()
        strict = correlation_horizon(50.0, small_ensemble, shot, threshold=0.8)
        loose = correlation_horizon(50.0, small_ensemble, shot, threshold=0.2)
        assert strict <= loose

    def test_threshold_validated(self, small_ensemble):
        with pytest.raises(ParameterError):
            correlation_horizon(50.0, small_ensemble, RectangularShot(), 1.5)


class TestVectorizedEquivalence:
    """The chunked lags x flows broadcast equals the per-lag loop."""

    def test_matches_reference_loop(self, small_ensemble):
        from repro.core.covariance import reference_autocovariance

        lags = np.linspace(-3.0, 5.0, 137)
        for shot in (RectangularShot(), TriangularShot()):
            vec = autocovariance(25.0, small_ensemble, shot, lags)
            loop = reference_autocovariance(25.0, small_ensemble, shot, lags)
            np.testing.assert_allclose(vec, loop, rtol=1e-12)

    def test_matches_across_block_boundaries(self, small_ensemble):
        """Lag counts straddling the internal block size stay exact."""
        from repro.core import covariance as cov_mod
        from repro.core.covariance import reference_autocovariance

        block_lags = max(1, cov_mod._LAG_BLOCK_ELEMENTS // 2000)
        lags = np.linspace(0.0, 4.0, block_lags + 3)
        vec = autocovariance(10.0, small_ensemble, TriangularShot(), lags)
        loop = reference_autocovariance(
            10.0, small_ensemble, TriangularShot(), lags
        )
        np.testing.assert_allclose(vec, loop, rtol=1e-12)

    def test_scalar_and_2d_shapes(self, small_ensemble):
        scalar = autocovariance(10.0, small_ensemble, TriangularShot(), 0.5)
        assert scalar.shape == (1,)
        grid = autocovariance(
            10.0, small_ensemble, TriangularShot(),
            np.linspace(0, 2, 12).reshape(3, 4),
        )
        assert grid.shape == (3, 4)
