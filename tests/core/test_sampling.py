"""Tests for repro.core.sampling: eq. (7), the averaging-window effect."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EmpiricalEnsemble,
    PoissonShotNoiseModel,
    RectangularShot,
    TriangularShot,
    averaged_variance,
    averaged_variance_from_autocovariance,
    averaging_correction_factor,
    sinc_squared_filter,
)
from repro.exceptions import ParameterError


@pytest.fixture(scope="module")
def ens():
    gen = np.random.default_rng(21)
    sizes = gen.uniform(1e3, 1e5, 1500)
    durations = gen.uniform(1.0, 5.0, 1500)
    return EmpiricalEnsemble(sizes, durations)


class TestAveragedVariance:
    def test_tiny_delta_recovers_variance(self, ens):
        model = PoissonShotNoiseModel(40.0, ens, TriangularShot())
        smoothed = averaged_variance(40.0, ens, TriangularShot(), 1e-4)
        assert smoothed == pytest.approx(model.variance, rel=1e-3)

    def test_always_below_instantaneous(self, ens):
        model = PoissonShotNoiseModel(40.0, ens, TriangularShot())
        for delta in (0.1, 0.5, 2.0):
            assert averaged_variance(40.0, ens, TriangularShot(), delta) < (
                model.variance
            )

    def test_monotone_decreasing_in_delta(self, ens):
        deltas = [0.05, 0.2, 1.0, 3.0]
        values = [
            averaged_variance(40.0, ens, RectangularShot(), d) for d in deltas
        ]
        assert np.all(np.diff(values) < 0)

    def test_closed_form_deterministic_rectangles(self):
        """Single deterministic rectangular flow: analytic eq. (7).

        Gamma(tau) = lam r^2 (D - tau) with r = S/D; for Delta <= D,
        sigma_bar^2 = lam r^2 (D - Delta/3).
        """
        lam, s, d = 25.0, 1e4, 2.0
        ens = EmpiricalEnsemble([s], [d])
        r = s / d
        for delta in (0.2, 1.0, 2.0):
            expected = lam * r**2 * (d - delta / 3.0)
            got = averaged_variance(lam, ens, RectangularShot(), delta)
            assert got == pytest.approx(expected, rel=1e-6)

    def test_from_autocovariance_callable(self):
        # triangular autocovariance Gamma(tau) = (1 - tau)+ over Delta = 1:
        # 2 * integral_0^1 (1 - tau)^2 dtau = 2/3
        def gamma(taus):
            return np.maximum(1.0 - taus, 0.0)
        got = averaged_variance_from_autocovariance(gamma, 1.0)
        assert got == pytest.approx(2.0 / 3.0, rel=1e-9)

    def test_rejects_bad_delta(self, ens):
        with pytest.raises(ParameterError):
            averaged_variance(40.0, ens, TriangularShot(), 0.0)

    def test_curve_matches_pointwise(self, ens):
        from repro.core import averaged_variance_curve

        deltas = [0.1, 1.0, 4.0]
        curve = averaged_variance_curve(
            40.0, ens, TriangularShot(), deltas, quad_order=64
        )
        assert curve.shape == (3,)
        for d, value in zip(deltas, curve):
            assert value == pytest.approx(
                averaged_variance(40.0, ens, TriangularShot(), d, quad_order=64),
                rel=1e-9,
            )
        assert np.all(np.diff(curve) < 0)


class TestCorrectionFactor:
    def test_in_unit_interval(self, ens):
        for delta in (0.01, 0.5, 5.0):
            factor = averaging_correction_factor(
                40.0, ens, TriangularShot(), delta
            )
            assert 0.0 < factor <= 1.0

    def test_close_to_one_when_delta_small_vs_durations(self, ens):
        factor = averaging_correction_factor(40.0, ens, TriangularShot(), 0.01)
        assert factor > 0.99


class TestSincFilter:
    def test_unity_at_dc(self):
        assert sinc_squared_filter(0.0, 0.2) == pytest.approx(1.0)

    def test_zero_at_inverse_delta(self):
        assert sinc_squared_filter(5.0, 0.2) == pytest.approx(0.0, abs=1e-12)

    def test_bounded(self):
        f = np.linspace(-20, 20, 401)
        h = sinc_squared_filter(f, 0.2)
        assert np.all((h >= 0) & (h <= 1.0 + 1e-12))
