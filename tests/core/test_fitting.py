"""Tests for repro.core.fitting: the section V-D b estimator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EmpiricalEnsemble,
    FlowStatistics,
    PoissonShotNoiseModel,
    PowerShot,
    fit_power_averaged,
    fit_power_from_cov,
    fit_power_from_variance,
    solve_power,
    variance_shape_factor,
)
from repro.exceptions import FittingError


@pytest.fixture(scope="module")
def stats():
    return FlowStatistics(
        arrival_rate=100.0,
        mean_size=1e4,
        mean_square_size_over_duration=5e7,
        mean_duration=1.5,
        flow_count=5000,
    )


class TestSolvePower:
    def test_paper_anchors(self):
        assert solve_power(1.0) == pytest.approx(0.0, abs=1e-12)
        assert solve_power(4.0 / 3.0) == pytest.approx(1.0, rel=1e-9)
        assert solve_power(9.0 / 5.0) == pytest.approx(2.0, rel=1e-9)

    @given(st.floats(min_value=0.0, max_value=12.0))
    @settings(max_examples=100)
    def test_roundtrip(self, b):
        assert solve_power(variance_shape_factor(b)) == pytest.approx(
            b, abs=1e-7
        )

    def test_rejects_kappa_below_one(self):
        with pytest.raises(FittingError):
            solve_power(0.9)


class TestFitFromVariance:
    def test_recovers_power(self, stats):
        for b in (0.0, 1.0, 2.0, 3.3):
            variance = stats.variance(variance_shape_factor(b))
            fit = fit_power_from_variance(variance, stats)
            assert fit.power == pytest.approx(b, abs=1e-6)
            assert not fit.clipped

    def test_kappa_reported(self, stats):
        fit = fit_power_from_variance(stats.variance(1.8), stats)
        assert fit.kappa == pytest.approx(1.8, rel=1e-9)

    def test_clipping_below_bound(self, stats):
        fit = fit_power_from_variance(stats.variance(1.0) * 0.8, stats)
        assert fit.clipped
        assert fit.power == 0.0
        assert fit.kappa == pytest.approx(0.8, rel=1e-9)

    def test_strict_mode_raises(self, stats):
        with pytest.raises(FittingError):
            fit_power_from_variance(stats.variance(1.0) * 0.8, stats, clip=False)

    def test_fit_result_shot_and_factor(self, stats):
        fit = fit_power_from_variance(stats.variance(9.0 / 5.0), stats)
        assert isinstance(fit.shot, PowerShot)
        assert fit.shot.power == pytest.approx(2.0, abs=1e-6)
        assert fit.shape_factor == pytest.approx(1.8, rel=1e-6)


class TestFitFromCov:
    def test_equivalent_to_variance_fit(self, stats):
        variance = stats.variance(4.0 / 3.0)
        cov = np.sqrt(variance) / stats.mean_rate
        via_var = fit_power_from_variance(variance, stats)
        via_cov = fit_power_from_cov(cov, stats)
        assert via_cov.power == pytest.approx(via_var.power, rel=1e-9)


class TestFitAveraged:
    @pytest.fixture(scope="class")
    def ens(self):
        gen = np.random.default_rng(17)
        sizes = gen.uniform(1e4, 1e5, 1200)
        durations = gen.uniform(1.0, 4.0, 1200)
        return EmpiricalEnsemble(sizes, durations)

    def test_corrects_averaging_bias(self, ens):
        """When the measured variance is the Delta-averaged one, the naive
        fit underestimates b; the eq.(7)-based fit recovers it."""
        lam, b_true, delta = 50.0, 2.0, 0.5
        model = PoissonShotNoiseModel(lam, ens, PowerShot(b_true))
        measured = model.averaged_variance(delta)
        corrected = fit_power_averaged(measured, lam, ens, delta)
        assert corrected.power == pytest.approx(b_true, abs=0.05)
        naive = model.fit_power(measured)
        assert naive.power < corrected.power

    def test_clips_at_zero(self, ens):
        lam, delta = 50.0, 0.5
        model = PoissonShotNoiseModel(lam, ens, PowerShot(0.0))
        too_small = 0.5 * model.averaged_variance(delta)
        fit = fit_power_averaged(too_small, lam, ens, delta)
        assert fit.clipped
        assert fit.power == 0.0

    def test_clips_at_bmax(self, ens):
        lam, delta = 50.0, 0.1
        model = PoissonShotNoiseModel(lam, ens, PowerShot(0.0))
        huge = 100.0 * model.variance
        fit = fit_power_averaged(huge, lam, ens, delta, b_max=4.0)
        assert fit.clipped
        assert fit.power == 4.0
