"""Tests for repro.core.parameters: the three-parameter summary."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import FlowStatistics
from repro.exceptions import ParameterError


def make_stats(**overrides):
    defaults = dict(
        arrival_rate=100.0,
        mean_size=1e4,
        mean_square_size_over_duration=5e7,
        mean_duration=2.0,
        flow_count=1000,
    )
    defaults.update(overrides)
    return FlowStatistics(**defaults)


class TestConstruction:
    def test_from_flows(self):
        sizes = np.array([1e3, 2e3, 3e3])
        durs = np.array([1.0, 2.0, 3.0])
        stats = FlowStatistics.from_flows(sizes, durs, interval_length=10.0)
        assert stats.arrival_rate == pytest.approx(0.3)
        assert stats.mean_size == pytest.approx(2e3)
        assert stats.mean_square_size_over_duration == pytest.approx(
            np.mean(sizes**2 / durs)
        )
        assert stats.mean_duration == pytest.approx(2.0)
        assert stats.flow_count == 3

    @pytest.mark.parametrize(
        "field,value",
        [
            ("arrival_rate", 0.0),
            ("arrival_rate", -1.0),
            ("mean_size", 0.0),
            ("mean_square_size_over_duration", -5.0),
        ],
    )
    def test_rejects_nonpositive(self, field, value):
        with pytest.raises(ParameterError):
            make_stats(**{field: value})

    def test_rejects_negative_flow_count(self):
        with pytest.raises(ParameterError):
            make_stats(flow_count=-1)


class TestMoments:
    def test_mean_rate_corollary1(self):
        stats = make_stats(arrival_rate=50.0, mean_size=2e4)
        assert stats.mean_rate == pytest.approx(1e6)

    def test_variance_shape_factor(self):
        stats = make_stats()
        assert stats.variance(1.0) == pytest.approx(100.0 * 5e7)
        assert stats.variance(1.8) == pytest.approx(1.8 * 100.0 * 5e7)

    def test_std_and_cov(self):
        stats = make_stats()
        assert stats.std(1.0) == pytest.approx(np.sqrt(stats.variance(1.0)))
        assert stats.coefficient_of_variation(1.0) == pytest.approx(
            stats.std(1.0) / stats.mean_rate
        )

    def test_offered_load(self):
        stats = make_stats(arrival_rate=10.0, mean_duration=3.0)
        assert stats.offered_load == pytest.approx(30.0)

    def test_offered_load_without_duration_raises(self):
        """The NaN default must not silently poison the M/G/inf load."""
        stats = make_stats(mean_duration=float("nan"))
        assert not stats.has_mean_duration
        with pytest.raises(ParameterError, match="mean_duration"):
            stats.offered_load

    def test_has_mean_duration(self):
        assert make_stats().has_mean_duration

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf")])
    def test_rejects_invalid_mean_duration(self, bad):
        """NaN means "unknown"; anything else must be a valid E[D]."""
        with pytest.raises(ParameterError):
            make_stats(mean_duration=bad)

    def test_variance_rejects_bad_factor(self):
        with pytest.raises(ParameterError):
            make_stats().variance(0.0)


class TestScaling:
    def test_scaled_arrivals_mean_linear(self):
        stats = make_stats()
        scaled = stats.scaled_arrivals(4.0)
        assert scaled.mean_rate == pytest.approx(4.0 * stats.mean_rate)

    def test_scaled_arrivals_std_sqrt(self):
        stats = make_stats()
        scaled = stats.scaled_arrivals(4.0)
        assert scaled.std(1.8) == pytest.approx(2.0 * stats.std(1.8))

    @given(st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=50)
    def test_smoothing_law(self, factor):
        """CoV scales exactly as 1/sqrt(lambda) — the section VII-A law."""
        stats = make_stats()
        scaled = stats.scaled_arrivals(factor)
        assert scaled.coefficient_of_variation() == pytest.approx(
            stats.coefficient_of_variation() / np.sqrt(factor), rel=1e-9
        )

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            make_stats().scaled_arrivals(0.0)
