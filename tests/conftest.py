"""Shared fixtures: a small synthetic trace and flow populations.

Session-scoped so the (relatively) expensive link synthesis runs once per
pytest invocation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EmpiricalEnsemble
from repro.flows import export_five_tuple_flows, export_prefix_flows
from repro.netsim import medium_utilization_link


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def flow_population():
    """A reference heavy-tail-ish (sizes, durations) sample."""
    gen = np.random.default_rng(7)
    n = 5000
    sizes = gen.pareto(2.2, n) * 8000.0 + 3000.0
    rates = gen.lognormal(np.log(2e4), 0.5, n)
    durations = sizes / rates
    return sizes, durations


@pytest.fixture(scope="session")
def ensemble(flow_population):
    sizes, durations = flow_population
    return EmpiricalEnsemble(sizes, durations)


@pytest.fixture(scope="session")
def synthesis():
    """One medium-utilisation synthetic link interval (60 s, seeded)."""
    return medium_utilization_link(duration=60.0).synthesize(seed=11)


@pytest.fixture(scope="session")
def trace(synthesis):
    return synthesis.trace


@pytest.fixture(scope="session")
def five_tuple_flows(trace):
    return export_five_tuple_flows(trace, timeout=8.0, keep_packet_map=True)


@pytest.fixture(scope="session")
def prefix_flows(trace):
    return export_prefix_flows(trace, timeout=8.0)
