"""Tests for repro.baselines: the related-work comparison models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    ConstantRateFlowModel,
    OnOffAggregate,
    OnOffSource,
    PoissonPacketModel,
    estimate_hurst,
    variance_time_curve,
)
from repro.core import EmpiricalEnsemble, PoissonShotNoiseModel, RectangularShot
from repro.exceptions import ParameterError
from repro.stats import RateSeries


class TestConstantRateFlowModel:
    def test_moments(self):
        model = ConstantRateFlowModel(10.0, mean_duration=2.0, flow_rate=1e4)
        assert model.mean_active_flows == pytest.approx(20.0)
        assert model.mean == pytest.approx(2e5)
        assert model.variance == pytest.approx(20.0 * 1e8)
        assert model.coefficient_of_variation == pytest.approx(
            1.0 / np.sqrt(20.0)
        )

    def test_from_flows_calibration(self, flow_population):
        sizes, durations = flow_population
        model = ConstantRateFlowModel.from_flows(sizes, durations, 100.0)
        assert model.flow_rate == pytest.approx(
            sizes.mean() / durations.mean()
        )

    def test_coincides_with_shot_noise_when_rates_equal(self):
        """The paper: [3] is our model's special case of identical rates.

        Flows with D = S/r for a common r make the two models agree
        exactly (rectangular shots, all heights r).
        """
        rng = np.random.default_rng(0)
        r = 2e4
        sizes = rng.uniform(1e3, 1e5, 5000)
        durations = sizes / r
        lam = 50.0
        ours = PoissonShotNoiseModel(
            lam, EmpiricalEnsemble(sizes, durations), RectangularShot()
        )
        theirs = ConstantRateFlowModel(lam, durations.mean(), r)
        assert ours.mean == pytest.approx(theirs.mean, rel=1e-9)
        assert ours.variance == pytest.approx(theirs.variance, rel=1e-9)

    def test_underestimates_variance_with_heterogeneous_rates(
        self, flow_population
    ):
        """With heterogeneous flow rates the equal-rate collapse
        mis-estimates the variance our model captures."""
        sizes, durations = flow_population
        lam = 50.0
        ours = PoissonShotNoiseModel(
            lam, EmpiricalEnsemble(sizes, durations), RectangularShot()
        )
        theirs = ConstantRateFlowModel.from_flows(sizes, durations, 100.0)
        theirs = ConstantRateFlowModel(
            lam, durations.mean(), sizes.mean() / durations.mean()
        )
        assert theirs.variance != pytest.approx(ours.variance, rel=0.1)


class TestOnOff:
    def test_source_moments(self):
        src = OnOffSource(peak_rate=1e4, mean_on=1.0, mean_off=3.0)
        assert src.duty_cycle == pytest.approx(0.25)
        assert src.mean_rate == pytest.approx(2500.0)

    def test_aggregate_moments(self):
        src = OnOffSource(peak_rate=1e4, mean_on=1.0, mean_off=1.0)
        agg = OnOffAggregate(src, 100)
        assert agg.mean == pytest.approx(100 * 5e3)
        assert agg.variance == pytest.approx(100 * 1e8 * 0.25)

    def test_generated_mean(self):
        src = OnOffSource(peak_rate=1e4, mean_on=0.5, mean_off=0.5)
        agg = OnOffAggregate(src, 30)
        series = agg.generate(60.0, 0.25, rng=0)
        assert series.mean == pytest.approx(agg.mean, rel=0.15)

    def test_heavy_tail_gives_higher_hurst_than_shot_noise(self, ensemble):
        """[19]'s point: heavy-tailed ON/OFF aggregates are LRD; our
        Poisson shot-noise with light flow durations is not."""
        src = OnOffSource(
            peak_rate=1e4, mean_on=0.5, mean_off=0.5, alpha_on=1.2,
            alpha_off=1.2,
        )
        lrd = OnOffAggregate(src, 20).generate(240.0, 0.1, rng=1)
        hurst_lrd = estimate_hurst(lrd)
        from repro.generation import generate_rate_series
        from repro.core import RectangularShot

        srd = generate_rate_series(
            100.0, ensemble, RectangularShot(), duration=240.0, delta=0.1,
            rng=2,
        )
        hurst_srd = estimate_hurst(srd)
        assert hurst_lrd > hurst_srd

    def test_variance_time_curve_decreasing(self):
        rng = np.random.default_rng(3)
        series = RateSeries(rng.normal(100, 10, 4096), 0.1)
        ms, ratios = variance_time_curve(series)
        assert np.all(np.diff(ratios) < 0.1)  # roughly decreasing
        assert ratios[0] == pytest.approx(1.0, abs=0.05)

    def test_iid_series_hurst_half(self):
        rng = np.random.default_rng(4)
        series = RateSeries(rng.normal(100, 10, 8192), 0.1)
        assert estimate_hurst(series) == pytest.approx(0.5, abs=0.1)

    def test_validation(self):
        with pytest.raises(ParameterError):
            OnOffSource(1e4, 1.0, 1.0, alpha_on=0.9)
        with pytest.raises(ParameterError):
            OnOffAggregate(OnOffSource(1e4, 1.0, 1.0), 0)


class TestPoissonPacketModel:
    def test_variance_formula(self):
        model = PoissonPacketModel(1000.0, 500.0, 4e5)
        delta = 0.2
        assert model.variance(delta) == pytest.approx(1000.0 * 4e5 / 0.2)
        assert model.mean == pytest.approx(5e5)

    def test_from_trace(self, trace):
        model = PoissonPacketModel.from_trace(trace)
        assert model.packet_rate == pytest.approx(len(trace) / trace.duration)
        assert model.mean == pytest.approx(
            trace.total_bytes / trace.duration, rel=1e-6
        )

    def test_underestimates_real_burstiness(self, trace):
        """The related-work motivation: memoryless packet models miss
        flow-induced correlation and under-estimate variance.

        The margin is seed-sensitive (on a 60 s capture the measured
        variance is dominated by a handful of elephant flows; the
        model/measured ratio ranges ~0.45-0.75 across seeds), so the
        assertion pins systematic underestimation with headroom rather
        than a factor of two.
        """
        model = PoissonPacketModel.from_trace(trace)
        measured = RateSeries.from_packets(trace, 0.2)
        assert model.variance(0.2) < 0.8 * measured.variance

    def test_generated_series_matches_own_model(self):
        model = PoissonPacketModel(2000.0, 500.0, 3.5e5)
        series = model.generate(100.0, 0.1, rng=5)
        assert series.mean == pytest.approx(model.mean, rel=0.05)
        assert series.variance == pytest.approx(model.variance(0.1), rel=0.2)

    def test_no_correlation_across_bins(self):
        model = PoissonPacketModel(2000.0, 500.0, 3.5e5)
        series = model.generate(200.0, 0.1, rng=6)
        rho = series.autocorrelation(3)
        assert np.all(np.abs(rho) < 0.1)
        np.testing.assert_array_equal(model.autocorrelation(4), np.zeros(4))
