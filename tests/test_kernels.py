"""Equivalence gates for the compiled hot kernels.

Each kernel has a NumPy implementation (always available) and an
``@njit`` twin used when numba is installed.  The tests pin the NumPy
path against independent pure-Python oracles written here, and — where
numba is present — pin the compiled path bit-for-bit against NumPy, so
either dispatch target satisfies the engines' bitwise contracts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.shots import PowerShot
from repro.kernels import (
    HAVE_NUMBA,
    _expand_rounds_njit,
    _expand_rounds_numpy,
    _powershot_scatter_njit,
    _powershot_scatter_numpy,
    ewma,
    expand_rounds,
    powershot_scatter,
)
from repro.stats.estimators import EwmaEstimator

needs_numba = pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")


# -- TCP round expansion ------------------------------------------------


def _round_fixture(seed=0, n_flows=40):
    """Synthetic per-round send records shaped like the TCP simulator's."""
    rng = np.random.default_rng(seed)
    total_packets = rng.integers(1, 30, n_flows)
    sizes = (total_packets - 1) * 1460 + rng.integers(1, 1461, n_flows)
    flows, starts, counts, lengths, sent_before = [], [], [], [], []
    clock = np.zeros(n_flows)
    sent = np.zeros(n_flows, dtype=np.int64)
    window = 2
    remaining = total_packets.copy()
    while np.any(remaining > 0):
        idx = np.flatnonzero(remaining > 0)
        send = np.minimum(window, remaining[idx])
        length = rng.lognormal(-3.0, 0.2, idx.size)
        flows.append(idx)
        starts.append(clock[idx].copy())
        counts.append(send)
        lengths.append(length)
        sent_before.append(sent[idx].copy())
        remaining[idx] -= send
        sent[idx] += send
        clock[idx] += length
        window = min(window * 2, 64)
    return (
        np.concatenate(flows),
        np.concatenate(starts),
        np.concatenate(counts),
        np.concatenate(lengths),
        np.concatenate(sent_before),
        total_packets.astype(np.int64),
        (sizes - (total_packets - 1) * 1460).astype(np.float64),
    )


def _expand_rounds_oracle(args, mss=1460.0, header=40.0):
    """Straight per-packet Python loop; the semantics being compiled."""
    (flow, start, count, length, sent_before, total, last_payload) = args
    out_flow, out_offset, out_wire = [], [], []
    for r in range(flow.size):
        pace = length[r] / count[r]
        for w in range(count[r]):
            f = flow[r]
            out_flow.append(f)
            out_offset.append(w * pace + start[r])
            payload = (
                last_payload[f]
                if sent_before[r] + w == total[f] - 1
                else mss
            )
            out_wire.append(np.uint16(min(payload + header, 65535.0)))
    return (
        np.array(out_flow, dtype=np.int64),
        np.array(out_offset),
        np.array(out_wire, dtype=np.uint16),
    )


def test_expand_rounds_matches_oracle():
    args = _round_fixture()
    flow, offset, wire = _expand_rounds_numpy(*args, 1460.0, 40.0)
    o_flow, o_offset, o_wire = _expand_rounds_oracle(args)
    assert np.array_equal(flow, o_flow)
    assert offset.tobytes() == o_offset.tobytes()  # bitwise
    assert np.array_equal(wire, o_wire)


def test_expand_rounds_last_packet_payload():
    # one flow, 3 packets of which the last carries a short payload
    args = (
        np.array([0, 0]), np.array([0.0, 0.1]), np.array([2, 1]),
        np.array([0.1, 0.1]), np.array([0, 2]), np.array([3]),
        np.array([100.0]),
    )
    _, _, wire = _expand_rounds_numpy(*args, 1460.0, 40.0)
    assert wire.tolist() == [1500, 1500, 140]


@needs_numba
def test_expand_rounds_njit_bitwise_equal():
    args = _round_fixture(seed=3)
    a = _expand_rounds_numpy(*args, 1460.0, 40.0)
    b = _expand_rounds_njit(*args, 1460.0, 40.0)
    for x, y in zip(a, b):
        assert x.dtype == y.dtype
        assert x.tobytes() == y.tobytes()


def test_expand_rounds_dispatcher_matches_numpy():
    args = _round_fixture(seed=9)
    a = _expand_rounds_numpy(*args, 1460.0, 40.0)
    b = expand_rounds(*args, 1460.0, 40.0)
    for x, y in zip(a, b):
        assert x.tobytes() == y.tobytes()


# -- power-shot scatter -------------------------------------------------


def _scatter_fixture(seed=0, n=200, delta=0.5, b0=3, b1=40):
    rng = np.random.default_rng(seed)
    starts = rng.uniform(-2.0, 18.0, n)
    sizes = rng.pareto(2.0, n) * 5e3 + 1e3
    durations = rng.lognormal(0.0, 1.0, n)
    lo = np.floor(starts / delta).astype(np.int64)
    hi = np.ceil((starts + durations) / delta).astype(np.int64)
    a = np.clip(np.maximum(lo, b0), b0, b1)
    b = np.clip(np.minimum(hi, b1), b0, b1)
    return starts, sizes, durations, a, b, delta


def _scatter_oracle(starts, sizes, durations, a, b, power, delta, b0, b1):
    """Per-flow loop through the shot's own cumulative profile."""
    shot = PowerShot(power)
    volumes = np.zeros(b1 - b0)
    for i in range(starts.size):
        for j in range(a[i], b[i]):
            left = shot.cumulative(
                np.array([delta * j - starts[i]]), sizes[i], durations[i]
            )[0]
            right = shot.cumulative(
                np.array([delta * (j + 1.0) - starts[i]]),
                sizes[i],
                durations[i],
            )[0]
            volumes[j - b0] += right - left
    return volumes


def test_powershot_scatter_matches_shot_cumulative():
    starts, sizes, durations, a, b, delta = _scatter_fixture()
    got = _powershot_scatter_numpy(
        starts, sizes, durations, a, b, 0.8, delta, 3, 40
    )
    oracle = _scatter_oracle(
        starts, sizes, durations, a, b, 0.8, delta, 3, 40
    )
    assert got.tobytes() == oracle.tobytes()  # bitwise


@needs_numba
def test_powershot_scatter_njit_bitwise_equal():
    starts, sizes, durations, a, b, delta = _scatter_fixture(seed=4)
    x = _powershot_scatter_numpy(
        starts, sizes, durations, a, b, 1.3, delta, 3, 40
    )
    y = _powershot_scatter_njit(
        starts, sizes, durations, a, b, 1.3, delta, 3, 40
    )
    assert x.tobytes() == y.tobytes()


def test_powershot_scatter_dispatcher_handles_empty_ranges():
    starts, sizes, durations, a, b, delta = _scatter_fixture(n=5)
    got = powershot_scatter(
        starts, sizes, durations, a, a, 0.8, delta, 3, 40  # b == a: empty
    )
    assert np.array_equal(got, np.zeros(37))


# -- EWMA ---------------------------------------------------------------


@pytest.mark.parametrize("n", [1, 2, 100, 4096, 4097, 10_000])
@pytest.mark.parametrize("eps", [0.01, 0.5, 1.0])
def test_ewma_matches_sequential_estimator(n, eps):
    rng = np.random.default_rng(n)
    x = rng.lognormal(1.0, 1.0, n)
    est = EwmaEstimator(eps)
    for v in x:
        est.update(v)
    got = ewma(x, eps)
    if HAVE_NUMBA:
        assert got == est.value  # the njit path IS the recurrence
    else:
        assert got == pytest.approx(est.value, rel=1e-11)
