"""pcap reader/writer: snapped records, foreign captures, corruption."""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.exceptions import TraceFormatError
from repro.interop import PcapReader, write_pcap
from repro.interop.pcap import LINKTYPE_ETHERNET, LINKTYPE_RAW
from repro.trace import PACKET_DTYPE

from ..trace.test_packet import make_packets


def read_all(path, **kwargs):
    blocks = list(PcapReader(path, **kwargs).chunks())
    return np.concatenate(blocks) if blocks else np.empty(
        0, dtype=PACKET_DTYPE
    )


def build_pcap(records, *, endian="<", ns=True, link=LINKTYPE_RAW):
    """Hand-rolled pcap: ``records`` are (ts_sec, ts_frac, payload)."""
    magic = 0xA1B23C4D if ns else 0xA1B2C3D4
    out = struct.pack(endian + "IHHiIII", magic, 2, 4, 0, 0, 65535, link)
    for ts_sec, ts_frac, payload in records:
        out += struct.pack(
            endian + "IIII", ts_sec, ts_frac, len(payload), len(payload)
        )
        out += payload
    return out


def ipv4_payload(
    *, src=0x0A000001, dst=0x0A000002, sport=1234, dport=80, proto=6,
    total_length=500, link_prefix=b"",
):
    ip = bytearray(20)
    ip[0] = 0x45
    struct.pack_into(">H", ip, 2, total_length)
    ip[8] = 64
    ip[9] = proto
    struct.pack_into(">II", ip, 12, src, dst)
    transport = struct.pack(">HH", sport, dport) + b"\x00" * 16
    return link_prefix + bytes(ip) + transport


class TestWriterRoundTrip:
    def test_roundtrip_exact_sizes_ns_timestamps(self, tmp_path):
        packets = make_packets(300, spacing=0.001, size=700)
        path = tmp_path / "rt.pcap"
        assert write_pcap(packets, path) == 300
        back = read_all(path)
        assert back.size == 300
        for field in ("src_addr", "dst_addr", "src_port", "dst_port",
                      "protocol", "size"):
            np.testing.assert_array_equal(back[field], packets[field])
        np.testing.assert_allclose(
            back["timestamp"], packets["timestamp"], atol=2e-9
        )

    def test_udp_ports_survive(self, tmp_path):
        packets = make_packets(10, size=200)
        packets["protocol"] = 17
        path = tmp_path / "udp.pcap"
        write_pcap(packets, path)
        back = read_all(path)
        np.testing.assert_array_equal(back["src_port"], packets["src_port"])
        np.testing.assert_array_equal(back["protocol"], packets["protocol"])

    def test_headers_only_snap(self, tmp_path):
        """Only IP+transport headers land on disk, not the full size."""
        packets = make_packets(100, size=1500)
        path = tmp_path / "snap.pcap"
        write_pcap(packets, path)
        # global header + per packet: 16B record header + 40B TCP snap
        assert path.stat().st_size == 24 + 100 * (16 + 40)
        back = read_all(path)
        np.testing.assert_array_equal(back["size"], packets["size"])

    def test_rejects_sizes_below_snap(self, tmp_path):
        packets = make_packets(3, size=30)  # < 40B TCP snap
        with pytest.raises(TraceFormatError, match="snapped headers"):
            write_pcap(packets, tmp_path / "small.pcap")

    def test_rejects_negative_timestamps(self, tmp_path):
        packets = make_packets(3, start=-1.0)
        with pytest.raises(TraceFormatError, match="rebase"):
            write_pcap(packets, tmp_path / "neg.pcap")


class TestForeignCaptures:
    @pytest.mark.parametrize("endian", ["<", ">"])
    @pytest.mark.parametrize("ns", [True, False])
    def test_all_magics(self, tmp_path, endian, ns):
        frac = 500 if ns else 500  # 500 ns or 500 µs
        path = tmp_path / "f.pcap"
        path.write_bytes(build_pcap(
            [(10, frac, ipv4_payload())], endian=endian, ns=ns,
        ))
        back = read_all(path)
        assert back.size == 1
        expected = 10 + frac * (1e-9 if ns else 1e-6)
        assert back["timestamp"][0] == pytest.approx(expected, abs=1e-12)
        assert back["size"][0] == 500

    def test_ethernet_link_type(self, tmp_path):
        prefix = b"\x00" * 12 + struct.pack(">H", 0x0800)
        path = tmp_path / "eth.pcap"
        path.write_bytes(build_pcap(
            [(1, 0, ipv4_payload(link_prefix=prefix))],
            link=LINKTYPE_ETHERNET,
        ))
        back = read_all(path)
        assert back.size == 1
        assert back["src_port"][0] == 1234

    def test_non_ipv4_records_skipped(self, tmp_path):
        prefix = b"\x00" * 12 + struct.pack(">H", 0x86DD)  # IPv6 ethertype
        path = tmp_path / "mixed.pcap"
        path.write_bytes(build_pcap(
            [
                (1, 0, ipv4_payload(link_prefix=b"\x00" * 12 + b"\x08\x00")),
                (2, 0, ipv4_payload(link_prefix=prefix)),  # skipped
                (3, 0, b"\x00" * 10),  # too short: skipped
            ],
            link=LINKTYPE_ETHERNET,
        ))
        assert read_all(path).size == 1

    def test_non_tcp_udp_gets_port_zero(self, tmp_path):
        path = tmp_path / "icmp.pcap"
        path.write_bytes(build_pcap([(1, 0, ipv4_payload(proto=1))]))
        back = read_all(path)
        assert back["protocol"][0] == 1
        assert back["src_port"][0] == 0

    def test_chunked_iteration(self, tmp_path):
        packets = make_packets(50, size=100)
        packets["protocol"] = 17
        path = tmp_path / "c.pcap"
        write_pcap(packets, path)
        blocks = list(PcapReader(path, chunk=7).chunks())
        assert [b.size for b in blocks] == [7] * 7 + [1]
        np.testing.assert_array_equal(np.concatenate(blocks), read_all(path))


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "m.pcap"
        path.write_bytes(b"\x00" * 24)
        with pytest.raises(TraceFormatError, match="bad pcap magic"):
            PcapReader(path)

    def test_bad_version(self, tmp_path):
        data = bytearray(build_pcap([]))
        struct.pack_into("<HH", data, 4, 3, 1)
        path = tmp_path / "v.pcap"
        path.write_bytes(bytes(data))
        with pytest.raises(
            TraceFormatError, match="unsupported pcap version 3.1"
        ):
            PcapReader(path)

    def test_unsupported_link_type(self, tmp_path):
        data = bytearray(build_pcap([]))
        struct.pack_into("<I", data, 20, 105)  # 802.11
        path = tmp_path / "l.pcap"
        path.write_bytes(bytes(data))
        with pytest.raises(
            TraceFormatError, match="link type 105 at byte offset 20"
        ):
            PcapReader(path)

    def test_truncated_global_header(self, tmp_path):
        path = tmp_path / "g.pcap"
        path.write_bytes(build_pcap([])[:15])
        with pytest.raises(
            TraceFormatError, match="global header at byte offset 0: got 15"
        ):
            PcapReader(path)

    def test_truncated_record_names_offset_and_size(self, tmp_path):
        path = tmp_path / "t.pcap"
        path.write_bytes(build_pcap([(1, 0, ipv4_payload())])[:-10])
        with pytest.raises(
            TraceFormatError,
            match=r"truncated pcap record at byte offset 40: got 30 bytes, "
            r"the record header promised 40",
        ):
            read_all(path)

    def test_truncated_record_header_names_offset(self, tmp_path):
        full = build_pcap([(1, 0, ipv4_payload())])
        path = tmp_path / "th.pcap"
        path.write_bytes(full + b"\x01\x02\x03")
        with pytest.raises(
            TraceFormatError,
            match=rf"record header at byte offset {len(full)}: got 3",
        ):
            read_all(path)
