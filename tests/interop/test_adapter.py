"""Adapter layer: sniffing, record expansion, ordered packet streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError, TraceFormatError
from repro.interop import (
    FLOW_RECORD_DTYPE,
    FlowPacketStream,
    PacketChunkStream,
    detect_format,
    expand_flow_records,
    open_import_stream,
    scan_record_chunks,
    write_ipfix,
    write_netflow5,
    write_pcap,
)
from repro.interop.adapter import EPOCH_THRESHOLD, ScanInfo
from repro.trace import PACKET_DTYPE

from ..trace.test_packet import make_packets
from .conftest import make_records


class _ListSource:
    """Packet-chunk source shaped like a reader: ``.chunks()`` + attrs."""

    format = "packets"
    path = "<memory>"

    def __init__(self, blocks):
        self._blocks = blocks

    def chunks(self):
        return iter(self._blocks)


def drain(stream):
    blocks = [b for b in stream if b.size]
    return np.concatenate(blocks) if blocks else np.empty(
        0, dtype=PACKET_DTYPE
    )


class TestDetectFormat:
    def test_all_four_formats(self, tmp_path, small_trace_file):
        nf5 = tmp_path / "a.nf5"
        write_netflow5(make_records(2), nf5)
        ipfix = tmp_path / "a.ipfix"
        write_ipfix(make_records(2), ipfix)
        pcap = tmp_path / "a.pcap"
        write_pcap(make_packets(2, size=100), pcap)
        assert detect_format(small_trace_file) == "rptr"
        assert detect_format(nf5) == "netflow5"
        assert detect_format(ipfix) == "ipfix"
        assert detect_format(pcap) == "pcap"

    def test_unknown_magic(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"\x99\x99\x99\x99garbage")
        with pytest.raises(TraceFormatError, match="unrecognised telemetry"):
            detect_format(path)

    def test_empty_file_is_a_parameter_error(self, tmp_path):
        path = tmp_path / "empty.nf5"
        path.write_bytes(b"")
        with pytest.raises(ParameterError) as excinfo:
            detect_format(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert "empty" in message

    @pytest.mark.parametrize(
        "magic",
        [
            pytest.param(b"\x00\x05\x00\x01", id="netflow5"),
            pytest.param(b"\x00\x0a\x00\x00", id="ipfix"),
            pytest.param(b"\xa1\xb2\xc3\xd4", id="pcap"),
        ],
    )
    @pytest.mark.parametrize("length", [1, 2, 3])
    def test_truncated_magic_is_a_parameter_error(
        self, tmp_path, magic, length
    ):
        # a 1-3 byte prefix of a real magic is still too short to sniff
        path = tmp_path / "truncated.bin"
        path.write_bytes(magic[:length])
        with pytest.raises(ParameterError) as excinfo:
            detect_format(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert f"{length} byte" in message


class TestExpandFlowRecords:
    def test_totals_exact(self):
        records = make_records(30, packets=7, octets=9001)
        packets = expand_flow_records(records)
        assert packets.size == 7 * 30
        assert int(packets["size"].sum(dtype=np.int64)) == 9001 * 30
        # per-record octet totals are exact too, not just globally
        first = packets[:7]
        assert int(first["size"].sum()) == 9001
        assert first["timestamp"][0] == records["start"][0]
        assert first["timestamp"][-1] == records["end"][0]

    def test_uniform_spacing(self):
        records = make_records(1, packets=5, span=4.0)
        packets = expand_flow_records(records)
        np.testing.assert_allclose(np.diff(packets["timestamp"]), 1.0)

    def test_single_packet_record_lands_at_start(self):
        records = make_records(1, packets=1, octets=333, span=2.0)
        packets = expand_flow_records(records)
        assert packets.size == 1
        assert packets["timestamp"][0] == records["start"][0]
        assert packets["size"][0] == 333

    def test_remainder_spread_one_byte_each(self):
        records = make_records(1, packets=4, octets=4 * 100 + 3)
        sizes = expand_flow_records(records)["size"]
        assert sizes.tolist() == [101, 101, 101, 100]

    def test_five_tuple_repeated(self):
        records = make_records(3, packets=2)
        packets = expand_flow_records(records)
        np.testing.assert_array_equal(
            packets["src_addr"], np.repeat(records["src_addr"], 2)
        )

    def test_empty_input(self):
        assert expand_flow_records(make_records(0)).size == 0

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ParameterError, match="FLOW_RECORD_DTYPE"):
            expand_flow_records(np.zeros(2, dtype=np.float64))

    def test_rejects_zero_packets(self):
        records = make_records(3)
        records["packets"][1] = 0
        with pytest.raises(TraceFormatError, match="record 1 claims 0"):
            expand_flow_records(records)

    def test_rejects_octets_below_packets(self):
        records = make_records(2, packets=10)
        records["octets"][0] = 5
        with pytest.raises(TraceFormatError, match="less than one byte"):
            expand_flow_records(records)

    def test_rejects_sampled_archives(self):
        records = make_records(1, packets=2, octets=2 * 70000)
        with pytest.raises(TraceFormatError, match="sampled"):
            expand_flow_records(records)

    def test_rejects_end_before_start(self):
        records = make_records(2)
        records["end"][1] = records["start"][1] - 0.5
        with pytest.raises(TraceFormatError, match="ends before it starts"):
            expand_flow_records(records)


class TestScan:
    def test_counts_and_range(self):
        blocks = [make_records(10, packets=3, octets=900),
                  make_records(5, start=10.0, packets=3, octets=900)]
        info = scan_record_chunks(iter(blocks))
        assert info.records == 15
        assert info.packets == 45
        assert info.octets == 900 * 15
        assert info.t_min == 0.0
        assert info.t_max == 10.0 + 0.25 * 4 + 2.0
        assert info.starts_sorted
        assert not info.empty

    def test_detects_unsorted_across_blocks(self):
        blocks = [make_records(5, start=10.0), make_records(5, start=0.0)]
        assert not scan_record_chunks(iter(blocks)).starts_sorted

    def test_empty(self):
        info = scan_record_chunks(iter([make_records(0)]))
        assert info.empty
        assert info.records == 0


class TestFlowPacketStream:
    def test_emission_is_globally_nondecreasing(self):
        # long flows overlap many later records: the watermark must hold
        # their tail packets back
        records = make_records(200, spacing=0.05, span=5.0, packets=8)
        stream = FlowPacketStream([records[:90], records[90:]])
        out = drain(stream)
        assert out.size == 200 * 8
        assert bool(np.all(np.diff(out["timestamp"]) >= 0))
        assert stream.records_read == 200
        assert stream.packets_emitted == 1600

    def test_order_auto_sorts_unsorted_archives(self):
        shuffled = make_records(50)[::-1].copy()
        stream = FlowPacketStream([shuffled])
        assert stream.order == "export"
        out = drain(stream)
        assert bool(np.all(np.diff(out["timestamp"]) >= 0))

    def test_order_start_rejects_unsorted(self):
        shuffled = make_records(50)[::-1].copy()
        stream = FlowPacketStream([shuffled], order="start")
        with pytest.raises(TraceFormatError, match="order='export'"):
            drain(stream)

    def test_order_validated(self):
        with pytest.raises(ParameterError, match="order must be"):
            FlowPacketStream([make_records(1)], order="sideways")

    def test_duration_default_and_override(self):
        records = make_records(10, span=3.0)
        assert FlowPacketStream([records]).duration == pytest.approx(
            0.25 * 9 + 3.0
        )
        assert FlowPacketStream([records], duration=60.0).duration == 60.0

    def test_rebase_auto_epoch(self):
        records = make_records(5, start=1.7e9)
        stream = FlowPacketStream([records])
        assert stream.base_offset == 1.7e9
        out = drain(stream)
        assert out["timestamp"][0] == 0.0
        assert stream.duration == pytest.approx(0.25 * 4 + 2.0)

    def test_rebase_auto_leaves_capture_clocks(self):
        stream = FlowPacketStream([make_records(5, start=100.0)])
        assert stream.base_offset == 0.0

    def test_rebase_always_and_never(self):
        records = make_records(5, start=100.0)
        assert FlowPacketStream([records], rebase="always").base_offset == 100.0
        epoch = make_records(5, start=EPOCH_THRESHOLD * 2)
        assert FlowPacketStream([epoch], rebase="never").base_offset == 0.0

    def test_rebase_validated(self):
        with pytest.raises(ParameterError, match="rebase must be"):
            FlowPacketStream([make_records(1)], rebase="sometimes")


class TestPacketChunkStream:
    def test_sorts_within_chunk(self):
        packets = make_packets(10, size=100)[::-1].copy()
        out = drain(PacketChunkStream(_ListSource([packets])))
        assert bool(np.all(np.diff(out["timestamp"]) >= 0))

    def test_rejects_overlapping_chunks(self):
        a = make_packets(10, start=5.0, size=100)
        b = make_packets(10, start=0.0, size=100)
        stream = PacketChunkStream(_ListSource([a, b]))
        with pytest.raises(TraceFormatError, match="overlap in time"):
            drain(stream)

    def test_rebase_and_counters(self):
        packets = make_packets(20, start=2e9, size=100)
        stream = PacketChunkStream(_ListSource([packets]))
        assert stream.base_offset == 2e9
        out = drain(stream)
        assert out["timestamp"][0] == 0.0
        assert stream.packets_emitted == 20
        assert stream.records_read == 20


class TestOpenImportStream:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError, match="no such file"):
            open_import_stream(tmp_path / "nope.nf5")

    def test_bad_format(self, small_trace_file):
        with pytest.raises(ParameterError, match="format must be one of"):
            open_import_stream(small_trace_file, format="sflow")

    def test_rptr_uses_native_header(self, small_trace_file, small_trace):
        stream = open_import_stream(small_trace_file)
        assert stream.format == "rptr"
        assert stream.duration == pytest.approx(20.0)
        assert stream.link_capacity is not None
        out = drain(stream)
        assert out.size == small_trace.packets.size

    def test_rptr_honours_chunk(self, small_trace_file):
        stream = open_import_stream(small_trace_file, chunk=100)
        sizes = [b.size for b in stream]
        assert max(sizes) <= 100

    def test_netflow5_stream(self, tmp_path):
        path = tmp_path / "s.nf5"
        write_netflow5(make_records(40, packets=3, octets=900), path)
        stream = open_import_stream(path)
        assert isinstance(stream, FlowPacketStream)
        assert stream.scan.records == 40
        assert drain(stream).size == 120

    def test_auto_detects_ipfix(self, tmp_path):
        path = tmp_path / "s.ipfix"
        write_ipfix(make_records(8), path)
        stream = open_import_stream(path)
        assert stream.format == "ipfix"
