"""Shared helpers for the interop (NetFlow/IPFIX/pcap) test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.interop import FLOW_RECORD_DTYPE
from repro.netsim.workloads import table_i_workloads
from repro.trace import write_trace

#: 1 ms wire quantization (NetFlow v5 / IPFIX millisecond timestamps)
#: plus float rounding slack — the documented flow-archive tolerance.
MS_ATOL = 5.1e-4


def make_records(
    n=50, *, start=0.0, spacing=0.25, span=2.0, packets=4, octets=6000,
    seed=0,
):
    """``n`` start-ordered flow records with deterministic five-tuples."""
    rng = np.random.default_rng(seed)
    records = np.zeros(n, dtype=FLOW_RECORD_DTYPE)
    records["start"] = start + spacing * np.arange(n)
    records["end"] = records["start"] + span
    records["src_addr"] = rng.integers(1, 2**32 - 1, n, dtype=np.uint32)
    records["dst_addr"] = rng.integers(1, 2**32 - 1, n, dtype=np.uint32)
    records["src_port"] = rng.integers(1024, 65535, n, dtype=np.uint16)
    records["dst_port"] = rng.integers(1, 1024, n, dtype=np.uint16)
    records["protocol"] = rng.choice([6, 17], n)
    records["packets"] = packets
    records["octets"] = octets
    return records


@pytest.fixture(scope="session")
def small_trace():
    """A scaled Table I capture (the low-utilisation link, 20 s)."""
    workload = table_i_workloads(duration=20.0)[3]
    return workload.synthesize(seed=11).trace


@pytest.fixture()
def small_trace_file(small_trace, tmp_path):
    path = tmp_path / "link.rptr"
    write_trace(small_trace, path)
    return path
