"""Round-trip equivalence: export a capture, re-import, refit the model.

The acceptance bar from the paper's point of view: the three model
parameters — ``lambda``, ``E[S]``, ``E[S^2/D]`` — must survive a trip
through each wire format.  pcap keeps the packet process itself, so
everything matches to nanosecond quantization.  Flow archives keep the
per-flow summaries; timestamps are quantized to 1 ms on the wire and
packets are re-expanded uniformly, so flow counts and octet totals are
exact while durations (and with them ``E[S^2/D]``) carry a documented
millisecond-level tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.interop import (
    flow_records_from_flowset,
    open_import_stream,
    write_ipfix,
    write_netflow5,
    write_pcap,
)
from repro.measurement import MeasurementEngine

TIMEOUT = 8.0


@pytest.fixture(scope="module")
def engine():
    return MeasurementEngine()


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """Native measurement of the small Table I trace."""
    from repro.netsim.workloads import table_i_workloads
    from repro.trace import write_trace

    trace = table_i_workloads(duration=20.0)[3].synthesize(seed=11).trace
    path = tmp_path_factory.mktemp("roundtrip") / "link.rptr"
    write_trace(trace, path)
    measured = MeasurementEngine().measure_file(
        path, delta=0.2, timeout=TIMEOUT
    )
    return trace, path, measured


def remeasure(engine, archive, **kwargs):
    stream = open_import_stream(archive, **kwargs)
    return engine.measure_chunks(
        stream, delta=0.2, timeout=TIMEOUT, duration=20.0
    )


class TestPcap:
    def test_packets_identical(self, baseline, tmp_path):
        trace, _, _ = baseline
        path = tmp_path / "link.pcap"
        write_pcap(trace.packets, path)
        back = np.concatenate(list(open_import_stream(path)))
        assert back.size == trace.packets.size
        for field in ("src_addr", "dst_addr", "src_port", "dst_port",
                      "protocol", "size"):
            np.testing.assert_array_equal(back[field], trace.packets[field])
        np.testing.assert_allclose(
            back["timestamp"], trace.packets["timestamp"], atol=2e-9
        )

    def test_model_parameters_exact(self, baseline, engine, tmp_path):
        trace, _, measured = baseline
        path = tmp_path / "link.pcap"
        write_pcap(trace.packets, path)
        again = remeasure(engine, path)
        ref = measured.flows.statistics(20.0)
        got = again.flows.statistics(20.0)
        assert got.flow_count == ref.flow_count
        assert got.arrival_rate == ref.arrival_rate
        assert got.mean_size == ref.mean_size
        np.testing.assert_allclose(
            got.mean_square_size_over_duration,
            ref.mean_square_size_over_duration,
            rtol=1e-6,
        )


@pytest.mark.parametrize(
    "fmt,writer",
    [("netflow5", write_netflow5), ("ipfix", write_ipfix)],
    ids=["netflow5", "ipfix"],
)
class TestFlowArchives:
    def test_model_parameters_roundtrip(
        self, baseline, engine, tmp_path, fmt, writer
    ):
        _, _, measured = baseline
        records = flow_records_from_flowset(measured.flows)
        archive = tmp_path / f"link.{fmt}"
        assert writer(records, archive) == records.size
        again = remeasure(engine, archive, format=fmt)
        ref = measured.flows.statistics(20.0)
        got = again.flows.statistics(20.0)
        # the exporter's flows re-form one-for-one under the same timeout
        assert got.flow_count == ref.flow_count
        assert got.arrival_rate == ref.arrival_rate      # lambda exact
        assert got.mean_size == ref.mean_size            # octets exact
        # durations pick up the 1 ms wire quantization
        np.testing.assert_allclose(
            got.mean_square_size_over_duration,
            ref.mean_square_size_over_duration,
            rtol=1e-2,
        )

    def test_flow_table_matches(self, baseline, engine, tmp_path, fmt, writer):
        _, _, measured = baseline
        records = flow_records_from_flowset(measured.flows)
        archive = tmp_path / f"table.{fmt}"
        writer(records, archive)
        again = remeasure(engine, archive, format=fmt)
        np.testing.assert_array_equal(
            np.sort(again.flows.sizes), np.sort(measured.flows.sizes)
        )
        np.testing.assert_allclose(
            np.sort(again.flows.durations),
            np.sort(measured.flows.durations),
            atol=2.1e-3,  # two 1 ms-quantized endpoints
        )

    def test_utilization_carries_through(
        self, baseline, engine, tmp_path, fmt, writer
    ):
        trace, _, measured = baseline
        records = flow_records_from_flowset(measured.flows)
        archive = tmp_path / f"util.{fmt}"
        writer(records, archive)
        stream = open_import_stream(
            archive, format=fmt, link_capacity=trace.link_capacity
        )
        again = engine.measure_chunks(
            stream, delta=0.2, timeout=TIMEOUT, duration=20.0
        )
        assert again.utilization > 0
        # flow-archive expansion drops zero-duration flows at export, so
        # utilization is a floor on the native number, not far below it
        assert again.utilization <= measured.utilization
        assert again.utilization > 0.5 * measured.utilization
