"""Golden fixtures: committed wire bytes decode to pinned values.

The binaries under ``fixtures/`` are in version control; these tests
decode them and assert exact field values, so a wire-format regression
breaks against frozen bytes rather than round-tripping through the same
(changed) code.  ``make_fixtures.py`` regenerates them on purpose.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.interop import (
    IpfixReader,
    NetFlow5Reader,
    PcapReader,
    open_import_stream,
    write_ipfix,
    write_netflow5,
    write_pcap,
)

from .conftest import MS_ATOL
from .fixtures.make_fixtures import (
    GOLDEN_PACKETS,
    GOLDEN_RECORDS,
    HERE,
    golden_packets,
    golden_records,
)


def check_flow_fields(back):
    assert back.size == len(GOLDEN_RECORDS)
    expected = golden_records()
    for field in ("src_addr", "dst_addr", "src_port", "dst_port",
                  "protocol", "packets", "octets"):
        np.testing.assert_array_equal(back[field], expected[field])
    np.testing.assert_allclose(back["start"], expected["start"], atol=MS_ATOL)
    np.testing.assert_allclose(back["end"], expected["end"], atol=MS_ATOL)
    # spot checks straight off the table, not via the writer's dtype
    assert back["octets"].tolist() == [15000, 2960, 128, 144000, 1500]
    assert back["src_port"].tolist() == [40001, 40002, 53, 40004, 40005]


class TestGoldenDecode:
    def test_netflow5(self):
        check_flow_fields(np.concatenate(
            list(NetFlow5Reader(HERE / "golden.nf5"))
        ))

    def test_ipfix(self):
        check_flow_fields(np.concatenate(
            list(IpfixReader(HERE / "golden.ipfix"))
        ))

    def test_pcap(self):
        back = np.concatenate(list(PcapReader(HERE / "golden.pcap").chunks()))
        assert back.size == len(GOLDEN_PACKETS)
        expected = golden_packets()
        for field in ("src_addr", "dst_addr", "src_port", "dst_port",
                      "protocol", "size"):
            np.testing.assert_array_equal(back[field], expected[field])
        np.testing.assert_allclose(
            back["timestamp"], expected["timestamp"], atol=2e-9
        )
        assert back["size"].tolist() == [1500, 40, 128, 1500, 576, 333]


class TestWritersAreByteStable:
    """Writers must reproduce the committed bytes bit-for-bit."""

    @pytest.mark.parametrize(
        "name,writer,data",
        [
            ("golden.nf5", write_netflow5, "records"),
            ("golden.ipfix", write_ipfix, "records"),
            ("golden.pcap", write_pcap, "packets"),
        ],
    )
    def test_regenerated_bytes_match(self, tmp_path, name, writer, data):
        payload = golden_records() if data == "records" else golden_packets()
        fresh = tmp_path / name
        writer(payload, fresh)
        assert fresh.read_bytes() == (HERE / name).read_bytes()


class TestGoldenImport:
    def test_netflow5_expands_to_packet_total(self):
        stream = open_import_stream(HERE / "golden.nf5")
        packets = np.concatenate(list(stream))
        assert packets.size == sum(r[7] for r in GOLDEN_RECORDS)
        assert int(packets["size"].sum(dtype=np.int64)) == sum(
            r[8] for r in GOLDEN_RECORDS
        )
        assert stream.duration == pytest.approx(9.0, abs=MS_ATOL)
