"""IPFIX (RFC 7011): message layout, template decoding, foreign exporters."""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.exceptions import TraceFormatError
from repro.interop import (
    FLOW_RECORD_DTYPE,
    IpfixReader,
    IpfixWriter,
    write_ipfix,
)
from repro.interop.ipfix import (
    IPFIX_EXPORT_TEMPLATE_ID,
    IPFIX_VERSION,
    _MESSAGE_HEADER,
    _SET_HEADER,
)

from .conftest import MS_ATOL, make_records


def read_all(path, **kwargs):
    blocks = list(IpfixReader(path, **kwargs))
    return np.concatenate(blocks) if blocks else np.empty(
        0, dtype=FLOW_RECORD_DTYPE
    )


def build_message(sets: list[bytes], *, version=IPFIX_VERSION) -> bytes:
    body = b"".join(sets)
    header = _MESSAGE_HEADER.pack(
        version, _MESSAGE_HEADER.size + len(body), 0, 0, 0
    )
    return header + body


def build_set(set_id: int, body: bytes) -> bytes:
    return _SET_HEADER.pack(set_id, _SET_HEADER.size + len(body)) + body


def template_set(template_id: int, fields: list[tuple[int, int]]) -> bytes:
    body = struct.pack(">HH", template_id, len(fields))
    for ie, length in fields:
        body += struct.pack(">HH", ie, length)
    return build_set(2, body)


#: A foreign exporter's template: different field order than ours, an
#: unknown IE (ingressInterface=10), and seconds-resolution timestamps.
FOREIGN_FIELDS = [
    (150, 4),  # flowStartSeconds
    (151, 4),  # flowEndSeconds
    (10, 4),   # ingressInterface — not needed, must be skipped
    (8, 4), (12, 4), (7, 2), (11, 2), (4, 1), (2, 8), (1, 8),
]


def foreign_record(start, end, src, dst, sport, dport, proto, pkts, octets):
    return struct.pack(
        ">IIIIIHHBQQ", start, end, 7, src, dst, sport, dport, proto,
        pkts, octets,
    )


class TestRoundTrip:
    def test_fields_exact_timestamps_quantized(self, tmp_path):
        records = make_records(150, spacing=0.017, span=2.3)
        path = tmp_path / "rt.ipfix"
        assert write_ipfix(records, path) == 150
        back = read_all(path)
        assert back.size == records.size
        for field in ("src_addr", "dst_addr", "src_port", "dst_port",
                      "protocol", "packets", "octets"):
            np.testing.assert_array_equal(back[field], records[field])
        np.testing.assert_allclose(back["start"], records["start"],
                                   atol=MS_ATOL)
        np.testing.assert_allclose(back["end"], records["end"], atol=MS_ATOL)

    def test_epoch_timestamps_survive(self, tmp_path):
        """64-bit millisecond IEs carry wall-clock archives unscathed."""
        records = make_records(5, start=1.7e9)
        path = tmp_path / "epoch.ipfix"
        write_ipfix(records, path)
        back = read_all(path)
        np.testing.assert_allclose(back["start"], records["start"],
                                   atol=MS_ATOL)

    def test_messages_stay_under_64k(self, tmp_path):
        path = tmp_path / "big.ipfix"
        write_ipfix(make_records(4000, spacing=0.001), path)
        data = path.read_bytes()
        pos = 0
        messages = 0
        while pos < len(data):
            version, length = struct.unpack_from(">HH", data, pos)
            assert version == IPFIX_VERSION
            assert length <= 0xFFFF
            # every message re-announces the template before its data
            set_id, _ = _SET_HEADER.unpack_from(data, pos + _MESSAGE_HEADER.size)
            assert set_id == 2
            pos += length
            messages += 1
        assert messages >= 3

    def test_reader_is_reiterable(self, tmp_path):
        path = tmp_path / "re.ipfix"
        write_ipfix(make_records(12), path)
        reader = IpfixReader(path)
        np.testing.assert_array_equal(
            np.concatenate(list(reader)), np.concatenate(list(reader))
        )

    def test_writer_rejects_negative_start(self, tmp_path):
        with pytest.raises(TraceFormatError, match="rebase"):
            write_ipfix(make_records(2, start=-0.5), tmp_path / "n.ipfix")


class TestForeignTemplates:
    def test_field_order_and_unknown_ies_tolerated(self, tmp_path):
        path = tmp_path / "foreign.ipfix"
        records = [
            foreign_record(100, 105, 0x0A000001, 0x0A000002, 40000, 443, 6,
                           10, 5000),
            foreign_record(101, 109, 0x0A000003, 0x0A000004, 53, 53, 17,
                           2, 300),
        ]
        path.write_bytes(build_message([
            template_set(300, FOREIGN_FIELDS),
            build_set(300, b"".join(records)),
        ]))
        back = read_all(path)
        assert back.size == 2
        assert back["start"].tolist() == [100.0, 101.0]
        assert back["end"].tolist() == [105.0, 109.0]
        assert back["src_port"].tolist() == [40000, 53]
        assert back["octets"].tolist() == [5000, 300]

    def test_ports_optional_default_zero(self, tmp_path):
        fields = [(8, 4), (12, 4), (4, 1), (2, 8), (1, 8), (152, 8), (153, 8)]
        body = struct.pack(">IIBQQQQ", 1, 2, 6, 3, 900, 1000, 2000)
        path = tmp_path / "noports.ipfix"
        path.write_bytes(build_message([
            template_set(256, fields), build_set(256, body),
        ]))
        back = read_all(path)
        assert back["src_port"].tolist() == [0]
        assert back["dst_port"].tolist() == [0]
        assert back["start"].tolist() == [1.0]

    def test_enterprise_fields_skipped(self, tmp_path):
        # enterprise bit set on a padding-ish IE: 4 extra bytes in the
        # template, field bytes still occupy the record
        fields_wire = struct.pack(">HH", 257, 3)
        fields_wire += struct.pack(">HH", 8, 4)
        fields_wire += struct.pack(">HHI", 0x8000 | 12, 4, 4242)  # enterprise
        fields_wire += struct.pack(">HH", 4, 1)
        template = build_set(2, fields_wire)
        # record: src, dst, proto — but template lacks counters/timestamps
        data = build_set(257, struct.pack(">IIB", 1, 2, 6))
        path = tmp_path / "ent.ipfix"
        path.write_bytes(build_message([template, data]))
        with pytest.raises(TraceFormatError, match="lacks required"):
            read_all(path)

    def test_options_template_sets_skipped(self, tmp_path):
        path = tmp_path / "opts.ipfix"
        path.write_bytes(
            build_message([build_set(3, b"\x01\x02\x03\x04")])
            + build_message([
                template_set(256, FOREIGN_FIELDS),
                build_set(256, foreign_record(1, 2, 3, 4, 5, 6, 6, 1, 40)),
            ])
        )
        assert read_all(path).size == 1

    def test_set_padding_tolerated(self, tmp_path):
        records = make_records(3)
        path = tmp_path / "pad.ipfix"
        write_ipfix(records, path)
        # append a message whose template set carries two padding bytes
        fields = [(8, 4), (12, 4), (7, 2), (11, 2), (4, 1), (2, 8), (1, 8),
                  (152, 8), (153, 8)]
        body = struct.pack(">HH", 256, len(fields))
        for ie, length in fields:
            body += struct.pack(">HH", ie, length)
        body += b"\x00\x00"  # RFC 7011 §3.3.1 set padding
        with open(path, "ab") as fh:
            fh.write(build_message([build_set(2, body)]))
        assert read_all(path).size == 3


class TestCorruption:
    def test_bad_version_names_offset(self, tmp_path):
        path = tmp_path / "v.ipfix"
        path.write_bytes(build_message([], version=9))
        with pytest.raises(
            TraceFormatError, match="bad IPFIX version 9 at byte offset 0"
        ):
            read_all(path)

    def test_truncated_message_names_offsets(self, tmp_path):
        path = tmp_path / "t.ipfix"
        write_ipfix(make_records(2), path)
        data = path.read_bytes()
        path.write_bytes(data[:-11])
        with pytest.raises(
            TraceFormatError,
            match=r"truncated IPFIX message at byte offset 0",
        ):
            read_all(path)

    def test_truncated_header_names_offset(self, tmp_path):
        path = tmp_path / "h.ipfix"
        write_ipfix(make_records(2), path)
        data = path.read_bytes()
        path.write_bytes(data + data[:7])
        with pytest.raises(
            TraceFormatError,
            match=rf"message header at byte offset {len(data)}: got 7",
        ):
            read_all(path)

    def test_unknown_template_reference(self, tmp_path):
        path = tmp_path / "u.ipfix"
        path.write_bytes(build_message([build_set(999, b"\x00" * 8)]))
        with pytest.raises(
            TraceFormatError, match="references template 999"
        ):
            read_all(path)

    def test_variable_length_fields_rejected(self, tmp_path):
        path = tmp_path / "var.ipfix"
        path.write_bytes(build_message([template_set(256, [(8, 0xFFFF)])]))
        with pytest.raises(TraceFormatError, match="variable-length"):
            read_all(path)

    def test_set_overrunning_message_rejected(self, tmp_path):
        path = tmp_path / "o.ipfix"
        bad_set = _SET_HEADER.pack(2, 500)  # promises 500B, message ends
        path.write_bytes(build_message([bad_set]))
        with pytest.raises(TraceFormatError, match="runs past its message"):
            read_all(path)

    def test_record_end_before_start(self, tmp_path):
        path = tmp_path / "eb.ipfix"
        records = make_records(1)
        records["end"] = records["start"] - 1.0
        # bypass the writer's own guard by building the message by hand
        wire = struct.pack(
            ">IIHHBQQQQ", 1, 2, 3, 4, 6, 1, 40, 5000, 4000
        )
        fields = [(8, 4), (12, 4), (7, 2), (11, 2), (4, 1), (2, 8), (1, 8),
                  (152, 8), (153, 8)]
        path.write_bytes(build_message([
            template_set(256, fields), build_set(256, wire),
        ]))
        with pytest.raises(TraceFormatError, match="ends before it starts"):
            read_all(path)
