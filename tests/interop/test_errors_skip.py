"""``errors="skip"``: corrupt telemetry degrades, strict still raises.

Real exporter archives arrive torn — a capture cut off mid-datagram, a
middlebox rewriting version fields, a template nobody sent.  Each reader
gains the same contract:

* ``errors="strict"`` (the default) keeps the existing loud
  :class:`TraceFormatError` behaviour — pinned here next to each skip
  case so the two modes cannot drift apart;
* ``errors="skip"`` drops exactly the malformed structure, counts it in
  ``.skipped`` (reset at the start of every pass), and — crucially —
  only *re-synchronises* when the wire format still tells it where the
  next structure starts (a self-sizing datagram/message).  When the
  boundary is lost (torn header, implausible count/length) the pass
  stops instead of guessing at bytes;
* the adapter surfaces the count as ``records_skipped`` and validates
  the ``errors`` knob itself.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.exceptions import ParameterError, TraceFormatError
from repro.interop import (
    IpfixReader,
    NetFlow5Reader,
    PcapReader,
    open_import_stream,
    write_ipfix,
    write_netflow5,
)
from repro.interop.netflow5 import NETFLOW5_HEADER
from repro.trace import PACKET_DTYPE

from .conftest import make_records
from .test_ipfix import build_message, build_set
from .test_ipfix import read_all as read_ipfix
from .test_netflow5 import read_all as read_nf5
from .test_pcap import build_pcap, ipv4_payload
from .test_pcap import read_all as read_pcap


def _nf5_bytes(n, **kwargs):
    """One NetFlow v5 file's raw bytes holding ``n`` records."""

    def build(tmp_path):
        path = tmp_path / f"part-{n}.nf5"
        write_netflow5(make_records(n, **kwargs), path)
        return path.read_bytes()

    return build


class TestNetFlow5Skip:
    def test_errors_knob_is_validated(self, tmp_path):
        path = tmp_path / "x.nf5"
        write_netflow5(make_records(2), path)
        with pytest.raises(ParameterError, match="errors"):
            NetFlow5Reader(path, errors="ignore")

    def test_bad_version_datagram_is_hopped(self, tmp_path):
        # two datagrams; the first one's version is mangled — its count
        # still sizes it, so the reader hops to the second
        first = _nf5_bytes(2)(tmp_path)
        second = _nf5_bytes(4, seed=1)(tmp_path)
        data = bytearray(first + second)
        data[1] = 9
        path = tmp_path / "v.nf5"
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="bad NetFlow version"):
            read_nf5(path)
        reader = NetFlow5Reader(path, errors="skip")
        back = np.concatenate(list(reader))
        assert back.size == 4
        assert reader.skipped == 2  # the hopped datagram's records

    def test_truncated_trailing_datagram_stops_the_pass(self, tmp_path):
        first = _nf5_bytes(3)(tmp_path)
        second = _nf5_bytes(2, seed=1)(tmp_path)
        path = tmp_path / "t.nf5"
        path.write_bytes((first + second)[:-20])
        with pytest.raises(TraceFormatError, match="truncated"):
            read_nf5(path)
        reader = NetFlow5Reader(path, errors="skip")
        assert np.concatenate(list(reader)).size == 3
        assert reader.skipped == 2

    def test_torn_header_stops_the_pass(self, tmp_path):
        good = _nf5_bytes(2)(tmp_path)
        path = tmp_path / "h.nf5"
        path.write_bytes(good + good[:10])
        reader = NetFlow5Reader(path, errors="skip")
        assert np.concatenate(list(reader)).size == 2
        assert reader.skipped == 1

    def test_implausible_count_stops_the_pass(self, tmp_path):
        # a zeroed count field desynchronises the stream: nothing after
        # the first datagram can be trusted, so skip mode stops there
        first = _nf5_bytes(3)(tmp_path)
        second = bytearray(_nf5_bytes(2, seed=1)(tmp_path))
        struct.pack_into(">H", second, 2, 0)
        path = tmp_path / "c.nf5"
        path.write_bytes(first + bytes(second))
        with pytest.raises(TraceFormatError, match="implausible"):
            read_nf5(path)
        reader = NetFlow5Reader(path, errors="skip")
        assert np.concatenate(list(reader)).size == 3
        assert reader.skipped == 1

    def test_last_before_first_drops_single_records(self, tmp_path):
        path = tmp_path / "lf.nf5"
        write_netflow5(make_records(3, span=1.0), path)
        data = bytearray(path.read_bytes())
        rec = NETFLOW5_HEADER.size  # record 0: first at +24, last at +28
        first = bytes(data[rec + 24: rec + 28])
        data[rec + 24: rec + 28] = data[rec + 28: rec + 32]
        data[rec + 28: rec + 32] = first
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="Last < First"):
            read_nf5(path)
        reader = NetFlow5Reader(path, errors="skip")
        assert np.concatenate(list(reader)).size == 2
        assert reader.skipped == 1

    def test_skipped_resets_every_pass(self, tmp_path):
        good = _nf5_bytes(2)(tmp_path)
        path = tmp_path / "r.nf5"
        path.write_bytes(good + good[:10])
        reader = NetFlow5Reader(path, errors="skip")
        list(reader)
        list(reader)  # re-iteration must not double-count
        assert reader.skipped == 1


class TestIpfixSkip:
    def test_errors_knob_is_validated(self, tmp_path):
        path = tmp_path / "x.ipfix"
        write_ipfix(make_records(2), path)
        with pytest.raises(ParameterError, match="errors"):
            IpfixReader(path, errors="drop")

    def test_bad_version_message_is_hopped(self, tmp_path):
        # each exported file opens with its own template set, so the
        # second message chain decodes on its own
        a = tmp_path / "a.ipfix"
        b = tmp_path / "b.ipfix"
        write_ipfix(make_records(2), a)
        write_ipfix(make_records(4, seed=1), b)
        data = bytearray(a.read_bytes() + b.read_bytes())
        struct.pack_into(">H", data, 0, 9)  # NetFlow v9, length intact
        path = tmp_path / "v.ipfix"
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="bad IPFIX version"):
            read_ipfix(path)
        reader = IpfixReader(path, errors="skip")
        assert np.concatenate(list(reader)).size == 4
        assert reader.skipped == 1

    def test_truncated_trailing_message_stops_the_pass(self, tmp_path):
        a = tmp_path / "a.ipfix"
        b = tmp_path / "b.ipfix"
        write_ipfix(make_records(3), a)
        write_ipfix(make_records(2, seed=1), b)
        path = tmp_path / "t.ipfix"
        path.write_bytes((a.read_bytes() + b.read_bytes())[:-11])
        with pytest.raises(TraceFormatError, match="truncated"):
            read_ipfix(path)
        reader = IpfixReader(path, errors="skip")
        assert np.concatenate(list(reader)).size == 3
        assert reader.skipped == 1

    def test_unknown_template_data_set_is_skipped(self, tmp_path):
        a = tmp_path / "a.ipfix"
        write_ipfix(make_records(2), a)
        orphan = build_message([build_set(999, b"\x00" * 8)])
        path = tmp_path / "u.ipfix"
        path.write_bytes(a.read_bytes() + orphan)
        with pytest.raises(TraceFormatError, match="references template 999"):
            read_ipfix(path)
        reader = IpfixReader(path, errors="skip")
        assert np.concatenate(list(reader)).size == 2
        assert reader.skipped == 1

    def test_skipped_resets_every_pass(self, tmp_path):
        a = tmp_path / "a.ipfix"
        write_ipfix(make_records(2), a)
        path = tmp_path / "r.ipfix"
        path.write_bytes(a.read_bytes() + build_message([build_set(999, b"")]))
        reader = IpfixReader(path, errors="skip")
        list(reader)
        list(reader)
        assert reader.skipped == 1


class TestPcapSkip:
    def test_errors_knob_is_validated(self, tmp_path):
        path = tmp_path / "x.pcap"
        path.write_bytes(build_pcap([(1, 0, ipv4_payload())]))
        with pytest.raises(ParameterError, match="errors"):
            PcapReader(path, errors="lenient")

    def test_global_header_is_always_strict(self, tmp_path):
        # without a sane global header nothing downstream is decodable,
        # so skip mode refuses it just as loudly as strict
        path = tmp_path / "g.pcap"
        path.write_bytes(build_pcap([])[:15])
        with pytest.raises(TraceFormatError, match="global header"):
            PcapReader(path, errors="skip")

    def test_truncated_trailing_record_stops_the_pass(self, tmp_path):
        records = [(i + 1, 0, ipv4_payload()) for i in range(5)]
        path = tmp_path / "t.pcap"
        path.write_bytes(build_pcap(records)[:-10])
        with pytest.raises(TraceFormatError, match="truncated pcap record"):
            read_pcap(path)
        reader = PcapReader(path, errors="skip")
        back = np.concatenate(list(reader.chunks()))
        assert back.size == 4
        assert reader.skipped == 1

    def test_skipped_resets_every_pass(self, tmp_path):
        records = [(1, 0, ipv4_payload())]
        path = tmp_path / "r.pcap"
        path.write_bytes(build_pcap(records)[:-4])
        reader = PcapReader(path, errors="skip")
        list(reader.chunks())
        list(reader.chunks())
        assert reader.skipped == 1


class TestAdapterSkip:
    def test_errors_knob_is_validated(self, tmp_path):
        path = tmp_path / "x.nf5"
        write_netflow5(make_records(2), path)
        with pytest.raises(ParameterError, match="errors"):
            open_import_stream(path, errors="ignore")

    def test_stream_surfaces_records_skipped(self, tmp_path):
        # corrupt the SECOND datagram: the first must stay intact for
        # the adapter's format sniffing to recognise the archive
        first = _nf5_bytes(4)(tmp_path)
        second = _nf5_bytes(2, seed=1)(tmp_path)
        data = bytearray(first + second)
        data[len(first) + 1] = 9
        path = tmp_path / "v.nf5"
        path.write_bytes(bytes(data))
        stream = open_import_stream(path, errors="skip")
        chunks = list(stream)
        assert sum(c.size for c in chunks) > 0
        assert stream.records_skipped == 2
        assert chunks[0].dtype == PACKET_DTYPE

    def test_strict_is_the_default(self, tmp_path):
        first = _nf5_bytes(4)(tmp_path)
        second = _nf5_bytes(2, seed=1)(tmp_path)
        data = bytearray(first + second)
        data[len(first) + 1] = 9
        path = tmp_path / "s.nf5"
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="bad NetFlow version"):
            list(open_import_stream(path))
