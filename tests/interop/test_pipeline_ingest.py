"""The real-trace-fit pipeline family: IngestSpec -> ImportFlows -> fit."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ParameterError, ReproError
from repro.interop import write_ipfix, write_netflow5, write_pcap
from repro.pipeline import (
    INGEST_STAGES,
    IngestSpec,
    ScenarioSpec,
    default_registry,
    run_scenario,
)

from ..trace.test_packet import make_packets
from .conftest import make_records


@pytest.fixture()
def nf5_archive(tmp_path):
    path = tmp_path / "router.nf5"
    write_netflow5(make_records(60, packets=4, octets=6000), path)
    return path


class TestIngestSpec:
    def test_defaults(self):
        spec = IngestSpec()
        assert spec.format == "auto"
        assert spec.order == "auto"
        assert spec.rebase == "auto"
        assert spec.duration is None

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"format": "sflow"}, "ingest.format"),
            ({"order": "reverse"}, "ingest.order"),
            ({"rebase": "sometimes"}, "ingest.rebase"),
            ({"duration": -1.0}, "ingest.duration"),
            ({"link_capacity_bps": 0.0}, "ingest.link_capacity_bps"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ParameterError, match=match):
            IngestSpec(**kwargs)

    def test_require_path_on_template(self):
        with pytest.raises(ParameterError, match="ingest.path is empty"):
            IngestSpec().require_path()

    def test_chunk_aliases_into_execution(self):
        spec = IngestSpec(path="a.nf5", chunk=512)
        assert spec.execution.chunk == 512
        assert spec.chunk == 512

    def test_json_accepts_canonical_execution_only(self):
        data = {"name": "x", "ingest": {"path": "a.nf5",
                                        "execution": {"chunk": 256}}}
        spec = ScenarioSpec.from_dict(data)
        assert spec.ingest.execution.chunk == 256
        # the flat legacy key never existed for ingest: hard error, no shim
        with pytest.raises(ParameterError, match=r"unknown key\(s\) \['chunk'\]"):
            ScenarioSpec.from_dict(
                {"name": "x", "ingest": {"path": "a.nf5", "chunk": 256}}
            )

    def test_roundtrips_through_json(self):
        spec = ScenarioSpec(
            name="rt",
            ingest=IngestSpec(path="a.ipfix", format="ipfix",
                              link_capacity_bps=622e6),
        )
        back = ScenarioSpec.from_json(json.dumps(spec.to_dict()))
        assert back == spec


class TestScenarioValidation:
    def test_family_is_real_trace_fit(self):
        spec = ScenarioSpec(name="x", ingest=IngestSpec(path="a.nf5"))
        assert spec.family == "real-trace-fit"

    def test_ingest_excludes_workload(self):
        from repro.pipeline import WorkloadSpec

        with pytest.raises(ParameterError, match="not both"):
            ScenarioSpec(
                name="x",
                ingest=IngestSpec(path="a.nf5"),
                workload=WorkloadSpec(preset="low"),
            )

    def test_ingest_excludes_network(self):
        from repro.pipeline import DemandSpec, NetworkSpec, TopologySpec

        network = NetworkSpec(
            topology=TopologySpec(preset="abilene"),
            demands=(DemandSpec("seattle", "newyork", preset="table-i-4"),),
        )
        with pytest.raises(ParameterError, match="cannot be combined"):
            ScenarioSpec(
                name="x", ingest=IngestSpec(path="a.nf5"), network=network
            )

    def test_ingest_excludes_anomaly(self):
        from repro.pipeline import AnomalySpec

        with pytest.raises(ParameterError, match="ingest"):
            ScenarioSpec(
                name="x",
                ingest=IngestSpec(path="a.nf5"),
                anomaly=AnomalySpec(),
            )


class TestRegistry:
    def test_templates_registered(self):
        names = set(default_registry())
        assert {"real-trace-netflow5", "real-trace-ipfix",
                "real-trace-pcap"} <= names

    def test_templates_ship_without_path(self):
        registry = default_registry()
        for fmt in ("netflow5", "ipfix", "pcap"):
            spec = registry.get(f"real-trace-{fmt}")
            assert spec.family == "real-trace-fit"
            assert spec.ingest.format == fmt
            assert spec.ingest.path == ""
            with pytest.raises(ParameterError, match="ingest.path is empty"):
                run_scenario(spec)

    def test_template_runs_once_pointed_at_a_file(self, nf5_archive):
        spec = default_registry().get("real-trace-netflow5")
        spec = spec.with_overrides(
            ingest={"path": str(nf5_archive), "format": "netflow5"},
            generation=None,
        )
        result = run_scenario(spec)
        assert result.ingest is not None
        assert result.ingest.summary()["records"] == 60


class TestRunScenario:
    def make_spec(self, path, **ingest_kwargs):
        return ScenarioSpec(
            name="fit-archive",
            ingest=IngestSpec(path=str(path), **ingest_kwargs),
            generation=None,
        )

    def test_stage_chain(self):
        names = [stage.name for stage in INGEST_STAGES]
        assert names[0] == "import_flows"
        assert "account_flows" in names and "fit_model" in names

    def test_end_to_end_netflow5(self, nf5_archive):
        result = run_scenario(self.make_spec(nf5_archive))
        assert result.synthesis is None
        summary = result.ingest.summary()
        assert summary["format"] == "netflow5"
        assert summary["records"] == 60
        assert summary["packets"] == 240
        assert result.accounting.flows.statistics(
            summary["duration_s"]
        ).flow_count > 0
        assert result.fit is not None
        assert result.validation is not None

    def test_report_carries_import_stage(self, nf5_archive):
        report = run_scenario(self.make_spec(nf5_archive)).report()
        stage = report["stages"]["import_flows"]
        assert stage["format"] == "netflow5"
        assert stage["records"] == 60
        assert "synthesize" not in report["stages"]
        json.dumps(report)  # JSON-safe

    def test_utilization_from_link_capacity(self, nf5_archive):
        spec = self.make_spec(nf5_archive, link_capacity_bps=1e6)
        summary = run_scenario(spec).ingest.summary()
        assert summary["utilization"] == pytest.approx(
            summary["mean_rate_bps"] / 1e6
        )

    def test_pcap_scenario(self, tmp_path):
        path = tmp_path / "cap.pcap"
        write_pcap(make_packets(400, spacing=0.01, size=400), path)
        result = run_scenario(self.make_spec(path, format="pcap"))
        assert result.ingest.summary()["packets"] == 400

    def test_ipfix_scenario_auto_format(self, tmp_path):
        path = tmp_path / "cap.ipfix"
        write_ipfix(make_records(25), path)
        result = run_scenario(self.make_spec(path))
        assert result.ingest.summary()["format"] == "ipfix"
        assert result.ingest.summary()["records"] == 25

    def test_empty_archive_is_an_error(self, tmp_path):
        from repro.interop import FLOW_RECORD_DTYPE

        path = tmp_path / "empty.nf5"
        write_netflow5(np.empty(0, dtype=FLOW_RECORD_DTYPE), path)
        with pytest.raises(ReproError, match="nothing to fit|too short"):
            run_scenario(self.make_spec(path, format="netflow5"))

    def test_missing_file_is_an_error(self, tmp_path):
        with pytest.raises(ReproError, match="no such file"):
            run_scenario(self.make_spec(tmp_path / "gone.nf5"))
