"""Regenerate the committed golden telemetry fixtures.

Run from the repository root::

    PYTHONPATH=src python tests/interop/fixtures/make_fixtures.py

The fixtures are tiny hand-pinned archives — five flow records and six
packets — written through the repro writers.  ``test_fixtures.py``
decodes the committed bytes and asserts the exact values below, so any
(intended or accidental) wire-format change shows up as a diff against
binaries in version control, not just as a same-code round trip.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.interop import (
    FLOW_RECORD_DTYPE,
    write_ipfix,
    write_netflow5,
    write_pcap,
)
from repro.trace import PACKET_DTYPE

HERE = Path(__file__).resolve().parent

#: (start, end, src, dst, sport, dport, proto, packets, octets)
GOLDEN_RECORDS = [
    (0.000, 1.500, 0x0A000001, 0xC0A80001, 40001, 80, 6, 10, 15000),
    (0.250, 0.750, 0x0A000002, 0xC0A80002, 40002, 443, 6, 4, 2960),
    (0.500, 0.500, 0x0A000003, 0xC0A80003, 53, 53, 17, 1, 128),
    (1.000, 9.000, 0x0A000004, 0xC0A80004, 40004, 22, 6, 100, 144000),
    (2.125, 3.375, 0x0A000005, 0xC0A80005, 40005, 8080, 17, 3, 1500),
]

#: (timestamp, src, dst, sport, dport, proto, size)
GOLDEN_PACKETS = [
    (0.000000, 0x0A000001, 0xC0A80001, 40001, 80, 6, 1500),
    (0.000125, 0x0A000002, 0xC0A80002, 40002, 443, 6, 40),
    (0.001000, 0x0A000003, 0xC0A80003, 53, 53, 17, 128),
    (0.010000, 0x0A000001, 0xC0A80001, 40001, 80, 6, 1500),
    (0.100000, 0x0A000004, 0xC0A80004, 40004, 22, 6, 576),
    (1.000000, 0x0A000005, 0xC0A80005, 40005, 8080, 17, 333),
]


def golden_records() -> np.ndarray:
    records = np.zeros(len(GOLDEN_RECORDS), dtype=FLOW_RECORD_DTYPE)
    for i, row in enumerate(GOLDEN_RECORDS):
        records[i] = row
    return records


def golden_packets() -> np.ndarray:
    packets = np.zeros(len(GOLDEN_PACKETS), dtype=PACKET_DTYPE)
    for i, row in enumerate(GOLDEN_PACKETS):
        packets[i] = row
    return packets


def main() -> None:
    n = write_netflow5(golden_records(), HERE / "golden.nf5")
    print(f"golden.nf5   : {n} records")
    n = write_ipfix(golden_records(), HERE / "golden.ipfix")
    print(f"golden.ipfix : {n} records")
    n = write_pcap(golden_packets(), HERE / "golden.pcap")
    print(f"golden.pcap  : {n} packets")


if __name__ == "__main__":
    main()
