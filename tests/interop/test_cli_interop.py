"""CLI: ``repro import`` / ``repro export`` / telemetry-aware ``measure``."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


@pytest.fixture()
def trace_file(tmp_path):
    path = tmp_path / "link.rptr"
    assert main(
        ["synthesize", str(path), "--preset", "3", "--duration", "20",
         "--seed", "11"]
    ) == 0
    return path


@pytest.fixture()
def nf5_file(trace_file, tmp_path):
    path = tmp_path / "link.nf5"
    assert main(
        ["export", str(trace_file), str(path), "--format", "netflow5"]
    ) == 0
    return path


class TestExport:
    @pytest.mark.parametrize("fmt", ["netflow5", "ipfix", "pcap"])
    def test_export_formats(self, trace_file, tmp_path, capsys, fmt):
        out_path = tmp_path / f"out.{fmt}"
        assert main(
            ["export", str(trace_file), str(out_path), "--format", fmt]
        ) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert f"(rptr -> {fmt})" in out
        assert out_path.stat().st_size > 0

    def test_transcode_netflow5_to_ipfix(self, nf5_file, tmp_path, capsys):
        out_path = tmp_path / "out.ipfix"
        assert main(
            ["export", str(nf5_file), str(out_path), "--format", "ipfix"]
        ) == 0
        assert "(netflow5 -> ipfix)" in capsys.readouterr().out

    def test_missing_input_fails_cleanly(self, tmp_path, capsys):
        assert main(
            ["export", str(tmp_path / "gone.rptr"),
             str(tmp_path / "o.nf5"), "--format", "netflow5"]
        ) == 2
        assert "no such file" in capsys.readouterr().err


class TestImport:
    def test_prints_full_report(self, nf5_file, capsys):
        assert main(["import", str(nf5_file)]) == 0
        out = capsys.readouterr().out
        assert "netflow5:link.nf5" in out
        assert "parameters : lambda" in out
        assert "capacity   :" in out

    def test_report_file(self, nf5_file, tmp_path, capsys):
        report_path = tmp_path / "rep.json"
        assert main(
            ["import", str(nf5_file), "--report", str(report_path)]
        ) == 0
        report = json.loads(report_path.read_text())
        assert report["stages"]["import_flows"]["format"] == "netflow5"
        assert report["stages"]["import_flows"]["records"] > 0
        assert "fit_model" in report["stages"]
        assert "validation" in report

    def test_link_capacity_reports_utilization(self, nf5_file, capsys):
        assert main(
            ["import", str(nf5_file), "--link-capacity", "19437500"]
        ) == 0
        assert "util" in capsys.readouterr().out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["import", str(tmp_path / "gone.nf5")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_chunked_matches_default(self, nf5_file, capsys):
        assert main(["import", str(nf5_file)]) == 0
        whole = capsys.readouterr().out
        assert main(["import", str(nf5_file), "--chunk", "16"]) == 0
        chunked = capsys.readouterr().out
        assert chunked == whole


class TestMeasureTelemetry:
    def test_measure_auto_sniffs_netflow5(self, nf5_file, capsys):
        assert main(["measure", str(nf5_file)]) == 0
        out = capsys.readouterr().out
        assert "parameters : lambda" in out

    def test_measure_explicit_format(self, nf5_file, capsys):
        assert main(
            ["measure", str(nf5_file), "--format", "netflow5",
             "--chunk", "32"]
        ) == 0
        assert "flows" in capsys.readouterr().out

    def test_measure_rptr_unchanged(self, trace_file, capsys):
        """The native path still owns .rptr (and its error messages)."""
        assert main(["measure", str(trace_file)]) == 0
        assert "parameters" in capsys.readouterr().out

    def test_measure_missing_file_keeps_legacy_error(self, tmp_path):
        # --format auto must not change the historical failure mode for
        # bad paths: the native reader still raises, exactly as before
        with pytest.raises(FileNotFoundError):
            main(["measure", str(tmp_path / "gone.rptr")])


class TestRunIngestScenario:
    def test_run_template_with_ingest_path(self, nf5_file, tmp_path, capsys):
        report_path = tmp_path / "run.json"
        assert main(
            ["run", "real-trace-netflow5", "--ingest-path", str(nf5_file),
             "--report", str(report_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "import     : netflow5:link.nf5" in out
        report = json.loads(report_path.read_text())
        assert report["stages"]["import_flows"]["records"] > 0

    def test_template_without_path_fails_cleanly(self, capsys):
        assert main(["run", "real-trace-netflow5"]) == 2
        assert "ingest.path is empty" in capsys.readouterr().err

    def test_ingest_path_rejected_for_synthetic_scenarios(self, capsys):
        assert main(
            ["run", "medium", "--ingest-path", "x.nf5"]
        ) == 2
        assert "--ingest-path" in capsys.readouterr().err

    def test_list_scenarios_shows_family(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "real-trace-netflow5" in out
