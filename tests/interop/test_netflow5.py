"""NetFlow v5 wire format: writer layout, reader decoding, corruption."""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.exceptions import TraceFormatError
from repro.interop import (
    FLOW_RECORD_DTYPE,
    NetFlow5Reader,
    NetFlow5Writer,
    write_netflow5,
)
from repro.interop.netflow5 import (
    MAX_RECORDS_PER_DATAGRAM,
    NETFLOW5_HEADER,
    NETFLOW5_RECORD_SIZE,
)

from .conftest import MS_ATOL, make_records


def read_all(path, **kwargs):
    blocks = list(NetFlow5Reader(path, **kwargs))
    return np.concatenate(blocks) if blocks else np.empty(
        0, dtype=FLOW_RECORD_DTYPE
    )


class TestWriter:
    def test_wire_layout(self, tmp_path):
        path = tmp_path / "a.nf5"
        assert write_netflow5(make_records(7), path) == 7
        data = path.read_bytes()
        assert len(data) == NETFLOW5_HEADER.size + 7 * NETFLOW5_RECORD_SIZE
        version, count = struct.unpack(">HH", data[:4])
        assert version == 5
        assert count == 7

    def test_datagram_cap_is_30_records(self, tmp_path):
        path = tmp_path / "b.nf5"
        n = MAX_RECORDS_PER_DATAGRAM * 2 + 5
        write_netflow5(make_records(n), path)
        expected = (
            3 * NETFLOW5_HEADER.size + n * NETFLOW5_RECORD_SIZE
        )
        assert path.stat().st_size == expected
        counts = []
        data = path.read_bytes()
        pos = 0
        while pos < len(data):
            _, count = struct.unpack_from(">HH", data, pos)
            counts.append(count)
            pos += NETFLOW5_HEADER.size + count * NETFLOW5_RECORD_SIZE
        assert counts == [30, 30, 5]

    def test_flow_sequence_is_cumulative(self, tmp_path):
        path = tmp_path / "c.nf5"
        with NetFlow5Writer(path) as writer:
            writer.write(make_records(40))
            writer.write(make_records(3, seed=1))
        data = path.read_bytes()
        sequences = []
        pos = 0
        while pos < len(data):
            fields = NETFLOW5_HEADER.unpack_from(data, pos)
            sequences.append(fields[5])
            pos += NETFLOW5_HEADER.size + fields[1] * NETFLOW5_RECORD_SIZE
        assert sequences == [0, 30, 40]

    def test_rejects_negative_start(self, tmp_path):
        records = make_records(3, start=-1.0)
        with pytest.raises(TraceFormatError, match="rebase"):
            write_netflow5(records, tmp_path / "neg.nf5")

    def test_rejects_timestamps_past_u32_ms(self, tmp_path):
        records = make_records(3, start=1.7e9)  # epoch seconds
        with pytest.raises(TraceFormatError, match="32-bit milliseconds"):
            write_netflow5(records, tmp_path / "epoch.nf5")

    def test_rejects_wrong_dtype(self, tmp_path):
        with NetFlow5Writer(tmp_path / "d.nf5") as writer:
            with pytest.raises(TraceFormatError, match="FLOW_RECORD_DTYPE"):
                writer.write(np.zeros(3, dtype=np.float64))


class TestRoundTrip:
    def test_fields_exact_timestamps_quantized(self, tmp_path):
        records = make_records(200, spacing=0.013, span=1.7)
        path = tmp_path / "rt.nf5"
        write_netflow5(records, path)
        back = read_all(path)
        assert back.size == records.size
        for field in ("src_addr", "dst_addr", "src_port", "dst_port",
                      "protocol", "packets", "octets"):
            np.testing.assert_array_equal(back[field], records[field])
        # the documented 1 ms wire quantization
        np.testing.assert_allclose(back["start"], records["start"],
                                   atol=MS_ATOL)
        np.testing.assert_allclose(back["end"], records["end"], atol=MS_ATOL)

    def test_chunked_reader_matches_whole_read(self, tmp_path):
        records = make_records(97)
        path = tmp_path / "ch.nf5"
        write_netflow5(records, path)
        small = list(NetFlow5Reader(path, chunk=10))
        assert len(small) > 1
        np.testing.assert_array_equal(np.concatenate(small), read_all(path))

    def test_reader_is_reiterable(self, tmp_path):
        path = tmp_path / "re.nf5"
        write_netflow5(make_records(12), path)
        reader = NetFlow5Reader(path)
        first = np.concatenate(list(reader))
        second = np.concatenate(list(reader))
        np.testing.assert_array_equal(first, second)

    def test_epoch_anchored_archive_decodes(self, tmp_path):
        """A router-style header (non-zero anchor) shifts both ends."""
        path = tmp_path / "anchored.nf5"
        write_netflow5(make_records(4), path)
        data = bytearray(path.read_bytes())
        # sys_uptime=5000 ms, unix_secs=1_000_000 → base = 999_995 s
        struct.pack_into(">II", data, 4, 5_000, 1_000_000)
        path.write_bytes(bytes(data))
        back = read_all(path)
        base = 1_000_000.0 - 5.0
        np.testing.assert_allclose(
            back["start"], base + make_records(4)["start"], atol=MS_ATOL
        )


class TestCorruption:
    def test_truncated_header_names_offset(self, tmp_path):
        path = tmp_path / "t.nf5"
        write_netflow5(make_records(2), path)
        good = path.read_bytes()
        path.write_bytes(good + good[:10])  # half a second datagram header
        offset = len(good)
        with pytest.raises(
            TraceFormatError, match=rf"byte offset {offset}.*expected 24"
        ):
            read_all(path)

    def test_truncated_payload_names_offset_and_size(self, tmp_path):
        path = tmp_path / "p.nf5"
        write_netflow5(make_records(2), path)
        path.write_bytes(path.read_bytes()[:-20])
        with pytest.raises(
            TraceFormatError,
            match=r"truncated NetFlow v5 datagram at byte offset 24.*"
            r"expected 96 \(2 records of 48 bytes\)",
        ):
            read_all(path)

    def test_bad_version_names_offset(self, tmp_path):
        path = tmp_path / "v.nf5"
        write_netflow5(make_records(2), path)
        data = bytearray(path.read_bytes())
        data[1] = 9
        path.write_bytes(bytes(data))
        with pytest.raises(
            TraceFormatError, match="bad NetFlow version 9 at byte offset 0"
        ):
            read_all(path)

    def test_implausible_count_rejected(self, tmp_path):
        path = tmp_path / "n.nf5"
        write_netflow5(make_records(2), path)
        data = bytearray(path.read_bytes())
        struct.pack_into(">H", data, 2, 0)
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="implausible record count"):
            read_all(path)

    def test_last_before_first_rejected(self, tmp_path):
        path = tmp_path / "lf.nf5"
        write_netflow5(make_records(2, span=1.0), path)
        data = bytearray(path.read_bytes())
        # swap record 0's first/last words (first at +24, last at +28)
        rec = NETFLOW5_HEADER.size
        first = bytes(data[rec + 24: rec + 28])
        last = bytes(data[rec + 28: rec + 32])
        data[rec + 24: rec + 28] = last
        data[rec + 28: rec + 32] = first
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="Last < First"):
            read_all(path)

    def test_chunk_must_be_positive(self, tmp_path):
        path = tmp_path / "x.nf5"
        write_netflow5(make_records(2), path)
        with pytest.raises(TraceFormatError, match="chunk"):
            NetFlow5Reader(path, chunk=0)
