"""Deprecation warnings must point at the *caller's* line.

A warning that names ``spec.py`` (or ``harness.py``) as its source is
useless — the operator migrating a config needs to see their own file
and line.  These tests pin ``warning.filename`` to this test file for
every public entry point that still accepts the legacy flat
``chunk``/``workers`` spelling, and for the deprecated harness shims.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.pipeline import ScenarioSpec

LEGACY = {
    "name": "legacy",
    "workload": {"preset": "low", "duration": 5.0},
    "measurement": {"chunk": 4096},
}


def catch_legacy(call):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        call()
    legacy = [
        w for w in caught
        if issubclass(w.category, DeprecationWarning)
        and "flat" in str(w.message)
    ]
    assert len(legacy) == 1, [str(w.message) for w in caught]
    return legacy[0]


class TestSpecEntryPoints:
    def test_from_dict_points_here(self):
        warning = catch_legacy(lambda: ScenarioSpec.from_dict(LEGACY))
        assert warning.filename == __file__

    def test_from_json_points_here(self):
        text = json.dumps(LEGACY)
        warning = catch_legacy(lambda: ScenarioSpec.from_json(text))
        assert warning.filename == __file__

    def test_from_file_points_here(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(LEGACY))
        warning = catch_legacy(lambda: ScenarioSpec.from_file(path))
        assert warning.filename == __file__

    def test_with_overrides_points_here(self):
        spec = ScenarioSpec(name="x")
        warning = catch_legacy(
            lambda: spec.with_overrides(measurement={"workers": 2})
        )
        assert warning.filename == __file__

    def test_message_names_the_section_and_migration_doc(self):
        warning = catch_legacy(lambda: ScenarioSpec.from_dict(LEGACY))
        message = str(warning.message)
        assert "spec.measurement" in message
        assert "MIGRATION.md" in message


class TestHarnessShims:
    @pytest.fixture(scope="class")
    def tiny_trace(self):
        from repro.netsim.workloads import table_i_workloads

        return table_i_workloads(duration=5.0)[3].synthesize(seed=0).trace

    def test_measure_trace_points_here(self, tiny_trace):
        from repro.experiments.harness import measure_trace

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            measure_trace(tiny_trace)
        shim = [w for w in caught if "measure_trace is deprecated"
                in str(w.message)]
        assert len(shim) == 1
        assert shim[0].filename == __file__

    def test_run_cov_validation_warns_with_caller_file(self):
        from repro.experiments import harness

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            try:
                harness.run_cov_validation(seeds=())
            except Exception:
                pass  # only the warning's provenance is under test
        shim = [w for w in caught if "run_cov_validation is deprecated"
                in str(w.message)]
        assert len(shim) == 1
        assert shim[0].filename == __file__
