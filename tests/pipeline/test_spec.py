"""ScenarioSpec serialization: round-trips, validation, preset resolution."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ParameterError
from repro.netsim.arrivals import (
    DiurnalArrivals,
    MMPPArrivals,
    SessionArrivals,
)
from repro.pipeline import (
    AnomalySpec,
    ArrivalSpec,
    EstimationSpec,
    FitSpec,
    GenerationSpec,
    MeasurementSpec,
    ScenarioSpec,
    ValidationSpec,
    WorkloadSpec,
    default_registry,
    resolve_preset,
)


def _rich_spec() -> ScenarioSpec:
    """A spec exercising every nested section."""
    return ScenarioSpec(
        name="rich",
        description="everything enabled",
        seed=5,
        workload=WorkloadSpec(
            preset="table-i-1",
            duration=60.0,
            arrivals=ArrivalSpec(kind="diurnal", relative_amplitude=0.3),
        ),
        measurement=MeasurementSpec(chunk=100_000, workers=4),
        estimation=EstimationSpec(delta=0.1, estimator="ewma"),
        fit=FitSpec(powers=(0.0, 1.5), class_split_bytes=10e3),
        generation=GenerationSpec(mode="streamed", chunk=5.0, workers=2),
        anomaly=AnomalySpec(kind="flood", start=10.0, duration=5.0),
        validation=ValidationSpec(detect_anomalies=True, max_lag=10),
    )


class TestRoundTrip:
    @pytest.mark.parametrize("name", ["medium", "mice-elephants",
                                      "diurnal-ramp", "flash-flood"])
    def test_registry_specs_round_trip(self, name):
        spec = default_registry().get(name)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_dict_json_dict_identity(self):
        spec = _rich_spec()
        via_json = ScenarioSpec.from_json(spec.to_json())
        assert via_json == spec
        # and the dict is genuinely JSON-safe
        assert json.loads(spec.to_json()) == spec.to_dict()

    def test_file_round_trip(self, tmp_path):
        spec = _rich_spec()
        path = spec.to_file(tmp_path / "rich.json")
        assert ScenarioSpec.from_file(path) == spec

    def test_powers_normalised_to_float_tuple(self):
        spec = ScenarioSpec(name="x", workload=WorkloadSpec(preset="low"),
                            fit=FitSpec(powers=[0, 1]))
        assert spec.fit.powers == (0.0, 1.0)
        assert isinstance(spec.fit.powers, tuple)

    def test_null_generation_round_trips(self):
        spec = ScenarioSpec(
            name="no-gen", workload=WorkloadSpec(preset="low"),
            generation=None,
        )
        back = ScenarioSpec.from_dict(spec.to_dict())
        assert back.generation is None
        assert back == spec

    def test_measurement_section(self):
        default = MeasurementSpec()
        assert not default.uses_engine
        assert MeasurementSpec(chunk=1000).uses_engine
        assert MeasurementSpec(workers=2).uses_engine
        with pytest.raises(ParameterError, match="measurement.chunk"):
            MeasurementSpec(chunk=0)
        with pytest.raises(ParameterError, match="measurement.workers"):
            MeasurementSpec(workers=0)
        with pytest.raises(ParameterError, match="measurement.workers"):
            MeasurementSpec(workers=1.5)  # silently truthy if truncated
        data = default_registry().get("medium").to_dict()
        data["measurement"] = {"chunk": 5000, "workers": 2, "typo": 1}
        with pytest.raises(ParameterError, match=r"spec\.measurement"):
            ScenarioSpec.from_dict(data)


class TestRejection:
    def test_unknown_top_level_key(self):
        data = default_registry().get("medium").to_dict()
        data["worklod"] = data.pop("workload")
        with pytest.raises(ParameterError, match="unknown key.*worklod"):
            ScenarioSpec.from_dict(data)

    def test_unknown_key_lists_valid_ones(self):
        with pytest.raises(ParameterError, match="valid keys"):
            ScenarioSpec.from_dict({"name": "x", "bogus": 1})

    def test_nested_error_carries_path(self):
        data = default_registry().get("medium").to_dict()
        data["flows"]["kind"] = "six_tuple"
        with pytest.raises(ParameterError, match=r"spec\.flows"):
            ScenarioSpec.from_dict(data)

    def test_workload_needs_exactly_one_source(self):
        with pytest.raises(ParameterError, match="exactly one"):
            WorkloadSpec()
        with pytest.raises(ParameterError, match="exactly one"):
            WorkloadSpec(preset="low", target_mean_rate_bps=1e6)

    def test_not_json(self):
        with pytest.raises(ParameterError, match="not valid JSON"):
            ScenarioSpec.from_json("{nope")

    @pytest.mark.parametrize("section,key,bad", [
        ("workload", "duration", "long"),   # ValueError from float()
        ("workload", "duration", None),     # TypeError from float(None)
        ("estimation", "delta", "fast"),
    ])
    def test_mistyped_value_fails_with_path(self, section, key, bad):
        """Wrong-typed values must surface as ParameterError, not raw
        ValueError/TypeError tracebacks."""
        data = default_registry().get("medium").to_dict()
        data[section][key] = bad
        with pytest.raises(ParameterError, match=rf"spec\.{section}"):
            ScenarioSpec.from_dict(data)

    def test_mistyped_seed_fails_with_path(self):
        data = default_registry().get("medium").to_dict()
        data["seed"] = "five"
        with pytest.raises(ParameterError, match="spec"):
            ScenarioSpec.from_dict(data)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ParameterError, match="does not exist"):
            ScenarioSpec.from_file(tmp_path / "missing.json")

    def test_empty_name_rejected(self):
        with pytest.raises(ParameterError, match="non-empty"):
            ScenarioSpec(name="  ", workload=WorkloadSpec(preset="low"))

    def test_bad_estimator(self):
        with pytest.raises(ParameterError, match="estimation.estimator"):
            EstimationSpec(estimator="kalman")

    def test_bad_generation_mode(self):
        with pytest.raises(ParameterError, match="generation.mode"):
            GenerationSpec(mode="psychic")

    def test_anomaly_needs_workload(self):
        with pytest.raises(ParameterError, match="workload"):
            ScenarioSpec(name="x", workload=None,
                         anomaly=AnomalySpec(kind="flood"))


class TestPresets:
    @pytest.mark.parametrize("alias,row", [("low", 3), ("medium", 4),
                                           ("high", 2)])
    def test_aliases(self, alias, row):
        assert resolve_preset(alias) == row

    @pytest.mark.parametrize("ref,row", [("0", 0), (6, 6), ("table-i-5", 5)])
    def test_row_references(self, ref, row):
        assert resolve_preset(ref) == row

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ParameterError) as err:
            resolve_preset("enormous")
        message = str(err.value)
        assert "low" in message and "medium" in message and "high" in message
        assert "0-6" in message

    def test_out_of_range_row(self):
        with pytest.raises(ParameterError, match="0-6"):
            resolve_preset(7)


class TestArrivalBuild:
    def test_diurnal(self):
        process = ArrivalSpec(kind="diurnal", relative_amplitude=0.4).build(
            10.0, 120.0
        )
        assert isinstance(process, DiurnalArrivals)
        assert process.mean_rate == pytest.approx(10.0)
        assert process.period == pytest.approx(120.0)

    def test_mmpp_scales_base_rate(self):
        process = ArrivalSpec(
            kind="mmpp", rate_factors=(0.5, 2.0), mean_sojourns=(5.0, 5.0)
        ).build(8.0, 60.0)
        assert isinstance(process, MMPPArrivals)
        assert process.mean_rate == pytest.approx(8.0 * 1.25)

    def test_sessions_preserve_flow_rate(self):
        process = ArrivalSpec(kind="sessions", flows_per_session=4.0).build(
            12.0, 60.0
        )
        assert isinstance(process, SessionArrivals)
        assert process.mean_rate == pytest.approx(12.0)
