"""Tests for the pipeline's network layer: spec, stage, registry, quick mode."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.pipeline import (
    DemandSpec,
    NETWORK_STAGES,
    NetworkEventSpec,
    NetworkSpec,
    ScenarioSpec,
    TopologySpec,
    ValidationSpec,
    apply_quick_mode,
    default_registry,
    run_scenario,
)

DURATION = 8.0


def network_spec(**overrides) -> ScenarioSpec:
    kwargs = dict(
        topology=TopologySpec(preset="parallel-paths", size=2),
        demands=(DemandSpec("src", "dst", preset="medium"),),
        routing="ecmp",
        duration=DURATION,
    )
    kwargs.update(overrides)
    return ScenarioSpec(name="net-test", network=NetworkSpec(**kwargs))


class TestNetworkSpec:
    def test_json_round_trip(self):
        spec = network_spec(
            events=(
                NetworkEventSpec(
                    kind="outage", link=("src", "mid0"), start=2.0,
                    duration=2.0,
                ),
                NetworkEventSpec(
                    kind="flash_crowd", demand=0, start=1.0, duration=3.0,
                    factor=5.0,
                ),
            )
        )
        back = ScenarioSpec.from_json(spec.to_json())
        assert back == spec
        assert back.network.events[0].link == ("src", "mid0")

    def test_explicit_topology_round_trip(self):
        spec = ScenarioSpec(
            name="explicit",
            network=NetworkSpec(
                topology=TopologySpec(
                    links=(
                        {"a": "x", "b": "y", "capacity_bps": 1e7},
                        {"a": "y", "b": "z", "capacity_bps": 1e7,
                         "bidirectional": False},
                    )
                ),
                demands=(
                    DemandSpec("x", "z", target_mean_rate_bps=1e6),
                ),
                duration=DURATION,
            ),
        )
        topology, demands, events = spec.network.build()
        assert topology.has_link("y", "x")
        assert not topology.has_link("z", "y")
        assert demands[0].workload.target_mean_rate_bps == 1e6
        assert events == ()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_unknown_key_pinpoints_path(self):
        data = network_spec().to_dict()
        data["network"]["demands"][0]["sinkk"] = "typo"
        with pytest.raises(ParameterError, match=r"network\.demands\[0\]"):
            ScenarioSpec.from_dict(data)

    def test_workload_and_network_are_exclusive(self):
        from repro.pipeline import WorkloadSpec

        with pytest.raises(ParameterError, match="not both"):
            ScenarioSpec(
                name="both",
                workload=WorkloadSpec(preset="medium"),
                network=network_spec().network,
            )

    def test_network_rejects_anomaly_section(self):
        from repro.pipeline import AnomalySpec

        with pytest.raises(ParameterError, match="network events"):
            ScenarioSpec(
                name="bad",
                network=network_spec().network,
                anomaly=AnomalySpec(),
            )

    def test_event_demand_out_of_range(self):
        with pytest.raises(ParameterError, match="targets demand 3"):
            network_spec(
                events=(
                    NetworkEventSpec(
                        kind="flash_crowd", demand=3, start=1.0,
                        duration=1.0,
                    ),
                )
            )

    def test_outage_needs_link(self):
        with pytest.raises(ParameterError, match="needs 'link'"):
            NetworkEventSpec(kind="outage", start=1.0, duration=1.0)

    def test_line_preset_needs_two_routers_at_spec_time(self):
        """Declaration-time rejection, not a mid-run build error."""
        with pytest.raises(ParameterError, match=r"network\.topology\.size"):
            TopologySpec(preset="line", size=1)
        # parallel-paths tolerates size=1 (two fibres, four directed links)
        assert TopologySpec(preset="parallel-paths", size=1).build().n_links == 4

    def test_demands_required(self):
        with pytest.raises(ParameterError, match="at least one"):
            NetworkSpec(
                topology=TopologySpec(preset="line"), demands=()
            )

    def test_family_property(self):
        assert network_spec().family == "network"
        assert default_registry().get("medium").family == "single-link"

    def test_per_demand_address_blocks_tiled_by_the_engine(self):
        """Tiling is the engine's mechanism, shared by every build path."""
        spec = network_spec(
            demands=(
                DemandSpec("src", "dst", preset="medium"),
                DemandSpec("dst", "src", preset="low"),
            )
        )
        _, demands, _ = spec.network.build()
        # the spec layer leaves address spaces alone ...
        bases = [d.workload.address_space.dst_base for d in demands]
        assert bases[0] == bases[1]
        # ... and the matrix-level tiling makes them disjoint
        tiled = demands.with_tiled_addresses()
        tiled_bases = [d.workload.address_space.dst_base for d in tiled]
        assert tiled_bases[0] != tiled_bases[1]
        assert tiled_bases[0] == bases[0]  # demand 0 untouched


class TestSimulateNetworkStage:
    def test_run_scenario_dispatches_network_stages(self):
        result = run_scenario(network_spec())
        assert result.network is not None
        assert result.synthesis is None
        assert result.trace is None
        report = result.network.report
        assert report.routing == "ecmp"
        assert any(entry.packets for entry in report.links)

    def test_report_includes_spec_and_network(self):
        result = run_scenario(network_spec())
        payload = result.report()
        assert payload["spec"]["name"] == "net-test"
        assert payload["network"]["routing"] == "ecmp"

    def test_explicit_network_stages(self):
        result = run_scenario(network_spec(), stages=NETWORK_STAGES)
        assert result.network is not None

    def test_stage_refuses_single_link_spec(self):
        from repro.pipeline import SimulateNetwork, PipelineContext

        spec = default_registry().get("medium")
        with pytest.raises(ParameterError, match="no 'network' section"):
            SimulateNetwork().run(PipelineContext(spec=spec))

    def test_results_invariant_to_chunk_and_workers(self):
        base = run_scenario(network_spec())
        varied = run_scenario(
            network_spec(chunk=2048, workers=3)
        )
        for link, entry in base.network.simulation.links.items():
            other = varied.network.simulation.links[link]
            assert entry.packet_count == other.packet_count
            if entry.series is not None:
                assert np.array_equal(
                    entry.series.values, other.series.values
                )

    def test_seed_changes_results(self):
        a = run_scenario(network_spec())
        b = run_scenario(network_spec().with_overrides(seed=1))
        la = a.network.simulation[("src", "mid0")]
        lb = b.network.simulation[("src", "mid0")]
        assert la.packet_count != lb.packet_count


class TestRegistryNetworkScenarios:
    def test_network_presets_registered(self):
        registry = default_registry()
        for name in ("abilene-table-i", "ecmp-flash-flood",
                     "outage-reroute"):
            assert name in registry
            assert registry.get(name).network is not None

    def test_families_group_the_registry(self):
        families = default_registry().families()
        assert set(families) == {
            "single-link", "network", "sweep", "real-trace-fit"
        }
        network_names = [name for name, _ in families["network"]]
        assert "abilene-table-i" in network_names
        single_names = [name for name, _ in families["single-link"]]
        assert "medium" in single_names
        assert "abilene-table-i" not in single_names
        sweep_names = [name for name, _ in families["sweep"]]
        assert "abilene-single-failure-2x" in sweep_names

    def test_quick_mode_caps_network_duration_and_events(self):
        spec = apply_quick_mode(
            default_registry().get("outage-reroute"), force=True
        )
        assert spec.network.duration == 30.0
        event = spec.network.events[0]
        assert event.start + event.duration <= spec.network.duration

    def test_quick_mode_noop_when_short(self):
        spec = network_spec()
        assert apply_quick_mode(spec, force=True) is spec

    def test_outage_reroute_scenario_detects_the_outage(self):
        spec = apply_quick_mode(
            default_registry().get("outage-reroute"), force=True
        )
        result = run_scenario(spec)
        failed = result.network.simulation[("src", "mid0")]
        assert any(event.kind == "drop" for event in failed.anomalies)

    def test_network_validation_knobs_flow_through(self):
        spec = network_spec(
            demands=(DemandSpec("src", "dst", preset="medium"),),
        )
        # epsilon tightening raises the required capacity on every link
        loose = run_scenario(spec)
        tight = run_scenario(
            ScenarioSpec(
                name="net-test",
                network=spec.network,
                validation=ValidationSpec(epsilon=0.0001),
            )
        )
        for link, entry in loose.network.simulation.links.items():
            if entry.required_capacity_bps:
                other = tight.network.simulation.links[link]
                assert (
                    other.required_capacity_bps
                    > entry.required_capacity_bps
                )
