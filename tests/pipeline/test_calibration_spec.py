"""`calibration:` spec section, SizeDistributionSpec, and the stage."""

from __future__ import annotations

import pytest

from repro.exceptions import ParameterError
from repro.pipeline import (
    CalibrationSpec,
    FitSpec,
    ScenarioSpec,
    SizeDistributionSpec,
    WorkloadSpec,
    run_scenario,
)
from repro.pipeline.spec import ExecutionSpec


def base_spec(**kwargs):
    return ScenarioSpec(
        name="calib",
        workload=WorkloadSpec(
            target_mean_rate_bps=30e6,
            link_capacity_bps=622.08e6,
            duration=20.0,
        ),
        **kwargs,
    )


class TestSizeDistributionSpec:
    def test_roundtrip(self):
        spec = SizeDistributionSpec(
            kind="lognormal", median=3000.0, sigma=0.8
        )
        data = {"kind": "lognormal", "median": 3000.0, "sigma": 0.8}
        assert spec.params() == {"median": 3000.0, "sigma": 0.8}
        loaded = ScenarioSpec.from_dict(
            {
                "name": "s",
                "workload": {
                    "target_mean_rate_bps": 30e6,
                    "link_capacity_bps": 622.08e6,
                    "duration": 20.0,
                    "sizes": data,
                },
            }
        )
        assert loaded.workload.sizes == spec

    def test_unknown_kind(self):
        with pytest.raises(ParameterError, match="kind"):
            SizeDistributionSpec(kind="weibull", median=1.0)

    def test_missing_required_param(self):
        with pytest.raises(ParameterError, match="sigma"):
            SizeDistributionSpec(kind="lognormal", median=3000.0)

    def test_extraneous_param(self):
        with pytest.raises(ParameterError, match="alpha"):
            SizeDistributionSpec(
                kind="lognormal", median=3000.0, sigma=0.8, alpha=1.5
            )

    def test_invalid_values_caught_at_build(self):
        with pytest.raises(ParameterError):
            SizeDistributionSpec(kind="lognormal", median=-5.0, sigma=0.8)

    def test_sizes_replace_the_preset_law(self):
        workload = WorkloadSpec(
            preset="medium",
            sizes=SizeDistributionSpec(
                kind="exponential", mean_bytes=9000.0
            ),
        ).build()
        assert workload.size_dist.mean() == pytest.approx(9000.0)


class TestCalibrationSpecValidation:
    def test_defaults_roundtrip(self):
        spec = base_spec(calibration=CalibrationSpec())
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_unknown_family(self):
        with pytest.raises(ParameterError, match="families"):
            CalibrationSpec(families=("lognormal", "weibull"))

    def test_unknown_criterion(self):
        with pytest.raises(ParameterError, match="select"):
            CalibrationSpec(select="best")

    def test_bad_quantiles(self):
        with pytest.raises(ParameterError, match="tail_quantiles"):
            CalibrationSpec(tail_quantiles=(0.5, 1.5))

    def test_bad_tolerances(self):
        with pytest.raises(ParameterError, match="lambda_rtol"):
            CalibrationSpec(lambda_rtol=-0.1)

    def test_execution_aliases(self):
        section = CalibrationSpec(chunk=5000, workers=3)
        assert section.chunk == 5000
        assert section.workers == 3
        assert section.execution == ExecutionSpec(chunk=5000, workers=3)

    def test_network_conflict(self):
        with pytest.raises(ParameterError, match="calibration"):
            ScenarioSpec.from_dict(
                {
                    "name": "bad",
                    "network": {
                        "topology": {"preset": "abilene"},
                        "demands": [
                            {
                                "source": "seattle",
                                "sink": "newyork",
                                "preset": "medium",
                            }
                        ],
                    },
                    "calibration": {},
                }
            )


class TestFitUnification:
    """`fit:` keeps its semantics; `calibration:` defers or must agree."""

    def test_calibration_powers_default_to_fit_powers(self):
        spec = base_spec(
            fit=FitSpec(powers=(0.0, 1.5, 3.0)),
            calibration=CalibrationSpec(),
        )
        result = run_scenario(spec)
        assert result.calibration.powers == (0.0, 1.5, 3.0)

    def test_agreeing_powers_are_fine(self):
        base_spec(
            fit=FitSpec(powers=(0.0, 1.5, 3.0)),
            calibration=CalibrationSpec(powers=(0.0, 1.5, 3.0)),
        )

    def test_contradictory_powers_rejected(self):
        with pytest.raises(ParameterError, match="MIGRATION"):
            base_spec(
                fit=FitSpec(powers=(0.0, 1.5, 3.0)),
                calibration=CalibrationSpec(powers=(0.0, 1.0, 2.0)),
            )

    def test_shared_powers_validation(self):
        """Both sections reject bad powers with section-named messages."""
        with pytest.raises(ParameterError, match="calibration.powers"):
            CalibrationSpec(powers=())
        with pytest.raises(ParameterError, match="fit.powers"):
            FitSpec(powers=())
        with pytest.raises(ParameterError, match="calibration.powers"):
            CalibrationSpec(powers=(-1.0,))
        with pytest.raises(ParameterError, match="fit.powers"):
            FitSpec(powers=(-1.0,))


class TestCalibrateStage:
    def test_stage_is_noop_without_section(self):
        result = run_scenario(base_spec())
        assert result.calibration is None
        assert "calibrate" not in result.report()["stages"]

    def test_stage_populates_result(self):
        result = run_scenario(
            base_spec(calibration=CalibrationSpec(restarts=2))
        )
        assert result.calibration is not None
        report = result.calibration.report
        assert report.flow_count > 0
        assert report.family in CalibrationSpec().families
        stages = result.report()["stages"]
        assert stages["calibrate"]["calibration"]["family"] == report.family

    def test_stage_closed_loop(self):
        # a lognormal size law keeps the closed loop statistically
        # resolvable at ~50k synthetic flows; the paper's alpha~1.1
        # Pareto would need millions of samples to pin E[S] to 2%
        spec = ScenarioSpec(
            name="calib-loop",
            seed=3,
            workload=WorkloadSpec(
                target_mean_rate_bps=30e6,
                link_capacity_bps=622.08e6,
                duration=20.0,
                sizes=SizeDistributionSpec(
                    kind="lognormal", median=3000.0, sigma=0.8
                ),
            ),
            calibration=CalibrationSpec(restarts=2, validate=True),
        )
        result = run_scenario(spec)
        closed = result.calibration.closed_loop
        assert closed is not None
        assert closed.passed, closed.failures
