"""Runner/registry behaviour: determinism, equivalence, stage results."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core import PoissonShotNoiseModel, SuperposedModel
from repro.exceptions import ParameterError
from repro.flows import export_flows
from repro.netsim import medium_utilization_link, table_i_workload
from repro.pipeline import (
    EstimationSpec,
    FitSpec,
    GenerationSpec,
    MEASUREMENT_STAGES,
    MeasurementSpec,
    ScenarioSpec,
    WorkloadSpec,
    apply_quick_mode,
    default_registry,
    run_scenario,
    run_scenarios,
)
from repro.stats import RateSeries

DURATION = 24.0


def _short(name: str, **overrides) -> ScenarioSpec:
    spec = default_registry().get(name)
    workload = replace(spec.workload, duration=DURATION)
    return spec.with_overrides(workload=workload, **overrides)


class TestEquivalence:
    """The new stages reproduce the PR-1 outputs bit-for-bit."""

    def test_synthesize_matches_direct_workload(self):
        result = run_scenario(_short("medium"), stages=MEASUREMENT_STAGES)
        direct = medium_utilization_link(duration=DURATION).synthesize(
            seed=0
        ).trace
        assert np.array_equal(result.trace.packets, direct.packets)

    @pytest.mark.parametrize("row", [2, 3])
    def test_table_i_preset_traces(self, row):
        spec = _short(f"table-i-{row}")
        result = run_scenario(spec, stages=MEASUREMENT_STAGES)
        direct = table_i_workload(row, duration=DURATION).synthesize(
            seed=0
        ).trace
        assert np.array_equal(result.trace.packets, direct.packets)

    def test_measurement_matches_hand_wired_loop(self):
        """Stage outputs equal the historical export/measure/fit glue."""
        result = run_scenario(_short("medium"), stages=MEASUREMENT_STAGES)
        trace = result.trace

        flows = export_flows(
            trace, key="five_tuple", timeout=8.0, keep_packet_map=True
        )
        series = RateSeries.from_packets(
            trace, 0.2, packet_mask=flows.packet_flow_ids >= 0
        )
        model = PoissonShotNoiseModel.from_flows(
            flows.sizes, flows.durations, trace.duration
        )
        fit = model.fit_power(series.variance)

        assert len(result.accounting.flows) == len(flows)
        assert result.estimation.series.variance == series.variance
        assert (
            result.validation.measured_cov == series.coefficient_of_variation
        )
        assert result.fit.power_fit.power == fit.power
        assert result.fit.power_fit.kappa == fit.kappa


class TestStreamingMeasurement:
    """The measurement section is execution strategy, never semantics."""

    @pytest.mark.parametrize("chunk,workers", [(2048, 1), (999, 3), (None, 4)])
    def test_streaming_measurement_identical_report(self, chunk, workers):
        base_spec = _short("medium")
        streamed_spec = base_spec.with_overrides(
            measurement=MeasurementSpec(chunk=chunk, workers=workers)
        )
        base = run_scenario(base_spec, stages=MEASUREMENT_STAGES)
        streamed = run_scenario(streamed_spec, stages=MEASUREMENT_STAGES)
        assert streamed.accounting.engine == "streaming"
        assert base.accounting.engine == "in_memory"
        np.testing.assert_array_equal(
            base.accounting.flows.sizes, streamed.accounting.flows.sizes
        )
        np.testing.assert_array_equal(
            base.estimation.series.values, streamed.estimation.series.values
        )
        assert base.validation.to_dict() == streamed.validation.to_dict()

    def test_estimate_without_packet_map_raises_clear_error(self):
        """A FlowSet built without keep_packet_map=True used to crash
        Estimate with a bare TypeError ('>=' on None)."""
        from repro.pipeline.stages import (
            AccountingResult,
            Estimate,
            PipelineContext,
        )

        trace = medium_utilization_link(duration=DURATION).synthesize(
            seed=0
        ).trace
        flows = export_flows(trace, timeout=8.0)  # no packet map
        context = PipelineContext(spec=_short("medium"), trace=trace)
        context.accounting = AccountingResult(flows=flows)
        with pytest.raises(ParameterError, match="keep_packet_map"):
            Estimate().run(context)

    def test_estimate_uses_streamed_series_without_packet_map(self):
        """The streaming engine provides the series directly, so the
        missing packet map is not an error on that path."""
        spec = _short(
            "medium", measurement=MeasurementSpec(chunk=4096)
        )
        result = run_scenario(spec, stages=MEASUREMENT_STAGES)
        assert result.accounting.flows.packet_flow_ids is None
        assert result.estimation.series is result.accounting.series


class TestDeterminism:
    def test_run_many_invariant_to_workers(self):
        specs = [_short("medium"), _short("low", seed=3)]
        serial = run_scenarios(specs, workers=1)
        parallel = run_scenarios(specs, workers=4)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.trace.packets, b.trace.packets)
            assert a.validation.to_dict() == b.validation.to_dict()

    def test_generation_chunk_invariant(self):
        base = _short("medium")
        chunked = base.with_overrides(
            generation=GenerationSpec(chunk=3.0, workers=2)
        )
        a = run_scenario(base)
        b = run_scenario(chunked)
        np.testing.assert_array_equal(
            a.generation.series.values, b.generation.series.values
        )

    def test_same_spec_same_report(self):
        spec = _short("medium")
        assert (
            run_scenario(spec).validation.to_dict()
            == run_scenario(spec).validation.to_dict()
        )


class TestStageResults:
    def test_ewma_snapshot_reported(self):
        spec = _short(
            "medium", estimation=EstimationSpec(estimator="ewma")
        )
        result = run_scenario(spec, stages=MEASUREMENT_STAGES)
        online = result.estimation.online_statistics
        assert online is not None
        batch = result.estimation.statistics
        # EWMA weights recent flows; it should land in the same decade
        assert online.mean_size == pytest.approx(batch.mean_size, rel=2.0)

    def test_multiclass_superposition(self):
        result = run_scenario(
            _short("mice-elephants"), stages=MEASUREMENT_STAGES
        )
        assert isinstance(result.fit.superposed, SuperposedModel)
        assert len(result.fit.superposed.components) == 2
        # superposed mean equals the single-class mean (same flows)
        assert result.fit.superposed.mean == pytest.approx(
            result.fit.model.mean
        )

    def test_degenerate_class_split_is_noted_not_fatal(self):
        spec = _short("medium", fit=FitSpec(class_split_bytes=1e12))
        result = run_scenario(spec, stages=MEASUREMENT_STAGES)
        assert result.fit.superposed is None
        assert "empty" in result.fit.class_note

    def test_flood_scenario_detects_event(self):
        spec = default_registry().get("flash-flood")
        result = run_scenario(spec, stages=MEASUREMENT_STAGES)
        report = result.validation
        floods = [e for e in report.anomalies if e.kind == "flood"]
        assert floods
        starts = [e.start_time(report.anomaly_delta_s) for e in floods]
        assert any(35.0 <= s <= 45.0 for s in starts)

    def test_report_is_json_safe(self):
        import json

        report = run_scenario(_short("medium")).report()
        parsed = json.loads(json.dumps(report))
        assert parsed["validation"]["within_band"] in (True, False)

    def test_provided_trace_skips_synthesis(self):
        trace = medium_utilization_link(duration=DURATION).synthesize(
            seed=1
        ).trace
        spec = ScenarioSpec(name="external", workload=None, generation=None)
        result = run_scenario(spec, trace=trace)
        assert result.synthesis.source == "provided"
        assert result.trace is trace

    def test_missing_workload_and_trace_is_actionable(self):
        spec = ScenarioSpec(name="empty", workload=None, generation=None)
        with pytest.raises(ParameterError, match="workload"):
            run_scenario(spec)


class TestRegistry:
    def test_unknown_scenario_lists_names(self):
        with pytest.raises(ParameterError, match="medium"):
            default_registry().get("does-not-exist")

    def test_duplicate_registration_rejected(self):
        from repro.pipeline import ScenarioRegistry

        spec = ScenarioSpec(name="dup", workload=WorkloadSpec(preset="low"))
        registry = ScenarioRegistry([spec])
        with pytest.raises(ParameterError, match="already registered"):
            registry.register(spec)
        registry.register(spec, overwrite=True)
        assert registry.get("dup") is spec

    def test_builtin_names(self):
        names = default_registry().names()
        for expected in ("low", "medium", "high", "table-i-0", "table-i-6",
                         "mice-elephants", "diurnal-ramp", "flash-flood",
                         "link-outage"):
            assert expected in names


class TestQuickMode:
    def test_caps_durations(self):
        spec = default_registry().get("flash-flood")
        quick = apply_quick_mode(spec, force=True)
        assert quick.workload.duration == 30.0
        # the injected event still fits inside the shortened capture
        assert (
            quick.anomaly.start + quick.anomaly.duration
            <= quick.workload.duration
        )

    def test_off_is_identity(self):
        spec = default_registry().get("medium")
        assert apply_quick_mode(spec, force=False) is spec

    @pytest.mark.parametrize("value,expect_quick", [
        ("1", True), ("0", False), ("", False),
    ])
    def test_env_convention_matches_benchmarks(self, monkeypatch, value,
                                               expect_quick):
        """REPRO_BENCH_QUICK=0 means off, like benchmarks/conftest.py."""
        monkeypatch.setenv("REPRO_BENCH_QUICK", value)
        spec = default_registry().get("medium")
        quick = apply_quick_mode(spec)
        assert (quick.workload.duration == 30.0) is expect_quick


class TestStreamedSynthesis:
    """spec.synthesis streams synthesize → measure with identical results."""

    def _pair(self, name="medium", **spec_overrides):
        classic = run_scenario(_short(name, **spec_overrides))
        streamed = run_scenario(_short(
            name,
            synthesis={"chunk": 3000, "workers": 2},
            **spec_overrides,
        ))
        return classic, streamed

    def test_results_identical_to_classic(self):
        classic, streamed = self._pair()
        assert streamed.synthesis.source == "streamed"
        assert streamed.trace is None
        np.testing.assert_array_equal(
            streamed.accounting.flows.starts, classic.accounting.flows.starts
        )
        np.testing.assert_array_equal(
            streamed.accounting.flows.sizes, classic.accounting.flows.sizes
        )
        np.testing.assert_array_equal(
            streamed.estimation.series.values, classic.estimation.series.values
        )
        assert streamed.validation.to_dict() == classic.validation.to_dict()
        # the stream's counters land in the synthesis summary
        s = streamed.synthesis.summary()
        c = classic.synthesis.summary()
        assert s["packets"] == c["packets"]
        assert s["mean_rate_bps"] == pytest.approx(c["mean_rate_bps"])

    def test_streamed_anomaly_detection_uses_raw_series(self):
        classic, streamed = self._pair(
            validation={"detect_anomalies": True},
        )
        assert streamed.accounting.raw_series is not None
        assert streamed.validation.to_dict() == classic.validation.to_dict()

    def test_anomaly_injection_falls_back_to_materialised(self):
        spec = _short(
            "flash-flood",
            synthesis={"chunk": 2500},
            anomaly={"kind": "flood", "start": 8.0, "duration": 6.0},
        )
        result = run_scenario(spec)
        # injection needs the packet array: the stage materialises, and
        # the engine's invariance keeps the packets identical
        assert result.synthesis.source == "synthesized"
        assert result.trace is not None

    def test_spec_round_trips_synthesis_section(self):
        spec = _short("medium", synthesis={"chunk": 1234, "workers": 3})
        again = ScenarioSpec.from_json(spec.to_json())
        assert again.synthesis.chunk == 1234
        assert again.synthesis.workers == 3
        assert again == spec
