"""The unified ExecutionSpec: one chunk/workers surface for four sections.

Pins the deprecation contract: ``synthesis``/``measurement``/``network``/
``sweep`` sections all store a single ``execution: {chunk, workers}``
block; the legacy flat ``chunk``/``workers`` keys still decode (with a
DeprecationWarning pointing at MIGRATION.md) to an *equal* spec, mixing
the two spellings in a JSON document is rejected outright, and JSON
round-trips are identity for either input spelling.
"""

from __future__ import annotations

import dataclasses
import warnings

import pytest

from repro.exceptions import ParameterError
from repro.pipeline import (
    ExecutionSpec,
    MeasurementSpec,
    NetworkSpec,
    ScenarioSpec,
    SweepSpec,
    SynthesisSpec,
    default_registry,
)

#: (section name, spec class, extra ctor kwargs) for every section that
#: carries an ExecutionSpec — one table so new sections join the tests.
SECTIONS = [
    ("synthesis", SynthesisSpec, {}),
    ("measurement", MeasurementSpec, {}),
    (
        "network",
        NetworkSpec,
        {
            "topology": {"preset": "parallel-paths", "size": 2},
            "demands": ({"source": "src", "sink": "dst", "preset": "low"},),
        },
    ),
    ("sweep", SweepSpec, {}),
]


class TestExecutionSpec:
    def test_defaults(self):
        execution = ExecutionSpec()
        assert execution.chunk is None
        assert execution.workers == 1
        assert not execution.uses_engine

    def test_engine_engaged_by_either_knob(self):
        assert ExecutionSpec(chunk=100_000).uses_engine
        assert ExecutionSpec(workers=4).uses_engine

    def test_validation_is_section_qualified(self):
        with pytest.raises(ParameterError, match="execution.chunk"):
            ExecutionSpec(chunk=0)
        with pytest.raises(ParameterError, match="execution.workers"):
            ExecutionSpec(workers=0)


class TestCtorSugar:
    """The dataclass constructors accept both spellings, warning-free."""

    @pytest.mark.parametrize("section,cls,kwargs", SECTIONS)
    def test_flat_kwargs_equal_execution_kwarg(self, section, cls, kwargs):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # ctor sugar must not warn
            flat = cls(chunk=50_000, workers=3, **kwargs)
        nested = cls(
            execution=ExecutionSpec(chunk=50_000, workers=3), **kwargs
        )
        assert flat == nested
        assert flat.execution == ExecutionSpec(chunk=50_000, workers=3)

    @pytest.mark.parametrize("section,cls,kwargs", SECTIONS)
    def test_aliases_read_through(self, section, cls, kwargs):
        spec = cls(execution=ExecutionSpec(chunk=7_000, workers=2), **kwargs)
        assert spec.chunk == 7_000
        assert spec.workers == 2
        assert spec.uses_engine

    @pytest.mark.parametrize("section,cls,kwargs", SECTIONS)
    def test_conflicting_spellings_rejected(self, section, cls, kwargs):
        with pytest.raises(ParameterError, match=section):
            cls(
                execution=ExecutionSpec(chunk=1_000, workers=1),
                chunk=2_000,
                **kwargs,
            )

    @pytest.mark.parametrize("section,cls,kwargs", SECTIONS)
    def test_validation_errors_name_the_section(self, section, cls, kwargs):
        with pytest.raises(ParameterError, match=f"{section}.chunk"):
            cls(chunk=-1, **kwargs)
        with pytest.raises(ParameterError, match=f"{section}.workers"):
            cls(workers=0, **kwargs)

    @pytest.mark.parametrize("section,cls,kwargs", SECTIONS)
    def test_replace_round_trips(self, section, cls, kwargs):
        """``dataclasses.replace`` must survive the alias properties."""
        spec = cls(execution=ExecutionSpec(chunk=9_000, workers=2), **kwargs)
        assert dataclasses.replace(spec) == spec

    @pytest.mark.parametrize("section,cls,kwargs", SECTIONS)
    def test_with_execution(self, section, cls, kwargs):
        spec = cls(execution=ExecutionSpec(chunk=9_000, workers=2), **kwargs)
        bumped = spec.with_execution(workers=6)
        assert bumped.execution == ExecutionSpec(chunk=9_000, workers=6)
        replaced = spec.with_execution(ExecutionSpec(chunk=None, workers=1))
        assert replaced.execution == ExecutionSpec()


_NETWORK_BASE = {
    "topology": {"preset": "parallel-paths", "size": 2},
    "demands": [{"source": "src", "sink": "dst", "preset": "low"}],
}


def _scenario_dict(section: str, body: dict) -> dict:
    """A minimal scenario JSON document carrying one ``section`` body."""
    data = {"name": f"{section}-doc", "seed": 1}
    if section == "network":
        body = {**_NETWORK_BASE, **body}
    elif section == "sweep":
        data["network"] = dict(_NETWORK_BASE)
    data[section] = body
    return data


class TestJsonDecode:
    """The JSON layer: deprecation shims, strict mixing, round-trips."""

    @pytest.mark.parametrize("section,cls,kwargs", SECTIONS)
    def test_legacy_keys_decode_with_deprecation_warning(
        self, section, cls, kwargs
    ):
        doc = _scenario_dict(section, {"chunk": 40_000, "workers": 2})
        with pytest.warns(DeprecationWarning, match=section):
            legacy = ScenarioSpec.from_dict(doc)
        modern = ScenarioSpec.from_dict(
            _scenario_dict(
                section, {"execution": {"chunk": 40_000, "workers": 2}}
            )
        )
        assert legacy == modern
        assert getattr(legacy, section).execution == ExecutionSpec(
            chunk=40_000, workers=2
        )

    @pytest.mark.parametrize("section,cls,kwargs", SECTIONS)
    def test_warning_points_at_migration_guide(self, section, cls, kwargs):
        doc = _scenario_dict(section, {"workers": 2})
        with pytest.warns(DeprecationWarning, match="MIGRATION.md"):
            ScenarioSpec.from_dict(doc)

    @pytest.mark.parametrize("section,cls,kwargs", SECTIONS)
    def test_mixed_spellings_rejected(self, section, cls, kwargs):
        doc = _scenario_dict(
            section,
            {"chunk": 40_000, "execution": {"chunk": 40_000, "workers": 1}},
        )
        with pytest.raises(ParameterError, match="not both"):
            ScenarioSpec.from_dict(doc)

    @pytest.mark.parametrize("section,cls,kwargs", SECTIONS)
    def test_round_trip_identity_both_spellings(self, section, cls, kwargs):
        """Either input spelling round-trips to the same canonical JSON."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = ScenarioSpec.from_dict(
                _scenario_dict(section, {"chunk": 40_000, "workers": 2})
            )
        modern = ScenarioSpec.from_dict(
            _scenario_dict(
                section, {"execution": {"chunk": 40_000, "workers": 2}}
            )
        )
        assert legacy.to_dict() == modern.to_dict()
        # canonical output spells only the nested form ...
        body = legacy.to_dict()[section]
        assert "execution" in body
        assert "chunk" not in body and "workers" not in body
        # ... and decoding it again is identity
        assert ScenarioSpec.from_dict(legacy.to_dict()) == legacy

    def test_registry_specs_round_trip(self):
        for spec in default_registry().specs():
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec
