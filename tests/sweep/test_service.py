"""The sweep service: pre-filter soundness, cell equivalence, invariance.

The acceptance contract of the capacity sweep:

* the closed-form pre-filter settles at least half of the preset grid
  without touching the packet-level engine;
* *soundness* — no cell the pre-filter cleared as ``ok`` is an SLA
  breach in a full engine run (checked against an exhaustive
  ``simulate="all"`` ground-truth sweep);
* every simulated cell is *bitwise* equal to running that cell's spec
  directly through :func:`~repro.pipeline.run_scenario` — the sweep is
  pure orchestration;
* ``sweep.execution`` (chunk/workers) never changes any result.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.pipeline import (
    DemandSpec,
    NetworkSpec,
    ScenarioSpec,
    SweepSpec,
    TopologyLinkSpec,
    TopologySpec,
    default_registry,
    run_scenario,
)
from repro.sweep import run_sweep

#: The registry sweep, shortened: same 45-cell grid and the same
#: analytic verdicts (rates are per-second, independent of capture
#: length), but each simulated cell costs ~0.1 s instead of ~0.5 s.
DURATION = 10.0


def _preset(simulate: str, duration: float = DURATION) -> ScenarioSpec:
    spec = default_registry().get("abilene-single-failure-2x")
    return dataclasses.replace(
        spec,
        network=dataclasses.replace(spec.network, duration=duration),
        sweep=dataclasses.replace(spec.sweep, simulate=simulate),
    )


def _toy(simulate: str = "all", **sweep_kwargs) -> ScenarioSpec:
    """2-path toy sweep: 1 demand, baseline + 4 fibres, one factor."""
    sweep_kwargs.setdefault("demand_factors", (1.0,))
    sweep_kwargs.setdefault("failures", "single")
    return ScenarioSpec(
        name="toy-sweep",
        seed=23,
        network=NetworkSpec(
            topology=TopologySpec(preset="parallel-paths", size=2),
            demands=(DemandSpec("src", "dst", preset="low"),),
            routing="ecmp",
            duration=8.0,
        ),
        sweep=SweepSpec(simulate=simulate, **sweep_kwargs),
    )


@pytest.fixture(scope="module")
def exhaustive():
    """Ground truth: every preset cell through the engine."""
    return run_sweep(_preset("all"))


@pytest.fixture(scope="module")
def analytic():
    """The pre-filter alone over the preset grid."""
    return run_sweep(_preset("none"))


class TestPrefilter:
    def test_settles_at_least_half_the_grid(self, analytic):
        report = analytic.report
        assert report.n_cells == 45
        marginal = sum(
            1 for a in analytic.assessments if a.verdict == "marginal"
        )
        assert marginal * 2 <= report.n_cells

    def test_soundness_no_breaching_cell_cleared(self, exhaustive):
        """No simulation-marked breach hides behind an analytic 'ok'."""
        assert exhaustive.report.n_simulated == 45
        missed = [
            cell.index
            for cell in exhaustive.report.cells
            if cell.analytic_verdict == "ok" and cell.verdict == "breach"
        ]
        assert missed == []

    def test_analytic_breaches_err_on_the_safe_side(self, exhaustive):
        """Breach calls are the conservative direction: a cell flagged
        analytically may simulate just under the SLA (over-provisioning),
        but never lands comfortably clear of the band."""
        margin = exhaustive.report.margin
        for cell in exhaustive.report.cells:
            if cell.analytic_verdict == "breach":
                assert cell.worst_ratio > 1.0 - margin, (
                    f"cell {cell.index} ({cell.failure_label} "
                    f"x{cell.factor:g}) breaches analytically but "
                    f"simulated at {cell.worst_ratio:.2f}"
                )

    def test_growth_never_reduces_the_worst_ratio(self, analytic):
        by_key = {
            (c.failure_label, c.factor): c.worst_ratio
            for c in analytic.report.cells
        }
        for label in {c.failure_label for c in analytic.report.cells}:
            ratios = [by_key[(label, f)] for f in (1.0, 1.5, 2.0)]
            assert ratios == sorted(ratios)

    def test_marginal_mode_simulates_exactly_the_marginal_cells(
        self, analytic
    ):
        marginal_indexes = {
            cell.index
            for cell, assessment in zip(
                analytic.cells, analytic.assessments
            )
            if assessment.verdict == "marginal"
        }
        result = run_sweep(_preset("marginal"))
        assert set(result.simulations) == marginal_indexes
        assert result.report.n_simulated == len(marginal_indexes)
        assert (
            result.report.n_prefiltered
            == result.report.n_cells - len(marginal_indexes)
        )


class TestCellEquivalence:
    def test_simulated_cells_bitwise_equal_direct_runs(self, exhaustive):
        """The sweep adds orchestration, not physics: re-running any
        cell's spec standalone reproduces the engine outputs exactly."""
        picked = [exhaustive.cells[2], exhaustive.cells[26]]
        for cell in picked:
            direct = run_scenario(cell.spec).network
            via_sweep = exhaustive.simulated(cell.index)
            assert direct.report.to_dict() == via_sweep.report.to_dict()
            for link, entry in via_sweep.simulation.links.items():
                other = direct.simulation.links[link]
                assert entry.packet_count == other.packet_count
                assert entry.total_bytes == other.total_bytes
                if entry.series is not None:
                    assert np.array_equal(
                        entry.series.values, other.series.values
                    )


class TestExecutionInvariance:
    def test_chunk_and_workers_do_not_change_the_report(self):
        base = run_sweep(_toy())
        tweaked_spec = _toy()
        tweaked_spec = dataclasses.replace(
            tweaked_spec,
            sweep=tweaked_spec.sweep.with_execution(
                chunk=3_000, workers=3
            ),
        )
        tweaked = run_sweep(tweaked_spec)
        assert base.report.to_dict() == tweaked.report.to_dict()

    def test_determinism_rerun_is_identical(self):
        a = run_sweep(_toy())
        b = run_sweep(_toy())
        assert a.report.to_dict() == b.report.to_dict()


class TestDisconnection:
    def test_cut_chain_counts_disconnected_demands(self):
        """Failing the only path blackholes the demand — the pre-filter
        mirrors the engine by skipping it, not by crashing."""
        spec = ScenarioSpec(
            name="chain-cut",
            network=NetworkSpec(
                topology=TopologySpec(
                    links=(TopologyLinkSpec("a", "b", capacity_bps=1e7),)
                ),
                demands=(DemandSpec("a", "b", preset="low"),),
                duration=5.0,
            ),
            sweep=SweepSpec(
                demand_factors=(1.0,), failures="single", simulate="none"
            ),
        )
        result = run_sweep(spec)
        baseline, cut = result.assessments
        assert baseline.n_disconnected_demands == 0
        assert cut.n_disconnected_demands == 1
        assert cut.worst is None  # nothing carries traffic any more


class TestReport:
    def test_ranked_worst_first(self, exhaustive):
        severity = {"breach": 0, "marginal": 1, "ok": 2}
        ranks = [
            (severity[c.verdict], -c.worst_ratio)
            for c in exhaustive.report.cells
        ]
        assert ranks == sorted(ranks)

    def test_worst_per_failure_covers_every_case(self, exhaustive):
        worst = exhaustive.report.worst_per_failure()
        assert len(worst) == 15  # baseline + 14 fibres
        for label, cell in worst.items():
            assert cell.failure_label == label
            peers = [
                c for c in exhaustive.report.cells
                if c.failure_label == label
            ]
            assert cell.worst_ratio == max(c.worst_ratio for c in peers)

    def test_headroom_per_factor_decreases_with_growth(self, exhaustive):
        headroom = exhaustive.report.headroom_per_factor()
        assert list(headroom) == [1.0, 1.5, 2.0]
        values = list(headroom.values())
        assert values == sorted(values, reverse=True)

    def test_json_round_trip_and_table(self, analytic):
        import json

        payload = json.loads(json.dumps(analytic.report.to_dict()))
        assert payload["n_cells"] == 45
        assert payload["n_prefiltered"] + payload["n_simulated"] == 45
        assert len(payload["cells"]) == 45
        table = analytic.report.table()
        assert "45 cells" in table
        assert "verdict" in table.splitlines()[0]


class TestPipelineDispatch:
    def test_run_scenario_routes_sweep_specs(self):
        result = run_scenario(_toy(simulate="none"))
        assert result.sweep is not None
        assert result.network is None
        report = result.report()
        assert set(report) == {"spec", "sweep"}
        assert report["sweep"]["n_cells"] == 5

    def test_run_sweep_requires_a_sweep_section(self):
        with pytest.raises(ParameterError, match="sweep"):
            run_sweep(default_registry().get("abilene-table-i"))
