"""Cell expansion: fibre/failure enumeration, scaling, seeds, ordering."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.network import abilene
from repro.pipeline import (
    DemandSpec,
    NetworkSpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
    default_registry,
)
from repro.sweep import (
    enumerate_failures,
    enumerate_fibres,
    expand_cells,
    scale_demand,
)


@pytest.fixture(scope="module")
def preset_spec():
    return default_registry().get("abilene-single-failure-2x")


def _small_sweep(**sweep_kwargs) -> ScenarioSpec:
    """A 2-path toy sweep: cheap enough to expand in every test."""
    return ScenarioSpec(
        name="toy-sweep",
        seed=11,
        network=NetworkSpec(
            topology=TopologySpec(preset="parallel-paths", size=2),
            demands=(DemandSpec("src", "dst", preset="low"),),
            routing="ecmp",
            duration=10.0,
        ),
        sweep=SweepSpec(**sweep_kwargs),
    )


class TestEnumeration:
    def test_abilene_fibres(self):
        topology = abilene()
        fibres = enumerate_fibres(topology)
        # 28 directed links = 14 bidirectional fibres
        assert topology.n_links == 28
        assert len(fibres) == 14
        # representatives are real directed links, one per fate group
        groups = {frozenset(topology.fate_group(*f)) for f in fibres}
        assert len(groups) == 14

    def test_failure_modes(self):
        topology = abilene()
        assert enumerate_failures(topology, "none") == ()
        singles = enumerate_failures(topology, "single")
        assert len(singles) == 14
        assert all(len(case) == 1 for case in singles)
        dual = enumerate_failures(topology, "dual")
        # N-1 cases plus C(14, 2) unordered pairs
        assert len(dual) == 14 + 91
        assert all(len(case) in (1, 2) for case in dual)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ParameterError, match="failure mode"):
            enumerate_failures(abilene(), "triple")


class TestScaleDemand:
    def test_factor_one_is_identity(self):
        demand = DemandSpec("a", "b", preset="medium")
        assert scale_demand(demand, 1.0) is demand

    def test_preset_demand_scales_scale(self):
        demand = DemandSpec("a", "b", preset="medium", scale=0.5)
        scaled = scale_demand(demand, 2.0)
        assert scaled.scale == pytest.approx(1.0)
        assert scaled.preset == "medium"

    def test_custom_rate_demand_scales_rate_and_scale(self):
        demand = DemandSpec("a", "b", target_mean_rate_bps=8e6)
        scaled = scale_demand(demand, 1.5)
        assert scaled.target_mean_rate_bps == pytest.approx(12e6)
        assert scaled.scale == pytest.approx(demand.scale * 1.5)


class TestExpandCells:
    def test_preset_grid_is_the_full_product(self, preset_spec):
        cells = expand_cells(preset_spec)
        # (1 baseline + 14 single-fibre failures) x 3 growth factors
        assert len(cells) == 45
        labels = {(cell.failure_label, cell.factor) for cell in cells}
        assert len(labels) == 45
        assert sum(1 for cell in cells if not cell.failure) == 3
        # every fibre appears at every factor
        fibres = enumerate_fibres(preset_spec.network.topology.build())
        for fibre in fibres:
            for factor in (1.0, 1.5, 2.0):
                assert (f"{fibre[0]}~{fibre[1]}", factor) in labels

    def test_cell_order_and_indexing(self, preset_spec):
        cells = expand_cells(preset_spec)
        assert [cell.index for cell in cells] == list(range(45))
        # baseline first, factors innermost
        assert cells[0].failure == () and cells[0].factor == 1.0
        assert cells[1].failure == () and cells[1].factor == 1.5
        assert cells[2].failure == () and cells[2].factor == 2.0
        assert cells[3].failure != () and cells[3].factor == 1.0

    def test_cell_specs_are_runnable_network_scenarios(self, preset_spec):
        cell = expand_cells(preset_spec)[4]
        spec = cell.spec
        assert spec.sweep is None
        assert spec.family == "network"
        assert spec.seed == cell.seed
        # the sweep service owns the fan-out: cells must not nest pools
        assert spec.network.workers == 1
        # the failure rides along as a full-capture outage event
        outage = spec.network.events[-1]
        assert outage.kind == "outage"
        assert outage.start == 0.0
        assert outage.duration == preset_spec.network.duration
        assert tuple(outage.link) == cell.failure[0]

    def test_demands_scaled_per_cell(self, preset_spec):
        cells = expand_cells(preset_spec)
        doubled = next(
            c for c in cells if c.factor == 2.0 and not c.failure
        )
        for base, scaled in zip(
            preset_spec.network.demands, doubled.spec.network.demands
        ):
            assert scaled.scale == pytest.approx(base.scale * 2.0)

    def test_seeds_are_deterministic_seedsequence_children(self, preset_spec):
        cells = expand_cells(preset_spec)
        again = expand_cells(preset_spec)
        assert [c.seed for c in cells] == [c.seed for c in again]
        children = np.random.SeedSequence(int(preset_spec.seed)).spawn(
            len(cells)
        )
        expected = [int(c.generate_state(1)[0]) for c in children]
        assert [c.seed for c in cells] == expected
        assert len(set(expected)) == len(expected)

    def test_seed_override_moves_every_cell(self, preset_spec):
        reseeded = preset_spec.with_overrides(seed=99)
        a = [c.seed for c in expand_cells(preset_spec)]
        b = [c.seed for c in expand_cells(reseeded)]
        assert a != b

    def test_routing_axis_multiplies_the_grid(self):
        spec = _small_sweep(
            demand_factors=(1.0, 2.0),
            failures="none",
            routing=("ecmp", "shortest_path"),
        )
        cells = expand_cells(spec)
        assert len(cells) == 4
        assert {c.routing for c in cells} == {"ecmp", "shortest_path"}
        assert {c.spec.network.routing for c in cells} == {
            "ecmp", "shortest_path",
        }

    def test_sweep_chunk_pins_cell_chunk(self):
        spec = _small_sweep(demand_factors=(1.0,), failures="none")
        spec = dataclasses.replace(
            spec, sweep=spec.sweep.with_execution(chunk=5_000, workers=2)
        )
        (cell,) = expand_cells(spec)
        assert cell.spec.network.chunk == 5_000
        assert cell.spec.network.workers == 1

    def test_expand_requires_both_sections(self):
        plain = default_registry().get("medium")
        with pytest.raises(ParameterError, match="sweep"):
            expand_cells(plain)


class TestSweepSpecValidation:
    def test_sweep_needs_a_network_section(self):
        with pytest.raises(ParameterError, match="network"):
            ScenarioSpec(name="orphan", sweep=SweepSpec())

    def test_bad_axes_rejected(self):
        with pytest.raises(ParameterError):
            SweepSpec(demand_factors=())
        with pytest.raises(ParameterError):
            SweepSpec(demand_factors=(0.0,))
        with pytest.raises(ParameterError):
            SweepSpec(failures="quadruple")
        with pytest.raises(ParameterError):
            SweepSpec(margin=1.0)
        with pytest.raises(ParameterError):
            SweepSpec(simulate="sometimes")

    def test_family_is_sweep(self, preset_spec):
        assert preset_spec.family == "sweep"
