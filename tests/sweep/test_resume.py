"""Checkpoint/resume: an interrupted sweep restarts bitwise-equal.

The durability contract of :mod:`repro.checkpoint` + ``run_sweep``:

* every simulated cell lands on disk atomically the moment it
  completes (``cell-NNNN.ckpt`` + pinned ``manifest.json``);
* ``resume=True`` restores completed cells and re-runs only the
  remainder — and the resulting :class:`SweepReport` is *bitwise equal*
  to an uninterrupted run's (cell seeds are fixed at expansion);
* a checkpoint directory never serves a different run: fingerprint
  mismatch fails loudly with :class:`CheckpointError`;
* execution knobs (workers/backend/chunk/retry) are excluded from the
  fingerprint — a run may resume under a different parallelism;
* the CLI honours the same contract end to end: a sweep killed
  mid-flight exits 130 with a ``--resume`` hint, and the resumed run
  reproduces the uninterrupted report exactly.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.checkpoint import MANIFEST_NAME, CheckpointStore, run_fingerprint
from repro.exceptions import CheckpointError, ParameterError
from repro.pipeline import (
    DemandSpec,
    ExecutionSpec,
    NetworkSpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
)
from repro.sweep import run_sweep


def _toy(duration=8.0, preset="low", seed=23, **sweep_kwargs):
    """2-path toy sweep, every cell simulated: 5 cells, ~0.1 s total."""
    sweep_kwargs.setdefault("demand_factors", (1.0,))
    sweep_kwargs.setdefault("failures", "single")
    return ScenarioSpec(
        name="toy-sweep",
        seed=seed,
        network=NetworkSpec(
            topology=TopologySpec(preset="parallel-paths", size=2),
            demands=(DemandSpec("src", "dst", preset=preset),),
            routing="ecmp",
            duration=duration,
        ),
        sweep=SweepSpec(simulate="all", **sweep_kwargs),
    )


class TestRunFingerprint:
    def test_execution_sections_are_stripped(self):
        spec = _toy()
        tuned = _toy(execution=ExecutionSpec(workers=8, backend="process"))
        assert run_fingerprint(spec.to_dict()) == run_fingerprint(
            tuned.to_dict()
        )

    def test_identity_changes_change_the_fingerprint(self):
        assert run_fingerprint(_toy(seed=23).to_dict()) != run_fingerprint(
            _toy(seed=24).to_dict()
        )


class TestCheckpointStore:
    def test_save_load_round_trips_bitwise(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt", "fp")
        value = {"ratio": 0.1 + 0.2, "links": (("a", "b"),)}
        store.save("cell-0000", value)
        assert store.has("cell-0000")
        assert store.load("cell-0000") == value
        assert store.keys() == ["cell-0000"]

    def test_writes_are_atomic_no_tmp_left(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt", "fp")
        store.save("cell-0000", [1, 2, 3])
        names = {p.name for p in (tmp_path / "ckpt").iterdir()}
        assert names == {MANIFEST_NAME, "cell-0000.ckpt"}

    def test_fresh_run_discards_previous_entries(self, tmp_path):
        directory = tmp_path / "ckpt"
        CheckpointStore(directory, "fp").save("cell-0000", 1)
        fresh = CheckpointStore(directory, "fp", resume=False)
        assert fresh.keys() == []

    def test_resume_keeps_previous_entries(self, tmp_path):
        directory = tmp_path / "ckpt"
        CheckpointStore(directory, "fp").save("cell-0000", 1)
        assert CheckpointStore(directory, "fp", resume=True).keys() == [
            "cell-0000"
        ]

    def test_fingerprint_mismatch_fails_loudly(self, tmp_path):
        directory = tmp_path / "ckpt"
        CheckpointStore(directory, "fp-one")
        with pytest.raises(CheckpointError, match="fingerprint mismatch"):
            CheckpointStore(directory, "fp-two", resume=True)

    def test_unreadable_manifest_fails_loudly(self, tmp_path):
        directory = tmp_path / "ckpt"
        directory.mkdir()
        (directory / MANIFEST_NAME).write_text("{torn")
        with pytest.raises(CheckpointError, match="unreadable"):
            CheckpointStore(directory, "fp")


class TestSweepCheckpointing:
    def test_every_simulated_cell_lands_on_disk(self, tmp_path):
        directory = tmp_path / "ckpt"
        result = run_sweep(_toy(), checkpoint_dir=directory)
        assert result.resumed == ()
        expected = {f"cell-{cell.index:04d}.ckpt" for cell in result.cells}
        assert {p.name for p in directory.glob("*.ckpt")} == expected

    def test_resume_is_bitwise_equal_to_uninterrupted(self, tmp_path):
        directory = tmp_path / "ckpt"
        clean = run_sweep(_toy(), checkpoint_dir=directory)
        # simulate an interruption: drop alternate cells' checkpoints
        dropped = sorted(directory.glob("*.ckpt"))[::2]
        for path in dropped:
            path.unlink()
        resumed = run_sweep(_toy(), checkpoint_dir=directory, resume=True)
        # frozen float-for-float dataclass equality — bitwise, not approx
        assert resumed.report == clean.report
        kept = {int(p.stem.split("-")[1]) for p in directory.glob("*.ckpt")}
        assert set(resumed.resumed) == kept - {
            int(p.stem.split("-")[1]) for p in dropped
        }
        # restored cells were not re-simulated
        for index in resumed.resumed:
            assert index not in resumed.simulations

    def test_fully_checkpointed_resume_runs_nothing(self, tmp_path):
        directory = tmp_path / "ckpt"
        clean = run_sweep(_toy(), checkpoint_dir=directory)
        resumed = run_sweep(_toy(), checkpoint_dir=directory, resume=True)
        assert resumed.report == clean.report
        assert resumed.simulations == {}
        assert set(resumed.resumed) == {cell.index for cell in clean.cells}

    def test_resume_without_directory_is_parameter_error(self):
        with pytest.raises(ParameterError, match="checkpoint_dir"):
            run_sweep(_toy(), resume=True)

    def test_changed_spec_cannot_reuse_the_directory(self, tmp_path):
        directory = tmp_path / "ckpt"
        run_sweep(_toy(seed=23), checkpoint_dir=directory)
        with pytest.raises(CheckpointError, match="fingerprint mismatch"):
            run_sweep(_toy(seed=24), checkpoint_dir=directory, resume=True)

    def test_fresh_run_into_same_directory_starts_over(self, tmp_path):
        directory = tmp_path / "ckpt"
        first = run_sweep(_toy(), checkpoint_dir=directory)
        again = run_sweep(_toy(), checkpoint_dir=directory, resume=False)
        assert again.resumed == ()
        assert len(again.simulations) == len(first.cells)
        assert again.report == first.report

    def test_resume_may_change_execution_knobs(self, tmp_path):
        directory = tmp_path / "ckpt"
        clean = run_sweep(_toy(), checkpoint_dir=directory)
        dropped = sorted(directory.glob("*.ckpt"))[1::2]
        for path in dropped:
            path.unlink()
        tuned = _toy(execution=ExecutionSpec(workers=2))
        resumed = run_sweep(tuned, checkpoint_dir=directory, resume=True)
        assert resumed.report == clean.report


class TestKilledMidFlightCli:
    """End to end: SIGINT a running ``repro sweep``, resume, compare."""

    def _spec_file(self, tmp_path):
        # heavy enough (~1 s per cell) that the interrupt lands mid-run
        spec = _toy(duration=1800.0, preset="medium")
        path = tmp_path / "sweep.json"
        path.write_text(spec.to_json())
        return path, spec

    def test_interrupt_then_resume_reproduces_report(self, tmp_path):
        spec_file, spec = self._spec_file(tmp_path)
        ckpt = tmp_path / "ckpt"
        report = tmp_path / "report.json"
        env = dict(os.environ, PYTHONPATH="src")
        cmd = [
            sys.executable, "-m", "repro", "sweep", str(spec_file),
            "--workers", "1",
            "--checkpoint-dir", str(ckpt),
            "--report", str(report),
        ]
        proc = subprocess.Popen(
            cmd,
            cwd="/root/repo",
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        # wait for the first checkpoint to land, then interrupt
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if len(list(ckpt.glob("*.ckpt"))) >= 1:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.05)
        proc.send_signal(signal.SIGINT)
        _, err = proc.communicate(timeout=60)
        if proc.returncode == 0:
            pytest.skip("sweep finished before the interrupt landed")
        assert proc.returncode == 130
        assert "--resume" in err
        assert str(ckpt) in err
        done_before = {p.name for p in ckpt.glob("*.ckpt")}
        assert done_before  # progress survived the interrupt
        assert not report.exists()  # no torn report

        resumed = subprocess.run(
            cmd + ["--resume"],
            cwd="/root/repo",
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resumed" in resumed.stdout
        payload = json.loads(report.read_text())["sweep"]
        restored = payload["resumed_cells"]
        assert {f"cell-{i:04d}.ckpt" for i in restored} == done_before

        # ground truth: the same sweep, uninterrupted, in process
        clean = json.loads(
            json.dumps(run_sweep(spec).report.to_dict())
        )
        assert payload["cells"] == clean["cells"]
