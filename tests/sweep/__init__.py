"""Tests for the capacity-planning sweep service (repro.sweep)."""
