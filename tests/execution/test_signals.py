"""Signal hygiene: an interrupted process-backend run leaves nothing.

The pool installs chaining SIGINT/SIGTERM handlers (once, from the
main thread) that close every live :class:`SharedMemoryPool` — workers
terminated, ring and one-shot segments unlinked — before the signal's
previous behaviour runs.  These tests kill a real busy run both ways
and assert ``/dev/shm`` holds zero ``repro_shm_*`` segments afterwards,
which is the difference between "re-run it" and "reboot the box" on a
shm-sized host.
"""

from __future__ import annotations

import glob
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

#: A driver that keeps a process pool busy long enough to be killed.
#: It prints one line per completed task so the test can interrupt
#: mid-run, with tasks both in flight and still queued.
_DRIVER = textwrap.dedent(
    """
    import sys
    import time

    from repro.execution import make_pool


    def slow(i):
        time.sleep(0.4)
        return i


    with make_pool("process", 2) as pool:
        print("READY", flush=True)
        pool.map_ordered(slow, list(range(50)))
    print("DONE", flush=True)
    """
)


def _leaked_segments():
    return glob.glob("/dev/shm/repro_shm_*")


@pytest.fixture(autouse=True)
def no_preexisting_segments():
    assert not _leaked_segments()
    yield
    assert not _leaked_segments()


def _interrupt_busy_run(tmp_path, sig):
    driver = tmp_path / "driver.py"
    driver.write_text(_DRIVER)
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.Popen(
        [sys.executable, str(driver)],
        cwd="/root/repo",
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    assert proc.stdout.readline().strip() == "READY"
    # let the pool get properly busy (segments staged, tasks in flight)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline and not _leaked_segments():
        time.sleep(0.02)
    time.sleep(0.2)
    proc.send_signal(sig)
    proc.wait(timeout=30)
    # give unlink a moment: the handler runs before the process dies
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline and _leaked_segments():
        time.sleep(0.05)
    return proc


class TestSignalHygiene:
    def test_sigterm_closes_pools_and_unlinks_segments(self, tmp_path):
        proc = _interrupt_busy_run(tmp_path, signal.SIGTERM)
        # the chained handler re-raises the default: died by SIGTERM
        assert proc.returncode == -signal.SIGTERM
        assert not _leaked_segments()

    def test_sigint_closes_pools_and_unlinks_segments(self, tmp_path):
        proc = _interrupt_busy_run(tmp_path, signal.SIGINT)
        # KeyboardInterrupt unwinds normally: nonzero, not a signal kill
        assert proc.returncode != 0
        assert not _leaked_segments()
