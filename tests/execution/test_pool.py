"""The pool abstraction behind every engine's ``workers`` knob.

The process-backend tests are the interesting ones: task payloads and
results travel through shared-memory ring slots, so beyond ordering and
error propagation every test asserts nothing leaks into ``/dev/shm``
(the segments all carry the recognisable ``repro_shm_`` prefix).
"""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.execution import (
    BACKENDS,
    SerialPool,
    SharedMemoryPool,
    ThreadPool,
    check_backend,
    make_pool,
    process_backend_available,
)
from repro.trace.packet import PACKET_DTYPE


def _leaked_segments():
    return glob.glob("/dev/shm/repro_shm_*")


@pytest.fixture(autouse=True)
def no_segment_leaks():
    assert not _leaked_segments()
    yield
    assert not _leaked_segments()


# -- worker functions (module-level: the process backend pickles them) --


def _double(x):
    return 2 * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("injected failure")
    return -x


def _packet_checksum(arr):
    """Round-trip a PACKET_DTYPE chunk: echo it plus a scalar digest."""
    return arr, float(arr["size"].sum()), arr["timestamp"].copy()


def _nested_process_backend(_):
    """What does a process-backend request yield *inside* a worker?"""
    with make_pool("process", 2) as pool:
        return type(pool).__name__


class TestMakePool:
    def test_backends_tuple(self):
        assert BACKENDS == ("serial", "thread", "process")

    def test_check_backend_rejects_unknown(self):
        with pytest.raises(ParameterError, match="backend"):
            check_backend("backend", "forkserver")

    def test_serial(self):
        assert isinstance(make_pool("serial", 8), SerialPool)

    def test_single_worker_degrades_to_serial(self):
        for backend in BACKENDS:
            assert isinstance(make_pool(backend, 1), SerialPool)

    def test_thread(self):
        with make_pool("thread", 2) as pool:
            assert isinstance(pool, ThreadPool)
            assert pool.workers == 2

    def test_process(self):
        assert process_backend_available()
        with make_pool("process", 2) as pool:
            assert isinstance(pool, SharedMemoryPool)

    def test_process_downgrades_inside_daemonic_worker(self):
        # the network engine's per-link tasks build measurement engines
        # inside pool workers: a nested process request must not try to
        # fork from a daemonic process
        with make_pool("process", 2) as pool:
            kinds = pool.map_ordered(_nested_process_backend, [0, 1])
        assert kinds == ["ThreadPool", "ThreadPool"]


class TestMapOrdered:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_preserves_order(self, backend):
        with make_pool(backend, 3) as pool:
            assert pool.map_ordered(_double, list(range(20))) == [
                2 * i for i in range(20)
            ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_and_single(self, backend):
        with make_pool(backend, 3) as pool:
            assert pool.map_ordered(_double, []) == []
            assert pool.map_ordered(_double, [21]) == [42]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_worker_exception_propagates(self, backend):
        with make_pool(backend, 3) as pool:
            with pytest.raises(ValueError, match="injected failure"):
                pool.map_ordered(_fail_on_three, list(range(8)))

    def test_failure_leaves_no_segments_behind(self):
        # failure injection: large staged payloads in flight while one
        # task raises — close() (via the context manager) must still
        # return every ring slot and one-shot to the kernel
        arrays = [np.random.default_rng(i).random(40_000) for i in range(8)]
        with make_pool("process", 2) as pool:
            with pytest.raises(ValueError):
                pool.map_ordered(
                    _fail_on_three_arrays, list(enumerate(arrays))
                )
        assert not _leaked_segments()


def _fail_on_three_arrays(item):
    i, arr = item
    if i == 3:
        raise ValueError("injected failure")
    return arr * 2.0


class TestSharedMemoryTransport:
    def test_packet_dtype_roundtrip(self):
        rng = np.random.default_rng(0)
        n = 50_000  # ~1.1 MiB: well above the staging threshold
        chunk = np.zeros(n, dtype=PACKET_DTYPE)
        chunk["timestamp"] = np.sort(rng.random(n))
        chunk["src_addr"] = rng.integers(0, 2**32, n, dtype=np.uint32)
        chunk["dst_addr"] = rng.integers(0, 2**32, n, dtype=np.uint32)
        chunk["src_port"] = rng.integers(0, 2**16, n, dtype=np.uint16)
        chunk["dst_port"] = rng.integers(0, 2**16, n, dtype=np.uint16)
        chunk["protocol"] = 6
        chunk["size"] = rng.integers(40, 1500, n, dtype=np.uint16)
        halves = [chunk[: n // 2], chunk[n // 2:]]
        with make_pool("process", 2) as pool:
            out = pool.map_ordered(_packet_checksum, halves)
        for sent, (echoed, digest, stamps) in zip(halves, out):
            assert echoed.dtype == PACKET_DTYPE
            assert np.array_equal(echoed, sent)
            assert digest == float(sent["size"].sum())
            assert np.array_equal(stamps, sent["timestamp"])

    def test_oversize_arrays_use_oneshot_segments(self):
        # bigger than the configured slot, so every hand-off is a
        # one-shot segment — and they must all be unlinked afterwards
        arrays = [np.full(64_000, float(i)) for i in range(4)]
        with SharedMemoryPool(2, slot_bytes=1 << 16) as pool:
            out = pool.map_ordered(_double, arrays)
        for i, arr in enumerate(out):
            assert np.array_equal(arr, np.full(64_000, 2.0 * i))

    def test_ring_exhaustion_falls_through(self):
        # one slot for many in-flight chunks: stage() must fall back to
        # one-shots instead of blocking on the free queue
        arrays = [np.full(30_000, float(i)) for i in range(10)]
        with SharedMemoryPool(2, slots=1) as pool:
            out = pool.map_ordered(_double, arrays)
        for i, arr in enumerate(out):
            assert np.array_equal(arr, np.full(30_000, 2.0 * i))


class TestClose:
    def test_close_is_idempotent(self):
        for backend in BACKENDS:
            pool = make_pool(backend, 2)
            pool.close()
            pool.close()

    def test_process_pool_rejects_use_after_close(self):
        pool = make_pool("process", 2)
        pool.close()
        with pytest.raises(ParameterError, match="closed"):
            pool.map_ordered(_double, [1, 2])

    def test_close_releases_segments(self):
        pool = make_pool("process", 2)
        assert _leaked_segments()  # ring exists while the pool is open
        pool.close()
        assert not _leaked_segments()
