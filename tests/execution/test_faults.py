"""The chaos battery: every injected failure recovers identically.

:mod:`repro.faults` arms exactly one deterministic failure per run;
these tests pin the recovery contract of the resilience layer:

* a crashed or hung worker is detected by the watchdog, the pool is
  respawned, and the lost suffix re-executes — with output bitwise
  identical to a clean run and one named ``worker-lost`` retry in
  :class:`~repro.execution.RunHealth`;
* a deterministic task exception propagates immediately without
  burning retries;
* exhausted retries fail loudly with :class:`WorkerFailure` naming the
  task and deadline;
* shared-memory exhaustion degrades to pickle transport, recorded as a
  ``shm-exhausted`` degradation, with identical results.

Every test also asserts nothing leaks into ``/dev/shm``.
"""

from __future__ import annotations

import glob
import json

import numpy as np
import pytest

from repro import faults
from repro.exceptions import (
    FaultInjectedError,
    ParameterError,
    WorkerFailure,
)
from repro.execution import (
    RetryPolicy,
    SharedMemoryPool,
    make_pool,
    reset_run_health,
    run_health,
)
from repro.faults import FaultPlan


def _leaked_segments():
    return glob.glob("/dev/shm/repro_shm_*")


@pytest.fixture(autouse=True)
def clean_slate():
    """No armed plan, fresh health, no stray segments — before and after."""
    faults.clear()
    reset_run_health()
    assert not _leaked_segments()
    yield
    faults.clear()
    reset_run_health()
    assert not _leaked_segments()


# -- worker functions (module-level: the process backend pickles them) --


def _seeded_row(i):
    return np.random.default_rng(1000 + i).random(64)


RETRY = RetryPolicy(max_retries=2, timeout_s=4.0, backoff=0.0)


def _clean_run(n=6, workers=2):
    with make_pool("process", workers, retry=RETRY) as pool:
        return pool.map_ordered(_seeded_row, list(range(n)))


class TestFaultPlan:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ParameterError, match="fault kind"):
            FaultPlan(kind="meteor-strike")

    def test_rejects_negative_task(self):
        with pytest.raises(ParameterError, match="task index"):
            FaultPlan(kind="worker-crash", task=-1)

    def test_env_plan_parses(self, monkeypatch):
        monkeypatch.setenv(
            faults.FAULTS_ENV, json.dumps({"kind": "slow-task", "task": 2})
        )
        plan = faults.active_plan()
        assert plan.kind == "slow-task"
        assert plan.task == 2

    def test_env_plan_rejects_bad_json(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "{not json")
        with pytest.raises(ParameterError, match="not valid JSON"):
            faults.active_plan()

    def test_installed_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(
            faults.FAULTS_ENV, json.dumps({"kind": "slow-task"})
        )
        faults.install(FaultPlan(kind="worker-crash", task=1))
        assert faults.active_plan().kind == "worker-crash"


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_retries == 2
        assert policy.timeout_s == 300.0

    def test_validation(self):
        with pytest.raises(ParameterError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ParameterError, match="timeout_s"):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ParameterError, match="backoff"):
            RetryPolicy(backoff=-0.5)


class TestWorkerCrashRecovery:
    def test_output_bitwise_identical_with_named_retry(self):
        baseline = _clean_run()
        faults.install(FaultPlan(kind="worker-crash", task=3))
        reset_run_health()
        recovered = _clean_run()
        for clean, redone in zip(baseline, recovered):
            assert np.array_equal(clean, redone)
        health = run_health()
        assert not health.clean
        assert [event.kind for event in health.retries] == ["worker-lost"]
        assert "task 3/6" in health.retries[0].detail
        assert "attempt 0" in health.retries[0].detail

    def test_crash_on_first_task(self):
        faults.install(FaultPlan(kind="worker-crash", task=0))
        recovered = _clean_run()
        for i, row in enumerate(recovered):
            assert np.array_equal(row, _seeded_row(i))
        assert len(run_health().retries) == 1

    def test_retries_exhausted_fails_loudly(self):
        faults.clear()
        # attempt-independent crash: monkey business via a fault that
        # re-fires is not possible (faults fire on attempt 0 only), so
        # pin the exhaustion path with max_retries=0 instead
        faults.install(FaultPlan(kind="worker-crash", task=2))
        policy = RetryPolicy(max_retries=0, timeout_s=3.0)
        with make_pool("process", 2, retry=policy) as pool:
            with pytest.raises(WorkerFailure, match="task 2/4"):
                pool.map_ordered(_seeded_row, list(range(4)))

    def test_pool_usable_after_worker_failure(self):
        faults.install(FaultPlan(kind="worker-crash", task=1))
        policy = RetryPolicy(max_retries=0, timeout_s=3.0)
        with make_pool("process", 2, retry=policy) as pool:
            with pytest.raises(WorkerFailure):
                pool.map_ordered(_seeded_row, list(range(3)))
            faults.clear()
            out = pool.map_ordered(_seeded_row, list(range(3)))
        for i, row in enumerate(out):
            assert np.array_equal(row, _seeded_row(i))


class TestSlowTaskWatchdog:
    def test_hung_task_recovers_identically(self):
        baseline = _clean_run()
        faults.install(FaultPlan(kind="slow-task", task=4, seconds=30.0))
        reset_run_health()
        recovered = _clean_run()
        for clean, redone in zip(baseline, recovered):
            assert np.array_equal(clean, redone)
        health = run_health()
        assert [event.kind for event in health.retries] == ["worker-lost"]
        assert "task 4/6" in health.retries[0].detail


class TestTaskException:
    def test_propagates_without_burning_retries(self):
        faults.install(FaultPlan(kind="task-exception", task=2))
        with make_pool("process", 2, retry=RETRY) as pool:
            with pytest.raises(FaultInjectedError, match="task 2"):
                pool.map_ordered(_seeded_row, list(range(6)))
        # a deterministic exception is not a lost worker: no retry event
        assert run_health().clean


class TestShmExhaustion:
    def test_degrades_to_pickle_with_identical_results(self):
        # arrays bigger than the slot force one-shot segments; the
        # armed fault makes those allocations fail with ENOSPC
        arrays = [np.random.default_rng(i).random(200_000) for i in range(4)]
        with SharedMemoryPool(2, slot_bytes=1 << 20) as pool:
            baseline = pool.map_ordered(_double, arrays)
        faults.install(FaultPlan(kind="shm-exhaustion", count=2))
        reset_run_health()
        with SharedMemoryPool(2, slot_bytes=1 << 20) as pool:
            degraded = pool.map_ordered(_double, arrays)
        for clean, redone in zip(baseline, degraded):
            assert np.array_equal(clean, redone)
        health = run_health()
        kinds = {event.kind for event in health.degradations}
        assert kinds == {"shm-exhausted"}
        assert "pickle" in health.degradations[0].detail


def _double(arr):
    return arr * 2.0


class TestRunHealthReporting:
    def test_snapshot_round_trips_to_json(self):
        faults.install(FaultPlan(kind="worker-crash", task=1))
        _clean_run(n=4)
        payload = run_health().to_dict()
        assert payload["n_retries"] == 1
        assert payload["retries"][0]["kind"] == "worker-lost"
        json.dumps(payload)  # JSON-able by contract

    def test_reset_clears_events(self):
        faults.install(FaultPlan(kind="worker-crash", task=1))
        _clean_run(n=4)
        assert not run_health().clean
        reset_run_health()
        assert run_health().clean
