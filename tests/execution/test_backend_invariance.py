"""Backend bitwise-invariance battery (the tentpole contract).

Every engine must produce *bit-for-bit* identical results for any
``backend`` in {serial, thread, process} at any ``{chunk, workers}``
point — the execution knobs are pure strategy.  Each engine family is
pinned against its single-threaded serial baseline via exact array
equality (``tobytes`` — no tolerances).
"""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro.core.shots import PowerShot
from repro.generation import GenerationEngine
from repro.measurement import MeasurementEngine
from repro.netsim import table_i_workload
from repro.network import (
    DemandMatrix,
    NetworkDemand,
    NetworkEngine,
    parallel_paths,
)

#: The cross-product each engine is pinned at (backend, chunk, workers).
#: ``chunk`` is interpreted per engine (packets, or seconds for the
#: generation engine's rate sampler).
GRID = [
    ("serial", 1, 2048),
    ("thread", 2, 4096),
    ("thread", 3, 9000),
    ("process", 2, 4096),
    ("process", 3, 9000),
]


@pytest.fixture(autouse=True)
def no_segment_leaks():
    yield
    assert not glob.glob("/dev/shm/repro_shm_*")


@pytest.fixture(scope="module")
def workload():
    return table_i_workload(2, scale=1 / 32, duration=30.0)


@pytest.fixture(scope="module")
def trace(workload):
    return workload.synthesize(seed=11).trace


class TestSynthesisInvariance:
    @pytest.fixture(scope="class")
    def baseline(self, workload):
        stream = workload.synthesize_chunks(seed=11, chunk=4096, workers=1)
        return np.concatenate(list(stream))

    @pytest.mark.parametrize("backend,workers,chunk", GRID)
    def test_stream_bitwise(self, workload, baseline, backend, workers, chunk):
        stream = workload.synthesize_chunks(
            seed=11, chunk=chunk, workers=workers, backend=backend
        )
        packets = np.concatenate(list(stream))
        assert packets.tobytes() == baseline.tobytes()


class TestMeasurementInvariance:
    @pytest.fixture(scope="class")
    def baseline(self, trace):
        return MeasurementEngine(workers=1).measure_trace(
            trace, delta=0.5, duration=30.0
        )

    @pytest.mark.parametrize("backend,workers,chunk", GRID)
    def test_measure_bitwise(self, trace, baseline, backend, workers, chunk):
        got = MeasurementEngine(
            chunk=chunk, workers=workers, backend=backend
        ).measure_trace(trace, delta=0.5, duration=30.0)
        assert got.series.values.tobytes() == baseline.series.values.tobytes()
        assert got.flows.starts.tobytes() == baseline.flows.starts.tobytes()
        assert got.flows.sizes.tobytes() == baseline.flows.sizes.tobytes()
        assert got.packet_count == baseline.packet_count
        assert got.total_bytes == baseline.total_bytes


class TestGenerationInvariance:
    @pytest.fixture(scope="class")
    def model(self, ensemble):
        return 4.0, ensemble, PowerShot(0.8)

    @pytest.fixture(scope="class")
    def baseline(self, model):
        rate, ens, shot = model
        return GenerationEngine(workers=1).rate_series(
            rate, ens, shot, 120.0, 0.5, rng=5
        )

    @pytest.fixture(scope="class")
    def baseline_streamed(self, model):
        rate, ens, shot = model
        return GenerationEngine(workers=1).rate_series_streamed(
            rate, ens, shot, 120.0, 0.5, seed=5
        )

    @pytest.mark.parametrize("backend,workers,chunk", GRID)
    def test_rate_series_bitwise(self, model, baseline, backend, workers, chunk):
        rate, ens, shot = model
        got = GenerationEngine(
            chunk=float(max(chunk, 4096)) / 1000.0,  # seconds
            workers=workers,
            backend=backend,
        ).rate_series(rate, ens, shot, 120.0, 0.5, rng=5)
        assert got.values.tobytes() == baseline.values.tobytes()

    @pytest.mark.parametrize("backend,workers,chunk", GRID)
    def test_streamed_bitwise(
        self, model, baseline_streamed, backend, workers, chunk
    ):
        rate, ens, shot = model
        got = GenerationEngine(
            chunk=float(max(chunk, 4096)) / 1000.0,
            workers=workers,
            backend=backend,
        ).rate_series_streamed(rate, ens, shot, 120.0, 0.5, seed=5)
        assert got.values.tobytes() == baseline_streamed.values.tobytes()


class TestNetworkInvariance:
    @pytest.fixture(scope="class")
    def scenario(self):
        def wl(row):
            return table_i_workload(row, scale=1 / 256, duration=20.0)

        demands = DemandMatrix([
            NetworkDemand("src", "dst", wl(4)),
            NetworkDemand("mid0", "dst", wl(6)),
        ])
        return parallel_paths(2), demands

    @staticmethod
    def _digest(simulation):
        out = {}
        for link, ls in simulation.links.items():
            out[link] = (
                ls.n_demands,
                ls.packet_count,
                ls.total_bytes,
                None if ls.series is None else ls.series.values.tobytes(),
                None if ls.flows is None or not len(ls.flows)
                else (ls.flows.starts.tobytes(), ls.flows.sizes.tobytes()),
            )
        return out

    @pytest.fixture(scope="class")
    def baseline(self, scenario):
        topology, demands = scenario
        return self._digest(
            NetworkEngine(workers=1).simulate(topology, demands, seed=7)
        )

    @pytest.mark.parametrize("backend,workers,chunk", GRID)
    def test_simulation_bitwise(
        self, scenario, baseline, backend, workers, chunk
    ):
        topology, demands = scenario
        got = self._digest(
            NetworkEngine(
                chunk=chunk if chunk > 1 else None,
                workers=workers,
                backend=backend,
            ).simulate(topology, demands, seed=7)
        )
        assert list(got) == list(baseline)  # link order is canonical
        assert got == baseline
