"""Unit tests of the shared-memory staging walker (single process).

A transport over manually-created segments exercises stage/unstage
without a pool, so the walker's structure handling (tuples, dicts,
dataclasses, sub-threshold arrays) is pinned independently of fork
semantics.
"""

from __future__ import annotations

import dataclasses
import glob
import queue
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.execution import ShmRef, ShmTransport
from repro.execution.shm import new_segment_name


@dataclasses.dataclass(frozen=True)
class _Payload:
    label: str
    data: np.ndarray
    extra: dict


@pytest.fixture
def transport():
    segs = [
        shared_memory.SharedMemory(
            name=new_segment_name(), create=True, size=1 << 20
        )
        for _ in range(2)
    ]
    free = queue.Queue()
    for i in range(len(segs)):
        free.put(i)
    t = ShmTransport(free, segs, threshold=1024, slot_bytes=1 << 20)
    yield t
    for seg in segs:
        seg.close()
        seg.unlink()
    assert not glob.glob("/dev/shm/repro_shm_*")


def test_small_arrays_ride_pickle(transport):
    small = np.arange(10.0)  # 80 bytes < threshold
    staged = transport.stage(small)
    assert staged is small


def test_large_array_roundtrip(transport):
    arr = np.random.default_rng(0).random(2048)
    staged = transport.stage(arr)
    assert isinstance(staged, ShmRef)
    assert staged.kind == "slot"
    out = transport.unstage(staged)
    assert np.array_equal(out, arr)
    assert out is not arr


def test_nested_structures(transport):
    arr = np.arange(2048.0)
    obj = {
        "chunks": [arr, arr[:4]],
        "pair": (arr * 2, "tag"),
        "payload": _Payload("x", arr + 1, {"inner": arr + 2}),
    }
    staged = transport.stage(obj)
    assert isinstance(staged["chunks"][0], ShmRef)
    assert staged["chunks"][1] is obj["chunks"][1]  # small: untouched
    assert isinstance(staged["payload"], _Payload)
    assert isinstance(staged["payload"].data, ShmRef)
    out = transport.unstage(staged)
    assert np.array_equal(out["chunks"][0], arr)
    assert out["pair"][1] == "tag"
    assert np.array_equal(out["pair"][0], arr * 2)
    assert out["payload"].label == "x"
    assert np.array_equal(out["payload"].data, arr + 1)
    assert np.array_equal(out["payload"].extra["inner"], arr + 2)


def test_unchanged_dataclass_not_copied(transport):
    payload = _Payload("y", np.arange(4.0), None)  # all small, no containers
    assert transport.stage(payload) is payload


def test_slot_recycled_after_unstage(transport):
    arr = np.random.default_rng(1).random(4096)
    for _ in range(10):  # more passes than slots: requires recycling
        staged = transport.stage(arr)
        assert isinstance(staged, ShmRef) and staged.kind == "slot"
        assert np.array_equal(transport.unstage(staged), arr)


def test_oversize_array_uses_oneshot(transport):
    big = np.random.default_rng(2).random((1 << 18) + 1)  # > slot_bytes
    staged = transport.stage(big)
    assert staged.kind == "oneshot"
    out = transport.unstage(staged)
    assert np.array_equal(out, big)
    # the consumer unlinked it
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=staged.name)


def test_discard_releases_without_materialising(transport):
    arr = np.random.default_rng(3).random(4096)
    staged = transport.stage({"a": arr, "b": (arr, [arr])})
    transport.discard(staged)
    # every slot is free again: three more parks all land in slots
    for _ in range(2):
        again = transport.stage(arr)
        assert again.kind == "slot"
        transport.unstage(again)


def test_structured_dtype_preserved(transport):
    rec = np.zeros(512, dtype=[("t", "<f8"), ("size", "<u2")])
    rec["t"] = np.linspace(0, 1, 512)
    rec["size"] = 1500
    staged = transport.stage(rec)
    assert isinstance(staged, ShmRef)
    out = transport.unstage(staged)
    assert out.dtype == rec.dtype
    assert np.array_equal(out, rec)
