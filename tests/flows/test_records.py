"""Tests for repro.flows.records: FlowRecord and FlowSet."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EmpiricalEnsemble
from repro.exceptions import ParameterError
from repro.flows import FlowRecord, FiveTuple
from repro.flows.records import FlowSet


def make_flowset(n=5):
    starts = np.linspace(0.0, 4.0, n)
    ends = starts + np.linspace(1.0, 2.0, n)
    sizes = np.full(n, 1e4)
    counts = np.full(n, 7, dtype=np.int64)
    keys = np.arange(n, dtype=np.uint32)
    return FlowSet(
        starts, ends, sizes, counts, key_kind="prefix", keys=keys,
        prefix_length=24,
    )


class TestFlowRecord:
    def test_duration_and_rate(self):
        rec = FlowRecord(FiveTuple(1, 2, 3, 4, 6), 1.0, 3.0, 10_000, 8)
        assert rec.duration == pytest.approx(2.0)
        assert rec.mean_rate == pytest.approx(5000.0)


class TestFlowSet:
    def test_len_and_totals(self):
        fs = make_flowset(5)
        assert len(fs) == 5
        assert fs.total_bytes == pytest.approx(5e4)

    def test_durations_positive(self):
        fs = make_flowset()
        assert np.all(fs.durations > 0)

    def test_interarrival_times(self):
        fs = make_flowset(5)
        inter = fs.interarrival_times
        assert inter.shape == (4,)
        np.testing.assert_allclose(inter, 1.0)

    def test_records_iterator(self):
        fs = make_flowset(3)
        records = list(fs.records())
        assert len(records) == 3
        assert records[0].size_bytes == 10_000
        assert str(records[0].key).endswith("/24")

    def test_to_ensemble(self):
        fs = make_flowset()
        ens = fs.to_ensemble()
        assert isinstance(ens, EmpiricalEnsemble)
        assert ens.mean_size == pytest.approx(1e4)

    def test_statistics(self):
        fs = make_flowset(10)
        stats = fs.statistics(interval_length=20.0)
        assert stats.arrival_rate == pytest.approx(0.5)
        assert stats.flow_count == 10

    def test_filter(self):
        fs = make_flowset(6)
        kept = fs.filter(fs.starts < 2.0)
        assert len(kept) < 6
        assert np.all(kept.starts < 2.0)
        with pytest.raises(ParameterError):
            fs.filter(np.ones(3, dtype=bool))

    def test_rejects_inconsistent_columns(self):
        with pytest.raises(ParameterError):
            FlowSet(
                np.zeros(3), np.zeros(2), np.ones(3), np.ones(3, dtype=int),
                key_kind="prefix", keys=np.zeros(3, dtype=np.uint32),
            )

    def test_rejects_end_before_start(self):
        with pytest.raises(ParameterError):
            FlowSet(
                np.array([1.0]), np.array([0.5]), np.array([1.0]),
                np.array([2]), key_kind="prefix",
                keys=np.zeros(1, dtype=np.uint32),
            )

    def test_rejects_unknown_kind(self):
        with pytest.raises(ParameterError):
            FlowSet(
                np.array([0.0]), np.array([1.0]), np.array([1.0]),
                np.array([2]), key_kind="weird",
                keys=np.zeros(1, dtype=np.uint32),
            )

    def test_empty_ensemble_rejected(self):
        fs = make_flowset(3).filter(np.zeros(3, dtype=bool))
        with pytest.raises(ParameterError):
            fs.to_ensemble()
