"""Property-based tests for the flow exporter (hypothesis).

The exporter is the trust anchor of the whole measurement pipeline, so its
invariants are checked on randomly generated packet streams:

* byte conservation: kept flows + discarded packets account for every byte;
* every flow's packets fit inside [start, end] with gaps <= timeout;
* flow grouping is permutation-invariant (timestamp order is recovered);
* prefix aggregation never yields more flows than 5-tuple grouping.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows import export_five_tuple_flows, export_prefix_flows
from repro.trace import packets_from_columns


@st.composite
def packet_streams(draw):
    """Random small packet streams with a handful of endpoints."""
    n = draw(st.integers(min_value=1, max_value=120))
    n_hosts = draw(st.integers(min_value=1, max_value=6))
    times = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
            min_size=n, max_size=n,
        )
    )
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    src = rng.integers(1, n_hosts + 1, n).astype(np.uint32)
    dst = (0x0B000000 + rng.integers(0, n_hosts, n) * 256 + 1).astype(np.uint32)
    sizes = rng.integers(40, 1500, n).astype(np.uint16)
    return packets_from_columns(
        np.array(times), src, dst,
        np.full(n, 1000, dtype=np.uint16), np.full(n, 80, dtype=np.uint16),
        np.full(n, 6, dtype=np.uint8), sizes,
    )


@given(packets=packet_streams(), timeout=st.floats(min_value=0.5, max_value=120.0))
@settings(max_examples=120, deadline=None)
def test_byte_conservation(packets, timeout):
    total = float(packets["size"].astype(np.int64).sum())
    flows = export_five_tuple_flows(packets, timeout=timeout, keep_packet_map=True)
    kept = flows.sizes.sum()
    discarded = float(
        packets["size"][flows.packet_flow_ids < 0].astype(np.int64).sum()
    )
    assert kept + discarded == total


@given(packets=packet_streams(), timeout=st.floats(min_value=0.5, max_value=120.0))
@settings(max_examples=120, deadline=None)
def test_flow_time_bounds_and_gaps(packets, timeout):
    flows = export_five_tuple_flows(packets, timeout=timeout, keep_packet_map=True)
    ts = packets["timestamp"]
    for flow_id in range(len(flows)):
        member_times = np.sort(ts[flows.packet_flow_ids == flow_id])
        assert member_times.size == flows.packet_counts[flow_id]
        assert member_times[0] == flows.starts[flow_id]
        assert member_times[-1] == flows.ends[flow_id]
        if member_times.size > 1:
            assert np.max(np.diff(member_times)) <= timeout + 1e-9


@given(packets=packet_streams())
@settings(max_examples=60, deadline=None)
def test_permutation_invariance(packets):
    rng = np.random.default_rng(0)
    shuffled = packets[rng.permutation(packets.size)]
    a = export_five_tuple_flows(packets, timeout=10.0)
    b = export_five_tuple_flows(shuffled, timeout=10.0)
    assert len(a) == len(b)
    order_a = np.lexsort((a.sizes, a.starts))
    order_b = np.lexsort((b.sizes, b.starts))
    np.testing.assert_allclose(a.starts[order_a], b.starts[order_b])
    np.testing.assert_allclose(a.sizes[order_a], b.sizes[order_b])


@given(packets=packet_streams(), timeout=st.floats(min_value=0.5, max_value=120.0))
@settings(max_examples=60, deadline=None)
def test_prefix_aggregation_keeps_at_least_as_many_bytes(packets, timeout):
    """Merging by prefix can only *rescue* packets from the single-packet
    discard (two discarded singles may form one valid prefix flow), never
    lose kept bytes: a kept 5-tuple flow's packets always stay inside one
    kept prefix flow, because merging only shrinks inter-packet gaps.

    (Note: the *flow count* is NOT monotone for exactly this reason —
    hypothesis found the counterexample; see git history.)
    """
    five = export_five_tuple_flows(packets, timeout=timeout)
    prefix = export_prefix_flows(packets, timeout=timeout)
    assert prefix.total_bytes >= five.total_bytes - 1e-9
    assert prefix.discarded_packets <= five.discarded_packets


@given(packets=packet_streams())
@settings(max_examples=60, deadline=None)
def test_durations_always_positive(packets):
    flows = export_five_tuple_flows(packets, timeout=30.0)
    assert np.all(flows.durations > 0)
    assert np.all(flows.packet_counts >= 2)
