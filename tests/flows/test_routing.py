"""Tests for repro.flows.routing: routable-prefix flows (section VI-A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.flows import PrefixKey, RoutingTable, export_routable_flows, parse_ipv4
from repro.flows.exporter import export_prefix_flows
from repro.netsim import AddressSpace
from repro.trace import packets_from_columns


def simple_table():
    return RoutingTable(
        [
            PrefixKey(parse_ipv4("10.1.0.0") >> 16, 16),
            PrefixKey(parse_ipv4("10.1.2.0") >> 8, 24),  # more specific
            PrefixKey(parse_ipv4("10.2.0.0") >> 16, 16),
        ]
    )


class TestLookup:
    def test_longest_prefix_wins(self):
        table = simple_table()
        idx = table.lookup([parse_ipv4("10.1.2.99")])
        assert table.entry_of(int(idx[0])).length == 24

    def test_covering_supernet(self):
        table = simple_table()
        idx = table.lookup([parse_ipv4("10.1.3.99")])
        entry = table.entry_of(int(idx[0]))
        assert entry.length == 16
        assert str(entry) == "10.1.0.0/16"

    def test_no_match_is_minus_one(self):
        table = simple_table()
        idx = table.lookup([parse_ipv4("192.168.0.1")])
        assert idx[0] == -1
        with pytest.raises(ParameterError):
            table.entry_of(-1)

    def test_default_route_catches_all(self):
        table = RoutingTable([PrefixKey(0, 0)])
        idx = table.lookup([0, 2**32 - 1, parse_ipv4("8.8.8.8")])
        assert np.all(idx == 0)

    def test_vectorised_lookup(self):
        table = simple_table()
        rng = np.random.default_rng(0)
        addrs = (parse_ipv4("10.1.0.0") + rng.integers(0, 2**16, 5000)).astype(
            np.uint32
        )
        idx = table.lookup(addrs)
        assert idx.shape == (5000,)
        assert np.all(idx >= 0)

    def test_rejects_duplicates_and_empty(self):
        with pytest.raises(ParameterError):
            RoutingTable([])
        with pytest.raises(ParameterError):
            RoutingTable([PrefixKey(1, 24), PrefixKey(1, 24)])

    def test_duplicate_error_names_the_entry(self):
        """The duplicate is rejected loudly, naming the offending prefix."""
        entry = PrefixKey(parse_ipv4("10.1.0.0") >> 16, 16)
        with pytest.raises(ParameterError, match=r"duplicate.*10\.1\.0\.0/16"):
            RoutingTable([PrefixKey(0, 0), entry, entry])

    def test_duplicate_detected_across_list_positions(self):
        """Duplicates are caught regardless of interleaved other entries."""
        with pytest.raises(ParameterError, match="duplicate"):
            RoutingTable(
                [
                    PrefixKey(parse_ipv4("10.0.0.0") >> 24, 8),
                    PrefixKey(parse_ipv4("10.1.0.0") >> 16, 16),
                    PrefixKey(parse_ipv4("10.0.0.0") >> 24, 8),
                ]
            )

    def test_same_prefix_different_length_is_not_a_duplicate(self):
        """/8 and /16 of the same network coexist (distinct FIB entries)."""
        table = RoutingTable(
            [
                PrefixKey(parse_ipv4("10.0.0.0") >> 24, 8),
                PrefixKey(parse_ipv4("10.0.0.0") >> 16, 16),
            ]
        )
        assert len(table) == 2


class TestLongestPrefixMatchEdgeCases:
    """The section VI-A FIB semantics, pinned at the corners."""

    def overlapping_table(self):
        """A full /8 -> /16 -> /24 -> /32 chain over one address, plus /0."""
        return RoutingTable(
            [
                PrefixKey(0, 0),  # default route
                PrefixKey(parse_ipv4("10.0.0.0") >> 24, 8),
                PrefixKey(parse_ipv4("10.1.0.0") >> 16, 16),
                PrefixKey(parse_ipv4("10.1.2.0") >> 8, 24),
                PrefixKey(parse_ipv4("10.1.2.3"), 32),
            ]
        )

    def test_most_specific_of_overlapping_chain_wins(self):
        table = self.overlapping_table()
        cases = {
            "10.1.2.3": 32,  # exact host route
            "10.1.2.4": 24,  # same /24, different host
            "10.1.3.4": 16,  # same /16, different /24
            "10.2.0.1": 8,  # same /8, different /16
            "11.0.0.1": 0,  # default route only
        }
        for address, expected_length in cases.items():
            idx = table.lookup([parse_ipv4(address)])
            assert table.entry_of(int(idx[0])).length == expected_length, address

    def test_default_route_never_returns_minus_one(self):
        table = self.overlapping_table()
        rng = np.random.default_rng(0)
        idx = table.lookup(rng.integers(0, 2**32, 10_000).astype(np.uint32))
        assert np.all(idx >= 0)

    def test_no_match_is_minus_one_without_default(self):
        table = RoutingTable(
            [PrefixKey(parse_ipv4("10.0.0.0") >> 24, 8)]
        )
        idx = table.lookup(
            [parse_ipv4("10.9.9.9"), parse_ipv4("11.0.0.1"),
             parse_ipv4("9.255.255.255")]
        )
        assert idx.tolist() == [0, -1, -1]

    def test_boundary_addresses_of_a_prefix(self):
        """First and last address of a /16 match it; neighbours do not."""
        table = RoutingTable(
            [PrefixKey(parse_ipv4("10.1.0.0") >> 16, 16)]
        )
        inside = table.lookup(
            [parse_ipv4("10.1.0.0"), parse_ipv4("10.1.255.255")]
        )
        outside = table.lookup(
            [parse_ipv4("10.0.255.255"), parse_ipv4("10.2.0.0")]
        )
        assert np.all(inside == 0)
        assert np.all(outside == -1)

    def test_empty_lookup(self):
        table = self.overlapping_table()
        idx = table.lookup(np.zeros(0, dtype=np.uint32))
        assert idx.size == 0


class TestSyntheticTable:
    def test_covers_address_space(self):
        space = AddressSpace(n_dst_prefixes=256)
        table = RoutingTable.synthetic(space, rng=0)
        _, dst, *_ = space.sample_endpoints(2000, rng=1)
        idx = table.lookup(dst)
        assert np.all(idx >= 0)  # default route guarantees coverage

    def test_coarse_aggregation_shrinks_table(self):
        space = AddressSpace(n_dst_prefixes=1024)
        fine = RoutingTable.synthetic(space, coarse_fraction=0.0, rng=0)
        coarse = RoutingTable.synthetic(space, coarse_fraction=0.9, rng=0)
        assert len(coarse) < len(fine)


class TestRoutableExport:
    def test_aggregates_at_least_as_much_as_slash24(self, trace):
        space = AddressSpace()  # the workload default
        table = RoutingTable.synthetic(space, coarse_fraction=0.5, rng=2)
        routable = export_routable_flows(trace, table, timeout=8.0)
        by24 = export_prefix_flows(trace, timeout=8.0)
        # /16 supernets merge several /24 streams: fewer or equal flows
        assert 0 < len(routable) <= len(by24)

    def test_unrouted_packets_dropped(self):
        pkts = packets_from_columns(
            [0.0, 1.0, 0.5, 1.5],
            [1, 1, 2, 2],
            [parse_ipv4("10.1.2.3")] * 2 + [parse_ipv4("99.9.9.9")] * 2,
            [1, 1, 2, 2],
            [80] * 4,
            [6] * 4,
            [500] * 4,
        )
        table = simple_table()  # does not cover 99.0.0.0
        flows = export_routable_flows(pkts, table, timeout=60.0)
        assert len(flows) == 1
        assert flows.total_bytes == 1000.0

    def test_packet_map_spans_original_packets(self, trace):
        table = RoutingTable.synthetic(AddressSpace(), rng=3)
        flows = export_routable_flows(
            trace, table, timeout=8.0, keep_packet_map=True
        )
        assert flows.packet_flow_ids.shape[0] == len(trace)
