"""Tests for repro.flows.routing: routable-prefix flows (section VI-A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.flows import PrefixKey, RoutingTable, export_routable_flows, parse_ipv4
from repro.flows.exporter import export_prefix_flows
from repro.netsim import AddressSpace
from repro.trace import packets_from_columns


def simple_table():
    return RoutingTable(
        [
            PrefixKey(parse_ipv4("10.1.0.0") >> 16, 16),
            PrefixKey(parse_ipv4("10.1.2.0") >> 8, 24),  # more specific
            PrefixKey(parse_ipv4("10.2.0.0") >> 16, 16),
        ]
    )


class TestLookup:
    def test_longest_prefix_wins(self):
        table = simple_table()
        idx = table.lookup([parse_ipv4("10.1.2.99")])
        assert table.entry_of(int(idx[0])).length == 24

    def test_covering_supernet(self):
        table = simple_table()
        idx = table.lookup([parse_ipv4("10.1.3.99")])
        entry = table.entry_of(int(idx[0]))
        assert entry.length == 16
        assert str(entry) == "10.1.0.0/16"

    def test_no_match_is_minus_one(self):
        table = simple_table()
        idx = table.lookup([parse_ipv4("192.168.0.1")])
        assert idx[0] == -1
        with pytest.raises(ParameterError):
            table.entry_of(-1)

    def test_default_route_catches_all(self):
        table = RoutingTable([PrefixKey(0, 0)])
        idx = table.lookup([0, 2**32 - 1, parse_ipv4("8.8.8.8")])
        assert np.all(idx == 0)

    def test_vectorised_lookup(self):
        table = simple_table()
        rng = np.random.default_rng(0)
        addrs = (parse_ipv4("10.1.0.0") + rng.integers(0, 2**16, 5000)).astype(
            np.uint32
        )
        idx = table.lookup(addrs)
        assert idx.shape == (5000,)
        assert np.all(idx >= 0)

    def test_rejects_duplicates_and_empty(self):
        with pytest.raises(ParameterError):
            RoutingTable([])
        with pytest.raises(ParameterError):
            RoutingTable([PrefixKey(1, 24), PrefixKey(1, 24)])


class TestSyntheticTable:
    def test_covers_address_space(self):
        space = AddressSpace(n_dst_prefixes=256)
        table = RoutingTable.synthetic(space, rng=0)
        _, dst, *_ = space.sample_endpoints(2000, rng=1)
        idx = table.lookup(dst)
        assert np.all(idx >= 0)  # default route guarantees coverage

    def test_coarse_aggregation_shrinks_table(self):
        space = AddressSpace(n_dst_prefixes=1024)
        fine = RoutingTable.synthetic(space, coarse_fraction=0.0, rng=0)
        coarse = RoutingTable.synthetic(space, coarse_fraction=0.9, rng=0)
        assert len(coarse) < len(fine)


class TestRoutableExport:
    def test_aggregates_at_least_as_much_as_slash24(self, trace):
        space = AddressSpace()  # the workload default
        table = RoutingTable.synthetic(space, coarse_fraction=0.5, rng=2)
        routable = export_routable_flows(trace, table, timeout=8.0)
        by24 = export_prefix_flows(trace, timeout=8.0)
        # /16 supernets merge several /24 streams: fewer or equal flows
        assert 0 < len(routable) <= len(by24)

    def test_unrouted_packets_dropped(self):
        pkts = packets_from_columns(
            [0.0, 1.0, 0.5, 1.5],
            [1, 1, 2, 2],
            [parse_ipv4("10.1.2.3")] * 2 + [parse_ipv4("99.9.9.9")] * 2,
            [1, 1, 2, 2],
            [80] * 4,
            [6] * 4,
            [500] * 4,
        )
        table = simple_table()  # does not cover 99.0.0.0
        flows = export_routable_flows(pkts, table, timeout=60.0)
        assert len(flows) == 1
        assert flows.total_bytes == 1000.0

    def test_packet_map_spans_original_packets(self, trace):
        table = RoutingTable.synthetic(AddressSpace(), rng=3)
        flows = export_routable_flows(
            trace, table, timeout=8.0, keep_packet_map=True
        )
        assert flows.packet_flow_ids.shape[0] == len(trace)
