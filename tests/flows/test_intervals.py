"""Tests for repro.flows.intervals: interval cutting and Figure 1 effects."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.flows import (
    boundary_split_excess,
    cumulative_arrival_curve,
    export_interval_flows,
    export_five_tuple_flows,
    iter_intervals,
)
from repro.trace import PacketTrace, packets_from_columns


def long_flow_trace(n_flows=40, flow_len=30.0, duration=120.0, seed=0):
    """Flows spanning interval boundaries: many packets over flow_len."""
    rng = np.random.default_rng(seed)
    rows_t, rows_src = [], []
    for i in range(n_flows):
        start = rng.random() * (duration - flow_len)
        times = start + np.sort(rng.random(20)) * flow_len
        rows_t.append(times)
        rows_src.append(np.full(20, 1000 + i, dtype=np.uint32))
    t = np.concatenate(rows_t)
    src = np.concatenate(rows_src)
    n = t.size
    pkts = packets_from_columns(
        t, src, np.full(n, 0x0B000001), np.full(n, 1234), np.full(n, 80),
        np.full(n, 6), np.full(n, 500),
    )
    order = np.argsort(pkts["timestamp"])
    return PacketTrace(pkts[order], link_capacity=1e8, duration=duration)


class TestIterIntervals:
    def test_window_count_and_rebase(self):
        trace = long_flow_trace()
        windows = list(iter_intervals(trace, 30.0))
        assert len(windows) == 4
        for start, window in windows:
            assert window.duration == pytest.approx(30.0)
            if len(window):
                assert window.packets["timestamp"].min() >= 0.0
                assert window.packets["timestamp"].max() < 30.0

    def test_short_remnant_dropped(self):
        trace = long_flow_trace(duration=100.0)
        windows = list(iter_intervals(trace, 30.0))
        # 100 = 3 x 30 + 10; the 10 s remnant (< half interval) is dropped
        assert len(windows) == 3

    def test_rejects_bad_interval(self):
        trace = long_flow_trace()
        with pytest.raises(ParameterError):
            list(iter_intervals(trace, 0.0))


class TestIntervalExport:
    def test_flows_split_at_boundaries(self):
        trace = long_flow_trace()
        whole = export_five_tuple_flows(trace, timeout=60.0)
        per_interval = export_interval_flows(
            trace, 30.0, key="five_tuple", timeout=60.0
        )
        total_split = sum(len(fs) for _, fs in per_interval)
        # splitting can only create more flows
        assert total_split >= len(whole)

    def test_byte_conservation_across_intervals(self):
        trace = long_flow_trace()
        per_interval = export_interval_flows(
            trace, 30.0, key="five_tuple", timeout=60.0
        )
        split_bytes = sum(fs.total_bytes for _, fs in per_interval)
        whole_bytes = export_five_tuple_flows(trace, timeout=60.0).total_bytes
        # single-packet fragments may be discarded; allow small loss
        assert split_bytes <= whole_bytes
        assert split_bytes >= 0.9 * whole_bytes


class TestCumulativeCurve:
    def test_monotone_and_total(self):
        trace = long_flow_trace()
        flows = export_five_tuple_flows(trace, timeout=60.0)
        times, counts = cumulative_arrival_curve(flows, 128, horizon=120.0)
        assert np.all(np.diff(counts) >= 0)
        assert counts[-1] == len(flows)

    def test_explicit_grid(self):
        trace = long_flow_trace()
        flows = export_five_tuple_flows(trace, timeout=60.0)
        grid = np.array([0.0, 60.0, 120.0])
        times, counts = cumulative_arrival_curve(flows, grid)
        assert times.shape == counts.shape == (3,)
        assert counts[0] == 0


class TestSplitExcess:
    def test_detects_continuation_spike(self):
        """Interval-2 flows that are continuations inflate the head count."""
        trace = long_flow_trace(n_flows=150, flow_len=40.0)
        per_interval = export_interval_flows(
            trace, 40.0, key="five_tuple", timeout=60.0
        )
        _, second = per_interval[1]
        excess = boundary_split_excess(second, 40.0, head=2.0)
        # many flows straddle the boundary, so the head is way above steady
        assert excess.excess > 0
        assert excess.head_count > excess.expected_head_count

    def test_no_spike_on_fresh_arrivals(self):
        rng = np.random.default_rng(1)
        n = 400
        t = np.sort(rng.random(n) * 40.0)
        pkts = packets_from_columns(
            np.repeat(t, 2) + np.tile([0.0, 0.5], n),
            np.repeat(np.arange(n, dtype=np.uint32), 2),
            np.full(2 * n, 0x0B000001),
            np.full(2 * n, 1), np.full(2 * n, 80), np.full(2 * n, 6),
            np.full(2 * n, 500),
        )
        order = np.argsort(pkts["timestamp"])
        trace = PacketTrace(pkts[order], link_capacity=1e8, duration=41.0)
        flows = export_five_tuple_flows(trace, timeout=60.0)
        excess = boundary_split_excess(flows, 41.0, head=2.0)
        assert abs(excess.fraction_of_total) < 0.1

    def test_head_validation(self):
        trace = long_flow_trace()
        flows = export_five_tuple_flows(trace, timeout=60.0)
        with pytest.raises(ParameterError):
            boundary_split_excess(flows, 120.0, head=200.0)
