"""Tests for repro.flows.exporter: the NetFlow-like accounting rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import FlowExportError
from repro.flows import export_flows, export_five_tuple_flows, export_prefix_flows
from repro.trace import packets_from_columns


def packets_of(rows):
    """rows: list of (t, src, dst, sport, dport, proto, size)."""
    cols = list(zip(*rows))
    return packets_from_columns(*cols)


TUPLE_A = (0x0A000001, 0x0B000001, 1000, 80, 6)
TUPLE_B = (0x0A000002, 0x0B000002, 2000, 80, 6)


def row(t, tup=TUPLE_A, size=100):
    return (t, *tup, size)


class TestGrouping:
    def test_two_five_tuple_flows(self):
        pkts = packets_of(
            [row(0.0), row(1.0), row(0.5, TUPLE_B), row(1.5, TUPLE_B)]
        )
        flows = export_five_tuple_flows(pkts)
        assert len(flows) == 2
        assert sorted(flows.packet_counts.tolist()) == [2, 2]

    def test_flow_size_is_byte_sum(self):
        pkts = packets_of([row(0.0, size=100), row(1.0, size=250)])
        flows = export_five_tuple_flows(pkts)
        assert flows.sizes[0] == pytest.approx(350.0)

    def test_duration_first_to_last_packet(self):
        pkts = packets_of([row(0.25), row(0.5), row(2.0)])
        flows = export_five_tuple_flows(pkts)
        assert flows.starts[0] == pytest.approx(0.25)
        assert flows.ends[0] == pytest.approx(2.0)
        assert flows.durations[0] == pytest.approx(1.75)

    def test_prefix_grouping_merges_same_slash24(self):
        a = (0x0A000001, 0x0B000001, 1000, 80, 6)  # dst 11.0.0.1
        b = (0x0A000009, 0x0B000002, 4000, 80, 6)  # dst 11.0.0.2 same /24
        c = (0x0A000003, 0x0B000101, 1000, 80, 6)  # dst 11.0.1.1 other /24
        pkts = packets_of([row(0.0, a), row(0.5, b), row(0.2, c), row(0.9, c)])
        flows = export_prefix_flows(pkts)
        assert len(flows) == 2
        merged = flows.sizes[np.argmax(flows.packet_counts)]
        assert merged == pytest.approx(200.0)

    def test_prefix_length_parameter(self):
        a = (1, 0x0B000101, 1, 80, 6)
        b = (2, 0x0B00FF01, 2, 80, 6)  # same /16, different /24
        pkts = packets_of([row(0.0, a), row(0.5, a), row(0.2, b), row(0.7, b)])
        by24 = export_prefix_flows(pkts, prefix_length=24)
        by16 = export_prefix_flows(pkts, prefix_length=16)
        assert len(by24) == 2
        assert len(by16) == 1


class TestTimeout:
    def test_gap_beyond_timeout_splits(self):
        pkts = packets_of([row(0.0), row(1.0), row(100.0), row(101.0)])
        flows = export_five_tuple_flows(pkts, timeout=60.0)
        assert len(flows) == 2

    def test_gap_within_timeout_keeps_one_flow(self):
        pkts = packets_of([row(0.0), row(59.0), row(118.0)])
        flows = export_five_tuple_flows(pkts, timeout=60.0)
        assert len(flows) == 1
        assert flows.packet_counts[0] == 3

    def test_timeout_boundary_inclusive(self):
        pkts = packets_of([row(0.0), row(60.0)])
        flows = export_five_tuple_flows(pkts, timeout=60.0)
        assert len(flows) == 1

    def test_rejects_nonpositive_timeout(self):
        pkts = packets_of([row(0.0)])
        with pytest.raises(FlowExportError):
            export_five_tuple_flows(pkts, timeout=0.0)


class TestDiscardRules:
    def test_single_packet_flow_discarded(self):
        pkts = packets_of([row(0.0), row(0.3, TUPLE_B), row(0.8, TUPLE_B)])
        flows = export_five_tuple_flows(pkts)
        assert len(flows) == 1
        assert flows.discarded_packets == 1

    def test_zero_duration_flow_discarded(self):
        # two packets with identical timestamps: duration would be zero
        pkts = packets_of([row(1.0), row(1.0)])
        flows = export_five_tuple_flows(pkts)
        assert len(flows) == 0
        assert flows.discarded_packets == 2

    def test_byte_conservation(self):
        rng = np.random.default_rng(0)
        rows = []
        for i in range(200):
            tup = (int(rng.integers(1, 5)), 0x0B000001, 1000, 80, 6)
            rows.append((float(rng.random() * 10), *tup, 100))
        pkts = packets_of(rows)
        flows = export_five_tuple_flows(pkts)
        kept = flows.sizes.sum()
        assert kept + 100 * flows.discarded_packets == pytest.approx(200 * 100)

    def test_packet_map_matches_discards(self):
        pkts = packets_of([row(0.0), row(0.5), row(0.9, TUPLE_B)])
        flows = export_five_tuple_flows(pkts, keep_packet_map=True)
        ids = flows.packet_flow_ids
        assert ids.shape == (3,)
        assert (ids >= 0).sum() == 2  # the two TUPLE_A packets
        assert ids[2] == -1  # single-packet TUPLE_B discarded

    def test_min_packets_parameter(self):
        pkts = packets_of([row(0.0), row(0.5), row(1.0)])
        assert len(export_five_tuple_flows(pkts, min_packets=4)) == 0
        assert len(export_five_tuple_flows(pkts, min_packets=3)) == 1


class TestEdgeCases:
    def test_empty_input(self):
        pkts = packets_of([row(0.0)])[:0]
        flows = export_five_tuple_flows(pkts)
        assert len(flows) == 0

    def test_unsorted_input_handled(self):
        pkts = packets_of([row(2.0), row(0.0), row(1.0)])
        flows = export_five_tuple_flows(pkts)
        assert len(flows) == 1
        assert flows.starts[0] == pytest.approx(0.0)
        assert flows.ends[0] == pytest.approx(2.0)

    def test_unknown_key_kind_rejected(self):
        pkts = packets_of([row(0.0)])
        with pytest.raises(FlowExportError):
            export_flows(pkts, key="port")

    def test_wrong_dtype_rejected(self):
        with pytest.raises(FlowExportError):
            export_flows(np.zeros(4))

    def test_accepts_packet_trace(self, trace):
        flows = export_five_tuple_flows(trace, timeout=8.0)
        assert len(flows) > 0

    def test_keys_recoverable(self):
        pkts = packets_of([row(0.0), row(1.0)])
        flows = export_five_tuple_flows(pkts)
        key = flows.key_of(0)
        assert (key.src_addr, key.dst_addr, key.src_port, key.dst_port,
                key.protocol) == TUPLE_A
