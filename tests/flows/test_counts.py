"""Tests for repro.flows.counts: the active-flow-count series."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MGInfinityModel
from repro.exceptions import ParameterError
from repro.flows import CountSeries, active_flow_counts
from repro.flows.records import FlowSet


def flowset_from_intervals(intervals):
    starts = np.array([s for s, _ in intervals], dtype=float)
    ends = np.array([e for _, e in intervals], dtype=float)
    n = starts.size
    return FlowSet(
        starts, ends, np.full(n, 1e4), np.full(n, 5, dtype=np.int64),
        key_kind="prefix", keys=np.arange(n, dtype=np.uint32),
    )


class TestCounting:
    def test_hand_built_intervals(self):
        flows = flowset_from_intervals([(0.0, 2.0), (1.0, 3.0), (2.5, 4.0)])
        series = active_flow_counts(flows, 0.5, duration=4.0)
        # t: 0.0 0.5 1.0 1.5 2.0 2.5 3.0 3.5 4.0
        expected = [1, 1, 2, 2, 1, 2, 1, 1, 0]
        np.testing.assert_array_equal(series.counts, expected)

    def test_count_at_departure_instant_excludes_flow(self):
        flows = flowset_from_intervals([(0.0, 1.0)])
        series = active_flow_counts(flows, 1.0, duration=2.0)
        np.testing.assert_array_equal(series.counts, [1, 0, 0])

    def test_mean_equals_load(self, five_tuple_flows, trace):
        """Little's law face-check: mean N ~= lambda E[D]."""
        series = active_flow_counts(
            five_tuple_flows, 0.2, duration=trace.duration
        )
        stats = five_tuple_flows.statistics(trace.duration)
        assert series.mean == pytest.approx(stats.offered_load, rel=0.15)

    def test_poisson_marginal_on_controlled_mginf(self):
        """Section V-A: the stationary M/G/infinity count is Poisson
        (index of dispersion 1).  Tested on a controlled simulation with
        short exponential durations so one window holds many effectively
        independent samples."""
        rng = np.random.default_rng(5)
        lam, mean_d, horizon = 200.0, 0.05, 200.0
        n = rng.poisson(lam * horizon)
        starts = np.sort(rng.random(n) * horizon)
        ends = starts + rng.exponential(mean_d, n)
        flows = flowset_from_intervals(list(zip(starts, ends)))
        series = active_flow_counts(flows, 0.5, duration=horizon)
        # skip the warm-up edge
        counts = series.counts[5:-5]
        mean, var = counts.mean(), counts.var(ddof=1)
        assert mean == pytest.approx(lam * mean_d, rel=0.1)
        assert 0.7 < var / mean < 1.4

    def test_dispersion_noisy_but_positive_on_trace(
        self, five_tuple_flows, trace
    ):
        """On one real interval the counts are long-memory, so a single
        window yields a noisy (over-)dispersion estimate; sanity-band it."""
        series = active_flow_counts(
            five_tuple_flows, 0.2, duration=trace.duration
        )
        assert 0.3 < series.index_of_dispersion < 6.0

    def test_matches_mginf_model_quantile(self, five_tuple_flows, trace):
        series = active_flow_counts(
            five_tuple_flows, 0.2, duration=trace.duration
        )
        model = MGInfinityModel(
            five_tuple_flows.starts.size / trace.duration,
            durations=five_tuple_flows.durations,
        )
        # the 99.9% model quantile should not be exceeded often
        q = model.quantile(0.999)
        exceedances = np.mean(series.counts > q)
        assert exceedances < 0.05

    def test_autocorrelation_positive_short_lags(self, five_tuple_flows, trace):
        series = active_flow_counts(
            five_tuple_flows, 0.2, duration=trace.duration
        )
        rho = series.autocorrelation(5)
        assert np.all(rho > 0.3)  # flows persist across 200 ms bins

    def test_validation(self):
        flows = flowset_from_intervals([(0.0, 1.0)])
        with pytest.raises(ParameterError):
            active_flow_counts(flows, 0.0)
        with pytest.raises(ParameterError):
            CountSeries(np.array([1, -1]), 0.5)
        with pytest.raises(ParameterError):
            CountSeries(np.zeros(0, dtype=int), 0.5)
