"""Tests for repro.flows.keys: flow definitions and address helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.flows import (
    PROTO_TCP,
    PROTO_UDP,
    FiveTuple,
    PrefixKey,
    format_ipv4,
    parse_ipv4,
    prefix_of,
)


class TestIpv4Text:
    def test_format_known(self):
        assert format_ipv4(0x0A000001) == "10.0.0.1"
        assert format_ipv4(0xFFFFFFFF) == "255.255.255.255"
        assert format_ipv4(0) == "0.0.0.0"

    def test_parse_known(self):
        assert parse_ipv4("10.0.0.1") == 0x0A000001
        assert parse_ipv4("192.168.1.254") == 0xC0A801FE

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    @settings(max_examples=200)
    def test_roundtrip(self, addr):
        assert parse_ipv4(format_ipv4(addr)) == addr

    @pytest.mark.parametrize(
        "bad", ["10.0.0", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", ""]
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ParameterError):
            parse_ipv4(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ParameterError):
            format_ipv4(2**32)


class TestPrefixOf:
    def test_slash24(self):
        assert int(prefix_of(parse_ipv4("10.1.2.3"), 24)) == 0x0A0102

    def test_slash16(self):
        assert int(prefix_of(parse_ipv4("10.1.2.3"), 16)) == 0x0A01

    def test_slash32_identity(self):
        addr = parse_ipv4("1.2.3.4")
        assert int(prefix_of(addr, 32)) == addr

    def test_vectorised(self):
        addrs = np.array([0x0A010203, 0x0A010299, 0x0A020000], dtype=np.uint32)
        prefixes = prefix_of(addrs, 24)
        assert prefixes[0] == prefixes[1]
        assert prefixes[0] != prefixes[2]

    def test_rejects_bad_length(self):
        with pytest.raises(ParameterError):
            prefix_of(0, 33)


class TestFiveTuple:
    def test_str_formatting(self):
        ft = FiveTuple(0x0A000001, 0x0A000002, 1234, 80, PROTO_TCP)
        assert str(ft) == "10.0.0.1:1234 -> 10.0.0.2:80 (tcp)"

    def test_udp_label(self):
        ft = FiveTuple(0, 0, 1, 53, PROTO_UDP)
        assert "(udp)" in str(ft)

    def test_is_hashable_key(self):
        a = FiveTuple(1, 2, 3, 4, 6)
        b = FiveTuple(1, 2, 3, 4, 6)
        assert a == b
        assert len({a, b}) == 1


class TestPrefixKey:
    def test_str(self):
        key = PrefixKey(0x0A0102, 24)
        assert str(key) == "10.1.2.0/24"

    def test_covers(self):
        key = PrefixKey(0x0A0102, 24)
        assert key.covers(parse_ipv4("10.1.2.200"))
        assert not key.covers(parse_ipv4("10.1.3.1"))

    def test_rejects_oversized_prefix(self):
        with pytest.raises(ParameterError):
            PrefixKey(0x1FFFFFF, 24)

    def test_rejects_bad_length(self):
        with pytest.raises(ParameterError):
            PrefixKey(0, 40)
