"""Tests for the streaming, sharded measurement engine.

The headline contract: the chunked/sharded path is **bit-for-bit** equal
to ``export_flows`` + ``RateSeries.from_packets`` for any ``chunk`` and
``workers`` — including every chunk-boundary case the carry table has to
get right (flows spanning chunks, idle gaps of exactly the timeout at a
boundary, single-packet flows split across chunks).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import FlowExportError, ParameterError
from repro.flows import export_flows
from repro.measurement import (
    MeasurementConfig,
    MeasurementEngine,
    StreamingMeasurement,
    iter_packet_chunks,
    reference_export_flows,
)
from repro.netsim import medium_utilization_link
from repro.stats.timeseries import RateSeries
from repro.trace import TraceWriter, packets_from_columns

TUPLE_A = (0x0A000001, 0x0B000001, 1000, 80, 6)
TUPLE_B = (0x0A000002, 0x0B000002, 2000, 80, 6)
TUPLE_C = (0x0A000003, 0x0B000003, 3000, 80, 17)


def packets_of(rows):
    """rows: list of (t, (src, dst, sport, dport, proto), size)."""
    rows = sorted(rows, key=lambda r: r[0])
    cols = list(zip(*[(t, *tup, size) for t, tup, size in rows]))
    return packets_from_columns(*cols)


def assert_flowsets_equal(a, b):
    np.testing.assert_array_equal(a.starts, b.starts)
    np.testing.assert_array_equal(a.ends, b.ends)
    np.testing.assert_array_equal(a.sizes, b.sizes)
    np.testing.assert_array_equal(a.packet_counts, b.packet_counts)
    np.testing.assert_array_equal(a.keys, b.keys)
    assert a.keys.dtype == b.keys.dtype
    assert a.key_kind == b.key_kind
    assert a.discarded_packets == b.discarded_packets


def streamed(packets, chunk_sizes, *, delta=None, duration=None, **kwargs):
    """Run StreamingMeasurement over explicit chunk splits."""
    sm = StreamingMeasurement(delta=delta, duration=duration, **kwargs)
    offset = 0
    for size in chunk_sizes:
        sm.update(packets[offset: offset + size])
        offset += size
    assert offset == packets.size
    return sm.finalize()


class TestChunkBoundaries:
    """Crafted packet layouts exercising the open-flow carry table."""

    def test_flow_spanning_two_chunks(self):
        pkts = packets_of([
            (0.0, TUPLE_A, 100), (1.0, TUPLE_A, 200),
            (2.0, TUPLE_A, 300), (3.0, TUPLE_A, 400),
        ])
        flows, _ = streamed(pkts, [2, 2], timeout=60.0)
        assert_flowsets_equal(flows, export_flows(pkts, timeout=60.0))
        assert len(flows) == 1
        assert flows.sizes[0] == 1000.0
        assert flows.packet_counts[0] == 4

    def test_flow_spanning_three_chunks(self):
        pkts = packets_of([
            (float(i), TUPLE_A, 100 + i) for i in range(6)
        ])
        flows, _ = streamed(pkts, [2, 2, 2], timeout=60.0)
        assert len(flows) == 1
        assert flows.starts[0] == 0.0
        assert flows.ends[0] == 5.0
        assert flows.packet_counts[0] == 6
        assert_flowsets_equal(flows, export_flows(pkts, timeout=60.0))

    def test_idle_gap_of_exactly_timeout_at_boundary_continues(self):
        # the exporter's rule is gap > timeout splits; == timeout does not
        pkts = packets_of([(0.0, TUPLE_A, 100), (60.0, TUPLE_A, 100)])
        flows, _ = streamed(pkts, [1, 1], timeout=60.0)
        assert len(flows) == 1
        assert flows.packet_counts[0] == 2
        assert_flowsets_equal(flows, export_flows(pkts, timeout=60.0))

    def test_idle_gap_just_over_timeout_at_boundary_splits(self):
        pkts = packets_of([
            (0.0, TUPLE_A, 100), (0.5, TUPLE_A, 100),
            (60.6, TUPLE_A, 100), (61.0, TUPLE_A, 100),
        ])
        flows, _ = streamed(pkts, [2, 2], timeout=60.0)
        assert len(flows) == 2
        assert_flowsets_equal(flows, export_flows(pkts, timeout=60.0))

    def test_single_packet_flow_split_across_chunks_merges(self):
        # one packet per chunk, same key, within the timeout: the carry
        # table must join them into one two-packet (kept) flow
        pkts = packets_of([(0.0, TUPLE_A, 100), (5.0, TUPLE_A, 150)])
        flows, _ = streamed(pkts, [1, 1], timeout=60.0)
        assert len(flows) == 1
        assert flows.discarded_packets == 0
        assert_flowsets_equal(flows, export_flows(pkts, timeout=60.0))

    def test_single_packet_flows_split_across_chunks_discarded(self):
        # same key in consecutive chunks but beyond the timeout: two
        # single-packet flows, both discarded
        pkts = packets_of([(0.0, TUPLE_A, 100), (100.0, TUPLE_A, 150)])
        flows, _ = streamed(pkts, [1, 1], timeout=60.0)
        assert len(flows) == 0
        assert flows.discarded_packets == 2
        assert_flowsets_equal(flows, export_flows(pkts, timeout=60.0))

    def test_zero_duration_flow_across_chunks_discarded(self):
        pkts = packets_of([(1.0, TUPLE_A, 100), (1.0, TUPLE_A, 200)])
        flows, _ = streamed(pkts, [1, 1], timeout=60.0)
        assert len(flows) == 0
        assert flows.discarded_packets == 2

    def test_key_reappearing_after_timeout_closes_carried_flow(self):
        pkts = packets_of([
            (0.0, TUPLE_A, 100), (1.0, TUPLE_A, 100),   # flow 1 (kept)
            (2.0, TUPLE_B, 100),                          # interleaved
            (90.0, TUPLE_A, 100), (91.0, TUPLE_A, 100),  # flow 2 (kept)
            (92.0, TUPLE_B, 100),
        ])
        for split in ([6], [3, 3], [1] * 6, [2, 4]):
            flows, _ = streamed(pkts, split, timeout=60.0)
            assert_flowsets_equal(flows, export_flows(pkts, timeout=60.0))

    def test_discarded_packets_excluded_from_series_across_chunks(self):
        # TUPLE_B is a single-packet flow: its 5000 bytes must not show
        # up in the rate series, whichever chunk it lands in
        pkts = packets_of([
            (0.1, TUPLE_A, 100), (0.9, TUPLE_A, 100),
            (1.1, TUPLE_B, 5000),
            (2.1, TUPLE_C, 100), (2.2, TUPLE_C, 100),
        ])
        base = export_flows(pkts, timeout=60.0, keep_packet_map=True)
        expected = RateSeries.from_packets(
            pkts, 1.0, duration=4.0, packet_mask=base.packet_flow_ids >= 0
        )
        for split in ([5], [1] * 5, [3, 2], [2, 2, 1]):
            flows, series = streamed(
                pkts, split, delta=1.0, duration=4.0, timeout=60.0
            )
            np.testing.assert_array_equal(series.values, expected.values)
            assert_flowsets_equal(flows, base)

    def test_min_packets_pending_across_chunks(self):
        # with min_packets=3 a two-packet flow is discarded; both its
        # packets arrived in different chunks, so the carry table's
        # pending byte map must subtract them from the series
        pkts = packets_of([
            (0.2, TUPLE_A, 100), (1.2, TUPLE_A, 200),
            (0.4, TUPLE_B, 10), (1.4, TUPLE_B, 20), (2.4, TUPLE_B, 30),
        ])
        base = export_flows(
            pkts, timeout=60.0, min_packets=3, keep_packet_map=True
        )
        expected = RateSeries.from_packets(
            pkts, 0.5, duration=3.0, packet_mask=base.packet_flow_ids >= 0
        )
        for split in ([5], [1] * 5, [2, 3], [4, 1]):
            flows, series = streamed(
                pkts, split, delta=0.5, duration=3.0,
                timeout=60.0, min_packets=3,
            )
            np.testing.assert_array_equal(series.values, expected.values)
            assert_flowsets_equal(flows, base)

    def test_out_of_order_chunks_rejected(self):
        sm = StreamingMeasurement()
        sm.update(packets_of([(5.0, TUPLE_A, 100)]))
        with pytest.raises(FlowExportError, match="time-ordered"):
            sm.update(packets_of([(1.0, TUPLE_A, 100)]))

    def test_empty_input(self):
        sm = StreamingMeasurement(delta=1.0, duration=4.0)
        flows, series = sm.finalize()
        assert len(flows) == 0
        assert series is not None
        np.testing.assert_array_equal(series.values, np.zeros(4))


class TestEquivalenceOnPresets:
    """Chunked/sharded measurement == in-memory path on Table I traffic."""

    @pytest.fixture(scope="class")
    def trace(self):
        return medium_utilization_link(duration=20.0).synthesize(seed=11).trace

    @pytest.mark.parametrize("key", ["five_tuple", "prefix"])
    @pytest.mark.parametrize("chunk,workers", [
        (None, 1), (None, 4), (1000, 1), (997, 3), (50, 2),
    ])
    def test_bitwise_equal_to_in_memory(self, trace, key, chunk, workers):
        base = export_flows(
            trace, key=key, timeout=8.0, keep_packet_map=True
        )
        expected = RateSeries.from_packets(
            trace, 0.2, packet_mask=base.packet_flow_ids >= 0
        )
        engine = MeasurementEngine(chunk=chunk, workers=workers)
        result = engine.measure_trace(trace, delta=0.2, key=key, timeout=8.0)
        assert_flowsets_equal(result.flows, base)
        np.testing.assert_array_equal(result.series.values, expected.values)
        assert result.series.delta == expected.delta
        assert result.packet_count == len(trace)
        assert result.link_capacity == trace.link_capacity

    def test_unsorted_trace_sorted_before_chunking(self, trace):
        """measure_trace on an invalid (unsorted) capture still equals
        export_flows on it, for any chunk — the engine sorts first."""
        rng = np.random.default_rng(0)
        shuffled = trace.packets[rng.permutation(len(trace))]
        base = export_flows(shuffled, timeout=8.0, keep_packet_map=True)
        expected = RateSeries.from_packets(
            shuffled, 0.2, duration=trace.duration,
            packet_mask=base.packet_flow_ids >= 0,
        )
        for chunk in (None, 1000):
            result = MeasurementEngine(chunk=chunk).measure_trace(
                shuffled, duration=trace.duration, delta=0.2, timeout=8.0
            )
            assert_flowsets_equal(result.flows, base)
            np.testing.assert_array_equal(
                result.series.values, expected.values
            )

    def test_matches_reference_exporter(self, trace):
        """New exporter and the legacy np.unique oracle agree exactly."""
        for key in ("five_tuple", "prefix"):
            new = export_flows(trace, key=key, timeout=8.0, keep_packet_map=True)
            old = reference_export_flows(
                trace, key=key, timeout=8.0, keep_packet_map=True
            )
            assert_flowsets_equal(new, old)
            np.testing.assert_array_equal(
                new.packet_flow_ids, old.packet_flow_ids
            )

    def test_measure_file_out_of_core(self, trace, tmp_path):
        path = tmp_path / "capture.rptr"
        with TraceWriter(
            path, link_capacity=trace.link_capacity, duration=trace.duration
        ) as writer:
            for block in iter_packet_chunks(trace, 2000):
                writer.write(block)
        base = MeasurementEngine().measure_trace(trace, delta=0.2, timeout=8.0)
        result = MeasurementEngine(chunk=1500, workers=2).measure_file(
            path, delta=0.2, timeout=8.0
        )
        assert_flowsets_equal(result.flows, base.flows)
        np.testing.assert_array_equal(
            result.series.values, base.series.values
        )
        assert result.duration == trace.duration
        assert result.link_capacity == trace.link_capacity

    def test_synthesize_chunks_bridge(self, trace):
        workload = medium_utilization_link(duration=20.0)
        chunks = list(workload.synthesize_chunks(seed=11, chunk=3000))
        assert sum(c.size for c in chunks) == len(trace)
        assert all(c.size <= 3000 for c in chunks)
        result = MeasurementEngine().measure_chunks(
            chunks, duration=workload.duration, delta=0.2, timeout=8.0
        )
        base = MeasurementEngine().measure_trace(
            trace, delta=0.2, duration=workload.duration, timeout=8.0
        )
        assert_flowsets_equal(result.flows, base.flows)
        np.testing.assert_array_equal(
            result.series.values, base.series.values
        )

    def test_statistics_shortcut(self, trace):
        result = MeasurementEngine(chunk=4096).measure_trace(
            trace, delta=0.2, timeout=8.0
        )
        stats = result.statistics()
        expected = result.flows.statistics(trace.duration)
        assert stats.arrival_rate == expected.arrival_rate
        assert stats.mean_size == expected.mean_size


class TestConfig:
    def test_rejects_bad_chunk(self):
        with pytest.raises(ParameterError):
            MeasurementConfig(chunk=0)
        with pytest.raises(ParameterError):
            MeasurementConfig(chunk=2.5)

    def test_rejects_bad_workers(self):
        with pytest.raises(ParameterError):
            MeasurementConfig(workers=0)

    def test_engine_overrides(self):
        engine = MeasurementEngine(MeasurementConfig(chunk=10), workers=3)
        assert engine.config.chunk == 10
        assert engine.config.workers == 3

    def test_streamer_validation(self):
        with pytest.raises(FlowExportError):
            StreamingMeasurement(key="port")
        with pytest.raises(FlowExportError):
            StreamingMeasurement(timeout=0.0)
        with pytest.raises(FlowExportError):
            StreamingMeasurement(delta=0.2)  # delta without duration
        with pytest.raises(FlowExportError):
            StreamingMeasurement(delta=10.0, duration=1.0)  # < one bin

    def test_iter_packet_chunks_validation(self):
        pkts = packets_of([(0.0, TUPLE_A, 100)])
        with pytest.raises(ParameterError):
            list(iter_packet_chunks(pkts, 0))
        with pytest.raises(ParameterError):
            list(iter_packet_chunks(np.zeros(3), None))
        assert [c.size for c in iter_packet_chunks(pkts, None)] == [1]


class TestEdgeCaseFiles:
    """measure_file on degenerate traces: zero packets, one packet."""

    def write_file(self, tmp_path, rows, *, duration=10.0):
        path = tmp_path / "edge.rptr"
        with TraceWriter(path, link_capacity=1e6, duration=duration) as w:
            if rows:
                w.write(packets_of(rows))
        return path

    def test_empty_trace_file(self, tmp_path):
        path = self.write_file(tmp_path, [])
        result = MeasurementEngine().measure_file(path, delta=0.5)
        assert len(result.flows) == 0
        assert result.flows.discarded_packets == 0
        assert result.duration == 10.0
        assert result.utilization == 0.0
        # the rate series still covers the header's duration, all zeros
        assert len(result.series) == 20
        assert result.series.mean == 0.0
        assert result.series.variance == 0.0

    def test_empty_trace_file_without_delta(self, tmp_path):
        path = self.write_file(tmp_path, [])
        result = MeasurementEngine().measure_file(path)
        assert len(result.flows) == 0
        assert result.series is None

    def test_single_packet_trace_file(self, tmp_path):
        path = self.write_file(tmp_path, [(1.0, TUPLE_A, 100)])
        result = MeasurementEngine().measure_file(path, delta=0.5)
        # a lone packet is a zero-duration flow: discarded by the
        # min-packet/zero-duration filter, but still on the wire
        assert len(result.flows) == 0
        assert result.flows.discarded_packets == 1
        assert result.utilization == pytest.approx(100 * 8 / (1e6 * 10.0))
        assert result.series.mean == 0.0  # filtered series drops it

    def test_single_packet_survives_chunked_run(self, tmp_path):
        path = self.write_file(tmp_path, [(1.0, TUPLE_A, 100)])
        engine = MeasurementEngine(chunk=1)
        result = engine.measure_file(path, delta=0.5)
        assert len(result.flows) == 0
        assert result.flows.discarded_packets == 1

    def test_two_packets_one_flow(self, tmp_path):
        """The smallest trace that produces a flow at all."""
        path = self.write_file(
            tmp_path, [(1.0, TUPLE_A, 100), (1.5, TUPLE_A, 200)]
        )
        result = MeasurementEngine().measure_file(path, delta=0.5)
        assert len(result.flows) == 1
        assert result.flows.sizes[0] == 300
        assert result.flows.durations[0] == pytest.approx(0.5)
