"""Tests for repro._util: validation and quadrature helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import (
    as_1d_float_array,
    as_rng,
    broadcast_flows,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
    leggauss_nodes,
)
from repro.exceptions import (
    FittingError,
    FlowExportError,
    ModelError,
    ParameterError,
    PredictionError,
    ReproError,
    TopologyError,
    TraceFormatError,
)


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive("x", 2) == 2.0

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_check_positive_rejects(self, bad):
        with pytest.raises(ParameterError):
            check_positive("x", bad)

    def test_check_nonnegative(self):
        assert check_nonnegative("x", 0.0) == 0.0
        with pytest.raises(ParameterError):
            check_nonnegative("x", -0.1)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        for bad in (0.0, 1.0, -0.2, 1.5):
            with pytest.raises(ParameterError):
                check_probability("p", bad)

    def test_check_in_range(self):
        assert check_in_range("x", 1.0, 0.0, 2.0) == 1.0
        assert check_in_range("x", 0.0, 0.0, 2.0) == 0.0
        with pytest.raises(ParameterError):
            check_in_range("x", 0.0, 0.0, 2.0, inclusive=False)

    def test_as_1d_float_array(self):
        arr = as_1d_float_array("x", [1, 2, 3])
        assert arr.dtype == np.float64
        with pytest.raises(ParameterError):
            as_1d_float_array("x", [])
        with pytest.raises(ParameterError):
            as_1d_float_array("x", [1.0, float("nan")])

    def test_broadcast_flows(self):
        s, d = broadcast_flows([1.0, 2.0], [0.5, 0.5])
        assert s.shape == d.shape == (2,)
        with pytest.raises(ParameterError):
            broadcast_flows([1.0], [0.5, 0.5])
        with pytest.raises(ParameterError):
            broadcast_flows([1.0, -1.0], [0.5, 0.5])
        with pytest.raises(ParameterError):
            broadcast_flows([1.0, 1.0], [0.5, 0.0])


class TestRng:
    def test_from_seed(self):
        a = as_rng(42)
        b = as_rng(42)
        assert a.random() == b.random()

    def test_passthrough_generator(self):
        gen = np.random.default_rng(1)
        assert as_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestQuadrature:
    def test_integrates_polynomials_exactly(self):
        x, w = leggauss_nodes(8)
        # order-8 Gauss-Legendre is exact up to degree 15
        for k in range(0, 15):
            assert np.sum(w * x**k) == pytest.approx(1.0 / (k + 1), rel=1e-12)

    def test_nodes_in_unit_interval(self):
        x, w = leggauss_nodes(32)
        assert np.all((x > 0) & (x < 1))
        assert w.sum() == pytest.approx(1.0)

    def test_cached(self):
        assert leggauss_nodes(16)[0] is leggauss_nodes(16)[0]

    def test_rejects_bad_order(self):
        with pytest.raises(ParameterError):
            leggauss_nodes(0)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ParameterError,
            FittingError,
            TraceFormatError,
            FlowExportError,
            ModelError,
            PredictionError,
            TopologyError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_parameter_error_is_value_error(self):
        assert issubclass(ParameterError, ValueError)
