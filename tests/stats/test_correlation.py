"""Tests for repro.stats.correlation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.stats import (
    autocorrelation,
    autocovariance_series,
    correlogram,
    cross_correlation,
)


class TestAutocovariance:
    def test_lag_zero_is_biased_variance(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        gamma = autocovariance_series(x, 0)
        assert gamma[0] == pytest.approx(np.var(x))  # ddof=0

    def test_ar1_structure(self):
        rng = np.random.default_rng(0)
        phi = 0.8
        x = np.zeros(200_000)
        eps = rng.normal(size=x.size)
        for i in range(1, x.size):
            x[i] = phi * x[i - 1] + eps[i]
        rho = autocorrelation(x, 3)
        np.testing.assert_allclose(rho, [phi, phi**2, phi**3], atol=0.02)

    def test_iid_near_zero(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=100_000)
        rho = autocorrelation(x, 5)
        assert np.all(np.abs(rho) < 0.02)

    def test_correlogram_includes_lag_zero(self):
        lags, rho = correlogram(np.array([1.0, 2.0, 1.0, 2.0]), 2)
        assert rho[0] == pytest.approx(1.0)
        assert lags.tolist() == [0, 1, 2]

    def test_alternating_sequence_negative_lag1(self):
        _, rho = correlogram(np.array([1.0, -1.0] * 50), 1)
        assert rho[1] < -0.9

    def test_validation(self):
        with pytest.raises(ParameterError):
            autocovariance_series([1.0, 2.0], 5)
        with pytest.raises(ParameterError):
            autocorrelation(np.ones(10), 2)  # zero variance
        with pytest.raises(ParameterError):
            autocovariance_series([1.0, 2.0, 3.0], -1)
        with pytest.raises(ParameterError):
            autocovariance_series([1.0, 2.0, 3.0], 1, method="welch")


class TestFftAutocovariance:
    """The O(n log n) FFT path must match the dot-product loop."""

    def test_matches_direct_within_1e9_absolute(self):
        rng = np.random.default_rng(3)
        for n, max_lag in ((64, 63), (1000, 200), (5000, 4999)):
            x = rng.normal(size=n)  # O(1)-magnitude series
            direct = autocovariance_series(x, max_lag, method="direct")
            fft = autocovariance_series(x, max_lag, method="fft")
            assert np.max(np.abs(direct - fft)) <= 1e-9

    def test_matches_direct_relative_on_large_magnitudes(self):
        # byte-rate-scale values: agreement stays relative to gamma(0)
        rng = np.random.default_rng(4)
        x = rng.lognormal(12.0, 1.0, 20_000)
        direct = autocovariance_series(x, 1500, method="direct")
        fft = autocovariance_series(x, 1500, method="fft")
        assert np.max(np.abs(direct - fft)) <= 1e-9 * direct[0]

    def test_auto_switches_by_work(self):
        rng = np.random.default_rng(5)
        small = rng.normal(size=100)
        big = rng.normal(size=100_000)
        # both routes agree with the loop regardless of which one ran
        np.testing.assert_allclose(
            autocovariance_series(small, 10),
            autocovariance_series(small, 10, method="direct"),
            rtol=0, atol=1e-12,
        )
        np.testing.assert_allclose(
            autocovariance_series(big, 50),
            autocovariance_series(big, 50, method="direct"),
            rtol=0, atol=1e-9,
        )

    def test_constant_series_is_zero(self):
        gamma = autocovariance_series(np.full(100, 7.0), 10, method="fft")
        np.testing.assert_array_equal(gamma, np.zeros(11))

    def test_autocorrelation_accepts_method(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=512)
        np.testing.assert_allclose(
            autocorrelation(x, 20, method="fft"),
            autocorrelation(x, 20, method="direct"),
            rtol=0, atol=1e-12,
        )


class TestCrossCorrelation:
    def test_identical_is_one(self):
        x = np.array([1.0, 5.0, 2.0, 8.0])
        assert cross_correlation(x, x) == pytest.approx(1.0)

    def test_negated_is_minus_one(self):
        x = np.array([1.0, 5.0, 2.0, 8.0])
        assert cross_correlation(x, -x) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(2)
        assert abs(
            cross_correlation(rng.normal(size=50_000), rng.normal(size=50_000))
        ) < 0.02

    def test_sizes_and_durations_of_same_flow_correlate(self, five_tuple_flows):
        """The paper's remark: larger S goes with larger D (per flow)."""
        corr = cross_correlation(
            np.log(five_tuple_flows.sizes), np.log(five_tuple_flows.durations)
        )
        assert corr > 0.4

    def test_validation(self):
        with pytest.raises(ParameterError):
            cross_correlation([1.0], [1.0, 2.0])
        with pytest.raises(ParameterError):
            cross_correlation([1.0, 1.0], [1.0, 2.0])
