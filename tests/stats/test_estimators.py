"""Tests for repro.stats.estimators: the section V-G online estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.stats import EwmaEstimator, OnlineFlowStatistics
from repro.stats.estimators import ewma_final, replay_flow_statistics


class TestEwma:
    def test_first_value_initialises(self):
        est = EwmaEstimator(0.1)
        assert est.update(5.0) == 5.0
        assert est.value == 5.0

    def test_recursion(self):
        est = EwmaEstimator(0.25)
        est.update(4.0)
        assert est.update(8.0) == pytest.approx(0.75 * 4.0 + 0.25 * 8.0)

    def test_converges_to_constant(self):
        est = EwmaEstimator(0.2)
        for _ in range(200):
            est.update(7.0)
        assert est.value == pytest.approx(7.0)

    def test_converges_to_mean_of_noise(self):
        rng = np.random.default_rng(0)
        est = EwmaEstimator(0.01)
        for x in rng.normal(3.0, 1.0, 50_000):
            est.update(x)
        assert est.value == pytest.approx(3.0, abs=0.2)

    def test_smaller_eps_slower(self):
        slow, fast = EwmaEstimator(0.01), EwmaEstimator(0.5)
        for est in (slow, fast):
            est.update(0.0)
            est.update(10.0)
        assert fast.value > slow.value

    def test_reset(self):
        est = EwmaEstimator(0.5)
        est.update(1.0)
        est.reset()
        assert not est.initialized
        with pytest.raises(ParameterError):
            est.value

    def test_eps_validated(self):
        for bad in (0.0, 1.5, -0.1):
            with pytest.raises(ParameterError):
                EwmaEstimator(bad)


class TestOnlineFlowStatistics:
    def test_not_ready_until_fed(self):
        online = OnlineFlowStatistics(0.1)
        assert not online.ready
        with pytest.raises(ParameterError):
            online.snapshot()

    def test_converges_to_batch_statistics(self, flow_population):
        sizes, durations = flow_population
        rng = np.random.default_rng(1)
        arrivals = np.sort(rng.random(sizes.size)) * 100.0
        online = OnlineFlowStatistics(eps=0.002)
        for t, s, d in zip(arrivals, sizes, durations):
            online.observe_arrival(t)
            online.observe_departure(s, d)
        snap = online.snapshot()
        assert snap.arrival_rate == pytest.approx(sizes.size / 100.0, rel=0.25)
        assert snap.mean_size == pytest.approx(sizes.mean(), rel=0.25)
        assert snap.mean_square_size_over_duration == pytest.approx(
            np.mean(sizes**2 / durations), rel=0.5
        )

    def test_tracks_regime_change(self):
        online = OnlineFlowStatistics(eps=0.05)
        t = 0.0
        for _ in range(500):
            t += 0.1
            online.observe_arrival(t)
            online.observe_departure(1000.0, 1.0)
        before = online.snapshot().mean_size
        for _ in range(500):
            t += 0.1
            online.observe_arrival(t)
            online.observe_departure(9000.0, 1.0)
        after = online.snapshot().mean_size
        assert before == pytest.approx(1000.0, rel=0.05)
        assert after == pytest.approx(9000.0, rel=0.05)

    def test_rejects_time_reversal(self):
        online = OnlineFlowStatistics()
        online.observe_arrival(5.0)
        with pytest.raises(ParameterError):
            online.observe_arrival(4.0)

    def test_rejects_bad_departures(self):
        online = OnlineFlowStatistics()
        with pytest.raises(ParameterError):
            online.observe_departure(0.0, 1.0)
        with pytest.raises(ParameterError):
            online.observe_departure(100.0, 0.0)


class TestVectorizedEwma:
    """Closed-form EWMA replay vs the sequential estimator loop."""

    @pytest.mark.parametrize("eps", [0.003, 0.1, 0.5, 1.0])
    @pytest.mark.parametrize("n", [1, 2, 100, 4096, 4097, 20_000])
    def test_ewma_final_matches_sequential(self, eps, n):
        rng = np.random.default_rng(42)
        x = rng.lognormal(8.0, 1.0, n)
        est = EwmaEstimator(eps)
        for v in x:
            est.update(v)
        assert ewma_final(x, eps) == pytest.approx(est.value, rel=1e-10)

    def test_ewma_final_validation(self):
        with pytest.raises(ParameterError):
            ewma_final(np.zeros(0), 0.1)
        with pytest.raises(ParameterError):
            ewma_final([1.0, 2.0], 0.0)

    def test_replay_matches_online_loop(self, five_tuple_flows):
        flows = five_tuple_flows
        for eps in (0.01, 0.3):
            online = OnlineFlowStatistics(eps=eps)
            for start in np.sort(flows.starts):
                online.observe_arrival(float(start))
            order = np.argsort(flows.ends, kind="stable")
            for size, duration in zip(
                flows.sizes[order], flows.durations[order]
            ):
                online.observe_departure(float(size), float(duration))
            loop = online.snapshot()
            fast = replay_flow_statistics(flows, eps)
            assert fast.arrival_rate == pytest.approx(
                loop.arrival_rate, rel=1e-9
            )
            assert fast.mean_size == pytest.approx(loop.mean_size, rel=1e-9)
            assert fast.mean_square_size_over_duration == pytest.approx(
                loop.mean_square_size_over_duration, rel=1e-9
            )
            assert fast.mean_duration == pytest.approx(
                loop.mean_duration, rel=1e-9
            )
            assert fast.flow_count == loop.flow_count

    def test_replay_not_ready_returns_none(self):
        class _One:
            starts = np.array([1.0])
            ends = np.array([2.0])
            sizes = np.array([100.0])
            durations = np.array([1.0])

            def __len__(self):
                return 1

        assert replay_flow_statistics(_One(), 0.1) is None
