"""Tests for repro.stats.estimators: the section V-G online estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.stats import EwmaEstimator, OnlineFlowStatistics


class TestEwma:
    def test_first_value_initialises(self):
        est = EwmaEstimator(0.1)
        assert est.update(5.0) == 5.0
        assert est.value == 5.0

    def test_recursion(self):
        est = EwmaEstimator(0.25)
        est.update(4.0)
        assert est.update(8.0) == pytest.approx(0.75 * 4.0 + 0.25 * 8.0)

    def test_converges_to_constant(self):
        est = EwmaEstimator(0.2)
        for _ in range(200):
            est.update(7.0)
        assert est.value == pytest.approx(7.0)

    def test_converges_to_mean_of_noise(self):
        rng = np.random.default_rng(0)
        est = EwmaEstimator(0.01)
        for x in rng.normal(3.0, 1.0, 50_000):
            est.update(x)
        assert est.value == pytest.approx(3.0, abs=0.2)

    def test_smaller_eps_slower(self):
        slow, fast = EwmaEstimator(0.01), EwmaEstimator(0.5)
        for est in (slow, fast):
            est.update(0.0)
            est.update(10.0)
        assert fast.value > slow.value

    def test_reset(self):
        est = EwmaEstimator(0.5)
        est.update(1.0)
        est.reset()
        assert not est.initialized
        with pytest.raises(ParameterError):
            est.value

    def test_eps_validated(self):
        for bad in (0.0, 1.5, -0.1):
            with pytest.raises(ParameterError):
                EwmaEstimator(bad)


class TestOnlineFlowStatistics:
    def test_not_ready_until_fed(self):
        online = OnlineFlowStatistics(0.1)
        assert not online.ready
        with pytest.raises(ParameterError):
            online.snapshot()

    def test_converges_to_batch_statistics(self, flow_population):
        sizes, durations = flow_population
        rng = np.random.default_rng(1)
        arrivals = np.sort(rng.random(sizes.size)) * 100.0
        online = OnlineFlowStatistics(eps=0.002)
        for t, s, d in zip(arrivals, sizes, durations):
            online.observe_arrival(t)
            online.observe_departure(s, d)
        snap = online.snapshot()
        assert snap.arrival_rate == pytest.approx(sizes.size / 100.0, rel=0.25)
        assert snap.mean_size == pytest.approx(sizes.mean(), rel=0.25)
        assert snap.mean_square_size_over_duration == pytest.approx(
            np.mean(sizes**2 / durations), rel=0.5
        )

    def test_tracks_regime_change(self):
        online = OnlineFlowStatistics(eps=0.05)
        t = 0.0
        for _ in range(500):
            t += 0.1
            online.observe_arrival(t)
            online.observe_departure(1000.0, 1.0)
        before = online.snapshot().mean_size
        for _ in range(500):
            t += 0.1
            online.observe_arrival(t)
            online.observe_departure(9000.0, 1.0)
        after = online.snapshot().mean_size
        assert before == pytest.approx(1000.0, rel=0.05)
        assert after == pytest.approx(9000.0, rel=0.05)

    def test_rejects_time_reversal(self):
        online = OnlineFlowStatistics()
        online.observe_arrival(5.0)
        with pytest.raises(ParameterError):
            online.observe_arrival(4.0)

    def test_rejects_bad_departures(self):
        online = OnlineFlowStatistics()
        with pytest.raises(ParameterError):
            online.observe_departure(0.0, 1.0)
        with pytest.raises(ParameterError):
            online.observe_departure(100.0, 0.0)
