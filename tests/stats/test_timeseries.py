"""Tests for repro.stats.timeseries: the measured rate series."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.stats import RateSeries
from repro.trace import packets_from_columns


def simple_packets(times, sizes):
    n = len(times)
    return packets_from_columns(
        np.asarray(times, dtype=float),
        np.full(n, 1), np.full(n, 2), np.full(n, 3), np.full(n, 4),
        np.full(n, 6), np.asarray(sizes),
    )


class TestBinning:
    def test_volume_per_bin(self):
        pkts = simple_packets([0.05, 0.15, 0.25, 0.35], [100, 200, 300, 400])
        series = RateSeries.from_packets(pkts, 0.2, duration=0.4)
        np.testing.assert_allclose(series.values, [1500.0, 3500.0])

    def test_partial_trailing_bin_dropped(self):
        pkts = simple_packets([0.05, 0.25, 0.45], [100, 100, 9999])
        series = RateSeries.from_packets(pkts, 0.2, duration=0.5)
        assert len(series) == 2  # the 0.4-0.5 remnant is not a full bin

    def test_empty_bins_are_zero(self):
        pkts = simple_packets([0.05, 0.65], [100, 100])
        series = RateSeries.from_packets(pkts, 0.2, duration=0.8)
        np.testing.assert_allclose(series.values, [500.0, 0.0, 0.0, 500.0])

    def test_packet_mask_excludes(self):
        pkts = simple_packets([0.05, 0.15], [100, 900])
        series = RateSeries.from_packets(
            pkts, 0.2, duration=0.2, packet_mask=np.array([True, False])
        )
        np.testing.assert_allclose(series.values, [500.0])

    def test_from_trace_uses_duration(self, trace):
        series = RateSeries.from_packets(trace, 0.2)
        assert len(series) == int(np.floor(trace.duration / 0.2))
        # total volume matches (up to the dropped partial bin)
        assert series.values.sum() * 0.2 == pytest.approx(
            trace.total_bytes, rel=0.01
        )

    def test_mask_shape_validated(self):
        pkts = simple_packets([0.05], [100])
        with pytest.raises(ParameterError):
            RateSeries.from_packets(pkts, 0.2, packet_mask=np.ones(3, bool))

    def test_duration_too_short(self):
        pkts = simple_packets([0.05], [100])
        with pytest.raises(ParameterError):
            RateSeries.from_packets(pkts, 0.2, duration=0.1)


class TestMoments:
    def test_mean_variance_cov(self):
        series = RateSeries([1.0, 2.0, 3.0, 4.0], 0.5)
        assert series.mean == pytest.approx(2.5)
        assert series.variance == pytest.approx(np.var([1, 2, 3, 4], ddof=1))
        assert series.coefficient_of_variation == pytest.approx(
            series.std / 2.5
        )

    def test_single_sample_zero_variance(self):
        assert RateSeries([5.0], 1.0).variance == 0.0

    def test_cov_of_zero_series_rejected(self):
        with pytest.raises(ParameterError):
            RateSeries([0.0, 0.0], 1.0).coefficient_of_variation

    def test_times(self):
        series = RateSeries([1.0, 2.0, 3.0], 0.5, start=10.0)
        np.testing.assert_allclose(series.times, [10.0, 10.5, 11.0])


class TestResample:
    def test_pairwise_average(self):
        series = RateSeries([1.0, 3.0, 5.0, 7.0], 0.5)
        coarse = series.resample(2)
        np.testing.assert_allclose(coarse.values, [2.0, 6.0])
        assert coarse.delta == 1.0

    def test_truncates_remainder(self):
        series = RateSeries([1.0, 2.0, 3.0, 4.0, 5.0], 1.0)
        coarse = series.resample(2)
        assert len(coarse) == 2

    def test_averaging_reduces_variance(self, trace):
        series = RateSeries.from_packets(trace, 0.1)
        coarse = series.resample(10)
        assert coarse.variance < series.variance

    def test_mean_preserved(self):
        series = RateSeries(np.arange(12.0), 1.0)
        assert series.resample(3).mean == pytest.approx(series.mean)

    def test_factor_validation(self):
        series = RateSeries([1.0, 2.0], 1.0)
        with pytest.raises(ParameterError):
            series.resample(0)
        with pytest.raises(ParameterError):
            series.resample(5)


class TestWindow:
    def test_slices_values_and_start(self):
        series = RateSeries(np.arange(10.0), 0.5)
        cut = series.window(2, 6)
        np.testing.assert_allclose(cut.values, [2.0, 3.0, 4.0, 5.0])
        assert cut.start == pytest.approx(1.0)

    def test_bounds_validated(self):
        series = RateSeries(np.arange(5.0), 0.5)
        with pytest.raises(ParameterError):
            series.window(3, 3)
        with pytest.raises(ParameterError):
            series.window(0, 99)
