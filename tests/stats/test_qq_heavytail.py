"""Tests for repro.stats.qq and repro.stats.heavytail."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import FittingError, ParameterError
from repro.stats import (
    empirical_ccdf,
    exponentiality,
    fit_pareto_tail,
    hill_estimator,
    hill_plot,
    qq_exponential,
)


class TestQQExponential:
    def test_exponential_sample_on_diagonal(self):
        rng = np.random.default_rng(0)
        x = rng.exponential(2.0, 100_000)
        qq = qq_exponential(x)
        assert qq.correlation > 0.999
        # the p ~ 0.995 tail quantile is noisy even at n = 1e5
        assert qq.max_relative_deviation() < 0.2

    def test_heavy_tail_departs(self):
        rng = np.random.default_rng(1)
        x = rng.pareto(1.3, 100_000) + 0.1
        qq = qq_exponential(x)
        assert qq.max_relative_deviation() > 0.5

    def test_normalized_axes_end_at_one(self):
        rng = np.random.default_rng(2)
        qq = qq_exponential(rng.exponential(1.0, 1000))
        assert qq.normalized_empirical[-1] == pytest.approx(1.0)
        assert qq.normalized_theoretical[-1] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            qq_exponential([1.0, 2.0])  # too few
        with pytest.raises(ParameterError):
            qq_exponential(np.full(100, -1.0))


class TestExponentiality:
    def test_accepts_exponential(self):
        rng = np.random.default_rng(3)
        report = exponentiality(rng.exponential(0.5, 50_000))
        assert report.plausibly_exponential
        assert report.cov == pytest.approx(1.0, abs=0.05)

    def test_rejects_constant_gaps(self):
        report = exponentiality(np.full(1000, 2.0) + np.arange(1000) * 1e-9)
        assert not report.plausibly_exponential  # CoV ~ 0

    def test_rejects_heavy_tail(self):
        rng = np.random.default_rng(4)
        report = exponentiality(rng.pareto(1.1, 50_000) + 0.01)
        assert not report.plausibly_exponential


class TestParetoFit:
    def test_recovers_alpha(self):
        rng = np.random.default_rng(5)
        alpha = 1.5
        x = (1.0 / rng.random(200_000)) ** (1.0 / alpha)  # Pareto(alpha, 1)
        fit = fit_pareto_tail(x, xmin=1.0)
        assert fit.alpha == pytest.approx(alpha, rel=0.02)

    def test_flags_infinite_variance(self):
        rng = np.random.default_rng(6)
        x = (1.0 / rng.random(50_000)) ** (1.0 / 1.5)
        fit = fit_pareto_tail(x, xmin=1.0)
        assert fit.infinite_variance
        assert not fit.infinite_mean

    def test_model_ccdf(self):
        fit = fit_pareto_tail(
            (1.0 / np.random.default_rng(7).random(50_000)) ** (1.0 / 2.0),
            xmin=1.0,
        )
        assert fit.ccdf(1.0) == pytest.approx(1.0)
        assert fit.ccdf(10.0) == pytest.approx(0.01, rel=0.2)

    def test_default_xmin_is_median(self):
        rng = np.random.default_rng(8)
        x = rng.pareto(2.0, 10_000) + 1.0
        fit = fit_pareto_tail(x)
        assert fit.xmin == pytest.approx(np.median(x))

    def test_validation(self):
        with pytest.raises(ParameterError):
            fit_pareto_tail([-1.0, 2.0])
        with pytest.raises(FittingError):
            fit_pareto_tail(np.linspace(1, 2, 100), xmin=100.0)


class TestHill:
    def test_close_to_mle_on_pure_pareto(self):
        rng = np.random.default_rng(9)
        alpha = 2.0
        x = (1.0 / rng.random(100_000)) ** (1.0 / alpha)
        assert hill_estimator(x, 20_000) == pytest.approx(alpha, rel=0.05)

    def test_hill_plot_shapes(self):
        rng = np.random.default_rng(10)
        x = rng.pareto(1.5, 5000) + 1.0
        ks, estimates = hill_plot(x)
        assert ks.shape == estimates.shape
        assert np.all(estimates > 0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            hill_estimator(np.ones(100), 200)


class TestCcdf:
    def test_monotone_decreasing(self):
        rng = np.random.default_rng(11)
        x, ccdf = empirical_ccdf(rng.exponential(1.0, 1000))
        assert np.all(np.diff(x) >= 0)
        assert np.all(np.diff(ccdf) <= 0)
        assert ccdf[-1] == pytest.approx(0.0)

    def test_median_at_half(self):
        rng = np.random.default_rng(12)
        x, ccdf = empirical_ccdf(rng.normal(10.0, 1.0, 100_001))
        idx = np.searchsorted(x, np.median(x))
        assert ccdf[idx] == pytest.approx(0.5, abs=0.01)
