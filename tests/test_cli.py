"""Tests for the command-line interface (python -m repro)."""

from __future__ import annotations

import pytest

from repro.__main__ import build_parser, main
from repro.trace import read_trace


@pytest.fixture()
def trace_file(tmp_path):
    path = tmp_path / "link.rptr"
    code = main(
        ["synthesize", str(path), "--preset", "medium", "--duration", "30",
         "--seed", "3"]
    )
    assert code == 0
    return path


class TestSynthesize:
    def test_writes_readable_trace(self, trace_file):
        trace = read_trace(trace_file)
        assert len(trace) > 1000
        assert trace.duration == pytest.approx(30.0)

    def test_table_i_row_preset(self, tmp_path, capsys):
        path = tmp_path / "row3.rptr"
        assert main(["synthesize", str(path), "--preset", "3",
                     "--duration", "20"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        trace = read_trace(path)
        assert trace.utilization < 0.1  # the 26 Mbps-class link


class TestMeasure:
    def test_report_contents(self, trace_file, capsys):
        assert main(["measure", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "lambda" in out
        assert "CoV" in out
        assert "shot fit" in out
        assert "capacity" in out

    def test_prefix_kind(self, trace_file, capsys):
        assert main(
            ["measure", str(trace_file), "--flow-kind", "prefix"]
        ) == 0
        assert "prefix" in capsys.readouterr().out


class TestGenerate:
    def test_generates_calibrated_trace(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "generated.rptr"
        assert main(
            ["generate", str(trace_file), str(out_path), "--duration", "20",
             "--seed", "1"]
        ) == 0
        original = read_trace(trace_file)
        generated = read_trace(out_path)
        assert len(generated) > 500
        # calibrated generation lands near the original rate
        assert generated.mean_rate_bps == pytest.approx(
            original.mean_rate_bps, rel=0.3
        )


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])
