"""Tests for the command-line interface (python -m repro)."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import build_parser, main
from repro.pipeline import (
    DemandSpec,
    NetworkSpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.trace import read_trace


@pytest.fixture()
def trace_file(tmp_path):
    path = tmp_path / "link.rptr"
    code = main(
        ["synthesize", str(path), "--preset", "medium", "--duration", "30",
         "--seed", "3"]
    )
    assert code == 0
    return path


class TestSynthesize:
    def test_writes_readable_trace(self, trace_file):
        trace = read_trace(trace_file)
        assert len(trace) > 1000
        assert trace.duration == pytest.approx(30.0)

    def test_table_i_row_preset(self, tmp_path, capsys):
        path = tmp_path / "row3.rptr"
        assert main(["synthesize", str(path), "--preset", "3",
                     "--duration", "20"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        trace = read_trace(path)
        assert trace.utilization < 0.1  # the 26 Mbps-class link

    def test_unknown_preset_friendly_error(self, tmp_path, capsys):
        """No bare int() crash: list the valid presets instead."""
        code = main(["synthesize", str(tmp_path / "x.rptr"),
                     "--preset", "enormous"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown preset 'enormous'" in err
        assert "low" in err and "medium" in err and "high" in err
        assert "0-6" in err

    def test_out_of_range_row_friendly_error(self, tmp_path, capsys):
        code = main(["synthesize", str(tmp_path / "x.rptr"),
                     "--preset", "9"])
        assert code == 2
        assert "0-6" in capsys.readouterr().err


class TestMeasure:
    def test_report_contents(self, trace_file, capsys):
        assert main(["measure", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "lambda" in out
        assert "CoV" in out
        assert "shot fit" in out
        assert "capacity" in out

    def test_prefix_kind(self, trace_file, capsys):
        assert main(
            ["measure", str(trace_file), "--flow-kind", "prefix"]
        ) == 0
        assert "prefix" in capsys.readouterr().out

    def test_chunked_measurement_same_output(self, trace_file, capsys):
        """--chunk/--workers route through the streaming engine without
        changing a single reported number."""
        assert main(["measure", str(trace_file)]) == 0
        baseline = capsys.readouterr().out
        assert main(
            ["measure", str(trace_file), "--chunk", "2000", "--workers", "2"]
        ) == 0
        assert capsys.readouterr().out == baseline

    def test_negative_chunk_rejected(self, trace_file, capsys):
        assert main(["measure", str(trace_file), "--chunk", "-5"]) == 2
        assert "--chunk must be >= 0" in capsys.readouterr().err


class TestGenerate:
    def test_generates_calibrated_trace(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "generated.rptr"
        assert main(
            ["generate", str(trace_file), str(out_path), "--duration", "20",
             "--seed", "1"]
        ) == 0
        original = read_trace(trace_file)
        generated = read_trace(out_path)
        assert len(generated) > 500
        # calibrated generation lands near the original rate
        assert generated.mean_rate_bps == pytest.approx(
            original.mean_rate_bps, rel=0.3
        )


class TestRun:
    def test_registry_scenario_with_report(self, tmp_path, capsys,
                                           monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        report_path = tmp_path / "report.json"
        assert main(["run", "medium", "--report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "scenario   : medium" in out
        assert "CoV" in out
        report = json.loads(report_path.read_text())
        assert report["spec"]["name"] == "medium"
        assert report["spec"]["workload"]["duration"] == 30.0  # quick mode
        assert "within_band" in report["validation"]
        assert "generate" in report["stages"]

    def test_spec_file(self, tmp_path, capsys):
        spec = ScenarioSpec(
            name="custom-file",
            workload=WorkloadSpec(preset="low", duration=20.0),
            generation=None,
        )
        path = spec.to_file(tmp_path / "custom.json")
        assert main(["run", str(path)]) == 0
        assert "custom-file" in capsys.readouterr().out

    def test_seed_override(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        assert main(["run", "low", "--seed", "5"]) == 0
        assert "scenario   : low" in capsys.readouterr().out

    def test_unknown_scenario_lists_names(self, capsys):
        assert main(["run", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario 'nope'" in err
        assert "medium" in err

    def test_bad_spec_file_is_friendly(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text('{"name": "x", "bogus": 1}')
        assert main(["run", str(path)]) == 2
        assert "unknown key" in capsys.readouterr().err

    def test_mistyped_spec_value_is_friendly(self, tmp_path, capsys):
        path = tmp_path / "typed.json"
        path.write_text(
            '{"name": "x", "workload": {"preset": "low", '
            '"duration": "long"}}'
        )
        assert main(["run", str(path)]) == 2
        assert "spec.workload" in capsys.readouterr().err

    def test_registry_name_wins_over_same_named_directory(
            self, tmp_path, capsys, monkeypatch):
        """A ./medium directory must not shadow the registry scenario."""
        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        monkeypatch.chdir(tmp_path)
        (tmp_path / "medium").mkdir()
        assert main(["run", "medium"]) == 0
        assert "scenario   : medium" in capsys.readouterr().out

    def test_spec_path_that_is_a_directory_is_friendly(self, tmp_path,
                                                       capsys):
        (tmp_path / "spec.json").mkdir()
        assert main(["run", str(tmp_path / "spec.json")]) == 2
        assert "not a regular file" in capsys.readouterr().err


class TestListScenarios:
    def test_lists_registry(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("medium", "table-i-0", "mice-elephants",
                     "diurnal-ramp", "flash-flood"):
            assert name in out

    def test_groups_by_family(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "single-link scenarios:" in out
        assert "network scenarios:" in out
        # network presets live under the network header
        single_part, network_part = out.split("network scenarios:")
        assert "abilene-table-i" in network_part
        assert "abilene-table-i" not in single_part
        assert "medium" in single_part


class TestNetworkCommand:
    def test_runs_registry_network_scenario(self, capsys, monkeypatch,
                                            tmp_path):
        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        report = tmp_path / "net.json"
        assert main(["network", "outage-reroute", "--workers", "2",
                     "--report", str(report)]) == 0
        out = capsys.readouterr().out
        assert "scenario   : outage-reroute" in out
        assert "shortest_path routing" in out
        assert "src->mid0" in out
        assert "verdict" in out
        payload = json.loads(report.read_text())
        assert payload["network"]["routing"] == "shortest_path"
        assert payload["network"]["links"]

    def test_network_spec_file(self, capsys, tmp_path):
        spec = ScenarioSpec(
            name="tiny-net",
            network=NetworkSpec(
                topology=TopologySpec(preset="line", size=2),
                demands=(DemandSpec("r0", "r1", preset="medium"),),
                routing="shortest_path",
                duration=8.0,
            ),
        )
        path = tmp_path / "net.json"
        path.write_text(spec.to_json())
        assert main(["network", str(path)]) == 0
        assert "tiny-net" in capsys.readouterr().out

    def test_single_link_spec_is_friendly_error(self, capsys):
        assert main(["network", "medium"]) == 2
        err = capsys.readouterr().err
        assert "no 'network' section" in err

    def test_bad_workers_rejected_even_without_chunk(self, capsys):
        assert main(["network", "outage-reroute", "--workers", "0"]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err
        assert main(["network", "outage-reroute", "--chunk", "-1"]) == 2
        assert "--chunk must be >= 0" in capsys.readouterr().err

    def test_unknown_scenario_is_friendly_error(self, capsys):
        assert main(["network", "no-such-net"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_redirects_network_specs(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        assert main(["run", "ecmp-flash-flood"]) == 0
        out = capsys.readouterr().out
        assert "ecmp routing" in out

    def test_chunk_workers_do_not_change_the_report(self, capsys, tmp_path):
        spec = ScenarioSpec(
            name="invariant-net",
            network=NetworkSpec(
                topology=TopologySpec(preset="parallel-paths", size=2),
                demands=(DemandSpec("src", "dst", preset="medium"),),
                duration=8.0,
            ),
        )
        path = tmp_path / "net.json"
        path.write_text(spec.to_json())
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["network", str(path), "--report", str(a)]) == 0
        assert main(["network", str(path), "--chunk", "3000",
                     "--workers", "2", "--report", str(b)]) == 0
        ra = json.loads(a.read_text())["network"]
        rb = json.loads(b.read_text())["network"]
        assert ra == rb


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestStreamedSynthesize:
    def test_streamed_file_identical_to_in_memory(self, tmp_path):
        a, b = tmp_path / "a.rptr", tmp_path / "b.rptr"
        assert main(["synthesize", str(a), "--preset", "medium",
                     "--duration", "15", "--seed", "4"]) == 0
        assert main(["synthesize", str(b), "--preset", "medium",
                     "--duration", "15", "--seed", "4",
                     "--chunk", "1500", "--workers", "2"]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_streamed_zero_flow_error_is_friendly_and_clean(
        self, tmp_path, capsys
    ):
        """Mirrors SynthesisEngine.write_trace: friendly error, no
        stale capture file left behind."""
        path = tmp_path / "empty.rptr"
        code = main(["synthesize", str(path), "--preset", "low",
                     "--duration", "0.0001", "--chunk", "1000"])
        assert code == 2
        assert "zero flows" in capsys.readouterr().err
        assert not path.exists()

    def test_run_chunk_flag_streams(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        assert main(["run", "medium", "--chunk", "20000"]) == 0
        assert "[streamed]" in capsys.readouterr().out


@pytest.fixture()
def sweep_spec_file(tmp_path):
    """A tiny analytic-only sweep (no engine runs: fast and exact)."""
    spec = ScenarioSpec(
        name="tiny-sweep",
        network=NetworkSpec(
            topology=TopologySpec(preset="parallel-paths", size=2),
            demands=(DemandSpec("src", "dst", preset="low"),),
            routing="ecmp",
            duration=8.0,
        ),
        sweep=SweepSpec(
            demand_factors=(1.0, 2.0), failures="single", simulate="none"
        ),
    )
    path = tmp_path / "sweep.json"
    path.write_text(spec.to_json())
    return path


class TestSweep:
    def test_prints_ranked_table_and_writes_report(
        self, sweep_spec_file, tmp_path, capsys
    ):
        report = tmp_path / "sweep-report.json"
        assert main(["sweep", str(sweep_spec_file),
                     "--report", str(report)]) == 0
        out = capsys.readouterr().out
        assert "scenario   : tiny-sweep" in out
        assert "verdict" in out  # the table header
        # baseline + 4 fibres, two growth factors
        assert "10 cells" in out
        assert "headroom" in out
        payload = json.loads(report.read_text())["sweep"]
        assert payload["n_cells"] == 10
        assert len(payload["cells"]) == 10

    def test_non_sweep_scenario_is_friendly_error(self, capsys):
        assert main(["sweep", "medium"]) == 2
        assert "no 'sweep' section" in capsys.readouterr().err

    def test_run_and_network_redirect_sweep_specs(
        self, sweep_spec_file, capsys
    ):
        assert main(["run", str(sweep_spec_file)]) == 0
        assert "10 cells" in capsys.readouterr().out
        assert main(["network", str(sweep_spec_file)]) == 0
        assert "10 cells" in capsys.readouterr().out

    def test_bad_execution_flags_rejected(self, sweep_spec_file, capsys):
        assert main(["sweep", str(sweep_spec_file), "--chunk", "-1"]) == 2
        assert "--chunk must be >= 0" in capsys.readouterr().err
        assert main(["sweep", str(sweep_spec_file), "--workers", "0"]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err


class TestExecutionPrecedence:
    """--execution spec-wins|cli-wins, shared by all engine commands."""

    def _spec_with_execution(self, tmp_path, workers):
        spec = ScenarioSpec(
            name="precedence",
            network=NetworkSpec(
                topology=TopologySpec(preset="parallel-paths", size=2),
                demands=(DemandSpec("src", "dst", preset="low"),),
                duration=8.0,
            ),
            sweep=SweepSpec(
                demand_factors=(1.0,),
                failures="none",
                simulate="none",
                workers=workers,
            ),
        )
        path = tmp_path / "precedence.json"
        path.write_text(spec.to_json())
        return path

    def _reported_workers(self, report_path):
        payload = json.loads(report_path.read_text())
        return payload["spec"]["sweep"]["execution"]["workers"]

    def test_cli_wins_by_default(self, tmp_path):
        path = self._spec_with_execution(tmp_path, workers=2)
        report = tmp_path / "out.json"
        assert main(["sweep", str(path), "--workers", "3",
                     "--report", str(report)]) == 0
        assert self._reported_workers(report) == 3

    def test_unset_flags_keep_the_spec_values(self, tmp_path):
        path = self._spec_with_execution(tmp_path, workers=2)
        report = tmp_path / "out.json"
        assert main(["sweep", str(path), "--report", str(report)]) == 0
        assert self._reported_workers(report) == 2

    def test_spec_wins_ignores_the_flags(self, tmp_path):
        path = self._spec_with_execution(tmp_path, workers=2)
        report = tmp_path / "out.json"
        assert main(["sweep", str(path), "--workers", "3",
                     "--execution", "spec-wins",
                     "--report", str(report)]) == 0
        assert self._reported_workers(report) == 2

    @pytest.mark.parametrize(
        "command", ["run", "network", "sweep", "synthesize", "measure"]
    )
    def test_help_documents_the_precedence_rule(self, command, capsys):
        with pytest.raises(SystemExit):
            main([command, "--help"])
        out = capsys.readouterr().out
        assert "--execution {cli-wins,spec-wins}" in out
        assert "spec-wins" in out and "cli-wins" in out


@pytest.fixture()
def simulated_sweep_spec_file(tmp_path):
    """A 5-cell sweep with every cell simulated (fast toy network)."""
    spec = ScenarioSpec(
        name="ckpt-sweep",
        network=NetworkSpec(
            topology=TopologySpec(preset="parallel-paths", size=2),
            demands=(DemandSpec("src", "dst", preset="low"),),
            routing="ecmp",
            duration=8.0,
        ),
        sweep=SweepSpec(
            demand_factors=(1.0,), failures="single", simulate="all"
        ),
    )
    path = tmp_path / "ckpt-sweep.json"
    path.write_text(spec.to_json())
    return path


class TestExitCodes:
    """The exit-code taxonomy: 2 usage/spec, 3 runtime, 130 interrupted."""

    def test_runtime_engine_failure_exits_3(
        self, sweep_spec_file, capsys, monkeypatch
    ):
        from repro.exceptions import ModelError

        def explode(spec, **kwargs):
            raise ModelError("variance collapsed mid-run")

        monkeypatch.setattr("repro.__main__.run_scenario", explode)
        assert main(["sweep", str(sweep_spec_file)]) == 3
        err = capsys.readouterr().err
        assert "variance collapsed" in err

    def test_spec_errors_stay_exit_2(self, capsys):
        assert main(["sweep", "no-such-scenario"]) == 2

    def test_interrupt_exits_130(self, sweep_spec_file, capsys, monkeypatch):
        def interrupt(spec, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.__main__.run_scenario", interrupt)
        assert main(["sweep", str(sweep_spec_file)]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_interrupt_names_the_checkpoint_dir(
        self, sweep_spec_file, tmp_path, capsys, monkeypatch
    ):
        def interrupt(spec, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.__main__.run_scenario", interrupt)
        ckpt = tmp_path / "ckpt"
        assert main(["sweep", str(sweep_spec_file),
                     "--checkpoint-dir", str(ckpt)]) == 130
        err = capsys.readouterr().err
        assert str(ckpt) in err
        assert "--resume" in err


class TestCheckpointResumeCli:
    def test_resume_without_checkpoint_dir_is_usage_error(
        self, sweep_spec_file, capsys
    ):
        assert main(["sweep", str(sweep_spec_file), "--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_checkpoint_then_resume_reproduces_the_report(
        self, simulated_sweep_spec_file, tmp_path, capsys
    ):
        ckpt = tmp_path / "ckpt"
        first = tmp_path / "first.json"
        assert main(["sweep", str(simulated_sweep_spec_file),
                     "--checkpoint-dir", str(ckpt),
                     "--report", str(first)]) == 0
        done = sorted(p.name for p in ckpt.glob("*.ckpt"))
        assert done  # every simulated cell checkpointed
        # drop some completed cells, as if the run had been killed
        for victim in sorted(ckpt.glob("*.ckpt"))[::2]:
            victim.unlink()
        second = tmp_path / "second.json"
        assert main(["sweep", str(simulated_sweep_spec_file),
                     "--checkpoint-dir", str(ckpt),
                     "--resume", "--report", str(second)]) == 0
        assert "resumed" in capsys.readouterr().out
        a = json.loads(first.read_text())["sweep"]
        b = json.loads(second.read_text())["sweep"]
        assert b.pop("resumed_cells")  # only the resumed run has them
        a.pop("health", None), b.pop("health", None)
        assert a == b

    def test_mismatched_checkpoint_dir_is_usage_error(
        self, sweep_spec_file, simulated_sweep_spec_file, tmp_path, capsys
    ):
        ckpt = tmp_path / "ckpt"
        assert main(["sweep", str(simulated_sweep_spec_file),
                     "--checkpoint-dir", str(ckpt)]) == 0
        assert main(["sweep", str(sweep_spec_file),
                     "--checkpoint-dir", str(ckpt), "--resume"]) == 2
        assert "fingerprint mismatch" in capsys.readouterr().err


class TestImportErrorsFlag:
    def _corrupt_archive(self, tmp_path):
        """Two NetFlow v5 datagrams; the second one's version mangled."""
        import numpy as np

        from repro.interop import FLOW_RECORD_DTYPE, write_netflow5

        def records(n, seed):
            rng = np.random.default_rng(seed)
            block = np.zeros(n, dtype=FLOW_RECORD_DTYPE)
            block["start"] = 0.25 * np.arange(n)
            block["end"] = block["start"] + 2.0
            block["src_addr"] = rng.integers(1, 2**32 - 1, n)
            block["dst_addr"] = rng.integers(1, 2**32 - 1, n)
            block["src_port"] = 1024
            block["dst_port"] = 80
            block["protocol"] = 6
            block["packets"] = 40
            block["octets"] = 60000
            return block

        a, b = tmp_path / "a.nf5", tmp_path / "b.nf5"
        write_netflow5(records(40, 0), a)
        write_netflow5(records(2, 1), b)
        data = bytearray(a.read_bytes() + b.read_bytes())
        data[len(a.read_bytes()) + 1] = 9  # NetFlow v9 datagram
        path = tmp_path / "corrupt.nf5"
        path.write_bytes(bytes(data))
        return path

    def test_strict_default_fails_loudly(self, tmp_path, capsys):
        path = self._corrupt_archive(tmp_path)
        assert main(["import", str(path)]) == 2
        assert "bad NetFlow version" in capsys.readouterr().err

    def test_skip_imports_and_reports_the_count(self, tmp_path, capsys):
        path = self._corrupt_archive(tmp_path)
        report = tmp_path / "report.json"
        assert main(["import", str(path), "--errors", "skip",
                     "--report", str(report)]) == 0
        out = capsys.readouterr().out
        assert "(2 malformed skipped)" in out
        payload = json.loads(report.read_text())
        ingest = payload["stages"]["import_flows"]
        assert ingest["records_skipped"] == 2
        assert ingest["records"] == 40


class TestRetrySurvivesFlagMerge:
    def test_cli_flag_override_keeps_the_spec_retry(self, tmp_path):
        """Regression: --workers used to rebuild the execution section
        and silently drop the spec's retry policy — disarming the
        watchdog on exactly the runs that asked for it."""
        from repro.execution import RetryPolicy
        from repro.pipeline import ExecutionSpec

        spec = ScenarioSpec(
            name="retry-keeper",
            network=NetworkSpec(
                topology=TopologySpec(preset="parallel-paths", size=2),
                demands=(DemandSpec("src", "dst", preset="low"),),
                duration=8.0,
            ),
            sweep=SweepSpec(
                demand_factors=(1.0,),
                failures="none",
                simulate="none",
                execution=ExecutionSpec(
                    workers=2,
                    retry=RetryPolicy(max_retries=3, timeout_s=45.0),
                ),
            ),
        )
        path = tmp_path / "retry.json"
        path.write_text(spec.to_json())
        report = tmp_path / "out.json"
        assert main(["sweep", str(path), "--workers", "3",
                     "--report", str(report)]) == 0
        execution = json.loads(report.read_text())["spec"]["sweep"]["execution"]
        assert execution["workers"] == 3
        assert execution["retry"]["max_retries"] == 3
        assert execution["retry"]["timeout_s"] == 45.0


class TestCalibrate:
    def _archive(self, tmp_path, n=600, seed=9):
        import numpy as np

        from repro.interop import FLOW_RECORD_DTYPE, write_netflow5

        rng = np.random.default_rng(seed)
        block = np.zeros(n, dtype=FLOW_RECORD_DTYPE)
        block["start"] = np.round(np.sort(rng.uniform(0.0, 60.0, n)), 3)
        block["end"] = block["start"] + 1.0
        block["src_addr"] = rng.integers(1, 2**32 - 1, n)
        block["dst_addr"] = rng.integers(1, 2**32 - 1, n)
        block["src_port"] = 1024
        block["dst_port"] = 80
        block["protocol"] = 6
        block["octets"] = np.maximum(
            np.rint(rng.lognormal(np.log(3000.0), 0.8, n)), 40
        ).astype(np.uint64)
        block["packets"] = np.maximum(block["octets"] // 1460, 1)
        path = tmp_path / "cal.nf5"
        write_netflow5(block, path)
        return path

    def test_archive_emits_runnable_spec(self, tmp_path, capsys):
        archive = self._archive(tmp_path)
        fitted = tmp_path / "fitted.json"
        report = tmp_path / "report.json"
        assert main(["calibrate", str(archive), "-o", str(fitted),
                     "--report", str(report)]) == 0
        out = capsys.readouterr().out
        assert "family" in out and "candidates" in out
        spec = ScenarioSpec.from_file(fitted)
        assert spec.name == "cal-fitted"
        assert spec.workload.sizes is not None
        payload = json.loads(report.read_text())
        assert payload["family"] == spec.workload.sizes.kind
        # the emitted spec runs end-to-end through the normal pipeline
        assert main(["run", str(fitted)]) == 0

    def test_closed_loop_validate_passes(self, tmp_path, capsys):
        # enough flows that the q=0.999 tail quantile is resolvable
        archive = self._archive(tmp_path, n=5000)
        assert main(["calibrate", str(archive), "--validate"]) == 0
        assert "closed loop: PASS" in capsys.readouterr().out

    def test_registry_scenario_target(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        fitted = tmp_path / "fitted.json"
        assert main(["calibrate", "campus-mixture-low",
                     "-o", str(fitted)]) == 0
        assert ScenarioSpec.from_file(fitted).workload.sizes is not None

    def test_network_scenario_rejected(self, capsys):
        assert main(["calibrate", "abilene-table-i"]) == 2
        assert "single-link" in capsys.readouterr().err

    def test_empty_archive_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "empty.nf5"
        path.write_bytes(b"")
        assert main(["calibrate", str(path)]) == 2
        assert "too short" in capsys.readouterr().err
