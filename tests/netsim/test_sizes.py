"""Tests for repro.netsim.sizes: workload distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.netsim import BoundedPareto, Constant, Empirical, Exponential, LogNormal, Mixture


class TestBoundedPareto:
    def test_support(self):
        dist = BoundedPareto(1.2, 1e3, 1e6)
        x = dist.rvs(size=50_000, random_state=np.random.default_rng(0))
        assert x.min() >= 1e3
        assert x.max() <= 1e6

    def test_mean_matches_monte_carlo(self):
        dist = BoundedPareto(1.3, 2e3, 2e6)
        x = dist.rvs(size=400_000, random_state=np.random.default_rng(1))
        assert dist.mean() == pytest.approx(x.mean(), rel=0.02)

    def test_alpha_one_special_case(self):
        dist = BoundedPareto(1.0, 1e3, 1e5)
        x = dist.rvs(size=400_000, random_state=np.random.default_rng(2))
        assert dist.mean() == pytest.approx(x.mean(), rel=0.03)

    def test_second_moment_matches_monte_carlo(self):
        dist = BoundedPareto(2.5, 1e3, 1e5)
        x = dist.rvs(size=400_000, random_state=np.random.default_rng(3))
        assert dist.second_moment() == pytest.approx(np.mean(x**2), rel=0.05)

    def test_ccdf_boundaries(self):
        dist = BoundedPareto(1.5, 10.0, 1000.0)
        assert dist.ccdf(5.0) == pytest.approx(1.0)
        assert dist.ccdf(1000.0) == pytest.approx(0.0)
        assert 0.0 < dist.ccdf(100.0) < 1.0

    def test_ccdf_matches_empirical(self):
        dist = BoundedPareto(1.5, 10.0, 1e4)
        x = dist.rvs(size=200_000, random_state=np.random.default_rng(4))
        for q in (20.0, 100.0, 1000.0):
            assert dist.ccdf(q) == pytest.approx(np.mean(x > q), abs=0.01)

    def test_validation(self):
        with pytest.raises(ParameterError):
            BoundedPareto(0.0, 1.0, 2.0)
        with pytest.raises(ParameterError):
            BoundedPareto(1.5, 2.0, 1.0)


class TestLogNormal:
    def test_median_parameterisation(self):
        dist = LogNormal(median=5e4, sigma=0.7)
        x = dist.rvs(size=200_000, random_state=np.random.default_rng(5))
        assert np.median(x) == pytest.approx(5e4, rel=0.02)

    def test_mean_formula(self):
        dist = LogNormal(median=1e4, sigma=0.5)
        x = dist.rvs(size=400_000, random_state=np.random.default_rng(6))
        assert dist.mean() == pytest.approx(x.mean(), rel=0.02)

    def test_zero_sigma_degenerates(self):
        dist = LogNormal(median=100.0, sigma=0.0)
        x = dist.rvs(size=10, random_state=np.random.default_rng(0))
        np.testing.assert_allclose(x, 100.0)


class TestSimpleDistributions:
    def test_exponential(self):
        dist = Exponential(3.0)
        x = dist.rvs(size=200_000, random_state=np.random.default_rng(7))
        assert x.mean() == pytest.approx(3.0, rel=0.02)
        assert dist.mean() == 3.0

    def test_constant(self):
        dist = Constant(42.0)
        np.testing.assert_allclose(dist.rvs(size=5), 42.0)
        assert dist.mean() == 42.0

    def test_empirical_bootstrap(self):
        dist = Empirical([1.0, 2.0, 3.0])
        x = dist.rvs(size=1000, random_state=np.random.default_rng(8))
        assert set(np.unique(x)) <= {1.0, 2.0, 3.0}
        assert dist.mean() == pytest.approx(2.0)

    def test_empirical_validation(self):
        with pytest.raises(ParameterError):
            Empirical([])
        with pytest.raises(ParameterError):
            Empirical([1.0, -2.0])


class TestMixture:
    def test_mean_is_weighted(self):
        mix = Mixture([(0.25, Constant(1.0)), (0.75, Constant(9.0))])
        assert mix.mean() == pytest.approx(7.0)

    def test_sampling_proportions(self):
        mix = Mixture([(0.2, Constant(1.0)), (0.8, Constant(9.0))])
        x = mix.rvs(size=50_000, random_state=np.random.default_rng(9))
        assert np.mean(x == 1.0) == pytest.approx(0.2, abs=0.01)

    def test_weights_normalised(self):
        mix = Mixture([(2.0, Constant(1.0)), (6.0, Constant(9.0))])
        assert mix.mean() == pytest.approx(7.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            Mixture([])
        with pytest.raises(ParameterError):
            Mixture([(-1.0, Constant(1.0)), (0.0, Constant(2.0))])
