"""Tests for repro.netsim.link and workloads: end-to-end trace synthesis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.flows import PROTO_TCP, PROTO_UDP, export_five_tuple_flows
from repro.netsim import (
    DEFAULT_SCALE,
    OC12_BPS,
    TABLE_I_ROWS,
    LinkWorkload,
    PoissonArrivals,
    TcpParameters,
    multi_link_rate_series,
    synthesize_link_trace,
    synthesize_scenario,
    table_i_workload,
    table_i_workloads,
)
from repro.netsim.sizes import BoundedPareto


class TestSynthesis:
    def test_reproducible_with_seed(self, synthesis):
        from repro.netsim import medium_utilization_link

        again = medium_utilization_link(duration=60.0).synthesize(seed=11)
        np.testing.assert_array_equal(
            again.trace.packets, synthesis.trace.packets
        )

    def test_trace_sorted_and_bounded(self, trace):
        assert trace.is_sorted()
        assert trace.packets["timestamp"].max() < trace.duration

    def test_utilization_near_target(self):
        from repro.netsim import medium_utilization_link

        workload = medium_utilization_link(duration=120.0)
        measured = workload.synthesize(seed=3).trace
        # truncation at the capture end loses a little volume
        assert measured.mean_rate_bps == pytest.approx(
            workload.target_mean_rate_bps, rel=0.15
        )

    def test_protocol_mix_present(self, trace):
        protos = set(np.unique(trace.packets["protocol"]))
        assert PROTO_TCP in protos
        assert PROTO_UDP in protos

    def test_ground_truth_flows_recoverable(self, synthesis):
        """Exported flow count is near the generated flow count.

        Ground truth includes warm-up flows (some ending before the
        capture), and discards/truncation shrink the exported side, so the
        comparison is a band, not an equality.
        """
        flows = export_five_tuple_flows(synthesis.trace, timeout=8.0)
        assert 0.4 * synthesis.n_flows < len(flows) <= synthesis.n_flows

    def test_zero_flow_error(self):
        with pytest.raises(ParameterError):
            synthesize_link_trace(
                arrivals=PoissonArrivals(1e-6),
                size_dist=BoundedPareto(1.2, 2e3, 2e6),
                duration=0.001,
                link_capacity=1e7,
                seed=0,
            )


class TestWorkloadPresets:
    def test_seven_table_i_rows(self):
        workloads = table_i_workloads()
        assert len(workloads) == 7
        targets = [w.target_mean_rate_bps / DEFAULT_SCALE / 1e6 for w in workloads]
        np.testing.assert_allclose(
            targets, [r.avg_utilization_mbps for r in TABLE_I_ROWS]
        )

    def test_scaled_capacity(self):
        workload = table_i_workload(0, scale=1 / 64)
        assert workload.link_capacity_bps == pytest.approx(OC12_BPS / 64)

    def test_arrival_rate_consistent_with_target(self):
        workload = table_i_workload(1)
        implied = workload.arrival_rate * workload.mean_wire_bytes_per_flow
        assert 8.0 * implied == pytest.approx(workload.target_mean_rate_bps)

    def test_utilization_below_half(self):
        for workload in table_i_workloads():
            assert workload.target_utilization < 0.5

    def test_with_duration(self):
        workload = table_i_workload(0).with_duration(33.0)
        assert workload.duration == 33.0

    def test_rejects_overloaded_target(self):
        with pytest.raises(ParameterError):
            LinkWorkload(
                name="bad", target_mean_rate_bps=1e9, link_capacity_bps=1e6
            )

    def test_custom_arrivals_override(self):
        workload = table_i_workload(3, duration=20.0)
        workload.arrivals = PoissonArrivals(workload.arrival_rate * 2)
        synthesis = workload.synthesize(seed=0)
        assert synthesis.trace.mean_rate_bps > workload.target_mean_rate_bps

    def test_tcp_params_respected(self):
        workload = table_i_workload(3, duration=20.0)
        workload.tcp_params = TcpParameters(mss=500)
        trace = workload.synthesize(seed=0).trace
        tcp = trace.packets["protocol"] == PROTO_TCP
        assert trace.packets["size"][tcp].max() <= 500 + 40


class TestMultiLinkScenarios:
    """Engine-parallel fan-out across independent links."""

    def test_synthesize_scenario_worker_invariant(self):
        workloads = [w.with_duration(10.0) for w in table_i_workloads()[:2]]
        serial = synthesize_scenario(workloads, seed=3, workers=1)
        threaded = synthesize_scenario(workloads, seed=3, workers=4)
        assert len(serial) == 2
        for a, b in zip(serial, threaded):
            np.testing.assert_array_equal(a.trace.packets, b.trace.packets)

    def test_synthesize_scenario_links_are_independent(self):
        workloads = [w.with_duration(10.0) for w in table_i_workloads()[:2]]
        a, b = synthesize_scenario(workloads, seed=3)
        assert not np.array_equal(
            a.trace.packets["timestamp"], b.trace.packets["timestamp"]
        )

    def test_multi_link_rate_series_deterministic(self):
        workloads = [w.with_duration(20.0) for w in table_i_workloads()[:3]]
        from repro.core import TriangularShot

        serial = multi_link_rate_series(
            workloads, TriangularShot(), delta=0.5, seed=2, workers=1
        )
        threaded = multi_link_rate_series(
            workloads, TriangularShot(), delta=0.5, seed=2, workers=4,
            chunk=5.0,
        )
        assert len(serial) == 3
        for a, b in zip(serial, threaded):
            np.testing.assert_array_equal(a.values, b.values)

    def test_multi_link_rate_series_hits_targets(self):
        workloads = [w.with_duration(60.0) for w in table_i_workloads()[:2]]
        from repro.core import RectangularShot

        series = multi_link_rate_series(
            workloads, RectangularShot(), delta=0.5, seed=0
        )
        for workload, link_series in zip(workloads, series):
            # model ensemble carries payload bytes (no per-packet headers),
            # so the fluid mean undershoots the wire-rate target slightly
            target = workload.target_mean_rate_bps / 8.0
            assert link_series.mean == pytest.approx(target, rel=0.2)

    def test_empty_scenario_rejected(self):
        with pytest.raises(ParameterError):
            synthesize_scenario([])
