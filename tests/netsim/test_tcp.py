"""Tests for repro.netsim.tcp: the round-based TCP dynamics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.netsim import TcpParameters, simulate_tcp_flows


PARAMS = TcpParameters(rtt_jitter=0.0)  # deterministic for assertions


class TestPacketConservation:
    def test_payload_bytes_conserved(self):
        sizes = np.array([10_000.0, 1461.0, 2e6])
        rtts = np.full(3, 0.5)
        sched = simulate_tcp_flows(sizes, rtts, PARAMS, rng=0)
        payload = sched.wire_size.astype(float) - PARAMS.header_bytes
        for i, size in enumerate(sizes):
            assert payload[sched.flow_index == i].sum() == pytest.approx(size)

    def test_packet_count_is_ceil(self):
        sizes = np.array([1460.0, 1461.0, 14600.0])
        sched = simulate_tcp_flows(sizes, np.full(3, 0.1), PARAMS, rng=0)
        counts = np.bincount(sched.flow_index)
        np.testing.assert_array_equal(counts, [1, 2, 10])

    def test_wire_size_includes_header(self):
        sched = simulate_tcp_flows([2920.0], [0.1], PARAMS, rng=0)
        assert set(sched.wire_size.tolist()) == {1500}


class TestWindowDynamics:
    def test_slow_start_round_sizes(self):
        """14 packets with iw=2: rounds of 2, 4, 8 packets."""
        params = TcpParameters(
            initial_window=2, ssthresh=64, max_window=64, rtt_jitter=0.0
        )
        size = 14 * params.mss
        sched = simulate_tcp_flows([float(size)], [1.0], params, rng=0)
        # packets in round k start at t = k (rtt = 1)
        rounds = np.floor(sched.offset + 1e-9).astype(int)
        counts = np.bincount(rounds)
        np.testing.assert_array_equal(counts, [2, 4, 8])

    def test_congestion_avoidance_linear_growth(self):
        params = TcpParameters(
            initial_window=2, ssthresh=4, max_window=1000, rtt_jitter=0.0
        )
        size = 30 * params.mss
        sched = simulate_tcp_flows([float(size)], [1.0], params, rng=0)
        rounds = np.floor(sched.offset + 1e-9).astype(int)
        counts = np.bincount(rounds)
        # 2, 4 (= ssthresh), then +1 per round: 5, 6, 7, remainder
        np.testing.assert_array_equal(counts, [2, 4, 5, 6, 7, 6])

    def test_receiver_window_caps(self):
        params = TcpParameters(
            initial_window=2, ssthresh=4, max_window=6, rtt_jitter=0.0
        )
        size = 40 * params.mss
        sched = simulate_tcp_flows([float(size)], [1.0], params, rng=0)
        rounds = np.floor(sched.offset + 1e-9).astype(int)
        counts = np.bincount(rounds)
        assert counts.max() == 6

    def test_larger_flows_take_longer(self):
        sizes = np.array([5e3, 5e5])
        sched = simulate_tcp_flows(sizes, np.full(2, 0.2), PARAMS, rng=0)
        end_small = sched.offset[sched.flow_index == 0].max()
        end_big = sched.offset[sched.flow_index == 1].max()
        assert end_big > end_small

    def test_shorter_rtt_faster(self):
        sizes = np.full(2, 1e5)
        rtts = np.array([0.1, 1.0])
        sched = simulate_tcp_flows(sizes, rtts, PARAMS, rng=0)
        fast = sched.offset[sched.flow_index == 0].max()
        slow = sched.offset[sched.flow_index == 1].max()
        assert slow > 5 * fast


class TestScheduleShape:
    def test_offsets_nonnegative_and_ordered_per_flow(self):
        rng = np.random.default_rng(5)
        sizes = rng.uniform(2e3, 1e5, 50)
        rtts = rng.uniform(0.1, 1.0, 50)
        sched = simulate_tcp_flows(sizes, rtts, TcpParameters(), rng=1)
        assert np.all(sched.offset >= 0.0)
        for i in range(50):
            offs = sched.offset[sched.flow_index == i]
            assert np.all(np.diff(offs) >= -1e-12)

    def test_first_packet_at_time_zero(self):
        sched = simulate_tcp_flows([1e4], [0.3], PARAMS, rng=0)
        assert sched.offset.min() == pytest.approx(0.0)

    def test_concatenate_empty(self):
        from repro.netsim import PacketSchedule

        empty = PacketSchedule.concatenate([])
        assert len(empty) == 0

    def test_validation(self):
        with pytest.raises(ParameterError):
            simulate_tcp_flows([1e4], [0.1, 0.2], PARAMS)
        with pytest.raises(ParameterError):
            simulate_tcp_flows([-1.0], [0.1], PARAMS)
        with pytest.raises(ParameterError):
            TcpParameters(initial_window=0)
        with pytest.raises(ParameterError):
            TcpParameters(ssthresh=1, initial_window=2)
        with pytest.raises(ParameterError):
            TcpParameters(max_window=4, ssthresh=8)


class TestZeroFlows:
    def test_empty_input_returns_empty_schedule(self):
        """Empty cells are legal for the streaming synthesis engine."""
        sched = simulate_tcp_flows(
            np.zeros(0), np.zeros(0), TcpParameters(), rng=0
        )
        assert len(sched) == 0
        assert sched.flow_index.dtype == np.int64
        assert sched.wire_size.dtype == np.uint16


class TestExpansionEquivalence:
    def test_lean_expansion_matches_naive_formulas(self):
        """The buffer-reusing round expansion is bitwise what the
        historical arange/repeat expansion computed.

        The naive expansion is rebuilt here from the schedule itself:
        per-flow offsets must equal cumulative jittered round starts plus
        an exact within-round arithmetic ramp, and wire sizes must be
        ``mss + header`` everywhere except each flow's final packet.
        """
        rng = np.random.default_rng(9)
        n = 400
        sizes = rng.uniform(50.0, 3e5, n)
        rtts = rng.uniform(0.05, 1.0, n)
        params = TcpParameters()
        sched = simulate_tcp_flows(sizes, rtts, params, rng=42)

        counts = np.maximum(np.ceil(sizes / params.mss).astype(np.int64), 1)
        assert len(sched) == int(counts.sum())
        order = np.argsort(sched.flow_index, kind="stable")
        offs = sched.offset[order]
        wire = sched.wire_size[order].astype(np.float64)
        bounds = np.concatenate(([0], np.cumsum(counts)))
        for i in range(n):
            f_off = offs[bounds[i]: bounds[i + 1]]
            f_wire = wire[bounds[i]: bounds[i + 1]]
            # offsets start at 0 and never decrease within a flow
            assert f_off[0] == 0.0
            assert np.all(np.diff(f_off) >= -1e-12)
            # every packet but the last is a full segment on the wire
            full = min(params.mss + params.header_bytes, 65535)
            np.testing.assert_array_equal(f_wire[:-1], full)
            expected_last = min(
                (sizes[i] - (counts[i] - 1) * params.mss)
                + params.header_bytes,
                65535.0,
            )
            assert f_wire[-1] == np.float64(expected_last).astype(np.uint16)

    def test_window_sequence_respected(self):
        """Packets per round follow slow start then congestion avoidance."""
        params = TcpParameters(
            initial_window=2, ssthresh=8, max_window=12, rtt_jitter=0.0
        )
        size = 60 * params.mss  # 60 packets
        sched = simulate_tcp_flows([float(size)], [1.0], params, rng=0)
        # with zero jitter each round starts at an integer multiple of rtt
        rounds = np.floor(sched.offset + 1e-9).astype(int)
        counts = np.bincount(rounds)
        expected = [2, 4, 8, 9, 10, 11, 12]  # doubling to 8, then +1 to 12
        np.testing.assert_array_equal(counts[: len(expected)], expected)
