"""Tests for repro.netsim.tcp: the round-based TCP dynamics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.netsim import TcpParameters, simulate_tcp_flows


PARAMS = TcpParameters(rtt_jitter=0.0)  # deterministic for assertions


class TestPacketConservation:
    def test_payload_bytes_conserved(self):
        sizes = np.array([10_000.0, 1461.0, 2e6])
        rtts = np.full(3, 0.5)
        sched = simulate_tcp_flows(sizes, rtts, PARAMS, rng=0)
        payload = sched.wire_size.astype(float) - PARAMS.header_bytes
        for i, size in enumerate(sizes):
            assert payload[sched.flow_index == i].sum() == pytest.approx(size)

    def test_packet_count_is_ceil(self):
        sizes = np.array([1460.0, 1461.0, 14600.0])
        sched = simulate_tcp_flows(sizes, np.full(3, 0.1), PARAMS, rng=0)
        counts = np.bincount(sched.flow_index)
        np.testing.assert_array_equal(counts, [1, 2, 10])

    def test_wire_size_includes_header(self):
        sched = simulate_tcp_flows([2920.0], [0.1], PARAMS, rng=0)
        assert set(sched.wire_size.tolist()) == {1500}


class TestWindowDynamics:
    def test_slow_start_round_sizes(self):
        """14 packets with iw=2: rounds of 2, 4, 8 packets."""
        params = TcpParameters(
            initial_window=2, ssthresh=64, max_window=64, rtt_jitter=0.0
        )
        size = 14 * params.mss
        sched = simulate_tcp_flows([float(size)], [1.0], params, rng=0)
        # packets in round k start at t = k (rtt = 1)
        rounds = np.floor(sched.offset + 1e-9).astype(int)
        counts = np.bincount(rounds)
        np.testing.assert_array_equal(counts, [2, 4, 8])

    def test_congestion_avoidance_linear_growth(self):
        params = TcpParameters(
            initial_window=2, ssthresh=4, max_window=1000, rtt_jitter=0.0
        )
        size = 30 * params.mss
        sched = simulate_tcp_flows([float(size)], [1.0], params, rng=0)
        rounds = np.floor(sched.offset + 1e-9).astype(int)
        counts = np.bincount(rounds)
        # 2, 4 (= ssthresh), then +1 per round: 5, 6, 7, remainder
        np.testing.assert_array_equal(counts, [2, 4, 5, 6, 7, 6])

    def test_receiver_window_caps(self):
        params = TcpParameters(
            initial_window=2, ssthresh=4, max_window=6, rtt_jitter=0.0
        )
        size = 40 * params.mss
        sched = simulate_tcp_flows([float(size)], [1.0], params, rng=0)
        rounds = np.floor(sched.offset + 1e-9).astype(int)
        counts = np.bincount(rounds)
        assert counts.max() == 6

    def test_larger_flows_take_longer(self):
        sizes = np.array([5e3, 5e5])
        sched = simulate_tcp_flows(sizes, np.full(2, 0.2), PARAMS, rng=0)
        end_small = sched.offset[sched.flow_index == 0].max()
        end_big = sched.offset[sched.flow_index == 1].max()
        assert end_big > end_small

    def test_shorter_rtt_faster(self):
        sizes = np.full(2, 1e5)
        rtts = np.array([0.1, 1.0])
        sched = simulate_tcp_flows(sizes, rtts, PARAMS, rng=0)
        fast = sched.offset[sched.flow_index == 0].max()
        slow = sched.offset[sched.flow_index == 1].max()
        assert slow > 5 * fast


class TestScheduleShape:
    def test_offsets_nonnegative_and_ordered_per_flow(self):
        rng = np.random.default_rng(5)
        sizes = rng.uniform(2e3, 1e5, 50)
        rtts = rng.uniform(0.1, 1.0, 50)
        sched = simulate_tcp_flows(sizes, rtts, TcpParameters(), rng=1)
        assert np.all(sched.offset >= 0.0)
        for i in range(50):
            offs = sched.offset[sched.flow_index == i]
            assert np.all(np.diff(offs) >= -1e-12)

    def test_first_packet_at_time_zero(self):
        sched = simulate_tcp_flows([1e4], [0.3], PARAMS, rng=0)
        assert sched.offset.min() == pytest.approx(0.0)

    def test_concatenate_empty(self):
        from repro.netsim import PacketSchedule

        empty = PacketSchedule.concatenate([])
        assert len(empty) == 0

    def test_validation(self):
        with pytest.raises(ParameterError):
            simulate_tcp_flows([1e4], [0.1, 0.2], PARAMS)
        with pytest.raises(ParameterError):
            simulate_tcp_flows([-1.0], [0.1], PARAMS)
        with pytest.raises(ParameterError):
            TcpParameters(initial_window=0)
        with pytest.raises(ParameterError):
            TcpParameters(ssthresh=1, initial_window=2)
        with pytest.raises(ParameterError):
            TcpParameters(max_window=4, ssthresh=8)
