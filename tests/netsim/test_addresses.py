"""Tests for repro.netsim.addresses: the synthetic endpoint population."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.flows import PROTO_TCP, PROTO_UDP, prefix_of
from repro.netsim import AddressSpace


class TestSampling:
    def test_shapes_and_dtypes(self):
        space = AddressSpace()
        src, dst, sport, dport, proto = space.sample_endpoints(100, rng=0)
        for arr in (src, dst):
            assert arr.dtype == np.uint32
        for arr in (sport, dport):
            assert arr.dtype == np.uint16
        assert proto.dtype == np.uint8
        assert src.shape == (100,)

    def test_ports_in_valid_ranges(self):
        space = AddressSpace()
        _, _, sport, dport, _ = space.sample_endpoints(2000, rng=1)
        assert np.all(sport >= 1024)
        assert np.all(dport > 0)

    def test_protocol_mix(self):
        space = AddressSpace(udp_fraction=0.3)
        *_, proto = space.sample_endpoints(20_000, rng=2)
        udp_share = np.mean(proto == PROTO_UDP)
        assert udp_share == pytest.approx(0.3, abs=0.02)
        assert set(np.unique(proto)) <= {PROTO_TCP, PROTO_UDP}

    def test_deterministic_given_seed(self):
        space = AddressSpace()
        a = space.sample_endpoints(50, rng=7)
        b = space.sample_endpoints(50, rng=7)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_destinations_within_population(self):
        space = AddressSpace(n_dst_prefixes=64)
        _, dst, *_ = space.sample_endpoints(5000, rng=3)
        prefixes = np.unique(prefix_of(dst, 24))
        assert prefixes.size <= 64


class TestPopularity:
    def test_weights_sum_to_one(self):
        space = AddressSpace()
        assert space.prefix_popularity.sum() == pytest.approx(1.0)

    def test_hot_tier_receives_hot_fraction(self):
        space = AddressSpace(
            n_dst_prefixes=1024, n_hot_prefixes=16, hot_fraction=0.5
        )
        hot_share = space.prefix_popularity[:16].sum()
        assert hot_share > 0.5  # hot fraction plus their Zipf share

    def test_no_hot_tier(self):
        space = AddressSpace(n_hot_prefixes=0, hot_fraction=0.0)
        weights = space.prefix_popularity
        # pure Zipf: strictly decreasing
        assert np.all(np.diff(weights) < 0)

    def test_hot_concentration_in_samples(self):
        space = AddressSpace(n_hot_prefixes=8, hot_fraction=0.6)
        _, dst, *_ = space.sample_endpoints(20_000, rng=4)
        prefixes = prefix_of(dst, 24)
        top8 = np.sort(np.bincount(prefixes - prefixes.min()))[-8:].sum()
        assert top8 / 20_000 > 0.55


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_dst_prefixes=0),
            dict(udp_fraction=1.5),
            dict(zipf_exponent=-1.0),
            dict(n_hot_prefixes=10_000),
            dict(hot_fraction=1.0),
            dict(n_src_networks=0),
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            AddressSpace(**kwargs)
