"""Tests for repro.netsim.packetize: shot-driven packet placement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ParabolicShot, RectangularShot, TriangularShot
from repro.exceptions import ParameterError
from repro.netsim import packetize_shots


class TestConservation:
    def test_payload_sums_to_size(self):
        sizes = np.array([5000.0, 1460.0, 30_000.0])
        durations = np.array([1.0, 0.2, 3.0])
        sched = packetize_shots(sizes, durations, TriangularShot())
        payload = sched.wire_size.astype(float) - 40.0
        for i, size in enumerate(sizes):
            assert payload[sched.flow_index == i].sum() == pytest.approx(size)

    def test_offsets_within_duration(self):
        sizes = np.full(20, 2e4)
        durations = np.linspace(0.5, 5.0, 20)
        sched = packetize_shots(sizes, durations, ParabolicShot())
        assert np.all(sched.offset >= 0.0)
        assert np.all(sched.offset <= durations[sched.flow_index] + 1e-9)

    def test_last_packet_at_duration(self):
        sched = packetize_shots([14_600.0], [2.0], RectangularShot())
        assert sched.offset.max() == pytest.approx(2.0)


class TestShotShapeEffects:
    def test_rectangular_evenly_spaced(self):
        sched = packetize_shots([14_600.0], [2.0], RectangularShot())
        gaps = np.diff(np.sort(sched.offset))
        np.testing.assert_allclose(gaps, gaps[0], rtol=1e-9)

    def test_parabolic_backloaded(self):
        """Superlinear shots send most bytes late in the flow."""
        sched = packetize_shots([146_000.0], [10.0], ParabolicShot())
        early = np.sum(sched.offset < 5.0)
        late = np.sum(sched.offset >= 5.0)
        assert late > 3 * early

    def test_triangular_median_at_sqrt_half(self):
        # cumulative (u/D)^2 = 0.5 at u = D/sqrt(2)
        sched = packetize_shots([1_460_000.0], [1.0], TriangularShot())
        median = np.median(sched.offset)
        assert median == pytest.approx(1.0 / np.sqrt(2.0), abs=0.02)


class TestJitter:
    def test_jitter_zero_is_deterministic(self):
        a = packetize_shots([2e4], [1.0], TriangularShot(), jitter=0.0)
        b = packetize_shots([2e4], [1.0], TriangularShot(), jitter=0.0)
        np.testing.assert_array_equal(a.offset, b.offset)

    def test_jitter_perturbs_but_stays_in_bounds(self):
        base = packetize_shots([2e4], [1.0], TriangularShot(), jitter=0.0)
        jit = packetize_shots([2e4], [1.0], TriangularShot(), jitter=0.9, rng=1)
        assert not np.allclose(base.offset, jit.offset)
        assert np.all((jit.offset >= 0.0) & (jit.offset <= 1.0))


class TestValidation:
    def test_rejects_bad_mss(self):
        with pytest.raises(ParameterError):
            packetize_shots([1e4], [1.0], RectangularShot(), mss=0)

    def test_rejects_negative_jitter(self):
        with pytest.raises(ParameterError):
            packetize_shots([1e4], [1.0], RectangularShot(), jitter=-1.0)

    def test_rejects_bad_flows(self):
        with pytest.raises(ParameterError):
            packetize_shots([1e4], [0.0], RectangularShot())
