"""Tests for repro.netsim.arrivals: arrival point processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.netsim import (
    MMPPArrivals,
    NonHomogeneousPoissonArrivals,
    PoissonArrivals,
    SessionArrivals,
)
from repro.stats import exponentiality


class TestPoisson:
    def test_times_sorted_in_range(self):
        proc = PoissonArrivals(50.0)
        t = proc.times(10.0, rng=0)
        assert np.all(np.diff(t) >= 0)
        assert t.min() >= 0.0
        assert t.max() < 10.0

    def test_count_matches_rate(self):
        proc = PoissonArrivals(200.0)
        counts = [proc.times(10.0, rng=seed).size for seed in range(30)]
        assert np.mean(counts) == pytest.approx(2000.0, rel=0.05)

    def test_interarrivals_exponential(self):
        proc = PoissonArrivals(500.0)
        t = proc.times(100.0, rng=1)
        report = exponentiality(np.diff(t))
        assert report.plausibly_exponential

    def test_mean_rate(self):
        assert PoissonArrivals(7.0).mean_rate == 7.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            PoissonArrivals(0.0)
        with pytest.raises(ParameterError):
            PoissonArrivals(5.0).times(0.0)


class TestMMPP:
    def test_mean_rate_stationary_mix(self):
        proc = MMPPArrivals(rates=(10.0, 90.0), mean_sojourns=(1.0, 3.0))
        expected = (10.0 * 1.0 + 90.0 * 3.0) / 4.0
        assert proc.mean_rate == pytest.approx(expected)

    def test_count_matches_mean_rate(self):
        proc = MMPPArrivals(rates=(20.0, 200.0), mean_sojourns=(2.0, 2.0))
        counts = [proc.times(50.0, rng=seed).size for seed in range(40)]
        assert np.mean(counts) == pytest.approx(50.0 * proc.mean_rate, rel=0.1)

    def test_burstier_than_poisson(self):
        """MMPP inter-arrivals have CoV > 1 (the Poisson value)."""
        proc = MMPPArrivals(rates=(5.0, 300.0), mean_sojourns=(3.0, 3.0))
        t = proc.times(300.0, rng=2)
        inter = np.diff(t)
        cov = inter.std() / inter.mean()
        assert cov > 1.3

    def test_degenerates_to_poisson(self):
        proc = MMPPArrivals(rates=(50.0, 50.0), mean_sojourns=(1.0, 1.0))
        t = proc.times(100.0, rng=3)
        report = exponentiality(np.diff(t))
        assert report.plausibly_exponential

    def test_validation(self):
        with pytest.raises(ParameterError):
            MMPPArrivals(rates=(1.0,), mean_sojourns=(1.0, 1.0))
        with pytest.raises(ParameterError):
            MMPPArrivals(rates=(0.0, 0.0), mean_sojourns=(1.0, 1.0))
        with pytest.raises(ParameterError):
            MMPPArrivals(rates=(1.0, 2.0), mean_sojourns=(0.0, 1.0))


class TestNonHomogeneous:
    def test_ramp_intensity(self):
        proc = NonHomogeneousPoissonArrivals(
            rate_fn=lambda t: 10.0 + 90.0 * (t / 100.0), rate_max=100.0
        )
        t = proc.times(100.0, rng=4)
        first_half = np.sum(t < 50.0)
        second_half = np.sum(t >= 50.0)
        assert second_half > 1.5 * first_half

    def test_total_count(self):
        proc = NonHomogeneousPoissonArrivals(
            rate_fn=lambda t: np.full_like(t, 40.0), rate_max=40.0
        )
        counts = [proc.times(25.0, rng=seed).size for seed in range(30)]
        assert np.mean(counts) == pytest.approx(1000.0, rel=0.07)

    def test_rejects_rate_above_bound(self):
        proc = NonHomogeneousPoissonArrivals(
            rate_fn=lambda t: np.full_like(t, 100.0), rate_max=10.0
        )
        with pytest.raises(ParameterError):
            proc.times(10.0, rng=0)


class TestSessions:
    def test_mean_rate(self):
        proc = SessionArrivals(5.0, flows_per_session=4.0)
        assert proc.mean_rate == pytest.approx(20.0)

    def test_flow_count(self):
        proc = SessionArrivals(10.0, flows_per_session=3.0, think_time=0.5)
        counts = [proc.times(60.0, rng=seed).size for seed in range(20)]
        # flows spill past the horizon; expect slightly under rate * T
        assert np.mean(counts) == pytest.approx(
            60.0 * proc.mean_rate, rel=0.15
        )

    def test_clustering_departs_from_poisson(self):
        proc = SessionArrivals(4.0, flows_per_session=8.0, think_time=0.05)
        t = proc.times(300.0, rng=5)
        inter = np.diff(t)
        cov = inter.std() / inter.mean()
        assert cov > 1.2  # clustered, super-Poisson variability

    def test_times_sorted_within_horizon(self):
        proc = SessionArrivals(5.0)
        t = proc.times(30.0, rng=6)
        assert np.all(np.diff(t) >= 0)
        assert t.max() < 30.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            SessionArrivals(0.0)
        with pytest.raises(ParameterError):
            SessionArrivals(1.0, flows_per_session=0.5)
