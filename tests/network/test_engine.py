"""Tests for repro.network.engine: the whole-backbone simulation.

The acceptance anchors:

* a one-node-pair topology reproduces the single-link engines
  (``synthesize_link_trace`` / ``StreamingMeasurement``) bit for bit for
  any ``chunk``/``workers``;
* per-link outputs are bitwise invariant to ``chunk``/``workers``;
* ECMP flow pinning is deterministic under a fixed seed, conserves the
  demand's packets across branches, and keeps a demand's flows identical
  on every link of their path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.measurement import MeasurementEngine
from repro.netsim import table_i_workload
from repro.network import (
    DemandMatrix,
    NetworkDemand,
    NetworkEngine,
    Topology,
    line,
    parallel_paths,
)

DURATION = 10.0


def workload(row=4, duration=DURATION):
    return table_i_workload(row, duration=duration)


@pytest.fixture(scope="module")
def one_link_simulation():
    demands = DemandMatrix(
        [NetworkDemand("r0", "r1", workload(), seed=5)]
    )
    return NetworkEngine(chunk=1234).simulate(
        line(2), demands, seed=9, keep_packets=True
    )


class TestSingleLinkDegeneracy:
    """One demand on one link == the single-link engines, bitwise."""

    def test_trace_matches_synthesize_link_trace(self, one_link_simulation):
        link = one_link_simulation[("r0", "r1")]
        reference = workload().synthesize(seed=5)
        assert np.array_equal(link.packets, reference.trace.packets)

    def test_flows_and_series_match_streaming_measurement(
        self, one_link_simulation
    ):
        link = one_link_simulation[("r0", "r1")]
        measured = MeasurementEngine().measure_chunks(
            workload().synthesize_chunks(seed=5, chunk=1234),
            delta=0.2,
            timeout=8.0,
        )
        assert np.array_equal(link.flows.starts, measured.flows.starts)
        assert np.array_equal(link.flows.ends, measured.flows.ends)
        assert np.array_equal(link.flows.sizes, measured.flows.sizes)
        assert np.array_equal(
            link.flows.packet_counts, measured.flows.packet_counts
        )
        assert np.array_equal(link.series.values, measured.series.values)

    @pytest.mark.parametrize("chunk,workers", [(500, 1), (50_000, 3)])
    def test_any_chunk_workers(self, one_link_simulation, chunk, workers):
        demands = DemandMatrix(
            [NetworkDemand("r0", "r1", workload(), seed=5)]
        )
        other = NetworkEngine(chunk=chunk, workers=workers).simulate(
            line(2), demands, seed=9, keep_packets=True
        )
        base = one_link_simulation[("r0", "r1")]
        varied = other[("r0", "r1")]
        assert np.array_equal(base.packets, varied.packets)
        assert np.array_equal(base.series.values, varied.series.values)
        assert np.array_equal(base.flows.starts, varied.flows.starts)

    def test_reverse_link_is_idle(self, one_link_simulation):
        reverse = one_link_simulation[("r1", "r0")]
        assert reverse.n_demands == 0
        assert reverse.packet_count == 0
        assert reverse.flows is None


@pytest.fixture(scope="module")
def ecmp_simulation():
    demands = DemandMatrix([NetworkDemand("src", "dst", workload())])
    return NetworkEngine(chunk=20_000, workers=2).simulate(
        parallel_paths(2), demands, routing="ecmp", seed=3,
        keep_packets=True,
    )


class TestECMP:
    def test_flows_split_across_both_branches(self, ecmp_simulation):
        up0 = ecmp_simulation[("src", "mid0")]
        up1 = ecmp_simulation[("src", "mid1")]
        assert up0.packet_count > 0 and up1.packet_count > 0

    def test_packet_conservation(self, ecmp_simulation):
        """Both ECMP branches together carry exactly the demand."""
        demands = DemandMatrix([NetworkDemand("r0", "r1", workload())])
        whole = NetworkEngine().simulate(line(2), demands, seed=3)
        total = (
            ecmp_simulation[("src", "mid0")].packet_count
            + ecmp_simulation[("src", "mid1")].packet_count
        )
        assert total == whole[("r0", "r1")].packet_count

    def test_hashing_deterministic_under_fixed_seed(self, ecmp_simulation):
        demands = DemandMatrix([NetworkDemand("src", "dst", workload())])
        again = NetworkEngine(chunk=4096, workers=1).simulate(
            parallel_paths(2), demands, routing="ecmp", seed=3,
            keep_packets=True,
        )
        for link in [("src", "mid0"), ("src", "mid1")]:
            assert np.array_equal(
                ecmp_simulation[link].packets, again[link].packets
            )

    def test_different_seed_different_split(self):
        demands = DemandMatrix([NetworkDemand("src", "dst", workload())])
        a = NetworkEngine().simulate(
            parallel_paths(2), demands, routing="ecmp", seed=3
        )
        b = NetworkEngine().simulate(
            parallel_paths(2), demands, routing="ecmp", seed=4
        )
        # different salt (and demand seed): a different flow split
        assert (
            a[("src", "mid0")].packet_count
            != b[("src", "mid0")].packet_count
        )

    def test_path_consistency_upstream_equals_downstream(
        self, ecmp_simulation
    ):
        """A flow pinned to mid0 appears identically on both hops."""
        assert np.array_equal(
            ecmp_simulation[("src", "mid0")].packets,
            ecmp_simulation[("mid0", "dst")].packets,
        )


class TestSuperposition:
    def test_shared_link_superposes_demands(self):
        topo = Topology()
        topo.add_link("a", "m", capacity_bps=50e6)
        topo.add_link("b", "m", capacity_bps=50e6)
        topo.add_link("m", "c", capacity_bps=50e6)
        demands = DemandMatrix(
            [
                NetworkDemand("a", "c", workload(4)),
                NetworkDemand("b", "c", workload(6)),
            ]
        )
        sim = NetworkEngine(chunk=30_000).simulate(
            topo, demands, routing="shortest_path", seed=1
        )
        shared = sim[("m", "c")]
        assert shared.n_demands == 2
        assert (
            shared.packet_count
            == sim[("a", "m")].packet_count + sim[("b", "m")].packet_count
        )
        # the merged stream is time-ordered: measurement would have
        # raised otherwise; spot-check the report too
        entry = shared.report()
        assert entry.n_demands == 2
        assert entry.packets == shared.packet_count

    def test_demand_populations_disjoint_on_shared_link(self):
        """The engine tiles destination blocks: no cross-demand 5-tuple
        collisions on a superposed link, whichever way the matrix was
        built."""
        topo = Topology()
        topo.add_link("a", "m", capacity_bps=50e6)
        topo.add_link("b", "m", capacity_bps=50e6)
        topo.add_link("m", "c", capacity_bps=50e6)
        demands = DemandMatrix(
            [
                NetworkDemand("a", "c", workload(4)),
                NetworkDemand("b", "c", workload(6)),
            ]
        )
        sim = NetworkEngine(chunk=30_000).simulate(
            topo, demands, routing="shortest_path", seed=1,
            keep_packets=True,
        )
        dst_a = set(np.unique(sim[("a", "m")].packets["dst_addr"]))
        dst_b = set(np.unique(sim[("b", "m")].packets["dst_addr"]))
        assert dst_a and dst_b
        assert not (dst_a & dst_b)

    def test_demand_streams_identical_on_every_link(self):
        """Re-synthesis per link decoheres nothing: same seed, same flows."""
        demands = DemandMatrix([NetworkDemand("r0", "r2", workload())])
        sim = NetworkEngine(chunk=10_000, workers=2).simulate(
            line(3), demands, seed=2, keep_packets=True
        )
        assert np.array_equal(
            sim[("r0", "r1")].packets, sim[("r1", "r2")].packets
        )


class TestReports:
    def test_report_shape(self, ecmp_simulation):
        report = ecmp_simulation.report()
        assert report.routing == "ecmp"
        assert report.n_demands == 1
        data = report.to_dict()
        assert data["topology"] == {"routers": 4, "links": 8}
        assert len(data["links"]) == 8
        carrying = [e for e in data["links"] if e["n_demands"]]
        assert len(carrying) == 4
        for entry in carrying:
            assert entry["packets"] > 0
            assert 0.0 < entry["utilization"] < 1.0
            assert entry["measured_cov"] is not None
            assert entry["required_capacity_bps"] > 0.0

    def test_provisioning_verdict_flags_thin_links(self):
        topo = Topology()
        # a link far too thin for the demand's epsilon-quantile need
        topo.add_link("a", "b", capacity_bps=1.1e6)
        demands = DemandMatrix(
            [
                NetworkDemand(
                    "a", "b",
                    table_i_workload(3, duration=DURATION),
                )
            ]
        )
        sim = NetworkEngine().simulate(topo, demands, seed=0)
        report = sim.report()
        assert [e.link for e in report.overloaded_links] == [("a", "b")]

    def test_json_round_trip(self, ecmp_simulation):
        import json

        payload = json.dumps(ecmp_simulation.report().to_dict())
        assert json.loads(payload)["routing"] == "ecmp"


class TestValidation:
    def test_empty_demand_matrix_rejected(self):
        with pytest.raises(ParameterError, match="must not be empty"):
            NetworkEngine().simulate(line(2), DemandMatrix())

    def test_unknown_endpoint_rejected(self):
        demands = DemandMatrix([NetworkDemand("r0", "nope", workload())])
        from repro.exceptions import TopologyError

        with pytest.raises(TopologyError, match="unknown router"):
            NetworkEngine().simulate(line(2), demands)

    def test_mismatched_durations_rejected(self):
        demands = DemandMatrix(
            [
                NetworkDemand("r0", "r1", workload(duration=10.0)),
                NetworkDemand("r1", "r0", workload(duration=20.0)),
            ]
        )
        with pytest.raises(ParameterError, match="share one duration"):
            NetworkEngine().simulate(line(2), demands)

    def test_bad_engine_knobs_rejected(self):
        with pytest.raises(ParameterError):
            NetworkEngine(chunk=0)
        with pytest.raises(ParameterError):
            NetworkEngine(workers=0)
