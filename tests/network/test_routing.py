"""Tests for repro.network.routing: strategies + deterministic hashing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError, TopologyError
from repro.network import (
    ECMPRouting,
    RoutedPaths,
    ShortestPathRouting,
    StaticRouting,
    Topology,
    ecmp_salt,
    flow_uniforms,
    parallel_paths,
    path_indices,
    resolve_routing,
)
from repro.trace import packets_from_columns


def weighted_square() -> Topology:
    topo = Topology()
    topo.add_link("A", "B", capacity_bps=1e8)
    topo.add_link("B", "C", capacity_bps=1e8)
    topo.add_link("A", "D", capacity_bps=1e8, weight=10.0)
    topo.add_link("D", "C", capacity_bps=1e8, weight=10.0)
    return topo


class TestRoutedPaths:
    def test_normalises_weights(self):
        routed = RoutedPaths(paths=(("a", "b"), ("a", "c", "b")),
                             weights=(1.0, 3.0))
        assert routed.weights == (0.25, 0.75)

    def test_rejects_loops_and_empty(self):
        with pytest.raises(ParameterError):
            RoutedPaths(paths=(("a", "b", "a"),), weights=(1.0,))
        with pytest.raises(ParameterError):
            RoutedPaths(paths=(), weights=())
        with pytest.raises(ParameterError):
            RoutedPaths(paths=(("a",),), weights=(1.0,))

    def test_intervals_cover_unit_interval(self):
        routed = RoutedPaths(
            paths=(("s", "m0", "d"), ("s", "m1", "d")), weights=(1.0, 1.0)
        )
        (lo0, hi0), = routed.intervals_for_link(("s", "m0"))
        (lo1, hi1), = routed.intervals_for_link(("s", "m1"))
        assert (lo0, hi0) == (0.0, 0.5)
        assert (lo1, hi1) == (0.5, 1.0)
        assert routed.intervals_for_link(("m0", "s")) == ()


class TestStrategies:
    def test_shortest_path_by_weight(self):
        routed = ShortestPathRouting().route(weighted_square(), "A", "C")
        assert routed.paths == (("A", "B", "C"),)

    def test_no_route_raises(self):
        topo = Topology()
        topo.add_link("X", "Y", capacity_bps=1e6, bidirectional=False)
        with pytest.raises(TopologyError, match="no route"):
            ShortestPathRouting().route(topo, "Y", "X")

    def test_ecmp_finds_all_equal_cost_paths(self):
        routed = ECMPRouting().route(parallel_paths(3), "src", "dst")
        assert routed.n_paths == 3
        assert routed.weights == pytest.approx((1 / 3,) * 3)
        # lexicographic path order is the deterministic hash-bucket order
        assert [p[1] for p in routed.paths] == ["mid0", "mid1", "mid2"]

    def test_ecmp_single_path_when_costs_differ(self):
        routed = ECMPRouting().route(weighted_square(), "A", "C")
        assert routed.paths == (("A", "B", "C"),)

    def test_static_routing_validates_paths(self):
        topo = parallel_paths(2)
        routing = StaticRouting(
            {("src", "dst"): ((("src", "mid0", "dst"),), (1.0,))}
        )
        assert routing.route(topo, "src", "dst").n_paths == 1
        with pytest.raises(TopologyError, match="no entry"):
            routing.route(topo, "dst", "src")
        bad = StaticRouting(
            {("src", "dst"): ((("src", "nowhere", "dst"),), (1.0,))}
        )
        with pytest.raises(TopologyError, match="missing link"):
            bad.route(topo, "src", "dst")

    def test_resolve_routing_names(self):
        assert isinstance(resolve_routing("ecmp"), ECMPRouting)
        assert isinstance(
            resolve_routing("shortest_path"), ShortestPathRouting
        )
        strategy = ECMPRouting()
        assert resolve_routing(strategy) is strategy
        with pytest.raises(ParameterError, match="unknown routing"):
            resolve_routing("hot-potato")


def example_packets(n=4000, seed=0):
    rng = np.random.default_rng(seed)
    return packets_from_columns(
        np.sort(rng.random(n) * 10.0),
        rng.integers(0, 2**32, n),
        rng.integers(0, 2**32, n),
        rng.integers(1024, 65535, n),
        rng.integers(1, 1024, n),
        np.full(n, 6),
        np.full(n, 1000),
    )


class TestFlowHashing:
    def test_uniform_is_pure_function_of_five_tuple_and_salt(self):
        packets = example_packets()
        salt = ecmp_salt(7)
        u1 = flow_uniforms(packets, salt)
        u2 = flow_uniforms(packets.copy(), salt)
        assert np.array_equal(u1, u2)
        # chunking never changes per-packet values
        parts = np.concatenate(
            [flow_uniforms(packets[:1000], salt),
             flow_uniforms(packets[1000:], salt)]
        )
        assert np.array_equal(u1, parts)

    def test_same_flow_same_uniform(self):
        packets = example_packets(10)
        packets["src_addr"] = 42
        packets["dst_addr"] = 43
        packets["src_port"] = 1000
        packets["dst_port"] = 80
        packets["protocol"] = 6
        u = flow_uniforms(packets, ecmp_salt(0))
        assert np.unique(u).size == 1

    def test_salt_is_deterministic_in_seed(self):
        assert ecmp_salt(3) == ecmp_salt(3)
        assert ecmp_salt(3) != ecmp_salt(4)

    def test_split_is_roughly_balanced(self):
        u = flow_uniforms(example_packets(20_000), ecmp_salt(1))
        routed = RoutedPaths(
            paths=(("s", "m0", "d"), ("s", "m1", "d")), weights=(1.0, 1.0)
        )
        idx = path_indices(u, routed)
        frac = float(np.mean(idx == 0))
        assert 0.45 < frac < 0.55

    def test_weighted_split_respects_fractions(self):
        u = flow_uniforms(example_packets(20_000), ecmp_salt(1))
        routed = RoutedPaths(
            paths=(("s", "m0", "d"), ("s", "m1", "d")), weights=(3.0, 1.0)
        )
        idx = path_indices(u, routed)
        assert 0.70 < float(np.mean(idx == 0)) < 0.80
