"""Tests for repro.network.topology: graphs, presets, serialization."""

from __future__ import annotations

import pytest

from repro.exceptions import ParameterError, TopologyError
from repro.network import Topology, abilene, line, parallel_paths


class TestTopology:
    def test_bidirectional_by_default(self):
        topo = Topology()
        topo.add_link("a", "b", capacity_bps=1e6)
        assert topo.has_link("a", "b") and topo.has_link("b", "a")
        assert topo.capacity_bps("b", "a") == 1e6
        assert topo.fate_group("a", "b") == (("a", "b"), ("b", "a"))

    def test_unidirectional_link(self):
        topo = Topology()
        topo.add_link("a", "b", capacity_bps=1e6, bidirectional=False)
        assert topo.has_link("a", "b") and not topo.has_link("b", "a")
        assert topo.fate_group("a", "b") == (("a", "b"),)

    def test_self_link_rejected(self):
        topo = Topology()
        with pytest.raises(TopologyError):
            topo.add_link("a", "a", capacity_bps=1e6)

    def test_bad_capacity_rejected(self):
        topo = Topology()
        with pytest.raises(ParameterError):
            topo.add_link("a", "b", capacity_bps=0.0)

    def test_without_links_shared_fate(self):
        topo = parallel_paths(2)
        reduced = topo.without_links([("src", "mid0")])
        assert not reduced.has_link("src", "mid0")
        assert not reduced.has_link("mid0", "src")  # twin fails with it
        assert reduced.has_link("src", "mid1")
        # the original is untouched
        assert topo.has_link("src", "mid0")

    def test_missing_link_queries_raise(self):
        topo = line(2)
        with pytest.raises(TopologyError):
            topo.capacity_bps("r0", "nope")
        with pytest.raises(TopologyError):
            topo.require_router("nope")


class TestPresets:
    def test_abilene_shape(self):
        topo = abilene()
        assert len(topo.routers) == 11
        assert topo.n_links == 28  # 14 fibres, both directions

    def test_parallel_paths(self):
        topo = parallel_paths(3)
        assert topo.n_links == 12  # 6 fibres
        for i in range(3):
            assert topo.has_link("src", f"mid{i}")
            assert topo.has_link(f"mid{i}", "dst")

    def test_line_minimal(self):
        assert line(2).n_links == 2
        with pytest.raises(ParameterError):
            line(1)
        with pytest.raises(ParameterError):
            parallel_paths(0)


class TestSerialization:
    def test_round_trip(self):
        topo = Topology()
        topo.add_router("lonely")
        topo.add_link("a", "b", capacity_bps=2e6, weight=3.0)
        topo.add_link("b", "c", capacity_bps=1e6, bidirectional=False)
        back = Topology.from_dict(topo.to_dict())
        assert sorted(back.links) == sorted(topo.links)
        assert back.has_router("lonely")
        assert back.capacity_bps("a", "b") == 2e6
        assert back.weight("b", "a") == 3.0
        assert not back.has_link("c", "b")
        assert back.to_dict() == topo.to_dict()

    def test_missing_key_is_friendly(self):
        with pytest.raises(ParameterError, match="missing key"):
            Topology.from_dict({"links": [{"a": "x", "b": "y"}]})

    def test_empty_topology_rejected(self):
        with pytest.raises(ParameterError, match="at least one link"):
            Topology.from_dict({"routers": ["a"], "links": []})
