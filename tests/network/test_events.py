"""Tests for repro.network.events: outage reroute + flash crowds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.netsim import table_i_workload
from repro.network import (
    DemandMatrix,
    FlashCrowd,
    LinkOutage,
    NetworkDemand,
    NetworkEngine,
    ShortestPathRouting,
    Topology,
    line,
    parallel_paths,
    routing_timeline,
)

DURATION = 12.0


def workload(row=4):
    return table_i_workload(row, duration=DURATION)


def two_path_matrix():
    return DemandMatrix([NetworkDemand("src", "dst", workload())])


class TestRoutingTimeline:
    def test_no_events_one_segment(self):
        timeline = routing_timeline(
            parallel_paths(2), two_path_matrix(), ShortestPathRouting()
        )
        (segments,) = timeline
        assert len(segments) == 1
        assert (segments[0].t0, segments[0].t1) == (0.0, DURATION)

    def test_outage_splits_into_three_segments(self):
        outage = LinkOutage(("src", "mid0"), start=4.0, duration=4.0)
        (segments,) = routing_timeline(
            parallel_paths(2), two_path_matrix(), ShortestPathRouting(),
            [outage],
        )
        assert [(s.t0, s.t1) for s in segments] == [
            (0.0, 4.0), (4.0, 8.0), (8.0, DURATION),
        ]
        before, during, after = segments
        assert before.routed == after.routed
        assert during.routed is not None
        assert ("src", "mid0") not in during.routed.links()

    def test_unaffected_demand_keeps_route(self):
        topo = parallel_paths(2)
        demands = DemandMatrix(
            [
                NetworkDemand("src", "dst", workload()),
                NetworkDemand("mid1", "dst", workload()),
            ]
        )
        outage = LinkOutage(("src", "mid0"), start=4.0, duration=4.0)
        timeline = routing_timeline(
            topo, demands, ShortestPathRouting(), [outage]
        )
        # demand 1 never touches the failed fibre: identical everywhere
        assert all(
            segment.routed == timeline[1][0].routed
            for segment in timeline[1]
        )

    def test_disconnection_blackholes(self):
        topo = line(2)
        demands = DemandMatrix([NetworkDemand("r0", "r1", workload())])
        outage = LinkOutage(("r0", "r1"), start=4.0, duration=4.0)
        (segments,) = routing_timeline(
            topo, demands, ShortestPathRouting(), [outage]
        )
        assert segments[1].routed is None

    def test_unknown_link_rejected(self):
        with pytest.raises(Exception, match="no link"):
            routing_timeline(
                line(2), two_path_matrix_for_line(), ShortestPathRouting(),
                [LinkOutage(("r0", "nope"), start=1.0, duration=1.0)],
            )


def two_path_matrix_for_line():
    return DemandMatrix([NetworkDemand("r0", "r1", workload())])


class TestOutageSimulation:
    @pytest.fixture(scope="class")
    def outage_sim(self):
        events = [LinkOutage(("src", "mid0"), start=4.0, duration=4.0)]
        return NetworkEngine(chunk=20_000).simulate(
            parallel_paths(2), two_path_matrix(),
            routing="shortest_path", events=events, seed=3,
            detect_anomalies=True, keep_packets=True,
        )

    def test_failed_link_is_silent_during_window(self, outage_sim):
        failed = outage_sim[("src", "mid0")]
        ts = failed.packets["timestamp"]
        assert not np.any((ts >= 4.0) & (ts < 8.0))
        assert np.any(ts < 4.0) and np.any(ts >= 8.0)

    def test_backup_link_carries_only_the_window(self, outage_sim):
        backup = outage_sim[("src", "mid1")]
        ts = backup.packets["timestamp"]
        assert backup.packet_count > 0
        assert np.all((ts >= 4.0) & (ts < 8.0))

    def test_rerouted_packets_conserved(self, outage_sim):
        """Nothing is lost: reroute moves packets, never drops them."""
        baseline = NetworkEngine(chunk=20_000).simulate(
            parallel_paths(2), two_path_matrix(),
            routing="shortest_path", seed=3,
        )
        total = (
            outage_sim[("src", "mid0")].packet_count
            + outage_sim[("src", "mid1")].packet_count
        )
        assert total == baseline[("src", "mid0")].packet_count

    def test_detector_flags_the_drop(self, outage_sim):
        drops = [
            event
            for event in outage_sim[("src", "mid0")].anomalies
            if event.kind == "drop"
        ]
        assert drops, "the failed link's rate drop must be detected"
        delta = outage_sim[("src", "mid0")].delta
        assert any(
            event.start_time(delta) <= 4.5
            and event.start_time(delta) + event.n_samples * delta >= 7.5
            for event in drops
        )

    def test_outage_elsewhere_leaves_unaffected_demand_bitwise_alone(self):
        """An outage splits every timeline at its breakpoints, but a
        demand that never touches the failed fibre coalesces back to one
        segment and streams through untouched (bitwise)."""
        topo = parallel_paths(2)
        topo.add_link("a", "b", capacity_bps=20e6)
        demands = DemandMatrix(
            [
                NetworkDemand("src", "dst", workload()),
                NetworkDemand("a", "b", workload(6)),
            ]
        )
        base = NetworkEngine(chunk=20_000).simulate(
            topo, demands, routing="shortest_path", seed=3,
            keep_packets=True,
        )
        events = [LinkOutage(("src", "mid0"), start=4.0, duration=4.0)]
        with_outage = NetworkEngine(chunk=20_000).simulate(
            topo, demands, routing="shortest_path", events=events, seed=3,
            keep_packets=True,
        )
        assert base[("a", "b")].packet_count > 0
        assert np.array_equal(
            base[("a", "b")].packets, with_outage[("a", "b")].packets
        )

    def test_blackhole_drops_packets(self):
        events = [LinkOutage(("r0", "r1"), start=4.0, duration=4.0)]
        sim = NetworkEngine(chunk=20_000).simulate(
            line(2), two_path_matrix_for_line(), events=events, seed=3,
            keep_packets=True,
        )
        ts = sim[("r0", "r1")].packets["timestamp"]
        assert not np.any((ts >= 4.0) & (ts < 8.0))

    def test_invariant_to_chunk_and_workers(self, outage_sim):
        events = [LinkOutage(("src", "mid0"), start=4.0, duration=4.0)]
        again = NetworkEngine(chunk=3000, workers=3).simulate(
            parallel_paths(2), two_path_matrix(),
            routing="shortest_path", events=events, seed=3,
            detect_anomalies=True, keep_packets=True,
        )
        for link in [("src", "mid0"), ("src", "mid1")]:
            assert np.array_equal(
                outage_sim[link].packets, again[link].packets
            )
            assert outage_sim[link].anomalies == again[link].anomalies


class TestFlashCrowd:
    def test_rate_rises_inside_the_window(self):
        events = [FlashCrowd(0, start=4.0, duration=4.0, factor=6.0)]
        sim = NetworkEngine(chunk=20_000).simulate(
            line(2), two_path_matrix_for_line(), events=events, seed=3,
            detect_anomalies=True, keep_packets=True,
        )
        link = sim[("r0", "r1")]
        ts = link.packets["timestamp"]
        inside = np.count_nonzero((ts >= 4.0) & (ts < 8.0)) / 4.0
        outside = np.count_nonzero(ts < 4.0) / 4.0
        assert inside > 2.0 * outside
        assert any(event.kind == "flood" for event in link.anomalies)

    def test_untargeted_demand_untouched(self):
        topo = Topology()
        topo.add_link("a", "x", capacity_bps=20e6)
        topo.add_link("b", "x", capacity_bps=20e6)
        demands = DemandMatrix(
            [
                NetworkDemand("a", "x", workload()),
                NetworkDemand("b", "x", workload(6)),
            ]
        )
        base = NetworkEngine().simulate(topo, demands, seed=1, keep_packets=True)
        events = [FlashCrowd(0, start=4.0, duration=4.0, factor=5.0)]
        crowd = NetworkEngine().simulate(
            topo, demands, events=events, seed=1, keep_packets=True
        )
        assert np.array_equal(
            base[("b", "x")].packets, crowd[("b", "x")].packets
        )
        assert crowd[("a", "x")].packet_count > base[("a", "x")].packet_count

    def test_stacked_crowds_on_one_demand_compose(self):
        """Two windows on one demand both amplify (factors multiply on
        overlap) instead of raising a misleading Poisson-only error."""
        events = [
            FlashCrowd(0, start=2.0, duration=3.0, factor=5.0),
            FlashCrowd(0, start=7.0, duration=3.0, factor=5.0),
        ]
        sim = NetworkEngine(chunk=20_000).simulate(
            line(2), two_path_matrix_for_line(), events=events, seed=3,
            keep_packets=True,
        )
        ts = sim[("r0", "r1")].packets["timestamp"]
        first = np.count_nonzero((ts >= 2.0) & (ts < 5.0)) / 3.0
        second = np.count_nonzero((ts >= 7.0) & (ts < 10.0)) / 3.0
        # the pre-burst rate is the clean baseline (flows started inside
        # a burst keep transmitting into the gap between windows)
        calm = np.count_nonzero(ts < 2.0) / 2.0
        assert first > 2.0 * calm
        assert second > 2.0 * calm

    def test_out_of_range_demand_rejected(self):
        events = [FlashCrowd(5, start=1.0, duration=1.0)]
        with pytest.raises(ParameterError, match="targets demand 5"):
            NetworkEngine().simulate(
                line(2), two_path_matrix_for_line(), events=events
            )

    def test_validation(self):
        with pytest.raises(ParameterError):
            FlashCrowd(0, start=-1.0, duration=1.0)
        with pytest.raises(ParameterError):
            FlashCrowd(0, start=0.0, duration=0.0)
        with pytest.raises(ParameterError):
            LinkOutage(("a", "b"), start=0.0, duration=-1.0)
