"""End-to-end integration tests: the full paper pipeline.

synthesise link -> capture trace -> write/read trace file -> export flows
-> parameterise model -> validate CoV -> fit b -> predict -> generate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PoissonShotNoiseModel, PowerShot, fit_power_from_variance
from repro.experiments import SCALED_TIMEOUT, measure_trace
from repro.flows import export_five_tuple_flows, export_prefix_flows
from repro.generation import generate_rate_series
from repro.prediction import ModelBasedPredictor, prediction_error
from repro.stats import RateSeries, exponentiality
from repro.trace import read_trace, write_trace


class TestFullPipeline:
    def test_trace_file_roundtrip(self, trace, tmp_path):
        path = tmp_path / "link.rptr"
        write_trace(trace, path)
        back = read_trace(path)
        np.testing.assert_array_equal(back.packets, trace.packets)

    def test_poisson_assumption_holds_on_synthetic_link(self, five_tuple_flows):
        """Assumption 1 check (paper Figures 3-4) on the synthetic trace."""
        report = exponentiality(five_tuple_flows.interarrival_times)
        assert report.qq_correlation > 0.99
        assert 0.8 < report.cov < 1.2

    def test_model_cov_within_40pct_of_measured(self, trace):
        """The Figures 9-13 headline: model CoV tracks measured CoV."""
        for kind in ("five_tuple", "prefix"):
            measurement, _ = measure_trace(trace, flow_kind=kind)
            best = min(
                abs(measurement.relative_error(b)) for b in (0.0, 1.0, 2.0)
            )
            assert best < 0.40

    def test_fitted_power_reasonable(self, trace):
        measurement, _ = measure_trace(trace, flow_kind="five_tuple")
        assert 0.0 <= measurement.fitted_power < 8.0  # Figure 11 support

    def test_mean_rate_agreement(self, trace, five_tuple_flows):
        """Corollary 1 on real measurements: lambda E[S] ~ measured rate.

        Discarded single-packet flows and packet headers make the flow-level
        rate slightly lower than the wire rate.
        """
        stats = five_tuple_flows.statistics(trace.duration)
        wire_rate = trace.mean_rate_bps / 8.0
        assert stats.mean_rate == pytest.approx(wire_rate, rel=0.15)

    def test_aggregation_reduces_flow_count(self, five_tuple_flows, prefix_flows):
        """Section VI-A: /24 aggregation reduces tracked flows."""
        assert len(prefix_flows) < len(five_tuple_flows)
        assert prefix_flows.durations.mean() > five_tuple_flows.durations.mean()

    def test_model_predicts_its_own_generation(self, trace, five_tuple_flows):
        """Close the loop: fit the model on measured flows, generate
        synthetic traffic from it, re-measure, compare CoV."""
        stats = five_tuple_flows.statistics(trace.duration)
        fit = fit_power_from_variance(
            RateSeries.from_packets(
                trace, 0.2,
                packet_mask=five_tuple_flows.packet_flow_ids >= 0,
            ).variance,
            stats,
        )
        model = PoissonShotNoiseModel.from_flows(
            five_tuple_flows.sizes,
            five_tuple_flows.durations,
            trace.duration,
            fit.shot,
        )
        generated = generate_rate_series(
            model.arrival_rate, model.ensemble, model.shot,
            duration=240.0, delta=0.2, rng=0,
        )
        assert generated.mean == pytest.approx(model.mean, rel=0.1)
        assert generated.coefficient_of_variation == pytest.approx(
            np.sqrt(model.averaged_variance(0.2)) / model.mean, rel=0.25
        )

    def test_model_based_prediction_on_real_trace(self, trace, five_tuple_flows):
        """Section VII-B end-to-end on the synthetic capture."""
        model = PoissonShotNoiseModel.from_flows(
            five_tuple_flows.sizes, five_tuple_flows.durations,
            trace.duration, PowerShot(1.0),
        )
        series = RateSeries.from_packets(trace, 1.0)
        predictor = ModelBasedPredictor(model, sample_interval=1.0, order=3)
        err = prediction_error(predictor, series)
        unconditional = series.std / series.mean
        assert err < unconditional  # prediction beats the mean

    def test_timeout_sensitivity(self, trace):
        """Shorter timeouts split flows into more, shorter pieces — and
        more single-packet fragments get discarded."""
        strict = export_five_tuple_flows(trace, timeout=1.0)
        loose = export_five_tuple_flows(trace, timeout=SCALED_TIMEOUT)
        assert strict.durations.mean() < loose.durations.mean()
        assert strict.discarded_packets >= loose.discarded_packets
        # kept + discarded fragments together can only grow when splitting
        assert len(strict) + strict.discarded_packets >= len(loose)

    def test_prefix_lengths_aggregate_monotonically(self, trace):
        """Coarser prefixes mean fewer flows (the /8-/16 extension)."""
        counts = [
            len(export_prefix_flows(trace, prefix_length=p, timeout=8.0))
            for p in (24, 16, 8)
        ]
        assert counts[0] >= counts[1] >= counts[2]
