"""Golden corrupt-file battery: every .rptr failure names its byte offset.

Each test corrupts a known-good trace file in a specific way and pins
the error message — offset, got/expected sizes — so a bad archive from
an operator diagnoses itself instead of surfacing as a numpy shape
error three layers up.
"""

from __future__ import annotations

import struct

import pytest

from repro.exceptions import TraceFormatError
from repro.trace import PACKET_DTYPE, read_trace, write_trace
from repro.trace.format import HEADER_STRUCT, decode_trace, encode_trace
from repro.trace.io import TraceReader

from .test_packet import make_packets


@pytest.fixture()
def good_file(tmp_path):
    from repro.trace import PacketTrace

    trace = PacketTrace(
        make_packets(100, spacing=0.01, size=500),
        link_capacity=1e6,
        duration=1.0,
    )
    path = tmp_path / "good.rptr"
    write_trace(trace, path)
    return path


class TestDecodeTrace:
    """In-memory decoder: offsets relative to the buffer start."""

    def good_bytes(self):
        from repro.trace import PacketTrace

        return encode_trace(PacketTrace(
            make_packets(10, size=500), link_capacity=1e6, duration=1.0
        ))

    def test_truncated_header(self):
        with pytest.raises(
            TraceFormatError,
            match=r"truncated trace header at byte offset 0: got 10 bytes, "
            rf"expected {HEADER_STRUCT.size}",
        ):
            decode_trace(self.good_bytes()[:10])

    def test_bad_magic(self):
        data = b"XXXX" + self.good_bytes()[4:]
        with pytest.raises(
            TraceFormatError,
            match=r"bad magic b'XXXX' at byte offset 0, expected b'RPTR'",
        ):
            decode_trace(data)

    def test_bad_version(self):
        data = bytearray(self.good_bytes())
        struct.pack_into("<H", data, 4, 9)
        with pytest.raises(
            TraceFormatError,
            match=r"unsupported trace version 9 at byte offset 4",
        ):
            decode_trace(bytes(data))

    def test_truncated_payload_names_offset_and_expectation(self):
        data = self.good_bytes()
        with pytest.raises(
            TraceFormatError,
            match=rf"truncated trace payload at byte offset "
            rf"{HEADER_STRUCT.size}: .*expected "
            rf"{10 * PACKET_DTYPE.itemsize} .*10 packets of "
            rf"{PACKET_DTYPE.itemsize} bytes each",
        ):
            decode_trace(data[:-5])


class TestTraceReader:
    """On-disk reader: the path prefixes every message."""

    def test_truncated_header(self, good_file):
        good_file.write_bytes(good_file.read_bytes()[:20])
        with pytest.raises(
            TraceFormatError,
            match=r"truncated trace header at byte offset 0: got 20 bytes, "
            r"expected 32",
        ):
            TraceReader(good_file)

    def test_bad_magic_names_path(self, good_file):
        data = bytearray(good_file.read_bytes())
        data[:4] = b"GARB"
        good_file.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="good.rptr.*bad magic"):
            read_trace(good_file)

    def test_bad_version(self, good_file):
        data = bytearray(good_file.read_bytes())
        struct.pack_into("<H", data, 4, 7)
        good_file.write_bytes(bytes(data))
        with pytest.raises(
            TraceFormatError,
            match=r"unsupported version 7 at byte offset 4, expected 1",
        ):
            TraceReader(good_file)

    def test_size_mismatch_reports_both_sizes(self, good_file):
        good_file.write_bytes(good_file.read_bytes()[:-23])
        expected = 32 + 100 * 23
        with pytest.raises(
            TraceFormatError,
            match=rf"{expected - 23} bytes on disk, expected {expected} "
            rf"\(32-byte header \+ 100 packets of 23 bytes each\)",
        ):
            TraceReader(good_file)

    def test_count_inflated_in_header(self, good_file):
        data = bytearray(good_file.read_bytes())
        HEADER_STRUCT.pack_into(data, 0, b"RPTR", 1, 0, 1e6, 1.0, 150)
        good_file.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="truncated file"):
            TraceReader(good_file)

    def test_chunks_detects_mid_stream_truncation(self, good_file):
        """A file that shrinks after open() still fails with an offset."""
        reader = TraceReader(good_file)
        good_file.write_bytes(good_file.read_bytes()[: 32 + 60 * 23])
        chunks = reader.chunks(50)
        next(chunks)  # first 50 packets are intact
        offset = 32 + 50 * 23
        with pytest.raises(
            TraceFormatError,
            match=rf"truncated trace at byte offset {offset}: got 10 "
            rf"packets, expected 50 \({50 * 23} bytes\)",
        ):
            next(chunks)
