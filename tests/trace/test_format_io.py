"""Tests for the binary trace format and streaming IO."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TraceFormatError
from repro.trace import (
    PACKET_DTYPE,
    PacketTrace,
    TraceReader,
    TraceWriter,
    decode_trace,
    encode_trace,
    merge_packets,
    read_trace,
    write_trace,
)
from repro.trace.format import HEADER_STRUCT, MAGIC

from .test_packet import make_packets


@pytest.fixture()
def trace():
    return PacketTrace(
        make_packets(100, spacing=0.01), link_capacity=622e6, duration=1.0,
        name="t",
    )


class TestEncodeDecode:
    def test_roundtrip(self, trace):
        blob = encode_trace(trace)
        back = decode_trace(blob)
        assert len(back) == len(trace)
        assert back.link_capacity == trace.link_capacity
        assert back.duration == trace.duration
        np.testing.assert_array_equal(back.packets, trace.packets)

    def test_bad_magic(self, trace):
        blob = bytearray(encode_trace(trace))
        blob[:4] = b"XXXX"
        with pytest.raises(TraceFormatError, match="magic"):
            decode_trace(bytes(blob))

    def test_bad_version(self, trace):
        blob = bytearray(encode_trace(trace))
        blob[4] = 99
        with pytest.raises(TraceFormatError, match="version"):
            decode_trace(bytes(blob))

    def test_truncated_payload(self, trace):
        blob = encode_trace(trace)
        with pytest.raises(TraceFormatError, match="truncated"):
            decode_trace(blob[:-5])

    def test_too_short_for_header(self):
        with pytest.raises(TraceFormatError, match="truncated trace header"):
            decode_trace(b"RP")

    def test_header_size(self):
        assert HEADER_STRUCT.size == 32
        assert MAGIC == b"RPTR"


class TestFileIO:
    def test_write_read_roundtrip(self, trace, tmp_path):
        path = tmp_path / "t.rptr"
        write_trace(trace, path)
        back = read_trace(path)
        np.testing.assert_array_equal(back.packets, trace.packets)
        assert back.duration == trace.duration

    def test_streaming_writer_chunks(self, tmp_path):
        path = tmp_path / "s.rptr"
        chunks = [make_packets(10, start=i, spacing=0.05) for i in range(5)]
        with TraceWriter(path, link_capacity=1e6) as writer:
            for chunk in chunks:
                writer.write(chunk)
        reader = TraceReader(path)
        assert reader.packet_count == 50
        full = reader.read()
        assert len(full) == 50
        # duration back-patched to the max timestamp
        assert full.duration == pytest.approx(4.45)

    def test_reader_chunk_iteration(self, trace, tmp_path):
        path = tmp_path / "c.rptr"
        write_trace(trace, path)
        blocks = list(TraceReader(path).chunks(chunk_size=33))
        assert [b.size for b in blocks] == [33, 33, 33, 1]
        np.testing.assert_array_equal(np.concatenate(blocks), trace.packets)

    def test_reader_rejects_truncated_file(self, trace, tmp_path):
        path = tmp_path / "bad.rptr"
        write_trace(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:-7])
        with pytest.raises(TraceFormatError, match="truncated"):
            TraceReader(path)

    def test_writer_rejects_wrong_dtype(self, tmp_path):
        with TraceWriter(tmp_path / "w.rptr", link_capacity=1e6) as writer:
            with pytest.raises(TraceFormatError):
                writer.write(np.zeros(3, dtype=np.float64))

    def test_writer_rejects_out_of_order_chunks(self, tmp_path):
        path = tmp_path / "o.rptr"
        with TraceWriter(path, link_capacity=1e6) as writer:
            writer.write(make_packets(10, start=5.0, spacing=0.1))
            with pytest.raises(TraceFormatError, match="out-of-order"):
                writer.write(make_packets(10, start=0.0, spacing=0.1))

    def test_writer_accepts_tied_boundary_timestamps(self, tmp_path):
        path = tmp_path / "tie.rptr"
        with TraceWriter(path, link_capacity=1e6) as writer:
            writer.write(make_packets(5, start=0.0, spacing=0.5))
            # next chunk starts exactly at the previous max: still a
            # valid (weakly ordered) capture
            writer.write(make_packets(5, start=2.0, spacing=0.5))
        assert TraceReader(path).packet_count == 10

    def test_writer_rejects_internally_unsorted_chunk(self, tmp_path):
        chunk = make_packets(10, start=0.0, spacing=0.1)
        chunk["timestamp"][3] = 5.0  # out of order inside the chunk
        with TraceWriter(tmp_path / "i.rptr", link_capacity=1e6) as writer:
            with pytest.raises(TraceFormatError, match="time-ordered"):
                writer.write(chunk)

    def test_writer_allow_unsorted_opt_out(self, tmp_path):
        path = tmp_path / "u.rptr"
        with TraceWriter(path, link_capacity=1e6, allow_unsorted=True) as writer:
            writer.write(make_packets(5, start=5.0, spacing=0.1))
            writer.write(make_packets(5, start=0.0, spacing=0.1))
        assert TraceReader(path).packet_count == 10

    def test_writer_abort_on_exception(self, tmp_path):
        path = tmp_path / "a.rptr"
        with pytest.raises(RuntimeError):
            with TraceWriter(path, link_capacity=1e6) as writer:
                writer.write(make_packets(5))
                raise RuntimeError("boom")
        # header still says zero packets: reading fails loudly
        with pytest.raises(TraceFormatError):
            TraceReader(path)


class TestMerge:
    def test_merges_sorted(self):
        a = make_packets(5, start=0.0, spacing=1.0)
        b = make_packets(5, start=0.5, spacing=1.0)
        merged = merge_packets(a, b)
        assert merged.size == 10
        assert np.all(np.diff(merged["timestamp"]) >= 0)

    def test_empty_inputs(self):
        assert merge_packets().size == 0
        a = make_packets(3)
        out = merge_packets(a, np.zeros(0, dtype=PACKET_DTYPE))
        assert out.size == 3

    def test_rejects_wrong_dtype(self):
        with pytest.raises(TraceFormatError):
            merge_packets(np.zeros(3, dtype=np.float32))
