"""Tests for repro.trace.packet: records and traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.trace import PACKET_DTYPE, PacketRecord, PacketTrace, packets_from_columns


def make_packets(n=10, *, start=0.0, spacing=0.1, size=1000):
    return packets_from_columns(
        start + spacing * np.arange(n),
        np.full(n, 0x0A000001),
        np.full(n, 0x0A000002),
        np.full(n, 1234),
        np.full(n, 80),
        np.full(n, 6),
        np.full(n, size),
    )


class TestPacketRecord:
    def test_roundtrip_through_row(self):
        rec = PacketRecord(1.5, 0x01020304, 0x05060708, 1000, 80, 6, 1500)
        row = rec.to_row()
        assert row.dtype == PACKET_DTYPE
        back = PacketRecord.from_row(row[0])
        assert back == rec

    def test_dtype_is_packed(self):
        # 8 (ts) + 4 + 4 (addrs) + 2 + 2 (ports) + 1 (proto) + 2 (size)
        assert PACKET_DTYPE.itemsize == 23


class TestPacketsFromColumns:
    def test_shapes_and_fields(self):
        pkts = make_packets(5)
        assert pkts.shape == (5,)
        assert pkts["size"][0] == 1000
        assert pkts["protocol"][0] == 6

    def test_timestamp_precision(self):
        pkts = make_packets(3, spacing=1e-6)
        assert np.all(np.diff(pkts["timestamp"]) > 0)


class TestPacketTrace:
    def test_basic_stats(self):
        trace = PacketTrace(
            make_packets(10, spacing=0.1, size=1250),
            link_capacity=1e6,
            duration=1.0,
        )
        assert len(trace) == 10
        assert trace.total_bytes == 12_500
        assert trace.mean_rate_bps == pytest.approx(8 * 12_500 / 1.0)
        assert trace.utilization == pytest.approx(0.1)

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ParameterError):
            PacketTrace(np.zeros(3), link_capacity=1e6)

    def test_rejects_duration_before_last_packet(self):
        with pytest.raises(ParameterError):
            PacketTrace(make_packets(10), link_capacity=1e6, duration=0.1)

    def test_default_duration_is_last_timestamp(self):
        trace = PacketTrace(make_packets(10, spacing=0.5), link_capacity=1e6)
        assert trace.duration == pytest.approx(4.5)

    def test_sorted_detection_and_fix(self):
        pkts = make_packets(5)
        pkts["timestamp"] = pkts["timestamp"][::-1].copy()
        trace = PacketTrace(pkts, link_capacity=1e6, duration=1.0)
        assert not trace.is_sorted()
        fixed = trace.sorted()
        assert fixed.is_sorted()
        assert len(fixed) == 5

    def test_window_selects_and_rebases(self):
        trace = PacketTrace(
            make_packets(10, spacing=1.0), link_capacity=1e6, duration=10.0
        )
        cut = trace.window(2.0, 5.0, rebase=True)
        assert len(cut) == 3
        assert cut.packets["timestamp"].min() == pytest.approx(0.0)
        assert cut.duration == pytest.approx(3.0)

    def test_window_half_open(self):
        trace = PacketTrace(
            make_packets(10, spacing=1.0), link_capacity=1e6, duration=10.0
        )
        cut = trace.window(0.0, 3.0)
        assert len(cut) == 3  # t = 0, 1, 2

    def test_window_rejects_empty_interval(self):
        trace = PacketTrace(make_packets(3), link_capacity=1e6, duration=1.0)
        with pytest.raises(ParameterError):
            trace.window(1.0, 1.0)

    def test_empty_trace_is_fine(self):
        trace = PacketTrace(
            np.zeros(0, dtype=PACKET_DTYPE), link_capacity=1e6, duration=1.0
        )
        assert len(trace) == 0
        assert trace.mean_rate_bps == 0.0
