"""Tests for repro.prediction.linear: normal equations + Levinson-Durbin."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import PredictionError
from repro.prediction import (
    levinson_durbin,
    normal_equations,
    theoretical_mse,
)


def ar1_rho(phi: float, max_lag: int) -> np.ndarray:
    return phi ** np.arange(max_lag + 1)


class TestNormalEquations:
    def test_ar1_order1(self):
        """For an AR(1) the optimal one-tap predictor is a = rho(1)."""
        rho = ar1_rho(0.7, 5)
        a = normal_equations(rho, 1)
        assert a[0] == pytest.approx(0.7)

    def test_ar1_higher_order_puts_weight_on_first_tap(self):
        rho = ar1_rho(0.7, 5)
        a = normal_equations(rho, 3)
        np.testing.assert_allclose(a, [0.7, 0.0, 0.0], atol=1e-10)

    def test_white_noise_zero_coefficients(self):
        rho = np.array([1.0, 0.0, 0.0, 0.0])
        a = normal_equations(rho, 3)
        np.testing.assert_allclose(a, 0.0, atol=1e-12)

    def test_validation(self):
        rho = ar1_rho(0.5, 2)
        with pytest.raises(PredictionError):
            normal_equations(rho, 5)  # not enough lags
        with pytest.raises(PredictionError):
            normal_equations(rho, 0)
        with pytest.raises(PredictionError):
            normal_equations(np.array([2.0, 1.0]), 1)  # rho[0] != 1


class TestLevinsonDurbin:
    def test_matches_normal_equations(self):
        rho = np.array([1.0, 0.6, 0.3, 0.1, 0.05])
        result = levinson_durbin(rho, 4)
        for order in range(1, 5):
            np.testing.assert_allclose(
                result.coefficients[order - 1],
                normal_equations(rho, order),
                atol=1e-10,
            )

    def test_error_power_decreasing(self):
        rho = np.array([1.0, 0.6, 0.3, 0.1, 0.05])
        result = levinson_durbin(rho, 4)
        assert np.all(np.diff(result.error_power) <= 1e-12)

    def test_ar1_error_power(self):
        """For AR(1), the order-1 error is 1 - phi^2 and higher orders add
        nothing."""
        phi = 0.8
        result = levinson_durbin(ar1_rho(phi, 6), 6)
        assert result.error_power[0] == pytest.approx(1 - phi**2)
        assert result.error_power[5] == pytest.approx(1 - phi**2, rel=1e-9)

    def test_best_order_ar1(self):
        # error is flat beyond order 1, so order 1 precedes the "increase"
        result = levinson_durbin(ar1_rho(0.8, 6), 6)
        assert result.best_order() == 1

    def test_best_order_monotone_process(self):
        # slowly decaying (long-memory-ish) rho keeps improving
        rho = 1.0 / (1.0 + np.arange(7)) ** 0.3
        result = levinson_durbin(rho, 6)
        assert result.best_order() >= 2

    def test_validation(self):
        with pytest.raises(PredictionError):
            levinson_durbin(ar1_rho(0.5, 2), 5)


class TestTheoreticalMse:
    def test_optimal_coefficients_minimise(self):
        rho = np.array([1.0, 0.6, 0.3, 0.2])
        best = normal_equations(rho, 2)
        mse_best = theoretical_mse(rho, best)
        for wiggle in ([0.1, 0.0], [-0.1, 0.05], [0.0, 0.2]):
            mse_other = theoretical_mse(rho, best + np.array(wiggle))
            assert mse_other >= mse_best - 1e-12

    def test_matches_levinson_error(self):
        rho = np.array([1.0, 0.6, 0.3, 0.2])
        result = levinson_durbin(rho, 3)
        for order in range(1, 4):
            mse = theoretical_mse(rho, result.coefficients[order - 1])
            assert mse == pytest.approx(result.error_power[order - 1], abs=1e-10)

    def test_scales_with_variance(self):
        rho = ar1_rho(0.5, 3)
        a = normal_equations(rho, 1)
        assert theoretical_mse(rho, a, variance=4.0) == pytest.approx(
            4.0 * theoretical_mse(rho, a, variance=1.0)
        )
