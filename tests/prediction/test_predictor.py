"""Tests for repro.prediction.predictor and evaluation (Table II logic)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PoissonShotNoiseModel, TriangularShot
from repro.exceptions import PredictionError
from repro.generation import generate_rate_series
from repro.prediction import (
    EmpiricalPredictor,
    LinearPredictor,
    ModelBasedPredictor,
    compare_predictors,
    evaluate_predictor,
    prediction_error,
    select_order_by_validation,
)
from repro.stats import RateSeries


def ar1_series(phi=0.8, n=5000, mean=100.0, seed=0, delta=1.0) -> RateSeries:
    rng = np.random.default_rng(seed)
    x = np.zeros(n)
    eps = rng.normal(0.0, 1.0, n)
    for i in range(1, n):
        x[i] = phi * x[i - 1] + eps[i]
    return RateSeries(mean + x, delta)


class TestLinearPredictor:
    def test_predict_next_manual(self):
        pred = LinearPredictor([0.5, 0.25], mean=10.0, sample_interval=1.0)
        history = np.array([10.0, 12.0, 14.0])
        # x_hat = 10 + 0.5*(14-10) + 0.25*(12-10) = 12.5
        assert pred.predict_next(history) == pytest.approx(12.5)

    def test_predict_series_matches_loop(self):
        pred = LinearPredictor([0.6, -0.1], mean=5.0, sample_interval=1.0)
        values = np.array([5.0, 7.0, 6.0, 4.0, 5.5, 6.5])
        vectorised = pred.predict_series(values)
        manual = [
            pred.predict_next(values[: k + 1])
            for k in range(1, values.size - 1)
        ]
        np.testing.assert_allclose(vectorised, manual)

    def test_history_too_short(self):
        pred = LinearPredictor([0.5, 0.5], mean=0.0, sample_interval=1.0)
        with pytest.raises(PredictionError):
            pred.predict_next([1.0])


class TestEmpiricalPredictor:
    def test_learns_ar1(self):
        series = ar1_series(phi=0.8)
        pred = EmpiricalPredictor(series, order=1)
        assert pred.coefficients[0] == pytest.approx(0.8, abs=0.05)

    def test_beats_mean_predictor_on_correlated_series(self):
        series = ar1_series(phi=0.9)
        pred = EmpiricalPredictor(series, order=2)
        err = prediction_error(pred, series)
        # predicting the mean would leave the full std as error
        mean_only_err = series.std / series.mean
        assert err < 0.75 * mean_only_err

    def test_white_noise_coefficients_near_zero(self):
        rng = np.random.default_rng(3)
        series = RateSeries(100.0 + rng.normal(0, 5, 5000), 1.0)
        pred = EmpiricalPredictor(series, order=2)
        assert np.all(np.abs(pred.coefficients) < 0.1)

    def test_too_short_series_rejected(self):
        with pytest.raises(PredictionError):
            EmpiricalPredictor(RateSeries([1.0, 2.0], 1.0), order=3)


class TestModelBasedPredictor:
    def test_built_from_shot_noise_model(self, ensemble):
        model = PoissonShotNoiseModel(60.0, ensemble, TriangularShot())
        pred = ModelBasedPredictor(model, sample_interval=0.2, order=3)
        assert pred.order == 3
        assert pred.mean == pytest.approx(model.mean)
        assert pred.rho[0] == pytest.approx(1.0)
        assert np.all(np.diff(pred.rho) <= 1e-9)

    def test_auto_order_selection(self, ensemble):
        model = PoissonShotNoiseModel(60.0, ensemble, TriangularShot())
        pred = ModelBasedPredictor(model, sample_interval=0.2, max_order=8)
        assert 1 <= pred.order <= 8

    def test_predicts_generated_traffic(self, ensemble):
        """End-to-end: model-derived predictor works on traffic generated
        from the same model (the paper's self-consistency)."""
        model = PoissonShotNoiseModel(60.0, ensemble, TriangularShot())
        series = generate_rate_series(
            60.0, ensemble, TriangularShot(), duration=400.0, delta=0.5, rng=4
        )
        pred = ModelBasedPredictor(model, sample_interval=0.5, order=3)
        err = prediction_error(pred, series)
        mean_only = series.std / series.mean
        assert err < mean_only  # correlation exploited


class TestEvaluation:
    def test_report_fields(self):
        series = ar1_series()
        pred = EmpiricalPredictor(series, order=2)
        report = evaluate_predictor(pred, series, kind="empirical")
        assert report.order == 2
        assert report.kind == "empirical"
        assert report.error > 0

    def test_select_order_stops_on_increase(self):
        series = ar1_series(phi=0.7, n=3000)
        order, err = select_order_by_validation(
            lambda m: EmpiricalPredictor(series, order=m), series, max_order=8
        )
        assert 1 <= order <= 8
        assert err > 0

    def test_compare_predictors_rows(self, ensemble):
        model = PoissonShotNoiseModel(60.0, ensemble, TriangularShot())
        series = generate_rate_series(
            60.0, ensemble, TriangularShot(), duration=300.0, delta=0.5, rng=5
        )
        rows = compare_predictors(
            {0.5: series, 1.0: series.resample(2)}, model, max_order=4
        )
        assert len(rows) == 2
        assert rows[0].sample_interval == 0.5
        for row in rows:
            assert 0 < row.empirical_error < 1.0
            assert 0 < row.model_error < 1.0
