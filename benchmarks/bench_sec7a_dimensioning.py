"""Section VII-A — dimensioning, provisioning and the smoothing law.

Paper: with the Gaussian approximation, the link bandwidth for congestion
fraction epsilon is E[R] + F(epsilon) sigma; as the flow arrival rate
grows, the mean grows linearly but sigma only as sqrt(lambda), so the CoV
decays as 1/sqrt(lambda) and capacity need not scale linearly — the ISP
"gains in bandwidth by accounting for the smoothing of the traffic".
"""

from __future__ import annotations

import numpy as np
from conftest import print_header, run_once

from repro.applications import (
    bandwidth_savings,
    provision_capacity,
    smoothing_curve,
)
from repro.experiments import SCALED_TIMEOUT
from repro.flows import export_five_tuple_flows


def test_sec7a_smoothing_and_provisioning(benchmark, reference_trace):
    def build():
        flows = export_five_tuple_flows(
            reference_trace, timeout=SCALED_TIMEOUT
        )
        stats = flows.statistics(reference_trace.duration)
        factors = [0.25, 1.0, 4.0, 16.0, 64.0]
        return stats, smoothing_curve(stats, factors, epsilon=0.01)

    stats, points = run_once(benchmark, build)

    print_header("SECTION VII-A - lambda scaling: the smoothing of traffic")
    print(f"{'x lambda':>9s} {'mean (MB/s)':>12s} {'std (MB/s)':>11s} "
          f"{'CoV':>7s} {'capacity/mean':>14s}")
    for p in points:
        print(
            f"{p.arrival_factor:9.2f} {p.mean_rate / 1e6:12.3f} "
            f"{p.std / 1e6:11.3f} {p.cov:7.1%} {p.capacity_per_mean:14.3f}"
        )

    # CoV ~ 1/sqrt(lambda): exact by construction, verified end to end
    covs = np.array([p.cov for p in points])
    factors = np.array([p.arrival_factor for p in points])
    np.testing.assert_allclose(
        covs * np.sqrt(factors), covs[1] * np.sqrt(factors[1]), rtol=1e-9
    )
    # headroom ratio strictly decreasing: no linear capacity scaling needed
    ratios = [p.capacity_per_mean for p in points]
    assert all(a > b for a, b in zip(ratios, ratios[1:]))

    report = provision_capacity(stats, epsilon=0.01, shape_factor=1.8)
    saving = bandwidth_savings(stats, 16.0, epsilon=0.01, shape_factor=1.8)
    print(
        f"  1% congestion capacity now: {report.capacity_bps / 1e6:.2f} Mbps "
        f"(headroom {report.headroom_ratio:.2f}x)"
    )
    print(f"  capacity saved vs linear scaling at 16x demand: {saving:.1%}")
    assert 0.0 < saving < 0.5
