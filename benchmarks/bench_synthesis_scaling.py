"""Synthesis scaling — throughput and memory of the synthesis engine.

The synthesis-side twin of ``bench_engine_scaling.py`` (generation, PR 1)
and ``bench_measurement_scaling.py`` (measurement, PR 3): one full-rate
(``scale=1.0``) Table I OC-12 workload is synthesized by the frozen
legacy whole-trace path (``reference_synthesize_link_trace``: one RNG
stream, whole-capture materialisation, global argsort) and by the
streaming cell-sharded engine, and three claims are checked:

* **Speedup**: the engine beats the whole-trace reference end to end.
  The single-core floor (see ``MIN_SPEEDUP``) is purely algorithmic —
  cache-resident per-cell flow tables instead of DRAM-latency-bound
  gathers over million-flow arrays, a closed-form TCP round table
  instead of the round-synchronous loop, round-level capture-window
  pruning, introsort per cell + a run-merging stable sort, and packed
  two-word payload columns instead of 23-byte structured-record
  shuffles.  With >= 4 CPUs the floor rises to the 5x acceptance bar,
  since cells additionally fan out over the worker pool ("multi-worker
  streaming"); the emitted JSON records ``cpus`` and ``workers`` so the
  trajectory stays interpretable across hosts.
* **Memory**: streaming the same workload (synthesize → consume chunks)
  keeps the tracemalloc peak bounded by the active-flow carry plus one
  merge window — >= 3x below the whole-trace reference's peak.
* **Equivalence**: the engine's streamed chunks concatenate to exactly
  its materialised trace (bitwise, any chunk/workers), and reference vs
  engine agree distributionally (same laws, different draws).

The run emits the synthesis perf datapoint as ``BENCH_synthesis.json``
(CI uploads it as an artifact); set ``REPRO_BENCH_SYNTHESIS_JSON`` to
redirect it.  The datapoint records the selected execution backend
(``REPRO_BENCH_BACKEND``; defaults to ``process`` when the fan-out can
actually parallelise) and a per-stage wall-time breakdown
(``stages_s``: cell fan-out vs run merging) so regressions localise to
a stage instead of hiding in the end-to-end number.

Run directly (``python benchmarks/bench_synthesis_scaling.py``) or via
pytest (``pytest benchmarks/bench_synthesis_scaling.py -s``).
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path

import numpy as np
import pytest
from conftest import print_header, run_once

from repro.execution import (
    reset_run_health,
    reset_stage_timings,
    run_health,
    stage_timings,
)
from repro.kernels import HAVE_NUMBA
from repro.netsim import table_i_workload
from repro.synthesis import SynthesisEngine, reference_synthesize_link_trace

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Full-rate OC-12 interval length (seconds).  The paper's 262 Mbps link
#: emits ~23.5k packets/s, so 240 s is a ~5.6M-packet capture (>= 5M, the
#: acceptance operating point); quick mode shrinks it for CI smoke.
TABLE_I_ROW = 2
DURATION = 40.0 if QUICK else 240.0
SEED = 7

#: Streamed configuration raced against the reference.
#: ``REPRO_BENCH_WORKERS`` caps the fan-out (CI legs pin it) and
#: ``REPRO_BENCH_BACKEND`` picks the pool flavour; by default the bench
#: races the process backend whenever it can actually parallelise.
CHUNK = 200_000 if QUICK else 1_000_000
_CPUS = (
    len(os.sched_getaffinity(0))
    if hasattr(os, "sched_getaffinity")  # Linux; fall back elsewhere
    else (os.cpu_count() or 1)
)
WORKERS = min(int(os.environ.get("REPRO_BENCH_WORKERS", "8")), _CPUS)
BACKEND = os.environ.get("REPRO_BENCH_BACKEND") or (
    "process" if WORKERS > 1 else "thread"
)

#: Required end-to-end speedup.  On a single CPU only the algorithmic
#: wins apply (2.5x once the compiled kernels are live — numba present —
#: else the pure-NumPy floor); with >= 4 CPUs cell synthesis also fans
#: out over the worker pool (5x), and with >= 8 CPUs the full 8-worker
#: shared-memory acceptance bar of 6x applies.  Quick mode runs a
#: capture *below* the whole-trace path's memory cliff (its flow tables
#: still fit in cache), where the engine's advantage is structurally
#: small — the quick gate is a no-regression smoke check, the full-size
#: run is the perf claim.
if QUICK:
    MIN_SPEEDUP = 1.3 if _CPUS >= 4 else 1.0
elif _CPUS >= 8:
    MIN_SPEEDUP = 6.0
elif _CPUS >= 4:
    MIN_SPEEDUP = 5.0
elif HAVE_NUMBA:
    MIN_SPEEDUP = 2.5
else:
    MIN_SPEEDUP = 1.8

#: Required whole-trace/streamed peak-memory ratio.  Quick mode's short
#: capture spans only a handful of arrival cells, so the carry window is
#: a large fraction of the trace and the bound is structurally loose.
MIN_MEMORY_RATIO = 1.5 if QUICK else 3.0


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _peak_memory(fn) -> float:
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def _drain(stream) -> int:
    count = 0
    for block in stream:
        count += block.size
    return count


def test_synthesis_scaling(benchmark):
    workload = table_i_workload(TABLE_I_ROW, scale=1.0, duration=DURATION)
    kwargs = workload._synthesis_kwargs()

    def build():
        # reference first, as in bench_measurement_scaling: each path runs
        # the way it runs in production — the whole-trace synthesizer on
        # first-touch pages (its allocations are the capture itself), the
        # streamer on its own recycled small blocks
        reference, t_reference = _timed(
            lambda: reference_synthesize_link_trace(seed=SEED, **kwargs)
        )
        ref_packets = len(reference.trace)
        ref_rate = reference.trace.mean_rate_bps
        del reference
        stream = workload.synthesize_chunks(
            seed=SEED, chunk=CHUNK, workers=WORKERS, backend=BACKEND
        )
        reset_stage_timings()
        reset_run_health()
        engine_packets, t_engine = _timed(lambda: _drain(stream))
        stages = stage_timings()
        health = run_health()
        engine_bytes = stream.total_bytes
        peak_whole = _peak_memory(
            lambda: reference_synthesize_link_trace(seed=SEED, **kwargs)
        )
        peak_stream = _peak_memory(
            lambda: _drain(
                workload.synthesize_chunks(
                    seed=SEED, chunk=CHUNK, workers=WORKERS, backend=BACKEND
                )
            )
        )
        return (
            (engine_packets, engine_bytes, t_engine, stages, health),
            (ref_packets, ref_rate, t_reference),
            (peak_whole, peak_stream),
        )

    engine_res, ref_res, peaks = run_once(benchmark, build)
    engine_packets, engine_bytes, t_engine, stages, health = engine_res
    ref_packets, ref_rate, t_reference = ref_res
    peak_whole, peak_stream = peaks
    speedup = t_reference / t_engine
    memory_ratio = peak_whole / peak_stream

    print_header(
        f"SYNTHESIS SCALING - Table I row {TABLE_I_ROW} at scale 1.0, "
        f"{DURATION:g} s (~{engine_packets:,} packets), {_CPUS} cpu(s)"
        + ("  [quick mode; unset REPRO_BENCH_QUICK for >= 5M packets]"
           if QUICK else "")
    )
    print(f"  {'path':>44s} {'time (s)':>10s} {'packets/s':>12s}")
    rows = (
        ("reference (whole-trace, single stream)", t_reference, ref_packets),
        (f"engine chunk={CHUNK} workers={WORKERS} backend={BACKEND}",
         t_engine, engine_packets),
    )
    for label, t, n in rows:
        print(f"  {label:>44s} {t:10.2f} {n / t:12.0f}")
    for name in sorted(stages, key=stages.get, reverse=True):
        print(f"  {'stage ' + name:>44s} {stages[name]:10.2f} "
              f"{100.0 * stages[name] / t_engine:11.0f}%")
    print(f"  end-to-end speedup: {speedup:.1f}x (floor {MIN_SPEEDUP:g}x "
          f"at {_CPUS} cpu(s))")
    print(
        f"  peak synthesis memory: whole-trace {peak_whole / 1e6:.0f} MB"
        f" -> streamed {peak_stream / 1e6:.0f} MB"
        f" ({memory_ratio:.1f}x smaller)"
    )

    # record the datapoint before any gate can fail — a regression run is
    # exactly the one whose numbers must survive
    out_path = Path(
        os.environ.get("REPRO_BENCH_SYNTHESIS_JSON", "BENCH_synthesis.json")
    )
    out_path.write_text(json.dumps({
        "benchmark": "synthesis_scaling",
        "quick": QUICK,
        "workload": f"table-i-{TABLE_I_ROW}",
        "scale": 1.0,
        "duration_s": float(DURATION),
        "n_packets": int(engine_packets),
        "chunk_packets": int(CHUNK),
        "workers": int(WORKERS),
        "backend": BACKEND,
        "numba": bool(HAVE_NUMBA),
        "cpus": int(_CPUS),
        "reference_s": float(t_reference),
        "engine_s": float(t_engine),
        "stages_s": {name: float(secs) for name, secs in sorted(stages.items())},
        "speedup": float(speedup),
        "min_speedup": float(MIN_SPEEDUP),
        "peak_whole_mb": float(peak_whole / 1e6),
        "peak_stream_mb": float(peak_stream / 1e6),
        "memory_ratio": float(memory_ratio),
        # a perf datapoint that survived on retries or degraded
        # transport is not comparable: the events travel with it
        "retries": health.to_dict()["retries"],
        "degradations": health.to_dict()["degradations"],
    }, indent=2) + "\n")
    print(f"  wrote datapoint -> {out_path}")

    # the happy path must be genuinely happy: a datapoint built on
    # silent respawns or pickle fallbacks is measuring the wrong thing
    assert health.clean, f"resilience events during bench: {health.to_dict()}"

    # the engine's stream is bitwise its own materialised trace (the
    # chunk/worker invariance contract), checked on a capture small
    # enough to hold twice ...
    small = table_i_workload(TABLE_I_ROW, scale=1 / 32, duration=30.0)
    small_kwargs = small._synthesis_kwargs()
    materialised = SynthesisEngine().synthesize(3, **small_kwargs)
    streamed = np.concatenate(list(
        SynthesisEngine(chunk=4096, workers=2).synthesize_chunks(
            3, **small_kwargs
        )
    ))
    np.testing.assert_array_equal(materialised.trace.packets, streamed)
    # ... and the engine agrees with the legacy reference in distribution
    assert engine_packets == pytest.approx(ref_packets, rel=0.2)
    engine_rate = 8.0 * engine_bytes / DURATION
    assert engine_rate == pytest.approx(ref_rate, rel=0.2)
    # ... at the required throughput ...
    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP:g}x speedup, got {speedup:.1f}x"
    )
    # ... with peak memory governed by the carry, not the capture
    assert peak_stream * MIN_MEMORY_RATIO <= peak_whole, (
        f"streaming should bound memory: {peak_stream / 1e6:.0f} MB vs "
        f"{peak_whole / 1e6:.0f} MB"
    )


if __name__ == "__main__":
    raise SystemExit(
        pytest.main([__file__, "-q", "-s", "--benchmark-disable"])
    )
