"""Figure 2 — traffic modeled as a multiplexing of flows ("shots").

Paper: a cartoon of the model: flows arrive at T_n, transmit X_n(t - T_n),
and the link rate is the superposition.
Here: a small deterministic construction with the invariants checked
numerically (each shot integrates to its flow size; the total is the sum).
"""

from __future__ import annotations

import numpy as np
from conftest import print_header, run_once

from repro.experiments import fig2_shot_construction


def test_fig02_shot_noise_construction(benchmark):
    data = run_once(benchmark, lambda: fig2_shot_construction(n_flows=4))

    print_header("FIGURE 2 - shot-noise construction (4 flows)")
    for i, (t, s, d) in enumerate(
        zip(data.arrival_times, data.sizes, data.durations)
    ):
        print(f"  flow {i}: T = {t:5.2f} s  S = {s / 1e3:6.1f} kB  D = {d:5.2f} s")
    peak = data.total_rate.max()
    print(f"  total rate peak: {peak / 1e3:.1f} kB/s at "
          f"t = {data.grid[np.argmax(data.total_rate)]:.2f} s")

    np.testing.assert_allclose(
        data.total_rate, data.per_flow_rates.sum(axis=0)
    )
    for i in range(data.sizes.size):
        integral = np.trapezoid(data.per_flow_rates[i], data.grid)
        assert abs(integral / data.sizes[i] - 1.0) < 0.05
