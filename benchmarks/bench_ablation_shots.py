"""Ablation — shot shape: Theorem 3 and the variance factor sweep.

Not a single paper exhibit but the design choice DESIGN.md calls out: the
whole family of power shots changes only the variance *multiplier*
(b+1)^2/(2b+1), with the rectangular shot as the provable minimum.  The
benchmark verifies the bound both analytically (against quadrature) and
against Monte Carlo shot-noise simulation.
"""

from __future__ import annotations

import numpy as np
from conftest import print_header, run_once

from repro.core import (
    EmpiricalEnsemble,
    GenericShot,
    PoissonShotNoiseModel,
    PowerShot,
    variance_shape_factor,
)
from repro.generation import generate_rate_series


def test_ablation_shot_variance_factors(benchmark):
    gen = np.random.default_rng(0)
    sizes = gen.uniform(1e4, 1e5, 3000)
    durations = gen.uniform(1.0, 5.0, 3000)
    ensemble = EmpiricalEnsemble(sizes, durations)
    lam = 40.0
    powers = [0.0, 0.5, 1.0, 2.0, 4.0]

    def build():
        rows = []
        for b in powers:
            model = PoissonShotNoiseModel(lam, ensemble, PowerShot(b))
            simulated = generate_rate_series(
                lam, ensemble, PowerShot(b), duration=300.0, delta=0.05,
                rng=int(10 * b) + 1,
            )
            rows.append((b, model, simulated))
        return rows

    rows = run_once(benchmark, build)

    print_header("ABLATION - variance vs shot power (Theorem 3 sweep)")
    bound = rows[0][1].variance_lower_bound
    print(f"{'b':>5s} {'factor':>8s} {'analytic var/bound':>19s} "
          f"{'simulated var/bound':>20s}")
    for b, model, simulated in rows:
        print(
            f"{b:5.1f} {variance_shape_factor(b):8.4f} "
            f"{model.variance / bound:19.4f} "
            f"{simulated.variance / bound:20.4f}"
        )

    for b, model, simulated in rows:
        # Theorem 3: bound attained only at b = 0
        assert model.variance >= bound * (1.0 - 1e-12)
        # analytic factor matches the simulation (delta = 50 ms is small
        # relative to durations, so eq. (7) shrinkage is mild)
        assert simulated.variance == __import__("pytest").approx(
            model.variance, rel=0.2
        )
    # non-power profiles also respect the bound
    for profile in (lambda v: np.exp(2 * v), lambda v: (1 - v) ** 2 + 0.05):
        shot = GenericShot(profile)
        model = PoissonShotNoiseModel(lam, ensemble, shot)
        assert model.variance >= bound * (1.0 - 1e-9)
