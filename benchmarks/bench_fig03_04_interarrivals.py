"""Figures 3-4 — Poisson-ness of flow arrivals (Assumption 1).

Paper: qq-plots of flow inter-arrival times against the exponential
distribution and their lag correlograms, for 5-tuple (Fig 3) and /24
prefix (Fig 4) flows; both show a close exponential fit and negligible
correlation.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import print_header, run_once

from repro.experiments import SCALED_TIMEOUT, fig3_4_interarrivals
from repro.flows import export_flows
from repro.stats import exponentiality


@pytest.mark.parametrize(
    "figure,flow_kind", [("FIGURE 3", "five_tuple"), ("FIGURE 4", "prefix")]
)
def test_fig03_04_interarrival_poissonness(
    benchmark, reference_trace, figure, flow_kind
):
    def build():
        flows = export_flows(
            reference_trace, key=flow_kind, timeout=SCALED_TIMEOUT
        )
        return flows, fig3_4_interarrivals(flows)

    flows, data = run_once(benchmark, build)

    print_header(f"{figure} - inter-arrival times, {flow_kind} flows")
    print(f"  flows: {len(flows)}  mean inter-arrival: "
          f"{data.mean_interarrival * 1e3:.2f} ms")
    print("  qq-plot vs exponential (normalised quantiles):")
    idx = np.linspace(0, data.qq.probabilities.size - 1, 6).astype(int)
    for i in idx:
        print(
            f"    p = {data.qq.probabilities[i]:5.3f}  measured = "
            f"{data.qq.normalized_empirical[i]:6.3f}  exponential = "
            f"{data.qq.normalized_theoretical[i]:6.3f}"
        )
    print(f"  qq correlation: {data.qq.correlation:.5f}")
    rho_str = " ".join(f"{r:+.3f}" for r in data.autocorrelation[1:8])
    print(f"  autocorrelation lags 1-7: {rho_str}")

    report = exponentiality(flows.interarrival_times)
    print(f"  CoV of inter-arrivals: {report.cov:.3f} (exponential -> 1)")

    # paper conclusion: close to Poisson
    assert data.qq.correlation > 0.99
    assert np.all(np.abs(data.autocorrelation[1:]) < 0.15)
    assert 0.8 < report.cov < 1.25
