"""Sweep pre-filter — closed-form triage vs simulating every cell.

The capacity-planning sweep (:mod:`repro.sweep`) claims the moment-
superposition pre-filter settles most cells without running the packet-
level :class:`repro.network.NetworkEngine`.  This benchmark runs the
``abilene-single-failure-2x`` registry sweep three ways and checks the
claim end to end:

* **analytic only** (``simulate="none"``) — the closed form's own cost
  over the full 45-cell grid;
* **pre-filtered** (``simulate="marginal"``, the default) — the service
  as shipped: marginal cells simulated, the rest settled analytically;
* **exhaustive** (``simulate="all"``) — every cell through the engine,
  the counterfactual the pre-filter avoids and the ground truth for the
  soundness check.

Two gates: the pre-filter must settle at least half of the grid, and it
must be *sound* — no cell the closed form marked ``ok`` may be an SLA
breach in the exhaustive run.  The datapoint lands in
``BENCH_sweep.json`` (CI uploads it as an artifact); set
``REPRO_BENCH_SWEEP_JSON`` to redirect it.

Run directly (``python benchmarks/bench_sweep_prefilter.py``) or via
pytest (``pytest benchmarks/bench_sweep_prefilter.py -s``).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace
from pathlib import Path

import pytest
from conftest import print_header, run_once

from repro.pipeline import apply_quick_mode, default_registry
from repro.sweep import run_sweep

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

SCENARIO = "abilene-single-failure-2x"


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _sweep_spec(simulate: str):
    spec = apply_quick_mode(default_registry().get(SCENARIO))
    return replace(spec, sweep=replace(spec.sweep, simulate=simulate))


def test_sweep_prefilter(benchmark):
    def build():
        analytic, t_analytic = _timed(
            lambda: run_sweep(_sweep_spec("none"))
        )
        prefiltered, t_prefiltered = _timed(
            lambda: run_sweep(_sweep_spec("marginal"))
        )
        exhaustive, t_exhaustive = _timed(
            lambda: run_sweep(_sweep_spec("all"))
        )
        return (
            analytic, t_analytic,
            prefiltered, t_prefiltered,
            exhaustive, t_exhaustive,
        )

    (
        analytic, t_analytic,
        prefiltered, t_prefiltered,
        exhaustive, t_exhaustive,
    ) = run_once(benchmark, build)

    report = prefiltered.report
    truth = {cell.index: cell for cell in exhaustive.report.cells}
    speedup = t_exhaustive / t_prefiltered

    print_header(
        f"SWEEP PRE-FILTER - {SCENARIO}: {report.n_cells} cells "
        f"({len(report.demand_factors)} growth factors x "
        f"{report.failures} failures)"
        + ("  [quick mode; unset REPRO_BENCH_QUICK for the full run]"
           if QUICK else "")
    )
    print(f"  {'configuration':>28s} {'time (s)':>10s} {'simulated':>10s}")
    for label, t, result in (
        ("analytic only", t_analytic, analytic),
        ("pre-filtered (marginal)", t_prefiltered, prefiltered),
        ("exhaustive (all cells)", t_exhaustive, exhaustive),
    ):
        print(f"  {label:>28s} {t:10.2f} "
              f"{result.report.n_simulated:10d}")
    print(f"  pre-filter settled {report.n_prefiltered}/{report.n_cells} "
          f"cells analytically ({report.n_prefiltered / report.n_cells:.0%})"
          f", {speedup:.2f}x faster than exhaustive")

    # soundness against ground truth: every cell the closed form settled
    # as "ok" must be ok in the exhaustive engine run too
    missed = [
        cell.index
        for cell in report.cells
        if cell.method == "analytic"
        and cell.verdict == "ok"
        and truth[cell.index].verdict == "breach"
    ]
    print(f"  soundness: {len(missed)} analytically-cleared cell(s) "
          "breach in the exhaustive run")

    # record the datapoint before any gate can fail — a regression run
    # is exactly the one whose numbers must survive
    out_path = Path(
        os.environ.get("REPRO_BENCH_SWEEP_JSON", "BENCH_sweep.json")
    )
    out_path.write_text(json.dumps({
        "benchmark": "sweep_prefilter",
        "quick": QUICK,
        "scenario": SCENARIO,
        "n_cells": int(report.n_cells),
        "n_prefiltered": int(report.n_prefiltered),
        "n_simulated": int(report.n_simulated),
        "margin": float(report.margin),
        "sla_utilization": float(report.sla_utilization),
        "analytic_s": float(t_analytic),
        "prefiltered_s": float(t_prefiltered),
        "exhaustive_s": float(t_exhaustive),
        "speedup_vs_exhaustive": float(speedup),
        "breaches_prefiltered": len(report.breaches),
        "breaches_exhaustive": len(exhaustive.report.breaches),
        "missed_breaches": len(missed),
    }, indent=2) + "\n")
    print(f"  wrote datapoint -> {out_path}")

    # the tentpole's acceptance bar: at least half the grid settles
    # without touching the packet-level engine
    assert report.n_prefiltered * 2 >= report.n_cells, (
        f"pre-filter settled only {report.n_prefiltered} of "
        f"{report.n_cells} cells"
    )
    assert not missed, (
        f"pre-filter dropped breaching cell(s) {missed} — the analytic "
        "band is too narrow"
    )
    # the analytic-only pass must be cheap relative to any engine run
    assert report.n_simulated > 0 and t_analytic < t_exhaustive


if __name__ == "__main__":  # pragma: no cover - direct invocation
    pytest.main([__file__, "-s", "--benchmark-disable"])
