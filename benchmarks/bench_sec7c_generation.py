"""Section VII-C — generation of backbone traffic.

Paper: generating flows as Poisson with sizes/durations from measured
statistics and transmitting along the fitted shot reproduces the second-
order statistics of the real traffic; constant-rate (rectangular)
transmission only matches when the real shots are rectangles.

The benchmark closes the loop: measure a synthetic "real" trace, fit the
shot power, regenerate traffic from the fitted model, and compare the
CoV of real vs regenerated traffic for the fitted shot and for the naive
rectangular generator.
"""

from __future__ import annotations

from conftest import QUICK, print_header, run_once

from repro.core import PoissonShotNoiseModel, RectangularShot
from repro.experiments import DELTA, SCALED_TIMEOUT
from repro.flows import export_five_tuple_flows
from repro.generation import generate_rate_series
from repro.stats import RateSeries

#: Generated-path length; shorter in CI smoke mode (REPRO_BENCH_QUICK=1).
GENERATION_DURATION = 120.0 if QUICK else 240.0


def test_sec7c_generation_matches_measured_statistics(benchmark, reference_trace):
    def build():
        flows = export_five_tuple_flows(
            reference_trace, timeout=SCALED_TIMEOUT, keep_packet_map=True
        )
        measured = RateSeries.from_packets(
            reference_trace, DELTA, packet_mask=flows.packet_flow_ids >= 0
        )
        model = PoissonShotNoiseModel.from_flows(
            flows.sizes, flows.durations, reference_trace.duration
        )
        fit = model.fit_power(measured.variance)
        fitted = generate_rate_series(
            model.arrival_rate, model.ensemble, fit.shot,
            duration=GENERATION_DURATION, delta=DELTA, rng=1,
        )
        naive = generate_rate_series(
            model.arrival_rate, model.ensemble, RectangularShot(),
            duration=GENERATION_DURATION, delta=DELTA, rng=1,
        )
        return measured, fit, fitted, naive

    measured, fit, fitted, naive = run_once(benchmark, build)

    print_header("SECTION VII-C - regenerating the measured traffic")
    print(f"  fitted shot power b = {fit.power:.2f} (kappa = {fit.kappa:.2f})")
    print(f"  {'series':>22s} {'mean (kB/s)':>12s} {'CoV':>8s}")
    for name, series in (
        ("measured", measured),
        (f"generated b={fit.power:.2f}", fitted),
        ("generated b=0", naive),
    ):
        print(f"  {name:>22s} {series.mean / 1e3:12.1f} "
              f"{series.coefficient_of_variation:8.2%}")

    # means agree across the board (Corollary 1 is shape-free)
    assert fitted.mean == __import__("pytest").approx(measured.mean, rel=0.1)
    # fitted-shot generation reproduces the measured CoV better than the
    # naive constant-rate generator whenever the fit is non-rectangular
    err_fitted = abs(fitted.coefficient_of_variation
                     - measured.coefficient_of_variation)
    err_naive = abs(naive.coefficient_of_variation
                    - measured.coefficient_of_variation)
    print(f"  |CoV error| fitted: {err_fitted:.3%}   naive: {err_naive:.3%}")
    if fit.power > 0.3:
        assert err_fitted <= err_naive + 0.01
    assert err_fitted < 0.05  # within 5 CoV points of the real traffic
