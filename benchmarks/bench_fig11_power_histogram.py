"""Figure 11 — histogram of the fitted shot power b (5-tuple flows).

Paper: fitting b per 30-minute interval so the model variance matches the
measured one gives a histogram over [0, 8] with mean ~= 2 — parabolic
shots are, on average, the best power fit for 5-tuple flows.
"""

from __future__ import annotations

import numpy as np
from conftest import print_header, run_once

from repro.experiments import fig11_power_histogram


def test_fig11_fitted_power_histogram(benchmark, validation_points_5tuple):
    edges, share, mean_b = run_once(
        benchmark,
        lambda: fig11_power_histogram(
            validation_points_5tuple, bins=np.arange(0.0, 9.0)
        ),
    )

    print_header("FIGURE 11 - fitted power b per interval (5-tuple flows)")
    for lo, hi, pct in zip(edges[:-1], edges[1:], share):
        bar = "#" * int(round(pct / 4))
        print(f"  b in [{lo:3.1f}, {hi:3.1f}):  {pct:5.1f}%  {bar}")
    print(f"  mean b = {mean_b:.2f} (paper: ~2 for 5-tuple flows)")

    # the fitted powers live on the paper's support and average to a
    # superlinear shot; our TCP substrate lands in the lower part of the
    # paper's range (see EXPERIMENTS.md)
    powers = np.array([m.fitted_power for m in validation_points_5tuple])
    assert np.all((powers >= 0.0) & (powers < 8.0))
    assert 0.5 < mean_b < 4.0
    assert share.sum() == __import__("pytest").approx(100.0, abs=1.0)
