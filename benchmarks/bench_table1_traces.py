"""Table I — summary of OC-12 link traces (scaled reproduction).

Paper: seven Sprint OC-12 links, average utilisations 26-262 Mbps.
Here: the same seven links scaled by 1/32; the benchmark synthesises each
and checks the measured average rate lands on the scaled target.
"""

from __future__ import annotations

from conftest import print_header, run_once

from repro.experiments import build_table1
from repro.netsim import DEFAULT_SCALE, table_i_workloads


def test_table1_trace_summary(benchmark):
    workloads = table_i_workloads(duration=60.0)

    rows = run_once(benchmark, lambda: build_table1(workloads, seed=0))

    print_header(
        "TABLE I - summary of (scaled) OC-12 link traces "
        f"[scale = 1/{1/DEFAULT_SCALE:.0f}]"
    )
    print(f"{'Trace':34s} {'Length':>8s} {'Target':>9s} {'Measured':>9s} "
          f"{'Packets':>9s} {'Util':>6s}")
    for row in rows:
        print(
            f"{row.date:34s} {row.length_seconds:7.0f}s "
            f"{row.target_mbps:8.2f}M {row.measured_mbps:8.2f}M "
            f"{row.n_packets:9d} {row.utilization:6.1%}"
        )
    # paper shape: every link under 50% utilisation, rates spanning ~10x
    assert all(row.utilization < 0.5 for row in rows)
    measured = [row.measured_mbps for row in rows]
    assert max(measured) / min(measured) > 5.0
    assert all(abs(row.relative_error) < 0.25 for row in rows)
