"""Section VI-A — flow-definition aggregation sweep, up to routable prefixes.

Paper: defining flows by /24 destination prefix cuts the number of flows a
router must track by an order of magnitude versus 5-tuples, and "routable"
(FIB-entry) prefixes would cut further — while the model keeps working at
every aggregation level because it is flow-definition agnostic.

The benchmark measures, on one capture: tracked-flow counts for 5-tuple,
/24, /16 and a synthetic FIB (longest-prefix match), plus the model's CoV
accuracy at each level.
"""

from __future__ import annotations

from conftest import print_header, run_once

from repro.core import PoissonShotNoiseModel
from repro.experiments import DELTA, SCALED_TIMEOUT
from repro.flows import (
    RoutingTable,
    export_flows,
    export_routable_flows,
)
from repro.netsim import AddressSpace
from repro.stats import RateSeries


def test_sec6a_aggregation_levels(benchmark, reference_trace):
    space = AddressSpace()  # matches the workload's population
    table = RoutingTable.synthetic(space, coarse_fraction=0.5, rng=7)

    def build():
        rows = []
        configs = [
            ("5-tuple", dict(key="five_tuple")),
            ("/24 prefix", dict(key="prefix", prefix_length=24)),
            ("/16 prefix", dict(key="prefix", prefix_length=16)),
        ]
        for name, kwargs in configs:
            flows = export_flows(
                reference_trace, timeout=SCALED_TIMEOUT,
                keep_packet_map=True, **kwargs,
            )
            rows.append((name, flows))
        rows.append(
            (
                "routable (FIB)",
                export_routable_flows(
                    reference_trace, table, timeout=SCALED_TIMEOUT,
                    keep_packet_map=True,
                ),
            )
        )
        return rows

    rows = run_once(benchmark, build)

    print_header("SECTION VI-A - flow aggregation levels")
    print(f"  {'definition':>16s} {'flows':>7s} {'vs 5-tuple':>11s} "
          f"{'mean dur (s)':>13s} {'fitted b':>9s} {'model CoV err':>14s}")
    n_5tuple = len(rows[0][1])
    for name, flows in rows:
        mask = flows.packet_flow_ids >= 0
        series = RateSeries.from_packets(
            reference_trace, DELTA, packet_mask=mask
        )
        model = PoissonShotNoiseModel.from_flows(
            flows.sizes, flows.durations, reference_trace.duration
        )
        fit = model.fit_power(series.variance)
        err = (
            model.with_shot(fit.shot).coefficient_of_variation
            / series.coefficient_of_variation
            - 1.0
        )
        print(
            f"  {name:>16s} {len(flows):7d} {len(flows) / n_5tuple:11.2f} "
            f"{flows.durations.mean():13.2f} {fit.power:9.2f} {err:+14.1%}"
        )

    counts = [len(flows) for _, flows in rows]
    # aggregation is monotone: 5-tuple > /24 > /16; FIB between /24 and /16
    assert counts[0] > counts[1] > counts[2]
    assert counts[2] <= counts[3] <= counts[1]
