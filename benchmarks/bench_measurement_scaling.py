"""Measurement scaling — throughput and memory of the measurement engine.

The measurement-side twin of ``bench_engine_scaling.py``: one synthetic
capture is measured end-to-end (flow accounting → filtered rate series →
interarrival correlogram → EWMA parameter replay) by the pre-engine
reference implementations and by the streaming measurement engine, and
three claims are checked:

* **Speedup**: the engine pipeline is >= 10x faster than the reference
  pipeline (structured-dtype ``np.unique`` grouping, O(n·max_lag)
  autocovariance loop, per-flow Python EWMA replay) on the same trace
  (~1e6 packets by default; ``REPRO_BENCH_QUICK=1`` shrinks the capture
  for CI smoke).
* **Memory**: measuring the capture from disk with a small chunk keeps
  the tracemalloc peak bounded by the chunk size — >= 4x below measuring
  the whole file in one block.
* **Equivalence**: flows and rate series are bit-for-bit equal to the
  in-memory reference; FFT correlogram and closed-form EWMA match their
  loops to floating-point accuracy.

The run emits the measurement-side perf datapoint as
``BENCH_measurement.json`` (CI uploads it as an artifact); set
``REPRO_BENCH_MEASUREMENT_JSON`` to redirect it.  The datapoint records
the selected execution backend and a per-stage wall-time breakdown
(``stages_s``: shard fan-out, result apply, final flow assembly);
``REPRO_BENCH_WORKERS``/``REPRO_BENCH_BACKEND`` select the raced
configuration (CI's multi-core leg pins workers=4 on the shared-memory
process pool).

Run directly (``python benchmarks/bench_measurement_scaling.py``) or via
pytest (``pytest benchmarks/bench_measurement_scaling.py -s``).
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path

import numpy as np
import pytest
from conftest import print_header, run_once

from repro.execution import (
    reset_run_health,
    reset_stage_timings,
    run_health,
    stage_timings,
)
from repro.core import EmpiricalEnsemble, RectangularShot
from repro.generation import GenerationEngine
from repro.measurement import (
    MeasurementEngine,
    reference_export_flows,
    reference_ewma_replay,
)
from repro.stats import RateSeries, autocovariance_series
from repro.stats.estimators import replay_flow_statistics
from repro.trace import write_trace

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Target packet count of the measured capture.
N_PACKETS = 250_000 if QUICK else 1_200_000
DURATION = 120.0 if QUICK else 400.0
DELTA = 0.05
TIMEOUT = 60.0
MAX_LAG_CAP = 4096  # correlogram depth (capped so the direct loop stays sane)
SEED = 7

#: Engine configuration raced against the reference path.  Key-space
#: sharding (``workers``) is exercised for correctness by the test suite;
#: the race defaults to one shard because on a single host the
#: surrounding small numpy ops are GIL-bound and extra shards cost more
#: in partitioning than they return.  CI's multi-core leg overrides
#: ``REPRO_BENCH_WORKERS``/``REPRO_BENCH_BACKEND`` to race the
#: shared-memory process pool instead.
CHUNK = 200_000
_CPUS = (
    len(os.sched_getaffinity(0))
    if hasattr(os, "sched_getaffinity")  # Linux; fall back elsewhere
    else (os.cpu_count() or 1)
)
WORKERS = min(int(os.environ.get("REPRO_BENCH_WORKERS", "1")), _CPUS)
BACKEND = os.environ.get("REPRO_BENCH_BACKEND") or (
    "process" if WORKERS > 1 else "thread"
)

#: Required end-to-end speedup.  The acceptance bar is >= 10x on the
#: full ~1e6-packet capture; the shrunken quick-mode capture amortises
#: less fixed overhead, so its floor is lower.
MIN_SPEEDUP = 6.0 if QUICK else 10.0


def _build_trace():
    """A model-driven capture of ~N_PACKETS packets (fast to generate).

    The size law is mice-dominated (median 3 kB) so the capture carries a
    realistic flows-per-packet ratio — flow accounting and the per-flow
    EWMA replay see backbone-like work, not a handful of elephants.
    """
    gen = np.random.default_rng(42)
    n = 20_000
    sizes = gen.lognormal(np.log(3e3), 1.0, n)
    rates = gen.lognormal(np.log(25e3), 0.5, n)
    ensemble = EmpiricalEnsemble(sizes, sizes / rates)
    # ~ packets per flow from the packetizer's MSS split
    mean_packets = float(np.mean(np.maximum(np.ceil(sizes / 1460.0), 2.0)))
    arrival_rate = N_PACKETS / mean_packets / DURATION
    return GenerationEngine(chunk=DURATION / 8).packet_trace(
        arrival_rate,
        ensemble,
        RectangularShot(),
        DURATION,
        warmup=10.0,
        rng=SEED,
        name="measurement-bench",
    )


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _peak_memory(fn) -> float:
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def _reference_pipeline(trace, max_lag):
    """The pre-engine measurement hot path, end to end."""
    flows = reference_export_flows(
        trace, timeout=TIMEOUT, keep_packet_map=True
    )
    series = RateSeries.from_packets(
        trace, DELTA, packet_mask=flows.packet_flow_ids >= 0
    )
    acov = autocovariance_series(
        flows.interarrival_times, max_lag, method="direct"
    )
    ewma = reference_ewma_replay(flows, eps=0.01)
    return flows, series, acov, ewma


def _engine_pipeline(trace, max_lag):
    """The streaming engine path: one pass + FFT + closed-form EWMA."""
    result = MeasurementEngine(
        chunk=CHUNK, workers=WORKERS, backend=BACKEND
    ).measure_trace(trace, delta=DELTA, timeout=TIMEOUT)
    acov = autocovariance_series(
        result.flows.interarrival_times, max_lag, method="fft"
    )
    ewma = replay_flow_statistics(result.flows, eps=0.01)
    return result.flows, result.series, acov, ewma


def test_measurement_scaling(benchmark, tmp_path):
    trace = _build_trace()
    capture = tmp_path / "bench.rptr"
    write_trace(trace, capture)
    probe_flows = MeasurementEngine().account_flows(trace, timeout=TIMEOUT)
    max_lag = min(MAX_LAG_CAP, max(64, (len(probe_flows) - 1) // 2))

    def build():
        reference, t_reference = _timed(
            lambda: _reference_pipeline(trace, max_lag)
        )
        reset_stage_timings()
        reset_run_health()
        engine, t_engine = _timed(lambda: _engine_pipeline(trace, max_lag))
        stages = stage_timings()
        health = run_health()
        small_chunk = max(10_000, N_PACKETS // 40)
        peak_whole = _peak_memory(
            lambda: MeasurementEngine().measure_file(
                capture, delta=DELTA, timeout=TIMEOUT
            )
        )
        peak_chunked = _peak_memory(
            lambda: MeasurementEngine(chunk=small_chunk).measure_file(
                capture, delta=DELTA, timeout=TIMEOUT
            )
        )
        return (
            reference, engine, (t_reference, t_engine, stages, health),
            (peak_whole, peak_chunked), small_chunk,
        )

    reference, engine, times, peaks, small_chunk = run_once(benchmark, build)
    t_reference, t_engine, stages, health = times
    peak_whole, peak_chunked = peaks
    ref_flows, ref_series, ref_acov, ref_ewma = reference
    eng_flows, eng_series, eng_acov, eng_ewma = engine
    speedup = t_reference / t_engine

    print_header(
        f"MEASUREMENT SCALING - {len(trace):,} packets, "
        f"{len(ref_flows):,} flows, {len(ref_series):,} bins, "
        f"{max_lag:,} lags"
        + ("  [quick mode; unset REPRO_BENCH_QUICK for ~1e6 packets]"
           if QUICK else "")
    )
    print(f"  {'path':>42s} {'time (s)':>10s} {'packets/s':>12s}")
    rows = (
        ("reference (unique/loop/python-ewma)", t_reference),
        (f"engine chunk={CHUNK} workers={WORKERS} backend={BACKEND}",
         t_engine),
    )
    for label, t in rows:
        print(f"  {label:>42s} {t:10.2f} {len(trace) / t:12.0f}")
    for name in sorted(stages, key=stages.get, reverse=True):
        print(f"  {'stage ' + name:>42s} {stages[name]:10.2f} "
              f"{100.0 * stages[name] / t_engine:11.0f}%")
    print(f"  end-to-end speedup: {speedup:.1f}x")
    print(
        f"  peak file-measure memory: whole-trace {peak_whole / 1e6:.0f} MB"
        f" -> chunk={small_chunk:,} {peak_chunked / 1e6:.0f} MB"
        f" ({peak_whole / peak_chunked:.1f}x smaller)"
    )

    # record the datapoint before any gate can fail — a regression run is
    # exactly the one whose numbers must survive
    out_path = Path(
        os.environ.get("REPRO_BENCH_MEASUREMENT_JSON", "BENCH_measurement.json")
    )
    out_path.write_text(json.dumps({
        "benchmark": "measurement_scaling",
        "quick": QUICK,
        "n_packets": int(len(trace)),
        "n_flows": int(len(ref_flows)),
        "n_bins": int(len(ref_series)),
        "max_lag": int(max_lag),
        "chunk_packets": int(CHUNK),
        "workers": int(WORKERS),
        "backend": BACKEND,
        "cpus": int(_CPUS),
        "reference_s": float(t_reference),
        "engine_s": float(t_engine),
        "stages_s": {name: float(secs) for name, secs in sorted(stages.items())},
        "speedup": float(speedup),
        "peak_whole_mb": float(peak_whole / 1e6),
        "peak_chunked_mb": float(peak_chunked / 1e6),
        "small_chunk_packets": int(small_chunk),
        # a perf datapoint that survived on retries or degraded
        # transport is not comparable: the events travel with it
        "retries": health.to_dict()["retries"],
        "degradations": health.to_dict()["degradations"],
    }, indent=2) + "\n")
    print(f"  wrote datapoint -> {out_path}")

    # the happy path must be genuinely happy: a datapoint built on
    # silent respawns or pickle fallbacks is measuring the wrong thing
    assert health.clean, f"resilience events during bench: {health.to_dict()}"

    # the engine reproduces the reference measurement bit-for-bit ...
    np.testing.assert_array_equal(ref_flows.starts, eng_flows.starts)
    np.testing.assert_array_equal(ref_flows.sizes, eng_flows.sizes)
    np.testing.assert_array_equal(ref_flows.keys, eng_flows.keys)
    assert ref_flows.discarded_packets == eng_flows.discarded_packets
    np.testing.assert_array_equal(ref_series.values, eng_series.values)
    # ... matches the diagnostic loops to floating-point accuracy ...
    assert np.max(np.abs(ref_acov - eng_acov)) <= 1e-9 * max(ref_acov[0], 1.0)
    assert eng_ewma.mean_size == pytest.approx(ref_ewma.mean_size, rel=1e-9)
    assert eng_ewma.arrival_rate == pytest.approx(
        ref_ewma.arrival_rate, rel=1e-9
    )
    # ... at >= 10x the throughput ...
    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP:.0f}x speedup, got {speedup:.1f}x"
    )
    # ... with peak memory governed by the chunk, not the capture
    assert peak_chunked * 4.0 <= peak_whole, (
        f"chunking should bound memory: {peak_chunked / 1e6:.0f} MB vs "
        f"{peak_whole / 1e6:.0f} MB"
    )


if __name__ == "__main__":
    raise SystemExit(
        pytest.main([__file__, "-q", "-s", "--benchmark-disable"])
    )
