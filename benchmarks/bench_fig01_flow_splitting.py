"""Figure 1 — cumulative flow arrivals in one interval; boundary splitting.

Paper: the cumulative /24-flow arrival curve over a 30-minute interval is
linear except for an initial jump (~15,000 of 680,000 flows) caused by
flows split at the interval boundary.
Here: one scaled interval; the warm-up flows of the synthesiser play the
role of the previous interval's traffic.
"""

from __future__ import annotations

import numpy as np
from conftest import print_header, run_once

from repro.experiments import SCALED_TIMEOUT, fig1_flow_splitting
from repro.flows import export_prefix_flows


def test_fig01_cumulative_arrivals_and_split_excess(benchmark, reference_trace):
    def build():
        flows = export_prefix_flows(reference_trace, timeout=SCALED_TIMEOUT)
        return flows, fig1_flow_splitting(flows, reference_trace.duration)

    flows, data = run_once(benchmark, build)

    print_header("FIGURE 1 - cumulative number of flows during one interval")
    marks = np.linspace(0, data.times.size - 1, 7).astype(int)
    for i in marks:
        print(f"  t = {data.times[i]:7.1f} s   cumulative flows = {data.cumulative[i]:6d}")
    print("  zoom (first 1/30 of the interval):")
    zoom_marks = np.linspace(0, data.zoom_times.size - 1, 5).astype(int)
    for i in zoom_marks:
        print(
            f"  t = {data.zoom_times[i]:7.2f} s   cumulative flows = "
            f"{data.zoom_cumulative[i]:6d}"
        )
    excess = data.excess
    print(
        f"  head flows: {excess.head_count}  expected (steady): "
        f"{excess.expected_head_count:.0f}  excess: {excess.excess:.0f} "
        f"({excess.fraction_of_total:.2%} of {len(flows)} flows)"
    )
    # paper shape: a positive but marginal early excess (~2% of flows)
    assert excess.excess > 0
    assert excess.fraction_of_total < 0.15
    # arrival rate pretty constant afterwards: last 80% of the curve is
    # nearly linear (R^2 of a straight-line fit)
    tail = slice(data.times.size // 5, None)
    coeffs = np.polyfit(data.times[tail], data.cumulative[tail], 1)
    fit = np.polyval(coeffs, data.times[tail])
    residual = data.cumulative[tail] - fit
    r2 = 1.0 - residual.var() / data.cumulative[tail].var()
    print(f"  linearity of the steady part: R^2 = {r2:.4f}")
    assert r2 > 0.99
