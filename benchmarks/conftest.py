"""Shared fixtures for the per-figure/per-table benchmarks.

Heavy inputs (the 7-link validation sweep) are computed once per session
and reused by several benchmarks.  Every benchmark prints the rows/series
the corresponding paper exhibit reports, so `pytest benchmarks/
--benchmark-only -s` doubles as the reproduction report.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import cov_validation_points
from repro.netsim import medium_utilization_link

#: ``REPRO_BENCH_QUICK=1`` shrinks the heavy fixtures so a benchmark can
#: double as a CI smoke stage (shorter intervals, one seed per workload).
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Seeds per workload for the validation scatter (more points, more runtime).
VALIDATION_SEEDS = (0,) if QUICK else (0, 1)

#: Length (seconds) of the shared reference interval.
REFERENCE_DURATION = 60.0 if QUICK else 120.0


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


@pytest.fixture(scope="session")
def validation_points_5tuple():
    return cov_validation_points(
        flow_kind="five_tuple", seeds=VALIDATION_SEEDS, workers=2
    )


@pytest.fixture(scope="session")
def validation_points_prefix():
    return cov_validation_points(
        flow_kind="prefix", seeds=VALIDATION_SEEDS, workers=2
    )


@pytest.fixture(scope="session")
def reference_synthesis():
    """One medium-utilisation interval shared by the figure benches."""
    return medium_utilization_link(duration=REFERENCE_DURATION).synthesize(
        seed=42
    )


@pytest.fixture(scope="session")
def reference_trace(reference_synthesis):
    return reference_synthesis.trace


def run_once(benchmark, fn):
    """Run a benchmark body exactly once (workloads are too heavy for the
    default calibrating repetition) and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
