"""Figure 7 — the simple shot models (rectangular/triangular/power).

Paper: four shot shapes for a flow of size S and duration D: rectangular
(b=0), triangular (b=1), sublinear (b<1), superlinear (b>1).
Here: the normalised profiles plus the invariants behind them — unit
integral (constraint (5)) and the (b+1)^2/(2b+1) variance factor.
"""

from __future__ import annotations

import numpy as np
from conftest import print_header, run_once

from repro.core import PowerShot, variance_shape_factor
from repro.experiments import fig7_shot_shapes


def test_fig07_shot_shapes(benchmark):
    shapes = run_once(benchmark, fig7_shot_shapes)

    print_header("FIGURE 7 - power shot profiles g(v) and variance factors")
    v = np.linspace(0.0, 1.0, 101)
    grid_points = [0.0, 0.25, 0.5, 0.75, 1.0]
    header = "  b     " + "".join(f" g({p:4.2f})" for p in grid_points)
    print(header + "   (b+1)^2/(2b+1)")
    for b in sorted(shapes):
        shot = PowerShot(b)
        values = " ".join(f"{shot.profile(np.array([p]))[0]:7.3f}" for p in grid_points)
        print(f"  {b:4.2f}  {values}        {variance_shape_factor(b):7.4f}")

    for b, profile in shapes.items():
        assert np.trapezoid(profile, v) == (
            __import__("pytest").approx(1.0, rel=0.02)
        )
    # paper anchors
    assert variance_shape_factor(0.0) == 1.0
    assert abs(variance_shape_factor(1.0) - 4.0 / 3.0) < 1e-12
    assert abs(variance_shape_factor(2.0) - 9.0 / 5.0) < 1e-12
