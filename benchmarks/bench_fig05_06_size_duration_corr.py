"""Figures 5-6 — iid-ness of flow sizes and durations (Assumption 2).

Paper: the autocorrelation of the sequences {S_n} and {D_n} (in arrival
order) drops to ~zero after lag 0 for both flow definitions, supporting
the iid assumption — even though S and D of the *same* flow are strongly
dependent.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import print_header, run_once

from repro.experiments import SCALED_TIMEOUT, fig5_6_sequence_correlation
from repro.flows import export_flows
from repro.stats import cross_correlation


@pytest.mark.parametrize(
    "figure,flow_kind", [("FIGURE 5", "five_tuple"), ("FIGURE 6", "prefix")]
)
def test_fig05_06_sequence_correlograms(
    benchmark, reference_trace, figure, flow_kind
):
    def build():
        flows = export_flows(
            reference_trace, key=flow_kind, timeout=SCALED_TIMEOUT
        )
        return flows, fig5_6_sequence_correlation(flows)

    flows, data = run_once(benchmark, build)

    print_header(f"{figure} - serial correlation of flow sizes/durations, "
                 f"{flow_kind}")
    dur = " ".join(f"{r:+.3f}" for r in data.duration_autocorrelation[1:8])
    siz = " ".join(f"{r:+.3f}" for r in data.size_autocorrelation[1:8])
    print(f"  duration sequence lags 1-7: {dur}")
    print(f"  size     sequence lags 1-7: {siz}")
    same_flow = cross_correlation(
        np.log(flows.sizes), np.log(flows.durations)
    )
    print(f"  (same-flow log-size vs log-duration correlation: {same_flow:.2f})")

    # paper: correlation drops quickly to zero after lag 0.  Our /24
    # substrate keeps a mild short-lag correlation (hot-prefix flows
    # restart on similar schedules, see EXPERIMENTS.md), so the check is
    # "small at lag 1, near zero past lag 5".
    if flow_kind == "five_tuple":
        assert np.all(np.abs(data.duration_autocorrelation[1:]) < 0.25)
        assert np.all(np.abs(data.size_autocorrelation[1:]) < 0.25)
    else:
        assert abs(data.duration_autocorrelation[1]) < 0.55
        assert np.mean(np.abs(data.duration_autocorrelation[6:])) < 0.20
        assert np.mean(np.abs(data.size_autocorrelation[6:])) < 0.20
    # ... while S and D of one flow remain dependent (bigger flow, longer)
    assert same_flow > 0.3
