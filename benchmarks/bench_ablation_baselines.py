"""Ablation — related-work baselines on the same workload (section II).

Compares, on one synthetic backbone interval:

* our flow shot-noise model (fitted power),
* [3]'s constant-rate M/G/infinity collapse,
* the memoryless Poisson-packet model,
* and an ON/OFF heavy-tailed aggregate calibrated to the same mean —

against the measured variance/CoV.  The paper's related-work claims in
numbers: packet-level Markovian models underestimate burstiness; the
flow-level model with the right shot captures it.
"""

from __future__ import annotations

import numpy as np
from conftest import print_header, run_once

from repro.baselines import ConstantRateFlowModel, PoissonPacketModel
from repro.core import PoissonShotNoiseModel
from repro.experiments import DELTA, SCALED_TIMEOUT
from repro.flows import export_five_tuple_flows
from repro.stats import RateSeries


def test_ablation_baseline_comparison(benchmark, reference_trace):
    def build():
        flows = export_five_tuple_flows(
            reference_trace, timeout=SCALED_TIMEOUT, keep_packet_map=True
        )
        measured = RateSeries.from_packets(
            reference_trace, DELTA, packet_mask=flows.packet_flow_ids >= 0
        )
        ours = PoissonShotNoiseModel.from_flows(
            flows.sizes, flows.durations, reference_trace.duration
        )
        fit = ours.fit_power(measured.variance)
        ours_fitted = ours.with_shot(fit.shot)
        mg = ConstantRateFlowModel.from_flows(
            flows.sizes, flows.durations, reference_trace.duration
        )
        pkt = PoissonPacketModel.from_trace(reference_trace)
        return measured, ours_fitted, fit, mg, pkt

    measured, ours, fit, mg, pkt = run_once(benchmark, build)

    measured_cov = measured.coefficient_of_variation
    # flow-induced correlation persists at the 1 s scale where memoryless
    # packet variance (~ 1/Delta) has died off; compare both scales.  (On a
    # real OC-12 the packet rate is 32x ours and the packet model is low
    # even at 200 ms; the 1 s comparison removes that scale artifact.)
    coarse = measured.resample(5)  # 1 s bins
    coarse_cov = coarse.coefficient_of_variation
    rows = [
        ("measured (200 ms bins)", measured_cov),
        (f"shot-noise, fitted b={fit.power:.2f}", ours.coefficient_of_variation),
        ("shot-noise, rectangular bound",
         np.sqrt(ours.variance_lower_bound) / ours.mean),
        ("[3] constant-rate M/G/inf", mg.coefficient_of_variation),
        ("Poisson packets @200ms", pkt.coefficient_of_variation(DELTA)),
        ("measured (1 s bins)", coarse_cov),
        ("Poisson packets @1s", pkt.coefficient_of_variation(1.0)),
    ]

    print_header("ABLATION - baselines vs measured burstiness")
    print(f"  {'model':>32s} {'CoV':>8s} {'vs measured':>12s}")
    for name, cov in rows:
        print(f"  {name:>32s} {cov:8.2%} {cov / measured_cov - 1.0:+12.1%}")

    # fitted shot-noise matches by construction of the fit
    assert ours.coefficient_of_variation == __import__("pytest").approx(
        measured_cov, rel=0.02
    )
    # the memoryless packet model underestimates burstiness, decisively so
    # once flow correlation dominates (1 s bins)
    assert pkt.coefficient_of_variation(DELTA) < measured_cov
    assert pkt.coefficient_of_variation(1.0) < 0.6 * coarse_cov
    # the equal-rate collapse is off by far more than the fitted model
    mg_error = abs(mg.coefficient_of_variation / measured_cov - 1.0)
    ours_error = abs(ours.coefficient_of_variation / measured_cov - 1.0)
    assert mg_error > 5 * ours_error
