"""Figure 8 — autocorrelation coefficient of the total rate (Theorem 2).

Paper: rho(tau) over tau in [0, 400] ms for b = 0, 1, 2, computed from one
interval's measured flow (S, D) sample; the coefficient decreases slowly,
more slowly for /24 prefix flows (longer durations).
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import print_header, run_once

from repro.experiments import SCALED_TIMEOUT, fig8_rate_autocorrelation
from repro.flows import export_flows


@pytest.mark.parametrize("flow_kind", ["five_tuple", "prefix"])
def test_fig08_rate_autocorrelation(benchmark, reference_trace, flow_kind):
    def build():
        flows = export_flows(
            reference_trace, key=flow_kind, timeout=SCALED_TIMEOUT
        )
        return flows, fig8_rate_autocorrelation(
            flows, reference_trace.duration, max_lag=0.4, n_points=9
        )

    flows, (lags, curves) = run_once(benchmark, build)

    print_header(f"FIGURE 8 - autocorrelation of the total rate, {flow_kind}")
    print("  tau(ms)   " + "   ".join(f"b={b:g}" for b in sorted(curves)))
    for i, tau in enumerate(lags):
        row = "  ".join(f"{curves[b][i]:6.3f}" for b in sorted(curves))
        print(f"  {tau * 1e3:7.1f}  {row}")

    for b, rho in curves.items():
        assert rho[0] == pytest.approx(1.0, abs=1e-6)
        assert np.all(np.diff(rho) <= 1e-9)  # monotone decay
        assert rho[-1] > 0.5  # still high at 400 ms, as in the paper

    if flow_kind == "prefix":
        # paper: decay is slower for /24 flows (longer durations)
        five_tuple_flows = export_flows(
            reference_trace, key="five_tuple", timeout=SCALED_TIMEOUT
        )
        _, ft_curves = fig8_rate_autocorrelation(
            five_tuple_flows, reference_trace.duration, max_lag=0.4, n_points=9
        )
        assert curves[1.0][-1] > ft_curves[1.0][-1]
