"""Ablation — Assumption 1 sensitivity: non-Poisson flow arrivals.

The paper assumes homogeneous Poisson arrivals and mentions MAP/MMPP and
session-level arrivals as extensions (sections IV and VIII).  This
benchmark drives the *same* flow population with Poisson, bursty MMPP and
clustered session arrivals, and reports how far the (Poisson-based) model
CoV drifts from the measured CoV — quantifying how much Assumption 1
actually buys.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import print_header, run_once

from repro.experiments import cov_validation_points
from repro.netsim import (
    MMPPArrivals,
    PoissonArrivals,
    SessionArrivals,
    medium_utilization_link,
)


def test_ablation_arrival_process_sensitivity(benchmark):
    base = medium_utilization_link(duration=120.0)
    lam = base.arrival_rate
    scenarios = {
        "poisson": PoissonArrivals(lam),
        "mmpp 1:4 burst": MMPPArrivals(
            rates=(0.4 * lam, 1.6 * lam), mean_sojourns=(5.0, 5.0)
        ),
        "sessions x4": SessionArrivals(
            lam / 4.0, flows_per_session=4.0, think_time=1.0
        ),
    }

    def build():
        names = list(scenarios)
        workloads = [
            replace(base, name=name, arrivals=arrivals)
            for name, arrivals in scenarios.items()
        ]
        points = cov_validation_points(
            flow_kind="five_tuple", seeds=(5,), workloads=workloads
        )
        return list(zip(names, points))

    rows = run_once(benchmark, build)

    print_header("ABLATION - arrival-process sensitivity (Assumption 1)")
    print(f"  {'arrivals':>16s} {'measured CoV':>13s} {'model b=1':>10s} "
          f"{'rel err':>9s}")
    errors = {}
    for name, m in rows:
        rel = m.relative_error(1.0)
        errors[name] = abs(rel)
        print(f"  {name:>16s} {m.measured_cov:13.1%} "
              f"{m.model_cov[1.0]:10.1%} {rel:+9.1%}")

    # the model (built on Assumption 1) tracks Poisson traffic best;
    # bursty arrivals raise measured variability beyond it
    assert errors["poisson"] <= errors["mmpp 1:4 burst"] + 0.02
    poisson_meas = dict(rows)["poisson"].measured_cov
    mmpp_meas = dict(rows)["mmpp 1:4 burst"].measured_cov
    assert mmpp_meas > poisson_meas
