"""Engine scaling — throughput and memory of the generation engine.

Measures the chunked/vectorized engine against the original per-flow
Python loop (kept verbatim as
:func:`repro.generation.reference_rate_series`) on the same seed, so both
sides produce the *identical* ``RateSeries`` while only the execution
strategy differs.  Three claims are checked:

* **Speedup**: the engine is >= 10x faster than the reference loop at the
  benchmark's flow count (~1e6 flows with ``REPRO_BENCH_FULL=1``, ~2e5 in
  the default quick mode so CI smoke stays cheap).
* **Memory**: peak accumulation memory is bounded by the chunk size, not
  the horizon — a small chunk cuts the tracemalloc peak by >= 4x versus
  processing the horizon at once.
* **Determinism**: every engine configuration returns the reference
  output bit-for-bit.

Run directly (``python benchmarks/bench_engine_scaling.py``) or through
pytest (``pytest benchmarks/bench_engine_scaling.py -s``).
"""

from __future__ import annotations

import os
import time
import tracemalloc

import numpy as np
from conftest import print_header, run_once

from repro.core import EmpiricalEnsemble, TriangularShot
from repro.generation import GenerationEngine, reference_rate_series

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")

#: Target flow count of the scaling run.
N_FLOWS = 1_000_000 if FULL else 200_000
DURATION = 240.0
WARMUP = 5.0
DELTA = 0.2
SEED = 123


def _population() -> EmpiricalEnsemble:
    gen = np.random.default_rng(42)
    n = 20_000
    sizes = gen.lognormal(np.log(12e3), 1.0, n)
    rates = gen.lognormal(np.log(15e3), 0.5, n)
    return EmpiricalEnsemble(sizes, sizes / rates)


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _peak_memory(fn) -> float:
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def test_engine_scaling(benchmark):
    ensemble = _population()
    arrival_rate = N_FLOWS / (DURATION + WARMUP)
    shot = TriangularShot()
    kwargs = dict(duration=DURATION, delta=DELTA, warmup=WARMUP)

    def build():
        reference, t_reference = _timed(
            lambda: reference_rate_series(
                arrival_rate, ensemble, shot, rng=SEED, **kwargs
            )
        )
        chunked, t_chunked = _timed(
            lambda: GenerationEngine(chunk=10.0).rate_series(
                arrival_rate, ensemble, shot, rng=SEED, **kwargs
            )
        )
        threaded, t_threaded = _timed(
            lambda: GenerationEngine(chunk=10.0, workers=4).rate_series(
                arrival_rate, ensemble, shot, rng=SEED, **kwargs
            )
        )
        peak_whole = _peak_memory(
            lambda: GenerationEngine(chunk=None).rate_series(
                arrival_rate, ensemble, shot, rng=SEED, **kwargs
            )
        )
        peak_chunked = _peak_memory(
            lambda: GenerationEngine(chunk=2.0).rate_series(
                arrival_rate, ensemble, shot, rng=SEED, **kwargs
            )
        )
        return (
            reference,
            (chunked, threaded),
            (t_reference, t_chunked, t_threaded),
            (peak_whole, peak_chunked),
        )

    reference, engines, times, peaks = run_once(benchmark, build)
    t_reference, t_chunked, t_threaded = times
    peak_whole, peak_chunked = peaks
    n_generated = int(round(arrival_rate * (DURATION + WARMUP)))

    print_header(
        f"ENGINE SCALING - ~{n_generated:,} flows, "
        f"{int(DURATION / DELTA):,} bins"
        + ("" if FULL else "  [quick mode; REPRO_BENCH_FULL=1 for ~1e6 flows]")
    )
    print(f"  {'path':>34s} {'time (s)':>10s} {'flows/s':>12s}")
    rows = (
        ("reference per-flow loop", t_reference),
        ("engine chunk=10s", t_chunked),
        ("engine chunk=10s workers=4", t_threaded),
    )
    for label, t in rows:
        print(f"  {label:>34s} {t:10.2f} {n_generated / t:12.0f}")
    speedup = t_reference / t_chunked
    print(f"  speedup (chunked vs loop): {speedup:.1f}x")
    print(
        f"  peak accumulation memory: whole-horizon {peak_whole / 1e6:.0f} MB"
        f" -> chunk=2s {peak_chunked / 1e6:.0f} MB"
        f" ({peak_whole / peak_chunked:.1f}x smaller)"
    )

    # the engine reproduces the loop bit-for-bit ...
    for series in engines:
        np.testing.assert_array_equal(reference.values, series.values)
    # ... at >= 10x the throughput ...
    assert speedup >= 10.0, f"expected >= 10x speedup, got {speedup:.1f}x"
    # ... with peak memory governed by the chunk, not the horizon
    assert peak_chunked * 4.0 <= peak_whole, (
        f"chunking should bound memory: {peak_chunked / 1e6:.0f} MB vs "
        f"{peak_whole / 1e6:.0f} MB"
    )


if __name__ == "__main__":
    import pytest

    raise SystemExit(
        pytest.main([__file__, "-q", "-s", "--benchmark-disable"])
    )
