"""Interop scaling — out-of-core telemetry import and export throughput.

One synthetic flow archive (NetFlow v5 on disk, ~200k records / ~1M
expanded packets by default; ``REPRO_BENCH_QUICK=1`` shrinks it for CI
smoke) is pushed through the full operator-telemetry loop and three
claims are checked:

* **Out-of-core import**: fitting an archive at least 10x larger than
  the reader chunk keeps the tracemalloc peak bounded — >= 4x below
  importing the same archive in one whole-file chunk; what remains is
  the O(flows) carry table, not the packet expansion.
* **Round trip**: the model parameters measured from the imported
  archive match the parameters of the flows that were exported
  (``lambda`` and ``E[S]`` exactly, ``E[S^2/D]`` to the wire formats'
  millisecond quantization).
* **Throughput**: decode + expand + measure sustains a paper-scale
  rate (the OC-12 traces are ~5k flow records/s of telemetry; the
  floor here is two orders above that).

The run emits the interop perf datapoint as ``BENCH_interop.json`` (CI
uploads it as an artifact); set ``REPRO_BENCH_INTEROP_JSON`` to
redirect it.

Run directly (``python -m pytest benchmarks/bench_interop.py -s``) or
via the benchmark suite.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path

import numpy as np
import pytest
from conftest import print_header, run_once

from repro.interop import (
    FLOW_RECORD_DTYPE,
    open_import_stream,
    write_ipfix,
    write_netflow5,
)
from repro.measurement import MeasurementEngine
from repro.trace import PACKET_DTYPE

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Flow records in the archive (each expands to ~5 packets).
N_RECORDS = 40_000 if QUICK else 200_000
DURATION = 600.0
TIMEOUT = 8.0
DELTA = 0.2
SEED = 3

#: Import chunk, in flow records.  The memory gate requires the archive
#: on disk to be at least 10x the chunk's wire footprint.
CHUNK_RECORDS = max(1024, N_RECORDS // 64)

#: Decode + expand + measure floor, flow records per second.
MIN_RECORDS_PER_S = 20_000.0


def _build_records() -> np.ndarray:
    """A start-ordered archive of overlapping, backbone-ish flows."""
    rng = np.random.default_rng(SEED)
    records = np.zeros(N_RECORDS, dtype=FLOW_RECORD_DTYPE)
    records["start"] = np.sort(
        rng.uniform(0.0, DURATION - 30.0, N_RECORDS)
    )
    packets = rng.integers(2, 9, N_RECORDS)
    # keep every expanded intra-record gap (span/(n-1)) below the idle
    # timeout, so re-measuring reproduces the archive's flows one-for-one,
    # and every span above the 1 ms wire quantization so none collapses
    # to a zero-duration record on the NetFlow side
    spans = np.clip(
        rng.exponential(2.0, N_RECORDS), 2e-3, 0.9 * TIMEOUT * (packets - 1)
    )
    records["end"] = records["start"] + spans
    records["src_addr"] = rng.integers(1, 2**32 - 1, N_RECORDS,
                                       dtype=np.uint32)
    records["dst_addr"] = rng.integers(1, 2**32 - 1, N_RECORDS,
                                       dtype=np.uint32)
    records["src_port"] = rng.integers(1024, 65535, N_RECORDS,
                                       dtype=np.uint16)
    records["dst_port"] = rng.choice([80, 443, 53, 22, 8080], N_RECORDS)
    records["protocol"] = rng.choice([6, 17], N_RECORDS, p=[0.9, 0.1])
    records["packets"] = packets
    records["octets"] = packets * rng.integers(200, 1400, N_RECORDS)
    return records


def _import_and_fit(path, chunk):
    stream = open_import_stream(
        path, format="netflow5", chunk=chunk, order="start"
    )
    result = MeasurementEngine().measure_chunks(
        stream, delta=DELTA, timeout=TIMEOUT, duration=DURATION
    )
    return stream, result


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _peak_memory(fn) -> float:
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def test_interop_scaling(benchmark, tmp_path):
    records = _build_records()
    archive = tmp_path / "bench.nf5"

    def build():
        _, t_export = _timed(lambda: write_netflow5(records, archive))
        _, t_export_ipfix = _timed(
            lambda: write_ipfix(records, tmp_path / "bench.ipfix")
        )
        (stream, result), t_import = _timed(
            lambda: _import_and_fit(archive, CHUNK_RECORDS)
        )
        peak_chunked = _peak_memory(
            lambda: _import_and_fit(archive, CHUNK_RECORDS)
        )
        peak_whole = _peak_memory(
            lambda: _import_and_fit(archive, N_RECORDS)
        )
        return (
            stream, result,
            (t_export, t_export_ipfix, t_import),
            (peak_chunked, peak_whole),
        )

    stream, result, times, peaks = run_once(benchmark, build)
    t_export, t_export_ipfix, t_import = times
    peak_chunked, peak_whole = peaks

    archive_bytes = archive.stat().st_size
    chunk_wire_bytes = CHUNK_RECORDS * 48
    expanded_bytes = int(records["packets"].sum()) * PACKET_DTYPE.itemsize
    records_per_s = N_RECORDS / t_import
    stats = result.flows.statistics(DURATION)

    print_header(
        f"INTEROP SCALING - {N_RECORDS:,} flow records, "
        f"{stream.packets_emitted:,} expanded packets, "
        f"{archive_bytes / 1e6:.1f} MB on the wire"
        + ("  [quick mode; unset REPRO_BENCH_QUICK for 200k records]"
           if QUICK else "")
    )
    print(f"  export netflow5 : {t_export:8.2f} s "
          f"({N_RECORDS / t_export:12.0f} records/s)")
    print(f"  export ipfix    : {t_export_ipfix:8.2f} s "
          f"({N_RECORDS / t_export_ipfix:12.0f} records/s)")
    print(f"  import + fit    : {t_import:8.2f} s "
          f"({records_per_s:12.0f} records/s)")
    print(f"  archive/chunk ratio: {archive_bytes / chunk_wire_bytes:.0f}x "
          f"(chunk {CHUNK_RECORDS:,} records)")
    print(f"  peak import memory: chunked {peak_chunked / 1e6:.1f} MB, "
          f"whole-archive {peak_whole / 1e6:.1f} MB "
          f"({peak_whole / peak_chunked:.1f}x larger), "
          f"full expansion would be {expanded_bytes / 1e6:.1f} MB of "
          "packets alone")
    print(f"  fitted: lambda = {stats.arrival_rate:.1f}/s  "
          f"E[S] = {stats.mean_size:.0f} B  "
          f"E[S^2/D] = {stats.mean_square_size_over_duration:.4g} B^2/s")

    # record the datapoint before any gate can fail — a regression run
    # is exactly the one whose numbers must survive
    out_path = Path(
        os.environ.get("REPRO_BENCH_INTEROP_JSON", "BENCH_interop.json")
    )
    out_path.write_text(json.dumps({
        "benchmark": "interop_scaling",
        "quick": QUICK,
        "n_records": int(N_RECORDS),
        "n_packets_expanded": int(stream.packets_emitted),
        "archive_bytes": int(archive_bytes),
        "chunk_records": int(CHUNK_RECORDS),
        "archive_over_chunk": float(archive_bytes / chunk_wire_bytes),
        "export_netflow5_s": float(t_export),
        "export_ipfix_s": float(t_export_ipfix),
        "import_fit_s": float(t_import),
        "records_per_s": float(records_per_s),
        "peak_chunked_mb": float(peak_chunked / 1e6),
        "peak_whole_mb": float(peak_whole / 1e6),
        "memory_ratio": float(peak_whole / peak_chunked),
        "lambda_per_s": float(stats.arrival_rate),
        "mean_size_b": float(stats.mean_size),
        "mean_sq_size_over_duration": float(
            stats.mean_square_size_over_duration
        ),
    }, indent=2) + "\n")
    print(f"  wrote datapoint -> {out_path}")

    # the acceptance geometry: the archive dwarfs the chunk ...
    assert archive_bytes >= 10 * chunk_wire_bytes
    # ... and the chunked import's footprint stays bounded — >= 4x
    # below the whole-archive import (what remains is the O(flows)
    # carry/flow table, which no importer can avoid)
    assert peak_chunked * 4 <= peak_whole

    # round trip: every archived flow re-forms under the same timeout
    assert len(result.flows) == N_RECORDS
    assert stats.arrival_rate == pytest.approx(N_RECORDS / DURATION)
    assert stats.mean_size == pytest.approx(
        float(records["octets"].mean())
    )

    # throughput floor
    assert records_per_s >= MIN_RECORDS_PER_S
