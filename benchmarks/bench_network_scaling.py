"""Network scaling — link-sharded backbone simulation vs sequential runs.

The network-side sibling of ``bench_engine_scaling.py`` (generation),
``bench_measurement_scaling.py`` (measurement) and
``bench_synthesis_scaling.py`` (synthesis): one ECMP-routed demand matrix
over the Abilene backbone is simulated twice by the
:class:`repro.network.NetworkEngine` — once sequentially (one link at a
time) and once with links fanned out over the worker pool — and two
claims are checked:

* **Speedup**: link tasks are independent given the per-demand
  ``SeedSequence`` children, so with >= 4 CPUs the sharded run must beat
  the sequential one by ``MIN_SPEEDUP`` (the acceptance bar is 3x on a
  >= 10-link topology with the shared-memory process backend; quick mode
  only smoke-checks no regression).  ``REPRO_BENCH_WORKERS`` and
  ``REPRO_BENCH_BACKEND`` pin the raced configuration; the emitted JSON
  records both plus a ``stages_s`` routing-vs-links wall-time breakdown.
* **Equivalence**: the per-link packet counts, byte totals and rate
  series are bitwise identical between the two runs — ``workers`` (and
  ``chunk``) are pure execution strategy.

The run emits the network perf datapoint as ``BENCH_network.json`` (CI
uploads it as an artifact); set ``REPRO_BENCH_NETWORK_JSON`` to redirect
it.

Run directly (``python benchmarks/bench_network_scaling.py``) or via
pytest (``pytest benchmarks/bench_network_scaling.py -s``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest
from conftest import print_header, run_once

from repro.execution import (
    reset_run_health,
    reset_stage_timings,
    run_health,
    stage_timings,
)
from repro.netsim import table_i_workload
from repro.network import DemandMatrix, NetworkDemand, NetworkEngine, abilene

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Capture length per demand (seconds).  Quick mode shrinks it for CI.
DURATION = 15.0 if QUICK else 60.0
SEED = 7
CHUNK = 200_000

#: The demand matrix: six coast-to-coast Table I populations whose ECMP
#: routes spread over well beyond the acceptance bar of 10 links.
DEMAND_ODS = (
    (("seattle", "newyork"), 4),
    (("sunnyvale", "washington"), 6),
    (("losangeles", "atlanta"), 3),
    (("denver", "newyork"), 6),
    (("houston", "chicago"), 3),
    (("newyork", "losangeles"), 4),
)

#: Links the matrix must light up for the speedup claim to be meaningful.
MIN_SIMULATED_LINKS = 10

_CPUS = (
    len(os.sched_getaffinity(0))
    if hasattr(os, "sched_getaffinity")  # Linux; fall back elsewhere
    else (os.cpu_count() or 1)
)
WORKERS = min(int(os.environ.get("REPRO_BENCH_WORKERS", "4")), _CPUS)
BACKEND = os.environ.get("REPRO_BENCH_BACKEND") or (
    "process" if WORKERS > 1 else "thread"
)

#: On a single-CPU box both runs use workers=1 — "speedup" would compare
#: one sequential run against itself plus pool overhead, so the gate is
#: skipped outright (the datapoint still records both timings).
GATED = _CPUS >= 2 and WORKERS > 1

#: Required parallel-over-sequential speedup.  Per-link tasks are fully
#: independent and, on the process backend, dodge the GIL entirely, so
#: with >= 4 CPUs the acceptance bar of 3x applies to the full run;
#: quick mode's per-link tasks are milliseconds, so its gate (like the
#: other scaling benches) is a no-pathology smoke check, not a perf
#: claim.
if _CPUS >= 4 and not QUICK:
    MIN_SPEEDUP = 3.0
else:
    MIN_SPEEDUP = 0.7


def _demand_matrix() -> DemandMatrix:
    return DemandMatrix(
        NetworkDemand(a, b, table_i_workload(row, duration=DURATION))
        for (a, b), row in DEMAND_ODS
    )


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def test_network_scaling(benchmark):
    topology = abilene()

    def build():
        sequential, t_sequential = _timed(
            lambda: NetworkEngine(chunk=CHUNK, workers=1).simulate(
                topology, _demand_matrix(), routing="ecmp", seed=SEED
            )
        )
        reset_stage_timings()
        reset_run_health()
        sharded, t_sharded = _timed(
            lambda: NetworkEngine(
                chunk=CHUNK, workers=WORKERS, backend=BACKEND
            ).simulate(
                topology, _demand_matrix(), routing="ecmp", seed=SEED
            )
        )
        # keep only the engine's own stages: under the thread backend the
        # nested per-link synthesis/measurement timers also land in this
        # process's registry, summed across concurrent workers
        stages = {
            name: secs for name, secs in stage_timings().items()
            if name.startswith("network.")
        }
        return (
            sequential, t_sequential, sharded, t_sharded, stages,
            run_health(),
        )

    sequential, t_sequential, sharded, t_sharded, stages, health = run_once(
        benchmark, build
    )
    speedup = t_sequential / t_sharded
    carrying = sequential.simulated_links
    total_packets = sum(link.packet_count for link in carrying)

    print_header(
        f"NETWORK SCALING - Abilene ({topology.n_links} directed links), "
        f"{len(DEMAND_ODS)} ECMP demands over {DURATION:g} s, {_CPUS} cpu(s)"
        + ("  [quick mode; unset REPRO_BENCH_QUICK for the full run]"
           if QUICK else "")
    )
    print(f"  {'configuration':>34s} {'time (s)':>10s} {'links/s':>10s}")
    for label, t in (
        ("sequential (workers=1)", t_sequential),
        (f"link-sharded (workers={WORKERS}, {BACKEND})", t_sharded),
    ):
        print(f"  {label:>34s} {t:10.2f} {len(carrying) / t:10.2f}")
    for name in sorted(stages, key=stages.get, reverse=True):
        print(f"  {'stage ' + name:>34s} {stages[name]:10.2f} "
              f"{100.0 * stages[name] / t_sharded:9.0f}%")
    print(f"  simulated links: {len(carrying)} carrying "
          f"{total_packets:,} packets")
    if GATED:
        print(f"  speedup: {speedup:.2f}x (floor {MIN_SPEEDUP:g}x "
              f"at {_CPUS} cpu(s))")
    else:
        print(f"  speedup: {speedup:.2f}x (gate skipped: {_CPUS} cpu(s), "
              f"both runs used workers={WORKERS})")

    # record the datapoint before any gate can fail — a regression run is
    # exactly the one whose numbers must survive
    out_path = Path(
        os.environ.get("REPRO_BENCH_NETWORK_JSON", "BENCH_network.json")
    )
    out_path.write_text(json.dumps({
        "benchmark": "network_scaling",
        "quick": QUICK,
        "topology": "abilene",
        "n_directed_links": int(topology.n_links),
        "n_simulated_links": int(len(carrying)),
        "n_demands": len(DEMAND_ODS),
        "routing": "ecmp",
        "duration_s": float(DURATION),
        "total_packets": int(total_packets),
        "chunk_packets": int(CHUNK),
        "workers": int(WORKERS),
        "backend": BACKEND,
        "cpus": int(_CPUS),
        "sequential_s": float(t_sequential),
        "sharded_s": float(t_sharded),
        "stages_s": {name: float(secs) for name, secs in sorted(stages.items())},
        "speedup": float(speedup),
        # gated=False marks a datapoint where no parallelism was possible
        # (e.g. one CPU): speedup there is noise, not a perf claim
        "gated": bool(GATED),
        "min_speedup": float(MIN_SPEEDUP) if GATED else None,
        # a perf datapoint that survived on retries or degraded
        # transport is not comparable: the events travel with it
        "retries": health.to_dict()["retries"],
        "degradations": health.to_dict()["degradations"],
    }, indent=2) + "\n")
    print(f"  wrote datapoint -> {out_path}")

    # the happy path must be genuinely happy: a datapoint built on
    # silent respawns or pickle fallbacks is measuring the wrong thing
    assert health.clean, f"resilience events during bench: {health.to_dict()}"

    # the speedup claim is only meaningful on a genuinely multi-link run
    assert len(carrying) >= MIN_SIMULATED_LINKS

    # equivalence: workers are pure execution strategy — every link's
    # outputs are bitwise identical between the two runs
    for link, entry in sequential.links.items():
        other = sharded.links[link]
        assert entry.packet_count == other.packet_count
        assert entry.total_bytes == other.total_bytes
        if entry.series is not None:
            assert np.array_equal(entry.series.values, other.series.values)
            assert np.array_equal(entry.flows.starts, other.flows.starts)

    if GATED:
        assert speedup >= MIN_SPEEDUP, (
            f"link sharding speedup {speedup:.2f}x below the "
            f"{MIN_SPEEDUP:g}x floor"
        )


if __name__ == "__main__":  # pragma: no cover - direct invocation
    pytest.main([__file__, "-s", "--benchmark-disable"])
