"""Calibration scaling — out-of-core model fitting throughput and memory.

One synthetic NetFlow v5 archive (~150k flow records by default;
``REPRO_BENCH_QUICK=1`` shrinks it for CI smoke) is calibrated twice and
three claims are checked:

* **Out-of-core fitting**: streaming the archive through the
  sufficient-statistics accumulator in small chunks keeps the
  tracemalloc peak bounded — >= 4x below loading every size into memory
  and fitting the raw arrays; what remains is the fixed-size histogram
  state, not the sample.
* **Bitwise invariance**: the streamed report equals the in-memory
  report field-for-field — chunking is an implementation detail, not a
  statistical choice.
* **Throughput**: decode + accumulate + fit sustains a paper-scale
  rate (the OC-12 traces are ~5k flow records/s of telemetry; the
  floor here is an order above that).

The run emits the calibration perf datapoint as
``BENCH_calibration.json`` (CI uploads it as an artifact); set
``REPRO_BENCH_CALIBRATION_JSON`` to redirect it.

Run directly (``python -m pytest benchmarks/bench_calibration.py -s``)
or via the benchmark suite.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path

import numpy as np
from conftest import print_header, run_once

from repro.calibration import (
    calibrate_accumulator,
    calibrate_archive,
    calibrate_sizes,
)
from repro.interop import FLOW_RECORD_DTYPE, NetFlow5Reader, write_netflow5

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Flow records in the archive.
N_RECORDS = 30_000 if QUICK else 150_000
DURATION = 600.0
SEED = 3
RESTARTS = 2

#: Calibration chunk, in flow records.  The memory gate requires the
#: in-memory sample to be far larger than one streamed chunk.
CHUNK_RECORDS = max(1024, N_RECORDS // 64)

#: Decode + accumulate + fit floor, flow records per second.
MIN_RECORDS_PER_S = 50_000.0


def _build_records() -> np.ndarray:
    """A start-ordered archive: lognormal body plus Pareto elephants."""
    rng = np.random.default_rng(SEED)
    records = np.zeros(N_RECORDS, dtype=FLOW_RECORD_DTYPE)
    records["start"] = np.sort(rng.uniform(0.0, DURATION, N_RECORDS))
    records["end"] = records["start"] + rng.uniform(0.1, 5.0, N_RECORDS)
    records["src_addr"] = rng.integers(1, 2**32 - 1, N_RECORDS,
                                       dtype=np.uint32)
    records["dst_addr"] = rng.integers(1, 2**32 - 1, N_RECORDS,
                                       dtype=np.uint32)
    records["src_port"] = rng.integers(1024, 65535, N_RECORDS,
                                       dtype=np.uint16)
    records["dst_port"] = rng.choice([80, 443, 53], N_RECORDS)
    records["protocol"] = rng.choice([6, 17], N_RECORDS, p=[0.9, 0.1])
    body = rng.lognormal(np.log(3000.0), 0.9, N_RECORDS)
    tail = 2e4 * (1.0 - rng.random(N_RECORDS)) ** (-1.0 / 1.8)
    octets = np.where(rng.random(N_RECORDS) < 0.92, body,
                      np.minimum(tail, 5e6))
    records["octets"] = np.maximum(np.rint(octets), 40).astype(np.uint64)
    records["packets"] = np.maximum(records["octets"] // 1460, 1)
    return records


def _calibrate_streaming(archive):
    return calibrate_archive(
        archive,
        duration=DURATION,
        chunk=CHUNK_RECORDS,
        restarts=RESTARTS,
        seed=0,
    )


def _calibrate_in_memory(archive):
    """The naive baseline: decode the whole archive into memory, then
    fit the raw sample arrays in one shot."""
    reader = NetFlow5Reader(archive, chunk=N_RECORDS)
    records = np.concatenate(list(reader.record_chunks()))
    sizes = records["octets"].astype(np.float64)
    starts = records["start"].astype(np.float64)
    acc = calibrate_sizes(sizes, starts, duration=DURATION)
    return calibrate_accumulator(
        acc, source="in-memory", restarts=RESTARTS, seed=0
    )


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _peak_memory(fn) -> float:
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def test_calibration_scaling(benchmark, tmp_path):
    records = _build_records()
    archive = tmp_path / "bench.nf5"
    write_netflow5(records, archive)

    def build():
        streamed, t_stream = _timed(lambda: _calibrate_streaming(archive))
        in_memory, t_memory = _timed(lambda: _calibrate_in_memory(archive))
        peak_streamed = _peak_memory(lambda: _calibrate_streaming(archive))
        peak_memory = _peak_memory(lambda: _calibrate_in_memory(archive))
        return streamed, in_memory, (t_stream, t_memory), (
            peak_streamed, peak_memory,
        )

    streamed, in_memory, times, peaks = run_once(benchmark, build)
    t_stream, t_memory = times
    peak_streamed, peak_in_memory = peaks

    archive_bytes = archive.stat().st_size
    records_per_s = N_RECORDS / t_stream

    print_header(
        f"CALIBRATION SCALING - {N_RECORDS:,} flow records, "
        f"{archive_bytes / 1e6:.1f} MB on the wire"
        + ("  [quick mode; unset REPRO_BENCH_QUICK for 150k records]"
           if QUICK else "")
    )
    print(f"  streamed calibrate : {t_stream:8.2f} s "
          f"({records_per_s:12.0f} records/s, "
          f"chunk {CHUNK_RECORDS:,} records)")
    print(f"  in-memory calibrate: {t_memory:8.2f} s")
    print(f"  peak memory: streamed {peak_streamed / 1e6:.1f} MB, "
          f"in-memory {peak_in_memory / 1e6:.1f} MB "
          f"({peak_in_memory / peak_streamed:.1f}x larger)")
    print(f"  fitted: family = {streamed.family}  "
          f"lambda = {streamed.arrival_rate:.1f}/s  "
          f"E[S] = {streamed.mean_size:.0f} B")

    # record the datapoint before any gate can fail — a regression run
    # is exactly the one whose numbers must survive
    out_path = Path(
        os.environ.get(
            "REPRO_BENCH_CALIBRATION_JSON", "BENCH_calibration.json"
        )
    )
    out_path.write_text(json.dumps({
        "benchmark": "calibration_scaling",
        "quick": QUICK,
        "n_records": int(N_RECORDS),
        "archive_bytes": int(archive_bytes),
        "chunk_records": int(CHUNK_RECORDS),
        "streamed_s": float(t_stream),
        "in_memory_s": float(t_memory),
        "records_per_s": float(records_per_s),
        "peak_streamed_mb": float(peak_streamed / 1e6),
        "peak_in_memory_mb": float(peak_in_memory / 1e6),
        "memory_ratio": float(peak_in_memory / peak_streamed),
        "family": streamed.family,
        "lambda_per_s": float(streamed.arrival_rate),
        "mean_size_b": float(streamed.mean_size),
    }, indent=2) + "\n")
    print(f"  wrote datapoint -> {out_path}")

    # streaming's footprint stays bounded — >= 4x below holding the
    # sample in memory (what remains is the fixed histogram state plus
    # one decoded chunk)
    assert peak_streamed * 4 <= peak_in_memory

    # chunking is invisible: identical report modulo provenance fields
    a, b = streamed.to_dict(), in_memory.to_dict()
    for skip in ("source", "metadata", "backend", "workers"):
        a.pop(skip, None), b.pop(skip, None)
    assert a == b

    # throughput floor
    assert records_per_s >= MIN_RECORDS_PER_S
