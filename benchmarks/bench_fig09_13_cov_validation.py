"""Figures 9, 10, 12, 13 — model vs measured coefficient of variation.

Paper: scatter plots of model CoV against measured CoV over all 30-minute
intervals; points cluster by link utilisation (crosses < 50 Mbps,
triangles 50-125 Mbps, dots > 125 Mbps):

* Fig 9  — 5-tuple flows, triangular shots (b=1): often under-estimates;
* Fig 10 — 5-tuple flows, parabolic shots (b=2): good match;
* Fig 12 — /24 prefix flows, rectangular shots (b=0): good match;
* Fig 13 — /24 prefix flows, triangular shots (b=1).

The dashed lines of the figures are a +-20% error band.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import print_header, run_once

from repro.experiments import fig9_13_scatter


def summarise(scatter, label: str) -> None:
    print_header(label)
    print(f"{'cluster':>8s} {'points':>7s} {'measured CoV':>14s} "
          f"{'model CoV':>11s}")
    for cls in ("low", "medium", "high"):
        mask = np.array([c == cls for c in scatter.classes])
        if not mask.any():
            continue
        print(
            f"{cls:>8s} {int(mask.sum()):7d} "
            f"{scatter.measured[mask].mean():13.1%} "
            f"{scatter.modeled[mask].mean():10.1%}"
        )
    print(f"  within +-20% band: {scatter.within_20pct:.0%}   "
          f"mean relative error: {scatter.mean_relative_error:+.1%}")


@pytest.mark.parametrize("power,figure", [(1.0, "FIGURE 9"), (2.0, "FIGURE 10")])
def test_fig09_10_five_tuple_cov(
    benchmark, validation_points_5tuple, power, figure
):
    scatter = run_once(
        benchmark, lambda: fig9_13_scatter(validation_points_5tuple, power)
    )
    summarise(scatter, f"{figure} - CoV, 5-tuple flows, b = {power:g}")

    # paper shape 1: clusters ordered by utilisation (low util = most bursty)
    by_class = {
        cls: scatter.measured[np.array([c == cls for c in scatter.classes])]
        for cls in ("low", "medium", "high")
    }
    assert by_class["low"].mean() > by_class["medium"].mean() > (
        by_class["high"].mean()
    )
    # paper shape 2: most points within/near the 20% band
    assert scatter.within_20pct >= 0.5


def test_fig10_parabolic_beats_triangular_bias(
    benchmark, validation_points_5tuple
):
    """Paper: triangular under-estimates 5-tuple CoV; parabolic closes most
    of that gap (its mean error is less negative)."""
    tri, para = run_once(
        benchmark,
        lambda: (
            fig9_13_scatter(validation_points_5tuple, 1.0),
            fig9_13_scatter(validation_points_5tuple, 2.0),
        ),
    )
    print_header("FIGURE 9 vs 10 - shot-shape bias on 5-tuple flows")
    print(f"  triangular mean relative error: {tri.mean_relative_error:+.1%}")
    print(f"  parabolic  mean relative error: {para.mean_relative_error:+.1%}")
    assert tri.mean_relative_error < para.mean_relative_error


@pytest.mark.parametrize("power,figure", [(0.0, "FIGURE 12"), (1.0, "FIGURE 13")])
def test_fig12_13_prefix_cov(
    benchmark, validation_points_prefix, power, figure
):
    scatter = run_once(
        benchmark, lambda: fig9_13_scatter(validation_points_prefix, power)
    )
    summarise(scatter, f"{figure} - CoV, /24 prefix flows, b = {power:g}")

    by_class = {
        cls: scatter.measured[np.array([c == cls for c in scatter.classes])]
        for cls in ("low", "medium", "high")
    }
    assert by_class["low"].mean() > by_class["high"].mean()
    # paper: rectangular shots suffice at the prefix aggregation level
    if power == 0.0:
        assert abs(scatter.mean_relative_error) < 0.35
        assert scatter.within_20pct >= 0.4
