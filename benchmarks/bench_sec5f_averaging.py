"""Section V-F — variance of the measured rate vs the averaging interval.

Paper: the monitor's window Delta filters the rate; eq. (7) predicts the
measured variance from the Theorem 2 autocovariance, and "the longer the
averaging interval, the smaller the measured variance" (observed on the
Sprint data).  The benchmark re-measures one synthetic capture at several
Delta values and compares against eq. (7) evaluated on the exported flow
statistics — a direct, quantitative validation of the correction the
paper describes but does not tabulate.
"""

from __future__ import annotations

import numpy as np
from conftest import print_header, run_once

from repro.core import PoissonShotNoiseModel, PowerShot, averaged_variance_curve
from repro.experiments import SCALED_TIMEOUT
from repro.flows import export_five_tuple_flows
from repro.stats import RateSeries


def test_sec5f_variance_vs_averaging_interval(benchmark, reference_trace):
    deltas = np.array([0.1, 0.2, 0.5, 1.0, 2.0, 5.0])

    def build():
        flows = export_five_tuple_flows(
            reference_trace, timeout=SCALED_TIMEOUT, keep_packet_map=True
        )
        mask = flows.packet_flow_ids >= 0
        base = RateSeries.from_packets(
            reference_trace, deltas[0], packet_mask=mask
        )
        measured = [base.variance] + [
            base.resample(int(round(d / deltas[0]))).variance
            for d in deltas[1:]
        ]
        model = PoissonShotNoiseModel.from_flows(
            flows.sizes, flows.durations, reference_trace.duration
        )
        fit = model.fit_power(measured[0])
        predicted = averaged_variance_curve(
            model.arrival_rate, model.ensemble, fit.shot, deltas
        )
        return fit, np.array(measured), predicted, model

    fit, measured, predicted, model = run_once(benchmark, build)

    print_header("SECTION V-F - measured variance vs averaging interval")
    print(f"  shot fitted at Delta = 0.1 s: b = {fit.power:.2f}")
    print(f"  {'Delta (s)':>10s} {'measured var':>14s} {'eq.(7) var':>12s} "
          f"{'ratio':>7s}")
    for d, m, p in zip(np.array([0.1, 0.2, 0.5, 1.0, 2.0, 5.0]), measured, predicted):
        print(f"  {d:10.1f} {m:14.4g} {p:12.4g} {m / p:7.2f}")

    # the paper's observation: measured variance decreases with Delta
    assert np.all(np.diff(measured) < 0)
    # eq. (7) decreasing too, and below the instantaneous Gamma(0)
    assert np.all(np.diff(predicted) < 0)
    gamma0 = model.with_shot(PowerShot(fit.power)).variance
    assert np.all(predicted <= gamma0 * (1 + 1e-9))
    # eq. (7) tracks the measurement within a factor ~[0.5, 2] across a
    # 50x span of Delta (flow-sample noise + non-fluid packets remain)
    ratio = measured / predicted
    assert np.all((ratio > 0.45) & (ratio < 2.2))
