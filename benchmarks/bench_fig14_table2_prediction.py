"""Figure 14 and Table II — prediction of the total rate (section VII-B).

Paper Table II: normalised RMS one-step error (%) and selected order M for
prediction intervals theta of 2-60 s on a 30-minute interval, comparing
the predictor trained on measured rate samples against the one derived
from the model's Theorem 2 autocovariance.  The model-based predictor
matches the empirical one and wins at long horizons where rate samples
run out.

Figure 14: the measured 10 s rate series overlaid with both predictors.

Scaling: our intervals are 120 s (vs 30 min), so the paper's horizons
{2, 5, 10, 30, 60} s map to {1, 2, 4, 8, 16} s (same horizon/interval
ratios; see EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np
from conftest import print_header, run_once

from repro.core import PoissonShotNoiseModel, TriangularShot
from repro.experiments import SCALED_TIMEOUT, build_table2
from repro.flows import export_five_tuple_flows
from repro.netsim import medium_utilization_link
from repro.prediction import EmpiricalPredictor, ModelBasedPredictor
from repro.stats import RateSeries


def test_table2_prediction_errors(benchmark):
    workload = medium_utilization_link(duration=120.0)

    rows = run_once(
        benchmark,
        lambda: build_table2(
            workload,
            seed=3,
            prediction_intervals=(1.0, 2.0, 4.0, 8.0, 16.0),
            max_order=8,
        ),
    )

    print_header("TABLE II - prediction of the total rate (scaled horizons)")
    print(f"{'theta (s)':>10s} {'M emp':>6s} {'err emp':>8s} "
          f"{'M model':>8s} {'err model':>10s}")
    for row in rows:
        print(
            f"{row.sample_interval:10.1f} {row.empirical_order:6d} "
            f"{row.empirical_error:8.2%} {row.model_order:8d} "
            f"{row.model_error:10.2%}"
        )

    assert len(rows) >= 4
    for row in rows:
        # paper errors are ~4-6%; scaled traffic is burstier per sample,
        # so accept the same order of magnitude
        assert row.empirical_error < 0.30
        assert row.model_error < 0.30
        # model-based prediction is competitive (paper's point)
        assert row.model_error < row.empirical_error + 0.05
    # at the longest horizon the model predictor does not lose to the
    # sample-starved empirical one by more than noise
    last = rows[-1]
    assert last.model_error <= last.empirical_error * 1.3


def test_fig14_prediction_time_series(benchmark, reference_trace):
    """Figure 14: both predictors tracking the sampled rate.

    The paper's panel uses theta = 10 s on a 30-minute interval; the same
    horizon/interval ratio on our 120 s interval is theta ~= 0.7 s, so we
    use 1 s samples (120 points, like the paper's 180).
    """
    theta = 1.0

    def build():
        flows = export_five_tuple_flows(
            reference_trace, timeout=SCALED_TIMEOUT, keep_packet_map=True
        )
        series = RateSeries.from_packets(
            reference_trace, theta,
            packet_mask=flows.packet_flow_ids >= 0,
        )
        model = PoissonShotNoiseModel.from_flows(
            flows.sizes, flows.durations, reference_trace.duration,
            TriangularShot(),
        )
        model_pred = ModelBasedPredictor(model, theta, max_order=6)
        emp_pred = EmpiricalPredictor(series, max_order=6)
        return series, model_pred, emp_pred

    series, model_pred, emp_pred = run_once(benchmark, build)

    predictions_model = model_pred.predict_series(series.values)
    predictions_emp = emp_pred.predict_series(series.values)

    print_header(f"FIGURE 14 - rate prediction time series (theta = {theta:g} s)")
    print(f"{'t (s)':>7s} {'measured':>10s} {'model':>10s} {'empirical':>10s}"
          "   (kB/s)")
    offset_m = model_pred.order
    for k in range(0, min(12, predictions_model.size, predictions_emp.size)):
        t = (offset_m + k) * theta
        actual = series.values[offset_m + k]
        print(
            f"{t:7.1f} {actual / 1e3:10.1f} "
            f"{predictions_model[k] / 1e3:10.1f} "
            f"{predictions_emp[min(k, predictions_emp.size - 1)] / 1e3:10.1f}"
        )

    # both predictors track the measured series (correlation, not identity)
    actual_m = series.values[model_pred.order:]
    corr = np.corrcoef(predictions_model, actual_m)[0, 1]
    print(f"  model-prediction correlation with measured series: {corr:.2f}")
    assert corr > 0.2
