#!/usr/bin/env python
"""Capacity planning with the flow model (paper section VII-A).

Three planning exercises an ISP runs with only NetFlow-style statistics:

* provisioning a single link for a target congestion probability;
* growth planning — traffic smooths as sqrt(lambda), so capacity does NOT
  need to scale linearly with demand;
* what-if studies — a new application with larger transfers, or congested
  access networks stretching flow durations;
* whole-backbone planning: measure flows at the edges, route demands over
  a networkx topology, and predict the mean/variance on every internal
  link without monitoring it.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.applications import (
    BackboneNetwork,
    Demand,
    bandwidth_savings,
    provision_capacity,
    smoothing_curve,
    what_if,
)
from repro.experiments import SCALED_TIMEOUT
from repro.flows import export_five_tuple_flows
from repro.netsim import medium_utilization_link, table_i_workload


def measure_edge_statistics(seed: int):
    """One edge router's flow measurements (a synthetic interval)."""
    workload = medium_utilization_link(duration=120.0)
    trace = workload.synthesize(seed=seed).trace
    flows = export_five_tuple_flows(trace, timeout=SCALED_TIMEOUT)
    return flows.statistics(trace.duration)


def main() -> None:
    stats = measure_edge_statistics(seed=1)

    print("== single link provisioning ==")
    for epsilon in (0.05, 0.01, 0.001):
        report = provision_capacity(stats, epsilon, shape_factor=1.8)
        print(f"  P(congestion) <= {epsilon:6.3f}:  "
              f"{report.capacity_bps / 1e6:6.2f} Mbps "
              f"(headroom {report.headroom_ratio:.2f}x)")

    print("\n== growth planning: the smoothing law ==")
    print(f"  {'demand':>8s} {'mean Mbps':>10s} {'CoV':>7s} {'capacity/mean':>14s}")
    for point in smoothing_curve(stats, [1, 2, 4, 8, 16, 32], epsilon=0.01):
        print(f"  {point.arrival_factor:7.0f}x {8 * point.mean_rate / 1e6:10.2f} "
              f"{point.cov:7.1%} {point.capacity_per_mean:14.3f}")
    print(f"  capacity saved vs linear scaling at 16x: "
          f"{bandwidth_savings(stats, 16.0):.1%}")

    print("\n== what-if studies ==")
    scenarios = {
        "today": stats,
        "new app: 2x transfer sizes": what_if(stats, size_factor=2.0),
        "congested access: 3x durations": what_if(stats, duration_factor=3.0),
        "both + 50% more flows": what_if(
            stats, arrival_factor=1.5, size_factor=2.0, duration_factor=3.0
        ),
    }
    print(f"  {'scenario':>32s} {'mean Mbps':>10s} {'CoV':>7s} {'1% cap Mbps':>12s}")
    for name, scenario in scenarios.items():
        report = provision_capacity(scenario, 0.01, shape_factor=1.8)
        cov = report.std / report.mean_rate
        print(f"  {name:>32s} {8 * report.mean_rate / 1e6:10.2f} "
              f"{cov:7.1%} {report.capacity_bps / 1e6:12.2f}")

    print("\n== backbone-wide planning from edge measurements ==")
    net = BackboneNetwork()
    for pop in ("NYC", "CHI", "DAL", "SJC"):
        net.add_router(pop)
    capacity = table_i_workload(0).link_capacity_bps  # a scaled OC-12
    net.add_link("NYC", "CHI", capacity_bps=capacity)
    net.add_link("CHI", "DAL", capacity_bps=capacity)
    net.add_link("DAL", "SJC", capacity_bps=capacity)
    net.add_link("NYC", "SJC", capacity_bps=capacity, weight=5.0)

    for i, (src, dst) in enumerate(
        [("NYC", "SJC"), ("NYC", "DAL"), ("CHI", "SJC"), ("CHI", "DAL")]
    ):
        net.add_demand(Demand(src, dst, measure_edge_statistics(seed=10 + i)))

    print(f"  {'link':>12s} {'demands':>8s} {'util':>7s} {'CoV':>7s} "
          f"{'needed Mbps':>12s} {'ok?':>4s}")
    for report in net.link_report(epsilon=0.01):
        if report.n_demands == 0:
            continue
        a, b = report.link
        status = "OK" if not report.overloaded else "OVER"
        print(f"  {a + '->' + b:>12s} {report.n_demands:8d} "
              f"{report.utilization:7.1%} {report.cov:7.1%} "
              f"{report.required_capacity_bps / 1e6:12.2f} {status:>4s}")


if __name__ == "__main__":
    main()
