#!/usr/bin/env python
"""Capacity-planning sweep with `repro.sweep` (section VII, fleet-wide).

The operator's question: *which of my links breaches its SLA under any
single fibre cut, at 1x / 1.5x / 2x demand growth?*  The walkthrough
answers it three ways on the `abilene-single-failure-2x` registry
preset:

1. **Expand** — the sweep axes become 45 concrete cells (baseline + 14
   fibre failures, three growth factors), each a complete
   network-family `ScenarioSpec` with its own derived seed.
2. **Pre-filter** — the closed-form moment superposition settles most
   cells against the SLA band without synthesizing a single packet.
3. **Simulate the marginal rest** — only cells inside the band run the
   full `NetworkEngine`; the result is one ranked `SweepReport`.

Run:  python examples/capacity_sweep.py
"""

from __future__ import annotations

import dataclasses

from repro.pipeline import default_registry
from repro.sweep import expand_cells, run_sweep

#: Seconds simulated per marginal cell.  The analytic verdicts do not
#: depend on this; stretch it for production-like confidence.
DURATION = 15.0


def load_sweep_spec():
    spec = default_registry().get("abilene-single-failure-2x")
    return dataclasses.replace(
        spec, network=dataclasses.replace(spec.network, duration=DURATION)
    )


def show_cells(spec) -> None:
    print("=== 1. the grid: growth x single-fibre failures ===")
    cells = expand_cells(spec)
    print(f"{len(cells)} cells from "
          f"{len(spec.sweep.demand_factors)} growth factors x "
          "(baseline + 14 fibres); the first few:")
    for cell in cells[:4]:
        print(f"  #{cell.index:03d}  {cell.label}  (seed {cell.seed})")
    # every cell is an ordinary scenario: re-run any of them directly
    # with run_scenario(cell.spec) and get the sweep's numbers, bitwise
    print(f"  ... cell specs are plain ScenarioSpecs "
          f"(family {cells[0].spec.family!r})\n")


def run_and_rank(spec) -> None:
    print("=== 2+3. pre-filter, simulate the marginal band, rank ===")
    result = run_sweep(spec)
    report = result.report
    print(f"{report.n_prefiltered}/{report.n_cells} cells settled by the "
          f"closed form; {report.n_simulated} simulated\n")
    print(report.table())

    print("\nworst link per failure case (top 5):")
    worst = sorted(
        report.worst_per_failure().items(),
        key=lambda item: -item[1].worst_ratio,
    )
    for label, cell in worst[:5]:
        a, b = cell.worst_link
        print(f"  {label:<26} -> {a}->{b} at {cell.worst_ratio:.2f}x "
              f"SLA (x{cell.factor:g} growth, {cell.method})")

    print("\nheadroom per growth step:")
    for factor, headroom in report.headroom_per_factor().items():
        verdict = "ok" if headroom > 0 else "BREACHES"
        print(f"  x{factor:<4g} {headroom:+8.1%}  [{verdict}]")


def main() -> None:
    spec = load_sweep_spec()
    show_cells(spec)
    run_and_rank(spec)


if __name__ == "__main__":
    main()
