#!/usr/bin/env python
"""Fit the paper's model to operator telemetry with `repro.interop`.

The paper's model was fitted to real backbone measurements; this
walkthrough closes the loop for the reproduction.  A synthetic Table I
trace stands in for the operator's link (swap in your own archive and
skip step 1):

1. **Export** — measure the link and write its flow table out as a
   NetFlow v5 archive, the way a router's exporter would.
2. **Import + fit** — stream the archive back in chunks through
   `open_import_stream`, re-apply the paper's idle-timeout flow
   semantics in `MeasurementEngine.measure_chunks`, and fit
   `lambda` / `E[S]` / `E[S^2/D]`.
3. **Compare** — the fitted parameters match the native measurement
   (durations to the wire's 1 ms quantization).
4. **Pipeline** — the same import runs as a registry scenario
   (`real-trace-netflow5`) through the full fit -> generate ->
   validate chain.

Run:  python examples/operator_telemetry.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.interop import flow_records_from_flowset, open_import_stream, write_netflow5
from repro.measurement import MeasurementEngine
from repro.netsim.workloads import table_i_workloads
from repro.pipeline import default_registry, run_scenario
from repro.trace import write_trace

DURATION = 20.0
TIMEOUT = 8.0
LINK_CAPACITY = 622.08e6  # OC-12, as in the paper's traces


def export_archive(workdir: Path) -> tuple[Path, object]:
    print("=== 1. export: the link's flow table as NetFlow v5 ===")
    trace = table_i_workloads(duration=DURATION)[3].synthesize(seed=11).trace
    rptr = workdir / "link.rptr"
    write_trace(trace, rptr)

    measured = MeasurementEngine().measure_file(
        rptr, delta=0.2, timeout=TIMEOUT
    )
    records = flow_records_from_flowset(measured.flows)
    archive = workdir / "link.nf5"
    written = write_netflow5(records, archive)
    print(f"{written} flow records -> {archive.name} "
          f"({archive.stat().st_size / 1e3:.1f} kB on the wire)\n")
    return archive, measured


def import_and_fit(archive: Path, measured) -> None:
    print("=== 2+3. import the archive, refit, compare ===")
    stream = open_import_stream(
        archive, link_capacity=LINK_CAPACITY, chunk=4096
    )
    again = MeasurementEngine().measure_chunks(
        stream, delta=0.2, timeout=TIMEOUT, duration=DURATION
    )
    print(f"streamed {stream.records_read} records as "
          f"{stream.packets_emitted} expanded packets "
          f"(format {stream.format!r})")

    ref = measured.flows.statistics(DURATION)
    got = again.flows.statistics(DURATION)
    print(f"{'':14}{'native':>12}{'via NetFlow':>14}")
    print(f"{'flows':14}{ref.flow_count:>12}{got.flow_count:>14}")
    print(f"{'lambda /s':14}{ref.arrival_rate:>12.2f}"
          f"{got.arrival_rate:>14.2f}")
    print(f"{'E[S] bytes':14}{ref.mean_size:>12.0f}{got.mean_size:>14.0f}")
    print(f"{'E[S^2/D]':14}{ref.mean_square_size_over_duration:>12.4g}"
          f"{got.mean_square_size_over_duration:>14.4g}")
    print("lambda and E[S] are exact; E[S^2/D] carries the wire's 1 ms\n"
          "duration quantization\n")


def run_pipeline(archive: Path) -> None:
    print("=== 4. the same import as a registry scenario ===")
    spec = default_registry().get("real-trace-netflow5").with_overrides(
        ingest={"path": str(archive), "link_capacity_bps": LINK_CAPACITY},
    )
    result = run_scenario(spec)
    summary = result.ingest.summary()
    print(f"imported {summary['records']} records / "
          f"{summary['packets']} packets from {summary['path']}")
    print(f"mean rate {summary['mean_rate_bps'] / 1e6:.2f} Mbit/s, "
          f"utilization {summary['utilization']:.3%} of OC-12")
    report = result.report()
    print(f"report stages: {', '.join(report['stages'])}")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        archive, measured = export_archive(workdir)
        import_and_fit(archive, measured)
        run_pipeline(archive)


if __name__ == "__main__":
    main()
