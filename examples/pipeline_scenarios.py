#!/usr/bin/env python
"""Scenario families the pre-pipeline API could not express.

Four things in one example:

1. run registry scenarios in parallel over the engine's worker pool —
   Table I presets next to multi-class, diurnal-ramp and anomaly
   scenarios;
2. author a custom spec in code (a flood on a diurnally-ramped link)
   and round-trip it through JSON — the exact file format
   ``python -m repro run <spec.json>`` consumes;
3. read the typed validation reports the pipeline produces;
4. measure a written trace file chunk by chunk with the streaming
   measurement engine — bounded memory, bit-for-bit identical results.

Run:  python examples/pipeline_scenarios.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.measurement import MeasurementEngine
from repro.pipeline import (
    AnomalySpec,
    ArrivalSpec,
    ScenarioSpec,
    ValidationSpec,
    WorkloadSpec,
    default_registry,
    run_scenario,
    run_scenarios,
)
from repro.trace import write_trace


def main() -> None:
    registry = default_registry()

    # -- 1. a parallel sweep over registry scenarios ----------------------
    names = ["low", "medium", "high", "mice-elephants", "diurnal-ramp"]
    results = run_scenarios(
        [registry.get(name) for name in names], workers=4
    )
    print("scenario           measured   fitted    band")
    for result in results:
        report = result.validation
        print(f"{report.scenario:<18s} {report.measured_cov:8.1%} "
              f"{report.fitted_cov:8.1%}    "
              f"{'ok' if report.within_band else 'MISS'}")

    # -- 2. a custom spec: flood on a diurnally ramped link ---------------
    spec = ScenarioSpec(
        name="diurnal-flood",
        description="DoS flood riding a time-of-day lambda ramp",
        seed=11,
        workload=WorkloadSpec(
            preset="low",
            arrivals=ArrivalSpec(kind="diurnal", relative_amplitude=0.4),
        ),
        anomaly=AnomalySpec(
            kind="flood", start=45.0, duration=20.0, rate_bytes_per_s=300e3
        ),
        validation=ValidationSpec(detect_anomalies=True),
    )

    # specs are plain data: JSON out, JSON in, identical spec back
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "diurnal_flood.json"
        spec.to_file(path)
        assert ScenarioSpec.from_file(path) == spec
        print(f"\nspec round-tripped through {path.name}; run it with:\n"
              f"  python -m repro run {path.name}")

    # -- 3. run it and read the report ------------------------------------
    result = run_scenario(spec)
    report = result.validation
    print(f"\n{spec.name}: measured CoV {report.measured_cov:.1%}, "
          f"{len(report.anomalies)} anomaly event(s)")
    for event in report.anomalies:
        print(f"  {event.kind} at t = "
              f"{event.start_time(report.anomaly_delta_s):.1f} s for "
              f"{event.n_samples * report.anomaly_delta_s:.1f} s "
              f"(peak z = {event.peak_z:+.1f})")

    # -- 4. chunked measurement of a written trace file -------------------
    # the streaming engine measures captures straight off disk: only one
    # chunk (plus the open-flow carry table) is ever in memory, and the
    # result is bit-for-bit what the in-memory stages compute
    with tempfile.TemporaryDirectory() as tmp:
        capture = Path(tmp) / "capture.rptr"
        write_trace(result.trace, capture)
        engine = MeasurementEngine(chunk=5_000, workers=2)
        measured = engine.measure_file(capture, delta=0.2, timeout=8.0)
        in_memory = result.accounting.flows
        assert np.array_equal(measured.flows.sizes, in_memory.sizes)
        print(f"\nstreamed {measured.packet_count} packets from "
              f"{capture.name} in 5k-packet chunks: "
              f"{len(measured.flows)} flows, measured CoV "
              f"{measured.series.coefficient_of_variation:.1%} "
              "(identical to the in-memory pipeline)")


if __name__ == "__main__":
    main()
