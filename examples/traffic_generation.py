#!/usr/bin/env python
"""Backbone traffic generation for simulators (paper section VII-C).

Calibrate the model on a "real" capture, then generate synthetic traffic
with the same statistics — both as a fluid rate path and as a full packet
trace written to the binary capture format.  The key paper insight: flows
must transmit along the *fitted shot*, not at a constant rate, or the
generated traffic is too smooth.

Run:  python examples/traffic_generation.py
"""

from __future__ import annotations

import os
import tempfile

from repro.core import PoissonShotNoiseModel, RectangularShot
from repro.experiments import DELTA, SCALED_TIMEOUT
from repro.flows import export_five_tuple_flows
from repro.generation import (
    GenerationEngine,
    generate_packet_trace,
    generate_rate_series,
)
from repro.netsim import medium_utilization_link
from repro.stats import RateSeries
from repro.trace import read_trace, write_trace


def main() -> None:
    # -- calibrate on a measured capture ---------------------------------
    workload = medium_utilization_link(duration=120.0)
    real = workload.synthesize(seed=5).trace
    flows = export_five_tuple_flows(
        real, timeout=SCALED_TIMEOUT, keep_packet_map=True
    )
    measured = RateSeries.from_packets(
        real, DELTA, packet_mask=flows.packet_flow_ids >= 0
    )
    model = PoissonShotNoiseModel.from_flows(
        flows.sizes, flows.durations, real.duration
    )
    fit = model.fit_power(measured.variance)
    print(f"calibration: lambda = {model.arrival_rate:.1f}/s, "
          f"fitted shot power b = {fit.power:.2f}")
    print(f"measured: mean = {measured.mean / 1e3:.1f} kB/s, "
          f"CoV = {measured.coefficient_of_variation:.2%}\n")

    # -- fluid generation: right shot vs naive constant rate -------------
    # chunk/workers route through the generation engine: bounded memory,
    # parallel accumulation, same output bit-for-bit for any setting.
    for shot, label in ((fit.shot, f"fitted b={fit.power:.2f}"),
                        (RectangularShot(), "naive constant-rate")):
        generated = generate_rate_series(
            model.arrival_rate, model.ensemble, shot,
            duration=240.0, delta=DELTA, rng=1, chunk=30.0, workers=2,
        )
        print(f"generated ({label:22s}): mean = {generated.mean / 1e3:7.1f} kB/s, "
              f"CoV = {generated.coefficient_of_variation:.2%}")

    # -- long-horizon fluid generation in bounded memory ------------------
    engine = GenerationEngine(chunk=60.0, workers=2)
    long_series = engine.rate_series_streamed(
        model.arrival_rate, model.ensemble, fit.shot,
        duration=1800.0, delta=DELTA, seed=3,
    )
    print(f"\nstreamed 30-minute path: mean = {long_series.mean / 1e3:.1f} kB/s, "
          f"CoV = {long_series.coefficient_of_variation:.2%} "
          f"({len(long_series)} bins, memory bounded by the 60 s chunk)")

    # -- packet-level generation + capture round trip --------------------
    trace = generate_packet_trace(
        model.arrival_rate, model.ensemble, fit.shot,
        duration=60.0, link_capacity=real.link_capacity, rng=2,
        name="generated-for-simulator",
    )
    print(f"\npacket generation: {trace}")

    path = os.path.join(tempfile.mkdtemp(), "generated.rptr")
    write_trace(trace, path)
    back = read_trace(path)
    print(f"written + re-read capture: {back} "
          f"({os.path.getsize(path) / 1e6:.1f} MB on disk)")

    # the generated capture re-measures like the original
    regen_flows = export_five_tuple_flows(back, timeout=SCALED_TIMEOUT)
    regen_stats = regen_flows.statistics(back.duration)
    print(f"re-measured from generated capture: lambda = "
          f"{regen_stats.arrival_rate:.1f}/s, "
          f"E[S] = {regen_stats.mean_size / 1e3:.1f} kB "
          f"(calibration E[S] = {model.ensemble.mean_size / 1e3:.1f} kB)")


if __name__ == "__main__":
    main()
