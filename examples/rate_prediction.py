#!/usr/bin/env python
"""Short-term rate prediction (paper section VII-B).

An ISP wants to predict the near-future total rate to re-route new flows
before congestion.  Two predictors are compared, as in Table II:

* an empirical Moving Average predictor trained on past rate samples;
* the model-based predictor whose autocorrelation comes from Theorem 2 —
  i.e. from flow statistics alone, with no rate history needed beyond the
  most recent M samples.

The model-based predictor shines at long horizons, where rate samples are
too few to estimate the autocorrelation reliably.

Run:  python examples/rate_prediction.py
"""

from __future__ import annotations

import numpy as np

from repro.core import PoissonShotNoiseModel, TriangularShot, correlation_horizon
from repro.experiments import SCALED_TIMEOUT
from repro.flows import export_five_tuple_flows
from repro.netsim import medium_utilization_link
from repro.prediction import (
    EmpiricalPredictor,
    ModelBasedPredictor,
    prediction_error,
)
from repro.stats import RateSeries


def main() -> None:
    workload = medium_utilization_link(duration=120.0)
    trace = workload.synthesize(seed=21).trace
    flows = export_five_tuple_flows(
        trace, timeout=SCALED_TIMEOUT, keep_packet_map=True
    )
    model = PoissonShotNoiseModel.from_flows(
        flows.sizes, flows.durations, trace.duration, TriangularShot()
    )

    horizon = correlation_horizon(
        model.arrival_rate, model.ensemble, model.shot, threshold=0.5
    )
    print(f"rate correlation half-life (Theorem 2): {horizon:.2f} s")
    print(f"mean flow duration: {flows.durations.mean():.2f} s")
    print("prediction is only useful over horizons of this order "
          "(section VII-B)\n")

    base = RateSeries.from_packets(
        trace, 0.2, packet_mask=flows.packet_flow_ids >= 0
    )

    print(f"{'theta (s)':>10s} {'samples':>8s} "
          f"{'M emp':>6s} {'err emp':>9s} {'M model':>8s} {'err model':>10s}")
    for theta in (0.4, 1.0, 2.0, 4.0, 8.0):
        series = base.resample(int(round(theta / 0.2)))
        if len(series) < 8:
            break
        empirical = EmpiricalPredictor(series, max_order=8)
        model_based = ModelBasedPredictor(model, theta, max_order=8)
        err_emp = prediction_error(empirical, series)
        err_mod = prediction_error(model_based, series)
        print(f"{theta:10.1f} {len(series):8d} "
              f"{empirical.order:6d} {err_emp:9.2%} "
              f"{model_based.order:8d} {err_mod:10.2%}")

    # one-step-ahead trace at theta = 1 s, the Figure 14 view
    theta = 1.0
    series = base.resample(5)
    predictor = ModelBasedPredictor(model, theta, max_order=6)
    predictions = predictor.predict_series(series.values)
    actual = series.values[predictor.order:]
    print(f"\nFigure-14 style trace (theta = {theta:g} s, "
          f"order M = {predictor.order}):")
    print(f"{'t':>6s} {'measured kB/s':>14s} {'predicted kB/s':>15s}")
    for k in range(0, min(10, actual.size)):
        t = (predictor.order + k) * theta
        print(f"{t:6.1f} {actual[k] / 1e3:14.1f} {predictions[k] / 1e3:15.1f}")
    corr = float(np.corrcoef(predictions, actual)[0, 1])
    print(f"prediction/measurement correlation: {corr:.2f}")


if __name__ == "__main__":
    main()
