#!/usr/bin/env python
"""Calibrate the paper's model to a real trace with `repro.calibration`.

The paper fits its flow-level model to backbone measurements; this
walkthrough does the same against an operator archive and comes back
with a *runnable* scenario.  A synthetic link stands in for the
operator's router (swap in your own NetFlow/IPFIX/pcap archive and
skip step 1):

1. **Capture** — synthesize a link, export its flow table as a
   NetFlow v5 archive, the way a router's exporter would.
2. **Calibrate** — stream the archive through the bounded-memory
   sufficient-statistics accumulator, fit every registered flow-size
   family (lognormal, Pareto, exponential, lognormal-Pareto mixture)
   and rank them by BIC; the winner, its parameters, `lambda` and the
   diurnal profile land in a `CalibrationReport`.
3. **Emit** — turn the report into a `ScenarioSpec` whose workload
   reproduces the fitted arrival rate *exactly*.
4. **Close the loop** — synthesize the fitted spec and check the twin
   against the source: `lambda` and `E[S]` within 2%, tail quantiles
   within their declared tolerances.
5. **Run** — the emitted spec goes through the ordinary pipeline
   (synthesize -> account -> estimate -> fit -> validate).

The same loop is one CLI command:

    python -m repro calibrate router.nf5 -o fitted-spec.json --validate

Run:  python examples/calibrate_real_trace.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.calibration import calibrate_archive, validate_fitted_spec
from repro.interop import flow_records_from_flowset, write_netflow5
from repro.measurement import MeasurementEngine
from repro.netsim import low_utilization_link
from repro.pipeline import run_scenario
from repro.trace import write_trace

DURATION = 60.0
LINK_CAPACITY = 622.08e6  # OC-12, as in the paper's traces


def capture_archive(workdir: Path) -> Path:
    print("=== 1. capture: the link's flow table as NetFlow v5 ===")
    trace = low_utilization_link(duration=DURATION).synthesize(seed=11).trace
    rptr = workdir / "link.rptr"
    write_trace(trace, rptr)
    measured = MeasurementEngine().measure_file(rptr, delta=0.2, timeout=60.0)
    records = flow_records_from_flowset(measured.flows)
    archive = workdir / "link.nf5"
    written = write_netflow5(records, archive)
    print(f"{written} flow records -> {archive.name} "
          f"({archive.stat().st_size / 1e3:.1f} kB on the wire)\n")
    return archive


def calibrate(archive: Path):
    print("=== 2. calibrate: fit every family, rank by BIC ===")
    report = calibrate_archive(
        archive,
        link_capacity_bps=LINK_CAPACITY,
        seed=0,
        chunk=4096,        # stream in bounded memory ...
        workers=2,         # ... over the execution pool
        backend="thread",  # serial/thread/process are bitwise-identical
    )
    print(f"flows       : {report.flow_count} over {report.duration:.1f} s "
          f"(lambda = {report.arrival_rate:.3f}/s)")
    print(f"mean size   : {report.mean_size:.1f} B/flow")
    print(f"family      : {report.family} ({report.selection}-selected)")
    for name, value in sorted(report.params.items()):
        print(f"  {name:<12s}: {value:.6g}")
    for fit in report.candidates:
        print(f"  candidate {fit.family:<17s} bic={fit.bic:10.1f} "
              f"ks={fit.ks_statistic:.4f}")
    print()
    return report


def emit_and_validate(report):
    print("=== 3+4. emit a runnable spec, close the loop ===")
    spec = report.to_scenario_spec(name="fitted-twin")
    workload = spec.workload.build()
    assert workload.arrival_rate == report.arrival_rate  # lambda-exact
    print(f"emitted spec: target {spec.workload.target_mean_rate_bps/1e6:.2f} "
          f"Mbit/s on a {spec.workload.link_capacity_bps/1e6:.0f} Mbit/s link")

    closed = validate_fitted_spec(report, seed=1)
    status = "PASS" if closed.passed else "FAIL"
    print(f"closed loop : {status} (lambda err "
          f"{closed.lambda_rel_err:.2%}, E[S] err "
          f"{closed.mean_size_rel_err:.2%})")
    for failure in closed.failures:
        print(f"  {failure}")
    print()
    return spec


def run_fitted(spec):
    print("=== 5. run the fitted twin through the pipeline ===")
    result = run_scenario(spec.with_overrides(seed=2))
    stats = result.estimation.statistics
    print(f"twin measured: lambda = {stats.arrival_rate:.3f}/s, "
          f"E[S] = {stats.mean_size:.0f} B/flow")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        archive = capture_archive(workdir)
        report = calibrate(archive)
        spec = emit_and_validate(report)
        run_fitted(spec)


if __name__ == "__main__":
    main()
