#!/usr/bin/env python
"""Model-based anomaly detection (motivated in the paper's introduction).

The model gives a router everything needed for a statistical normality
band: mean lambda*E[S] and variance lambda*kappa*E[S^2/D] from NetFlow
counters alone.  Sustained excursions outside the Gaussian band flag
anomalies: a small-packet flood (DoS) upward, a link failure downward.

The example injects both events into a synthetic capture and runs the
detector.

Run:  python examples/anomaly_detection.py
"""

from __future__ import annotations

from repro.applications import AnomalyDetector, inject_flood, inject_outage
from repro.core import GaussianApproximation
from repro.experiments import DELTA, SCALED_TIMEOUT
from repro.flows import export_five_tuple_flows
from repro.netsim import medium_utilization_link
from repro.stats import RateSeries


def main() -> None:
    # -- learn the normal band from a clean interval ----------------------
    workload = medium_utilization_link(duration=120.0)
    clean = workload.synthesize(seed=9).trace
    flows = export_five_tuple_flows(clean, timeout=SCALED_TIMEOUT)
    stats = flows.statistics(clean.duration)
    gaussian = GaussianApproximation(stats.mean_rate, stats.std(1.8))
    lo, hi = gaussian.symmetric_band(0.99)
    print(f"normal band (99%): [{lo / 1e3:.0f}, {hi / 1e3:.0f}] kB/s "
          f"(mean {gaussian.mean / 1e3:.0f} kB/s)")

    detector = AnomalyDetector(gaussian, threshold_sigma=3.0, min_run=4)

    # -- a clean day: no alarms ------------------------------------------
    clean_series = RateSeries.from_packets(clean, DELTA)
    events = detector.detect(clean_series)
    print(f"clean capture: {len(events)} events")

    # -- inject a DoS flood and a link outage ----------------------------
    attacked = inject_flood(
        clean,
        start=30.0,
        duration=12.0,
        rate_bytes_per_s=6.0 * gaussian.std,
        packet_size=60,
        rng=1,
    )
    attacked = inject_outage(
        attacked, start=80.0, duration=15.0, drop_fraction=0.95, rng=2
    )
    series = RateSeries.from_packets(attacked, DELTA)
    events = detector.detect(series)

    print(f"attacked capture: {len(events)} events")
    for event in events:
        print(
            f"  {event.kind:6s} from t = {event.start_time(DELTA):6.1f} s, "
            f"{event.n_samples} samples ({event.n_samples * DELTA:.1f} s), "
            f"peak z = {event.peak_z:+.1f}"
        )

    floods = [e for e in events if e.kind == "flood"]
    drops = [e for e in events if e.kind == "drop"]
    assert floods and 25 <= floods[0].start_time(DELTA) <= 45
    assert drops and 75 <= drops[0].start_time(DELTA) <= 95
    print("both injected anomalies localised correctly")


if __name__ == "__main__":
    main()
