#!/usr/bin/env python
"""Flow-definition agnosticism (paper sections III and VI-A).

The model works with *any* flow definition; coarser definitions are
cheaper for the router.  This example measures the same capture under
four definitions — 5-tuple, /24 prefix, /16 prefix, and routable FIB
prefixes (longest-prefix match, the paper's proposed extension) — and
shows that the three-parameter model tracks the measured CoV at every
aggregation level while the flow table shrinks.

Run:  python examples/flow_definitions.py
"""

from __future__ import annotations

from repro.core import MGInfinityModel, PoissonShotNoiseModel
from repro.experiments import DELTA, SCALED_TIMEOUT
from repro.flows import (
    RoutingTable,
    active_flow_counts,
    export_flows,
    export_routable_flows,
)
from repro.netsim import AddressSpace, medium_utilization_link
from repro.stats import RateSeries


def main() -> None:
    workload = medium_utilization_link(duration=120.0)
    trace = workload.synthesize(seed=13).trace
    print(f"capture: {trace}\n")

    table = RoutingTable.synthetic(AddressSpace(), coarse_fraction=0.5, rng=1)
    definitions = [
        ("5-tuple", lambda: export_flows(
            trace, key="five_tuple", timeout=SCALED_TIMEOUT,
            keep_packet_map=True)),
        ("/24 prefix", lambda: export_flows(
            trace, key="prefix", prefix_length=24, timeout=SCALED_TIMEOUT,
            keep_packet_map=True)),
        ("/16 prefix", lambda: export_flows(
            trace, key="prefix", prefix_length=16, timeout=SCALED_TIMEOUT,
            keep_packet_map=True)),
        (f"FIB ({len(table)} routes)", lambda: export_routable_flows(
            trace, table, timeout=SCALED_TIMEOUT, keep_packet_map=True)),
    ]

    print(f"{'definition':>18s} {'flows':>6s} {'avg act.':>9s} "
          f"{'mean dur':>9s} {'meas CoV':>9s} {'model CoV':>10s} {'b':>5s}")
    for name, export in definitions:
        flows = export()
        series = RateSeries.from_packets(
            trace, DELTA, packet_mask=flows.packet_flow_ids >= 0
        )
        model = PoissonShotNoiseModel.from_flows(
            flows.sizes, flows.durations, trace.duration
        )
        fit = model.fit_power(series.variance)
        counts = active_flow_counts(flows, DELTA, duration=trace.duration)
        print(
            f"{name:>18s} {len(flows):6d} {counts.mean:9.1f} "
            f"{flows.durations.mean():8.2f}s "
            f"{series.coefficient_of_variation:9.1%} "
            f"{model.with_shot(fit.shot).coefficient_of_variation:10.1%} "
            f"{fit.power:5.2f}"
        )

    print(
        "\nnote: at /16 (and partly FIB) our scaled population collapses to"
        "\na handful of interval-spanning mega-flows - the many-iid-flows"
        "\npremise of the model breaks, and the clipped rectangular fit"
        "\nover-predicts. The paper's full-scale traces keep thousands of"
        "\nflows even at coarse aggregation."
    )

    # flow-table sizing from the M/G/infinity count model (section V-A)
    flows = export_flows(
        trace, key="prefix", prefix_length=24, timeout=SCALED_TIMEOUT
    )
    mg = MGInfinityModel(
        len(flows) / trace.duration, durations=flows.durations
    )
    print(f"\n/24 flow-table sizing: mean active = {mg.load:.0f}, "
          f"99.9th percentile = {mg.quantile(0.999)} entries "
          "(Poisson marginal, section V-A)")


if __name__ == "__main__":
    main()
