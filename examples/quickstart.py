#!/usr/bin/env python
"""Quickstart: the scenario pipeline, end to end, in a dozen lines.

One :class:`repro.pipeline.ScenarioSpec` describes the paper's whole loop
— synthesize a backbone capture, run NetFlow-style accounting, estimate
the three parameters (lambda, E[S], E[S^2/D]), fit the shot power,
generate model-driven traffic through the engine, and validate measured
vs model — and :func:`repro.pipeline.run_scenario` executes it.

The same spec can be saved as JSON and run from the command line::

    python -m repro run medium --report report.json
    python -m repro list-scenarios

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.pipeline import default_registry, run_scenario


def main() -> None:
    # 1. pick a named scenario (Table I medium-utilisation link); any
    #    spec is plain data — print spec.to_json() to seed your own file
    spec = default_registry().get("medium")
    print(f"scenario: {spec.name} — {spec.description}")

    # 2. run the whole pipeline: synthesize -> account flows -> estimate
    #    -> fit -> generate -> validate
    result = run_scenario(spec)

    # 3. every stage leaves a typed result object
    trace = result.trace
    stats = result.estimation.statistics
    print(f"trace: {trace}")
    print(f"flows: {len(result.accounting.flows)}   "
          f"lambda = {stats.arrival_rate:.1f}/s   "
          f"E[S] = {stats.mean_size / 1e3:.1f} kB   "
          f"E[S^2/D] = {stats.mean_square_size_over_duration:.3g} B^2/s")

    # 4. the validation report is the pipeline's final artifact
    report = result.validation
    print(f"measured CoV {report.measured_cov:.1%}   "
          f"fitted (b={report.fitted_power:.2f}) {report.fitted_cov:.1%}   "
          f"{'within' if report.within_band else 'OUTSIDE'} "
          f"+-{report.cov_band:.0%} band")
    print(f"generated CoV {report.generated_cov:.1%} "
          f"({report.generated_vs_measured_error:+.1%} vs measured)")
    print(f"capacity for {report.epsilon:.0%} congestion: "
          f"{report.required_capacity_bps / 1e6:.2f} Mbps")


if __name__ == "__main__":
    main()
