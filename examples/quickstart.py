#!/usr/bin/env python
"""Quickstart: model a backbone link from its flow measurements.

The full paper pipeline in ~60 lines:

1. synthesise an uncongested backbone link capture (stand-in for a Sprint
   OC-12 trace);
2. run NetFlow-style accounting to get per-flow sizes and durations;
3. parameterise the Poisson shot-noise model with the three parameters
   (lambda, E[S], E[S^2/D]);
4. compare the model's coefficient of variation against the measured one
   for the three canonical shots; fit the best power;
5. use the Gaussian approximation to provision the link.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import PoissonShotNoiseModel, PowerShot
from repro.experiments import DELTA, SCALED_TIMEOUT
from repro.flows import export_five_tuple_flows
from repro.netsim import medium_utilization_link
from repro.stats import RateSeries


def main() -> None:
    # 1. a 120-second capture of a ~4 Mbps backbone link (scaled OC-12)
    workload = medium_utilization_link(duration=120.0)
    trace = workload.synthesize(seed=7).trace
    print(f"trace: {trace}")

    # 2. flow accounting (5-tuple, idle timeout, single-packet discard)
    flows = export_five_tuple_flows(
        trace, timeout=SCALED_TIMEOUT, keep_packet_map=True
    )
    stats = flows.statistics(trace.duration)
    print(f"flows: {len(flows)}   lambda = {stats.arrival_rate:.1f}/s   "
          f"E[S] = {stats.mean_size / 1e3:.1f} kB   "
          f"E[S^2/D] = {stats.mean_square_size_over_duration:.3g} B^2/s")

    # 3. the measured rate at the paper's 200 ms averaging interval
    series = RateSeries.from_packets(
        trace, DELTA, packet_mask=flows.packet_flow_ids >= 0
    )
    print(f"measured: mean = {series.mean / 1e3:.1f} kB/s   "
          f"CoV = {series.coefficient_of_variation:.1%}")

    # 4. the model, under the three canonical shot assumptions
    model = PoissonShotNoiseModel.from_flows(
        flows.sizes, flows.durations, trace.duration
    )
    print(f"model mean (Corollary 1): {model.mean / 1e3:.1f} kB/s")
    for b, name in ((0.0, "rectangular"), (1.0, "triangular"), (2.0, "parabolic")):
        cov = model.with_shot(PowerShot(b)).coefficient_of_variation
        print(f"  model CoV, {name:12s} (b={b:g}): {cov:.1%}")
    fit = model.fit_power(series.variance)
    print(f"fitted power b = {fit.power:.2f} (kappa = {fit.kappa:.2f})")

    # 5. provision the link for 1% congestion probability
    capacity = model.with_shot(fit.shot).required_capacity(0.01)
    print(f"capacity for 1% congestion: {8 * capacity / 1e6:.2f} Mbps "
          f"({capacity / model.mean:.2f}x the mean)")


if __name__ == "__main__":
    main()
