#!/usr/bin/env python
"""Whole-backbone simulation with `repro.network` (sections VI-VII at scale).

The walkthrough: declare a topology, declare an origin-destination demand
matrix of flow populations, route it (ECMP with deterministic per-flow
hashing), and let the `NetworkEngine` drive **every** link — each link
streams the superposed packet population of the demands crossing it
through the synthesis + measurement engines, fits the shot-noise model,
and checks provisioning.  Then the dynamic part: a mid-trace fibre
outage reroutes the affected flows and the model-based detector flags
both the failed link's silence and the backup link's surge.

Run:  python examples/network_backbone.py
"""

from __future__ import annotations

from repro.netsim import table_i_workload
from repro.network import (
    DemandMatrix,
    LinkOutage,
    NetworkDemand,
    NetworkEngine,
    abilene,
    parallel_paths,
)

DURATION = 30.0  # seconds per demand; stretch for production-like runs


def build_demand_matrix() -> DemandMatrix:
    """Six Table I flow populations between Abilene PoPs.

    Each demand is a full `LinkWorkload` (heavy-tailed sizes, TCP
    dynamics, Poisson arrivals); `scale` keeps the walkthrough snappy.
    """
    ods = (
        (("seattle", "newyork"), 4),
        (("sunnyvale", "washington"), 6),
        (("losangeles", "atlanta"), 3),
        (("denver", "newyork"), 6),
        (("houston", "chicago"), 3),
        (("newyork", "losangeles"), 4),
    )
    return DemandMatrix(
        NetworkDemand(a, b, table_i_workload(row, duration=DURATION))
        for (a, b), row in ods
    )


def simulate_abilene() -> None:
    print("=== Abilene backbone, ECMP-routed Table I demand matrix ===")
    topology = abilene()
    engine = NetworkEngine(chunk=200_000, workers=2)
    simulation = engine.simulate(
        topology, build_demand_matrix(), routing="ecmp", seed=7
    )
    report = simulation.report()
    print(f"{report.n_routers} routers, {report.n_links} directed links, "
          f"{len(simulation.simulated_links)} carrying traffic")
    for entry in report.links:
        if not entry.n_demands:
            continue
        a, b = entry.link
        verdict = "OVERLOADED" if entry.overloaded else "ok"
        print(f"  {a:>12}->{b:<12} {entry.packets:>8} pkts  "
              f"util {entry.utilization:6.1%}  "
              f"CoV {entry.measured_cov:6.1%}  "
              f"b={entry.fitted_power:5.2f}  [{verdict}]")
    # the report is plain JSON — ship it to a dashboard
    assert report.to_dict()["routing"] == "ecmp"


def simulate_outage() -> None:
    print()
    print("=== Fibre outage with reroute (two equal-cost paths) ===")
    topology = parallel_paths(2)
    demands = DemandMatrix(
        [NetworkDemand("src", "dst", table_i_workload(4, duration=DURATION))]
    )
    outage = LinkOutage(("src", "mid0"), start=10.0, duration=10.0)
    simulation = NetworkEngine().simulate(
        topology, demands, routing="shortest_path",
        events=[outage], seed=7, detect_anomalies=True,
    )
    for link in (("src", "mid0"), ("src", "mid1")):
        entry = simulation[link]
        a, b = link
        print(f"  {a}->{b}: {entry.packet_count} packets")
        for event in entry.anomalies:
            print(f"    {event.kind} at "
                  f"{event.start_time(entry.delta):.1f} s "
                  f"for {event.n_samples * entry.delta:.1f} s "
                  f"(peak z = {event.peak_z:+.1f})")


def main() -> None:
    simulate_abilene()
    simulate_outage()


if __name__ == "__main__":
    main()
