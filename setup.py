"""Shim for legacy editable installs (``python setup.py develop``).

All real metadata lives in pyproject.toml; this file only exists so the
package can be installed in environments without the ``wheel`` package
(e.g. fully offline boxes where pip cannot build PEP 660 editable wheels).
"""

from setuptools import setup

setup()
