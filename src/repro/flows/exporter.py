"""Flow accounting: packets -> flows (the NetFlow analogue, section III).

Rules reproduced from the paper's methodology:

* a flow is identified by a 5-tuple or by a /24 destination prefix;
* a flow *ends* when no packet is seen for ``timeout`` seconds (60 s);
* flow size is the byte sum, flow duration the time between the first and
  last packet;
* single-packet flows are discarded (their duration would be zero) and
  their packets are also excluded from rate measurement.

The implementation is fully vectorised: flow keys are packed into two
uint64 words (order-isomorphic to the structured lexicographic order, see
:func:`repro.flows.keys.pack_packet_keys`), packets are ordered with a
single lexsort on (key words, time), split at inter-packet gaps exceeding
the timeout, and aggregated with ``bincount`` — no per-packet Python loop
and no structured-dtype ``np.unique`` pass.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import FlowExportError, ParameterError
from ..trace.packet import PACKET_DTYPE, PacketTrace
from .keys import (
    five_tuple_key_dtype,
    pack_packet_keys,
    packed_key_order,
    unpack_packet_keys,
)
from .records import FlowSet

__all__ = [
    "export_flows",
    "export_five_tuple_flows",
    "export_prefix_flows",
    "DEFAULT_TIMEOUT",
]

#: Idle timeout ending a flow, as in the paper (60 seconds).
DEFAULT_TIMEOUT = 60.0


def _as_packet_array(packets) -> np.ndarray:
    if isinstance(packets, PacketTrace):
        packets = packets.packets
    packets = np.asarray(packets)
    if packets.dtype != PACKET_DTYPE:
        raise FlowExportError(
            f"expected PACKET_DTYPE packets, got dtype {packets.dtype}"
        )
    return packets


def _packed_keys(packets: np.ndarray, key: str, prefix_length: int):
    try:
        return pack_packet_keys(packets, key, prefix_length)
    except ParameterError as exc:
        raise FlowExportError(str(exc)) from None


def export_flows(
    packets,
    *,
    key: str = "five_tuple",
    timeout: float = DEFAULT_TIMEOUT,
    min_packets: int = 2,
    prefix_length: int = 24,
    keep_packet_map: bool = False,
) -> FlowSet:
    """Run flow accounting over a packet array or :class:`PacketTrace`.

    Parameters
    ----------
    key:
        ``"five_tuple"`` (definition 1) or ``"prefix"`` (definition 2).
    timeout:
        Idle gap (seconds) after which the next packet of the same key
        starts a new flow.
    min_packets:
        Minimum packets for a flow to be kept; the paper uses 2 (discard
        single-packet flows).  Flows whose first and last packet share a
        timestamp are discarded too (zero duration).
    prefix_length:
        Prefix width for ``key="prefix"`` (the paper uses /24).
    keep_packet_map:
        When True, the returned set carries ``packet_flow_ids`` mapping
        each input packet to its flow (-1 when the packet was discarded),
        which rate measurement uses to apply the same packet filter.
    """
    packets = _as_packet_array(packets)
    if timeout <= 0:
        raise FlowExportError(f"timeout must be > 0, got {timeout}")
    if min_packets < 1:
        raise FlowExportError(f"min_packets must be >= 1, got {min_packets}")

    if packets.size == 0:
        keys = (
            np.zeros(0, dtype=five_tuple_key_dtype(PACKET_DTYPE))
            if key == "five_tuple"
            else np.zeros(0, dtype=np.uint32)
        )
        if key not in ("five_tuple", "prefix"):
            raise FlowExportError(
                f"unknown flow key {key!r}; use 'five_tuple' or 'prefix'"
            )
        return FlowSet(
            np.zeros(0), np.zeros(0), np.zeros(0), np.zeros(0, dtype=np.int64),
            key_kind=key, keys=keys, prefix_length=prefix_length, timeout=timeout,
        )

    hi, lo = _packed_keys(packets, key, prefix_length)
    timestamps = packets["timestamp"]

    # One radix-digit lexsort orders by (key hi, key lo, time) — the same
    # order the legacy structured np.unique + (group, time) lexsort
    # produced, since the pack is order-isomorphic and every sort pass is
    # stable.  Split key runs at gaps > timeout.
    order = packed_key_order(hi, lo, within=timestamps)
    h = hi[order]
    l = lo[order]
    ts = timestamps[order]
    same_group = (h[1:] == h[:-1]) & (l[1:] == l[:-1])
    gap_ok = (ts[1:] - ts[:-1]) <= timeout
    new_flow = np.concatenate([[True], ~(same_group & gap_ok)])
    flow_ids = np.cumsum(new_flow) - 1
    n_flows = int(flow_ids[-1]) + 1

    first_idx = np.flatnonzero(new_flow)
    last_idx = np.concatenate([first_idx[1:] - 1, [order.size - 1]])

    starts = ts[first_idx]
    ends = ts[last_idx]
    sizes = np.bincount(
        flow_ids, weights=packets["size"][order].astype(np.float64),
        minlength=n_flows,
    )
    counts = np.bincount(flow_ids, minlength=n_flows)

    keep = (counts >= min_packets) & (ends > starts)
    discarded_packets = int(counts[~keep].sum())

    packet_flow_ids = None
    if keep_packet_map:
        renumber = np.full(n_flows, -1, dtype=np.int64)
        renumber[keep] = np.arange(int(keep.sum()))
        packet_flow_ids = np.empty(packets.size, dtype=np.int64)
        packet_flow_ids[order] = renumber[flow_ids]

    kept_first = first_idx[keep]
    return FlowSet(
        starts[keep],
        ends[keep],
        sizes[keep],
        counts[keep],
        key_kind=key,
        keys=unpack_packet_keys(
            h[kept_first], l[kept_first], key, packets.dtype, prefix_length
        ),
        prefix_length=prefix_length,
        timeout=timeout,
        discarded_packets=discarded_packets,
        packet_flow_ids=packet_flow_ids,
    )


def export_five_tuple_flows(packets, **kwargs) -> FlowSet:
    """Flow definition 1 of the paper: 5-tuple flows."""
    return export_flows(packets, key="five_tuple", **kwargs)


def export_prefix_flows(packets, *, prefix_length: int = 24, **kwargs) -> FlowSet:
    """Flow definition 2 of the paper: destination-prefix flows (/24)."""
    return export_flows(packets, key="prefix", prefix_length=prefix_length, **kwargs)
