"""Flow records and flow sets (the exporter's output).

A :class:`FlowSet` is the columnar result of running flow accounting over a
packet trace: per-flow start/end timestamps, byte counts and packet counts,
plus the bookkeeping the paper's measurement methodology requires (which
packets were discarded as single-packet flows).  It feeds directly into the
model (:meth:`FlowSet.to_ensemble`, :meth:`FlowSet.statistics`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

import numpy as np

from ..core.ensemble import EmpiricalEnsemble
from ..core.parameters import FlowStatistics
from ..exceptions import ParameterError
from .keys import FiveTuple, PrefixKey

__all__ = ["FlowRecord", "FlowSet"]

FlowKey = Union[FiveTuple, PrefixKey]


@dataclass(frozen=True)
class FlowRecord:
    """One exported flow (the NetFlow-record analogue)."""

    key: FlowKey
    start: float
    end: float
    size_bytes: int
    packets: int

    @property
    def duration(self) -> float:
        """Time between the first and the last packet (section III)."""
        return self.end - self.start

    @property
    def mean_rate(self) -> float:
        """Average throughput S/D in bytes/second."""
        return self.size_bytes / self.duration


class FlowSet:
    """Columnar set of flows exported from one measurement interval.

    Attributes
    ----------
    starts, ends:
        First/last packet timestamp per flow (seconds).
    sizes:
        Bytes per flow.
    packet_counts:
        Packets per flow (always >= 2 after the single-packet discard).
    key_kind:
        ``"five_tuple"`` or ``"prefix"``.
    keys:
        Per-flow key payload: a structured array (five-tuple) or a uint32
        prefix array.
    discarded_packets:
        Number of packets dropped because they formed single-packet flows;
        the paper excludes them from the measured rate as well.
    packet_flow_ids:
        Optional per-input-packet flow index (-1 for discarded packets);
        lets rate measurement reproduce the exporter's packet filter.
    """

    def __init__(
        self,
        starts: np.ndarray,
        ends: np.ndarray,
        sizes: np.ndarray,
        packet_counts: np.ndarray,
        *,
        key_kind: str,
        keys: np.ndarray,
        prefix_length: int = 24,
        timeout: float = 60.0,
        discarded_packets: int = 0,
        packet_flow_ids: np.ndarray | None = None,
    ) -> None:
        self.starts = np.asarray(starts, dtype=np.float64)
        self.ends = np.asarray(ends, dtype=np.float64)
        self.sizes = np.asarray(sizes, dtype=np.float64)
        self.packet_counts = np.asarray(packet_counts, dtype=np.int64)
        n = self.starts.size
        if not (self.ends.size == self.sizes.size == self.packet_counts.size == n):
            raise ParameterError("flow columns must have equal length")
        if np.any(self.ends < self.starts):
            raise ParameterError("flow end before start")
        if key_kind not in ("five_tuple", "prefix"):
            raise ParameterError(f"unknown key_kind {key_kind!r}")
        self.key_kind = key_kind
        self.keys = keys
        self.prefix_length = int(prefix_length)
        self.timeout = float(timeout)
        self.discarded_packets = int(discarded_packets)
        self.packet_flow_ids = packet_flow_ids

    def __len__(self) -> int:
        return int(self.starts.size)

    def __repr__(self) -> str:
        return (
            f"FlowSet(kind={self.key_kind!r}, flows={len(self)}, "
            f"bytes={self.total_bytes:g})"
        )

    # -- derived columns -----------------------------------------------------

    @property
    def durations(self) -> np.ndarray:
        """Last-minus-first packet time per flow; strictly positive."""
        return self.ends - self.starts

    @property
    def total_bytes(self) -> float:
        return float(self.sizes.sum())

    @property
    def interarrival_times(self) -> np.ndarray:
        """Successive differences of the *sorted* flow start times.

        These are the samples behind the paper's Figures 3-4 (qq-plot
        against the exponential and autocorrelation).
        """
        if len(self) < 2:
            return np.zeros(0)
        return np.diff(np.sort(self.starts))

    def key_of(self, index: int) -> FlowKey:
        """Materialise the flow key object for one flow."""
        if self.key_kind == "five_tuple":
            row = self.keys[index]
            return FiveTuple(
                int(row["src_addr"]),
                int(row["dst_addr"]),
                int(row["src_port"]),
                int(row["dst_port"]),
                int(row["protocol"]),
            )
        return PrefixKey(int(self.keys[index]), self.prefix_length)

    def records(self) -> Iterator[FlowRecord]:
        """Iterate flows as :class:`FlowRecord` objects."""
        for i in range(len(self)):
            yield FlowRecord(
                key=self.key_of(i),
                start=float(self.starts[i]),
                end=float(self.ends[i]),
                size_bytes=int(self.sizes[i]),
                packets=int(self.packet_counts[i]),
            )

    # -- model bridges ---------------------------------------------------

    def to_ensemble(self) -> EmpiricalEnsemble:
        """Empirical (S, D) ensemble for the shot-noise model."""
        if len(self) == 0:
            raise ParameterError("cannot build an ensemble from zero flows")
        return EmpiricalEnsemble(self.sizes, self.durations)

    def statistics(self, interval_length: float) -> FlowStatistics:
        """The paper's three-parameter summary over this interval."""
        return FlowStatistics.from_flows(
            self.sizes, self.durations, interval_length
        )

    def partition_by_size(self, threshold: float) -> tuple["FlowSet", "FlowSet"]:
        """Split into (mice, elephants) at a byte threshold.

        Supports the section VIII multi-class extension: fit a different
        shot per class and superpose the models
        (:class:`repro.core.SuperposedModel`).
        """
        if threshold <= 0:
            raise ParameterError("threshold must be > 0")
        small = self.sizes < threshold
        if not small.any() or small.all():
            raise ParameterError(
                "threshold does not separate the flows into two classes"
            )
        return self.filter(small), self.filter(~small)

    def filter(self, mask: np.ndarray) -> "FlowSet":
        """Subset of flows selected by a boolean mask (keys included)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.starts.shape:
            raise ParameterError("mask must match the number of flows")
        return FlowSet(
            self.starts[mask],
            self.ends[mask],
            self.sizes[mask],
            self.packet_counts[mask],
            key_kind=self.key_kind,
            keys=self.keys[mask],
            prefix_length=self.prefix_length,
            timeout=self.timeout,
            discarded_packets=self.discarded_packets,
            packet_flow_ids=None,
        )
