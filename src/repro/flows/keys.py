"""Flow keys: the paper's two flow definitions (section III).

1. **5-tuple**: source/destination address, source/destination port,
   protocol — a TCP connection or UDP stream.
2. **destination prefix**: the ``/24`` (or any ``/n``) destination address
   prefix — a coarser aggregate that "dilutes" transport dynamics and is an
   order of magnitude cheaper to track (section VI-A).

The model itself is agnostic to the definition; these keys parameterise the
flow exporter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from ..exceptions import ParameterError

__all__ = [
    "FiveTuple",
    "PrefixKey",
    "FIVE_TUPLE_FIELDS",
    "five_tuple_key_dtype",
    "format_ipv4",
    "parse_ipv4",
    "prefix_of",
    "pack_packet_keys",
    "packed_key_order",
    "unpack_packet_keys",
    "PROTO_TCP",
    "PROTO_UDP",
]

PROTO_TCP = 6
PROTO_UDP = 17

#: Field order of the 5-tuple — also the lexicographic comparison order the
#: exporter's flow grouping sorts by.
FIVE_TUPLE_FIELDS = ("src_addr", "dst_addr", "src_port", "dst_port", "protocol")


def five_tuple_key_dtype(packet_dtype: np.dtype) -> np.dtype:
    """Structured per-flow key dtype matching the packet field widths."""
    return np.dtype([(f, packet_dtype[f]) for f in FIVE_TUPLE_FIELDS])


def pack_packet_keys(packets: np.ndarray, key: str, prefix_length: int = 24):
    """Pack flow keys into two uint64 words ``(hi, lo)``.

    The pack is order-isomorphic to lexicographic comparison of the key
    fields: for ``key="five_tuple"``, ``hi = src_addr << 32 | dst_addr``
    and ``lo = src_port << 24 | dst_port << 8 | protocol``, so sorting by
    ``(hi, lo)`` orders keys exactly like ``np.unique`` on the structured
    five-tuple view — but with two machine-word comparisons instead of a
    23-byte struct compare.  For ``key="prefix"``, ``hi`` is the /n
    destination prefix and ``lo`` is zero.
    """
    if key == "five_tuple":
        hi = (
            packets["src_addr"].astype(np.uint64) << np.uint64(32)
        ) | packets["dst_addr"].astype(np.uint64)
        lo = (
            (packets["src_port"].astype(np.uint64) << np.uint64(24))
            | (packets["dst_port"].astype(np.uint64) << np.uint64(8))
            | packets["protocol"].astype(np.uint64)
        )
        return hi, lo
    if key == "prefix":
        hi = prefix_of(packets["dst_addr"], prefix_length).astype(np.uint64)
        return hi, np.zeros(hi.size, dtype=np.uint64)
    raise ParameterError(
        f"unknown flow key {key!r}; use 'five_tuple' or 'prefix'"
    )


def packed_key_order(hi: np.ndarray, lo: np.ndarray, within=None) -> np.ndarray:
    """Stable order by ``(hi, lo)`` — or ``(hi, lo, within)`` — via radix.

    ``np.argsort`` falls back to comparison sorting for 64-bit integers
    but uses an O(n) radix sort for 16-bit ones, so the two packed key
    words are decomposed into uint16 digits and sorted
    least-significant-digit first (``np.lexsort`` with the primary key
    last *is* an LSD radix sort when every pass is stable).  Constant
    digits — fixed address-pool prefixes, the all-zero upper half of
    prefix keys — are skipped outright.  Because every pass is stable,
    the permutation is **identical** to ``np.lexsort((within, lo, hi))``,
    just several times faster on packet-scale inputs.

    ``within`` (e.g. timestamps) is the least significant sort key; omit
    it when rows of equal key are already in the desired relative order
    (stability preserves it).
    """
    n = hi.size
    digits = []
    for word in (lo, hi):  # significance ascending: lo below hi
        cols = np.ascontiguousarray(word, dtype=np.uint64).view(
            np.uint16
        ).reshape(n, 4)
        order = range(4) if np.little_endian else range(3, -1, -1)
        for j in order:
            col = cols[:, j]
            if n and col.size and int(col.min()) != int(col.max()):
                digits.append(col)
    if within is not None:
        digits.insert(0, within)
    if not digits:
        return np.arange(n, dtype=np.intp)
    if len(digits) == 1:
        return np.argsort(digits[0], kind="stable")
    return np.lexsort(tuple(digits))


def unpack_packet_keys(
    hi: np.ndarray,
    lo: np.ndarray,
    key: str,
    packet_dtype: np.dtype,
    prefix_length: int = 24,
) -> np.ndarray:
    """Invert :func:`pack_packet_keys` into the exporter's key payload.

    Returns a structured five-tuple array (same dtype as the legacy
    ``np.unique`` grouping produced) or a uint32 prefix array.
    """
    if key == "five_tuple":
        out = np.empty(hi.size, dtype=five_tuple_key_dtype(packet_dtype))
        out["src_addr"] = (hi >> np.uint64(32)).astype(np.uint32)
        out["dst_addr"] = (hi & np.uint64(0xFFFFFFFF)).astype(np.uint32)
        out["src_port"] = (lo >> np.uint64(24)).astype(np.uint16)
        out["dst_port"] = ((lo >> np.uint64(8)) & np.uint64(0xFFFF)).astype(
            np.uint16
        )
        out["protocol"] = (lo & np.uint64(0xFF)).astype(np.uint8)
        return out
    if key == "prefix":
        return hi.astype(np.uint32)
    raise ParameterError(
        f"unknown flow key {key!r}; use 'five_tuple' or 'prefix'"
    )


def format_ipv4(addr: int) -> str:
    """Dotted-quad string of a 32-bit address integer."""
    addr = int(addr)
    if not 0 <= addr <= 0xFFFFFFFF:
        raise ParameterError(f"IPv4 address out of range: {addr}")
    return ".".join(str((addr >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_ipv4(text: str) -> int:
    """32-bit integer of a dotted-quad string."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ParameterError(f"not a dotted quad: {text!r}")
    addr = 0
    for part in parts:
        try:
            octet = int(part)
        except ValueError as exc:
            raise ParameterError(f"not a dotted quad: {text!r}") from exc
        if not 0 <= octet <= 255:
            raise ParameterError(f"octet out of range in {text!r}")
        addr = (addr << 8) | octet
    return addr


def prefix_of(addr, length: int = 24) -> np.ndarray:
    """Keep the ``length`` most significant bits of address(es).

    ``prefix_of(a, 24)`` groups packets by /24 destination prefix, the
    paper's second flow definition.  Works on scalars and arrays.
    """
    if not 0 <= length <= 32:
        raise ParameterError(f"prefix length must be in [0, 32], got {length}")
    shift = 32 - length
    return np.asarray(addr, dtype=np.uint32) >> np.uint32(shift)


class FiveTuple(NamedTuple):
    """Flow definition 1: (src addr, dst addr, src port, dst port, proto)."""

    src_addr: int
    dst_addr: int
    src_port: int
    dst_port: int
    protocol: int

    def __str__(self) -> str:
        proto = {PROTO_TCP: "tcp", PROTO_UDP: "udp"}.get(self.protocol, str(self.protocol))
        return (
            f"{format_ipv4(self.src_addr)}:{self.src_port} -> "
            f"{format_ipv4(self.dst_addr)}:{self.dst_port} ({proto})"
        )


@dataclass(frozen=True)
class PrefixKey:
    """Flow definition 2: destination address prefix (default /24)."""

    prefix: int
    length: int = 24

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ParameterError(f"prefix length must be in [0,32], got {self.length}")
        if self.prefix >> self.length:
            raise ParameterError(
                f"prefix {self.prefix} does not fit in {self.length} bits"
            )

    @property
    def network_address(self) -> int:
        """The lowest address covered by the prefix."""
        return self.prefix << (32 - self.length)

    def __str__(self) -> str:
        return f"{format_ipv4(self.network_address)}/{self.length}"

    def covers(self, addr: int) -> bool:
        """True if ``addr`` falls inside this prefix."""
        return int(prefix_of(addr, self.length)) == self.prefix
