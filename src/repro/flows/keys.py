"""Flow keys: the paper's two flow definitions (section III).

1. **5-tuple**: source/destination address, source/destination port,
   protocol — a TCP connection or UDP stream.
2. **destination prefix**: the ``/24`` (or any ``/n``) destination address
   prefix — a coarser aggregate that "dilutes" transport dynamics and is an
   order of magnitude cheaper to track (section VI-A).

The model itself is agnostic to the definition; these keys parameterise the
flow exporter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from ..exceptions import ParameterError

__all__ = [
    "FiveTuple",
    "PrefixKey",
    "format_ipv4",
    "parse_ipv4",
    "prefix_of",
    "PROTO_TCP",
    "PROTO_UDP",
]

PROTO_TCP = 6
PROTO_UDP = 17


def format_ipv4(addr: int) -> str:
    """Dotted-quad string of a 32-bit address integer."""
    addr = int(addr)
    if not 0 <= addr <= 0xFFFFFFFF:
        raise ParameterError(f"IPv4 address out of range: {addr}")
    return ".".join(str((addr >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_ipv4(text: str) -> int:
    """32-bit integer of a dotted-quad string."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ParameterError(f"not a dotted quad: {text!r}")
    addr = 0
    for part in parts:
        try:
            octet = int(part)
        except ValueError as exc:
            raise ParameterError(f"not a dotted quad: {text!r}") from exc
        if not 0 <= octet <= 255:
            raise ParameterError(f"octet out of range in {text!r}")
        addr = (addr << 8) | octet
    return addr


def prefix_of(addr, length: int = 24) -> np.ndarray:
    """Keep the ``length`` most significant bits of address(es).

    ``prefix_of(a, 24)`` groups packets by /24 destination prefix, the
    paper's second flow definition.  Works on scalars and arrays.
    """
    if not 0 <= length <= 32:
        raise ParameterError(f"prefix length must be in [0, 32], got {length}")
    shift = 32 - length
    return np.asarray(addr, dtype=np.uint32) >> np.uint32(shift)


class FiveTuple(NamedTuple):
    """Flow definition 1: (src addr, dst addr, src port, dst port, proto)."""

    src_addr: int
    dst_addr: int
    src_port: int
    dst_port: int
    protocol: int

    def __str__(self) -> str:
        proto = {PROTO_TCP: "tcp", PROTO_UDP: "udp"}.get(self.protocol, str(self.protocol))
        return (
            f"{format_ipv4(self.src_addr)}:{self.src_port} -> "
            f"{format_ipv4(self.dst_addr)}:{self.dst_port} ({proto})"
        )


@dataclass(frozen=True)
class PrefixKey:
    """Flow definition 2: destination address prefix (default /24)."""

    prefix: int
    length: int = 24

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ParameterError(f"prefix length must be in [0,32], got {self.length}")
        if self.prefix >> self.length:
            raise ParameterError(
                f"prefix {self.prefix} does not fit in {self.length} bits"
            )

    @property
    def network_address(self) -> int:
        """The lowest address covered by the prefix."""
        return self.prefix << (32 - self.length)

    def __str__(self) -> str:
        return f"{format_ipv4(self.network_address)}/{self.length}"

    def covers(self, addr: int) -> bool:
        """True if ``addr`` falls inside this prefix."""
        return int(prefix_of(addr, self.length)) == self.prefix
