"""Measurement intervals and boundary flow splitting — section III, Figure 1.

The paper divides each trace into 30-minute intervals (a compromise between
stationarity and sample count) and exports flows *per interval*, which
artificially splits flows straddling a boundary.  Figure 1 quantifies the
effect: the cumulative arrival curve jumps in the first fraction of a
second of an interval (continuations of flows begun earlier, ~15k out of
680k flows) and is linear afterwards.

This module cuts traces into intervals, exports flows per interval, builds
cumulative-arrival curves, and estimates the boundary-split excess.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError
from ..trace.packet import PacketTrace
from .exporter import export_flows
from .records import FlowSet

__all__ = [
    "iter_intervals",
    "export_interval_flows",
    "cumulative_arrival_curve",
    "SplitExcess",
    "boundary_split_excess",
]


def iter_intervals(trace: PacketTrace, interval_length: float):
    """Yield ``(start_time, PacketTrace)`` windows of the given length.

    Windows are rebased to t=0, matching per-interval analysis.  A final
    partial window is yielded only if it covers at least half the interval
    (short remnants make the arrival-rate estimate noisy).
    """
    if interval_length <= 0:
        raise ParameterError("interval_length must be > 0")
    start = 0.0
    while start < trace.duration:
        end = min(start + interval_length, trace.duration)
        if end - start >= 0.5 * interval_length:
            yield start, trace.window(start, end, rebase=True)
        start += interval_length


def export_interval_flows(
    trace: PacketTrace, interval_length: float, **export_kwargs
) -> list[tuple[float, FlowSet]]:
    """Per-interval flow export (flows split at boundaries, as in §III)."""
    return [
        (start, export_flows(window, **export_kwargs))
        for start, window in iter_intervals(trace, interval_length)
    ]


def cumulative_arrival_curve(
    flows: FlowSet, grid: np.ndarray | int = 512, *, horizon: float | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Cumulative number of flow arrivals by time t (Figure 1 curve).

    Returns ``(times, counts)``; ``grid`` may be an explicit time grid or a
    point count over ``[0, horizon]``.
    """
    starts = np.sort(flows.starts)
    if isinstance(grid, (int, np.integer)):
        if horizon is None:
            horizon = float(starts[-1]) if starts.size else 1.0
        times = np.linspace(0.0, horizon, int(grid))
    else:
        times = np.asarray(grid, dtype=np.float64)
    counts = np.searchsorted(starts, times, side="right")
    return times, counts.astype(np.int64)


@dataclass(frozen=True)
class SplitExcess:
    """Estimate of boundary-split flow continuations (Figure 1 zoom).

    Attributes
    ----------
    head_count:
        Flows whose first packet falls within the head window.
    expected_head_count:
        Count a stationary arrival process would put there
        (steady rate estimated from the rest of the interval).
    excess:
        ``head_count - expected_head_count`` — the paper counts ~15,000
        excess flows out of ~680,000 with /24 aggregation.
    fraction_of_total:
        Excess over total flows; "marginal" in the paper's wording.
    """

    head_count: int
    expected_head_count: float
    excess: float
    fraction_of_total: float


def boundary_split_excess(
    flows: FlowSet, interval_length: float, *, head: float = 0.4
) -> SplitExcess:
    """Quantify the early-interval arrival spike caused by flow splitting.

    ``head`` is the length (seconds) of the initial window examined; the
    paper highlights the first ~0.4 seconds (scaled traces should scale it
    too).  The steady arrival rate is estimated on ``[head, interval]``.
    """
    if not 0.0 < head < interval_length:
        raise ParameterError("head must lie inside the interval")
    starts = flows.starts
    total = starts.size
    head_count = int(np.count_nonzero(starts < head))
    tail_count = total - head_count
    steady_rate = tail_count / (interval_length - head)
    expected = steady_rate * head
    excess = head_count - expected
    return SplitExcess(
        head_count=head_count,
        expected_head_count=float(expected),
        excess=float(excess),
        fraction_of_total=float(excess / total) if total else 0.0,
    )
