"""Active-flow-count time series — the M/G/infinity side of the model.

Section V-A of the paper identifies the number of flows active at time
``t`` with the occupancy of an M/G/infinity queue: Poisson marginal with
mean ``lambda E[D]``.  This module measures ``N(t)`` from an exported
flow set so the prediction (section VII-B mentions predictors driven by
``N(t)``) and the flow-table-sizing application can use it, and so tests
can validate the Poisson-marginal claim end to end.
"""

from __future__ import annotations

import numpy as np

from .._util import check_positive
from ..exceptions import ParameterError
from .records import FlowSet

__all__ = ["active_flow_counts", "CountSeries"]


class CountSeries:
    """Sampled active-flow counts ``N(k Delta)``."""

    def __init__(self, counts: np.ndarray, delta: float) -> None:
        self.counts = np.asarray(counts, dtype=np.int64)
        if self.counts.ndim != 1 or self.counts.size == 0:
            raise ParameterError("counts must be a non-empty 1-D array")
        if np.any(self.counts < 0):
            raise ParameterError("counts must be non-negative")
        self.delta = check_positive("delta", delta)

    def __len__(self) -> int:
        return int(self.counts.size)

    def __repr__(self) -> str:
        return f"CountSeries(n={len(self)}, mean={self.mean:.1f})"

    @property
    def times(self) -> np.ndarray:
        return self.delta * np.arange(len(self))

    @property
    def mean(self) -> float:
        return float(self.counts.mean())

    @property
    def variance(self) -> float:
        if len(self) < 2:
            return 0.0
        return float(self.counts.var(ddof=1))

    @property
    def index_of_dispersion(self) -> float:
        """Variance over mean — 1.0 for the Poisson marginal of M/G/inf."""
        mean = self.mean
        if mean == 0.0:
            raise ParameterError("empty count series has no dispersion index")
        return self.variance / mean

    def autocorrelation(self, max_lag: int) -> np.ndarray:
        from ..stats.correlation import autocorrelation

        return autocorrelation(self.counts.astype(float), max_lag)


def active_flow_counts(
    flows: FlowSet, delta: float, *, duration: float | None = None
) -> CountSeries:
    """Sample ``N(t)`` on a Delta grid from exported flow intervals.

    A flow is active at ``t`` when ``start <= t < end`` (the paper's
    definition with the half-open convention at the departure instant).
    Computed by difference counting: +1 at each start, -1 at each end,
    cumulative-summed over the grid — O(flows log flows).
    """
    delta = check_positive("delta", delta)
    if len(flows) == 0:
        raise ParameterError("cannot count active flows of an empty FlowSet")
    if duration is None:
        duration = float(flows.ends.max())
    n_samples = int(np.floor(duration / delta)) + 1
    grid = delta * np.arange(n_samples)
    started = np.searchsorted(np.sort(flows.starts), grid, side="right")
    ended = np.searchsorted(np.sort(flows.ends), grid, side="right")
    return CountSeries(started - ended, delta)
