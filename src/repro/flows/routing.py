"""Routable-prefix flow definition — the section VI-A extension.

The paper: "A straightforward extension to this flow definition would be
the use of 'routable' prefixes (i.e., prefixes present in the forwarding
table of the router) to define flows.  Such an extension would result in
an additional decrease of the burden for the router given the level of
flow aggregation (with /8 and /16 prefixes, for example)".

This module implements that extension: a longest-prefix-match forwarding
table mapping packets to their routing entry, so the flow exporter can
aggregate by FIB entry instead of a fixed /24.  Lookups are vectorised:
one membership test per distinct prefix length, from /32 down.
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng
from ..exceptions import ParameterError
from .keys import PrefixKey, prefix_of

__all__ = ["RoutingTable", "export_routable_flows"]


class RoutingTable:
    """A longest-prefix-match table of routable prefixes.

    Entries are :class:`~repro.flows.keys.PrefixKey` objects.  A default
    route (/0) can be included; packets matching no entry map to entry
    index ``-1``.
    """

    def __init__(self, entries) -> None:
        self.entries: list[PrefixKey] = list(entries)
        if not self.entries:
            raise ParameterError("routing table must have at least one entry")
        seen = set()
        for entry in self.entries:
            key = (entry.prefix, entry.length)
            if key in seen:
                raise ParameterError(f"duplicate routing entry {entry}")
            seen.add(key)
        # group entry indices by prefix length for vectorised LPM
        self._by_length: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for length in sorted({e.length for e in self.entries}, reverse=True):
            idx = np.array(
                [i for i, e in enumerate(self.entries) if e.length == length],
                dtype=np.int64,
            )
            prefixes = np.array(
                [self.entries[i].prefix for i in idx], dtype=np.uint32
            )
            order = np.argsort(prefixes)
            self._by_length[length] = (prefixes[order], idx[order])

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return f"RoutingTable(entries={len(self)})"

    @classmethod
    def synthetic(
        cls,
        address_space,
        *,
        coarse_fraction: float = 0.3,
        coarse_length: int = 16,
        rng=None,
    ) -> "RoutingTable":
        """A table covering an :class:`~repro.netsim.AddressSpace`.

        A fraction of the space's /24 destination networks is aggregated
        into ``/coarse_length`` supernets (as a backbone FIB would), the
        rest announced as /24s, plus a default route.
        """
        if not 0.0 <= coarse_fraction <= 1.0:
            raise ParameterError("coarse_fraction must lie in [0, 1]")
        rng = as_rng(rng)
        base = address_space.dst_base
        n = address_space.n_dst_prefixes
        slash24 = (np.uint32(base) >> np.uint32(8)) + np.arange(n, dtype=np.uint32)
        coarse_mask = rng.random(n) < coarse_fraction
        entries: list[PrefixKey] = []
        seen_coarse: set[int] = set()
        for p24, is_coarse in zip(slash24, coarse_mask):
            if is_coarse:
                supernet = int(p24) >> (24 - coarse_length)
                if supernet not in seen_coarse:
                    seen_coarse.add(supernet)
                    entries.append(PrefixKey(supernet, coarse_length))
            else:
                entries.append(PrefixKey(int(p24), 24))
        entries.append(PrefixKey(0, 0))  # default route
        return cls(entries)

    def lookup(self, addresses) -> np.ndarray:
        """Longest-prefix-match entry index per address (-1 if no match)."""
        addresses = np.asarray(addresses, dtype=np.uint32)
        result = np.full(addresses.shape, -1, dtype=np.int64)
        unmatched = np.ones(addresses.shape, dtype=bool)
        for length, (prefixes, idx) in self._by_length.items():
            if not unmatched.any():
                break
            candidate = prefix_of(addresses[unmatched], length)
            pos = np.searchsorted(prefixes, candidate)
            pos = np.clip(pos, 0, prefixes.size - 1)
            hit = prefixes[pos] == candidate
            targets = np.flatnonzero(unmatched)
            matched_targets = targets[hit]
            result[matched_targets] = idx[pos[hit]]
            unmatched[matched_targets] = False
        return result

    def entry_of(self, index: int) -> PrefixKey:
        """The table entry for a lookup result (raises on -1)."""
        if index < 0:
            raise ParameterError("address matched no routing entry")
        return self.entries[index]


def export_routable_flows(
    packets,
    table: RoutingTable,
    *,
    timeout: float = 60.0,
    min_packets: int = 2,
    keep_packet_map: bool = False,
):
    """Flow accounting keyed by forwarding-table entry (section VI-A).

    Packets whose destination matches no entry are dropped from the
    accounting (a router would not forward them).  Returns a
    :class:`~repro.flows.records.FlowSet` with ``key_kind="prefix"`` whose
    keys are the *entry indices* into ``table`` (use
    :meth:`RoutingTable.entry_of` to materialise the prefix).
    """
    from ..trace.packet import PACKET_DTYPE, PacketTrace
    from .exporter import export_flows

    if isinstance(packets, PacketTrace):
        packets = packets.packets
    packets = np.asarray(packets)
    if packets.dtype != PACKET_DTYPE:
        raise ParameterError(f"expected PACKET_DTYPE, got {packets.dtype}")

    entry_index = table.lookup(packets["dst_addr"])
    routed = entry_index >= 0
    # rewrite dst_addr to the entry index so the fast prefix exporter can
    # group on it directly (prefix_length=32 keeps the index intact)
    rewritten = packets[routed].copy()
    rewritten["dst_addr"] = entry_index[routed].astype(np.uint32)
    flows = export_flows(
        rewritten,
        key="prefix",
        prefix_length=32,
        timeout=timeout,
        min_packets=min_packets,
        keep_packet_map=keep_packet_map,
    )
    if keep_packet_map and flows.packet_flow_ids is not None:
        # re-expand the packet map to the original packet array
        full_map = np.full(packets.shape[0], -1, dtype=np.int64)
        full_map[np.flatnonzero(routed)] = flows.packet_flow_ids
        flows.packet_flow_ids = full_map
    return flows
