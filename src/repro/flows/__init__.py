"""Flow measurement substrate: classification, accounting, intervals.

Reproduces the paper's section III methodology (NetFlow-like accounting
with a 60 s idle timeout, two flow definitions, single-packet discard,
30-minute interval splitting).
"""

from .counts import CountSeries, active_flow_counts
from .exporter import (
    DEFAULT_TIMEOUT,
    export_five_tuple_flows,
    export_flows,
    export_prefix_flows,
)
from .routing import RoutingTable, export_routable_flows
from .intervals import (
    SplitExcess,
    boundary_split_excess,
    cumulative_arrival_curve,
    export_interval_flows,
    iter_intervals,
)
from .keys import (
    PROTO_TCP,
    PROTO_UDP,
    FiveTuple,
    PrefixKey,
    format_ipv4,
    parse_ipv4,
    prefix_of,
)
from .records import FlowRecord, FlowSet

# The calibration subsystem's mixture size law lives with the other
# synthesis-side size distributions; re-exported here because it is
# first and foremost a *flow-size* model (fit from measured flows).
from ..netsim.sizes import LognormalParetoMixture

__all__ = [
    "FlowRecord",
    "FlowSet",
    "LognormalParetoMixture",
    "FiveTuple",
    "PrefixKey",
    "format_ipv4",
    "parse_ipv4",
    "prefix_of",
    "PROTO_TCP",
    "PROTO_UDP",
    "DEFAULT_TIMEOUT",
    "export_flows",
    "export_five_tuple_flows",
    "export_prefix_flows",
    "iter_intervals",
    "export_interval_flows",
    "cumulative_arrival_curve",
    "boundary_split_excess",
    "SplitExcess",
    "RoutingTable",
    "export_routable_flows",
    "CountSeries",
    "active_flow_counts",
]
