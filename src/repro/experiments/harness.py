"""Shared experiment pipeline: synthesise -> measure -> model -> compare.

Every validation experiment in the paper follows the same loop (section
VI): take one measurement interval, export flows under one of the two
definitions, measure the coefficient of variation of the 200 ms-averaged
rate, parameterise the model from the flow statistics, and compare.  The
loop itself now lives in the scenario pipeline
(:mod:`repro.pipeline`); this module adapts pipeline results into the
:class:`IntervalMeasurement` scatter points the per-figure benchmarks
consume, and keeps the historical free functions as thin deprecation
shims.

Scaled constants
----------------
The paper's quantities and our scaled equivalents (DESIGN.md section 2):

====================  ==============  =====================
quantity              paper           here (scale 1/32-ish)
====================  ==============  =====================
analysis interval     30 min          120 s
averaging Delta       200 ms          200 ms
flow idle timeout     60 s            8 s
link                  OC-12 622 Mb/s  19.4 Mb/s
====================  ==============  =====================
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from ..core.parameters import FlowStatistics
from ..flows.records import FlowSet
from ..generation.engine import GenerationEngine
from ..netsim.workloads import DEFAULT_SCALE, LinkWorkload, table_i_workloads
from ..pipeline.runner import ScenarioResult, ScenarioRunner
from ..pipeline.spec import (
    EstimationSpec,
    FitSpec,
    FlowAccountingSpec,
    ScenarioSpec,
)
from ..pipeline.stages import AccountFlows, Estimate, FitModel, Synthesize
from ..trace.packet import PacketTrace

__all__ = [
    "DELTA",
    "SCALED_TIMEOUT",
    "SCALED_INTERVAL",
    "IntervalMeasurement",
    "measure_trace",
    "measurement_from_result",
    "cov_validation_points",
    "run_cov_validation",
    "utilization_class",
    "validation_workloads",
]

#: Averaging/sampling interval for the measured rate (paper: 200 ms).
DELTA = 0.2

#: Flow idle timeout scaled to our 120 s intervals (paper: 60 s / 30 min).
SCALED_TIMEOUT = 8.0

#: Analysis interval (paper: 30 minutes).
SCALED_INTERVAL = 120.0


@dataclass(frozen=True)
class IntervalMeasurement:
    """One point of the Figures 9-13 scatter plots."""

    workload: str
    seed: int
    flow_kind: str  # "five_tuple" or "prefix"
    utilization: float
    mean_rate_bps: float
    n_flows: int
    statistics: FlowStatistics
    measured_cov: float
    measured_variance: float
    model_cov: dict[float, float] = field(default_factory=dict)  # power -> CoV
    fitted_power: float = float("nan")
    fitted_kappa: float = float("nan")

    def relative_error(self, power: float) -> float:
        """(model - measured)/measured for the given shot power."""
        return self.model_cov[power] / self.measured_cov - 1.0

    def within_band(self, power: float, band: float = 0.20) -> bool:
        """Inside the paper's +-20% dashed lines?"""
        return abs(self.relative_error(power)) <= band

    @property
    def utilization_class(self) -> str:
        return utilization_class(self.mean_rate_bps)


def utilization_class(
    mean_rate_bps: float, *, scale: float = DEFAULT_SCALE
) -> str:
    """The paper's three marker classes: <50, 50-125, >125 Mbps (scaled).

    Figures 9-13 mark intervals by average rate: crosses below 50 Mbps,
    triangles between 50 and 125 Mbps, dots above 125 Mbps.
    """
    low_edge = 50e6 * scale
    high_edge = 125e6 * scale
    if mean_rate_bps < low_edge:
        return "low"
    if mean_rate_bps < high_edge:
        return "medium"
    return "high"


#: The measurement stage chain behind :func:`measure_trace` — no
#: generation, no validation report, exactly the section VI loop.
_MEASURE_STAGES = (Synthesize(), AccountFlows(), Estimate(), FitModel())


def _measurement_spec(
    *, name: str, flow_kind: str, delta: float, timeout: float, powers
) -> ScenarioSpec:
    return ScenarioSpec(
        name=name or "interval",
        workload=None,
        flows=FlowAccountingSpec(kind=flow_kind, timeout=timeout),
        estimation=EstimationSpec(delta=delta),
        fit=FitSpec(powers=tuple(float(b) for b in powers)),
        generation=None,
    )


def measurement_from_result(
    result: ScenarioResult, *, seed: int = -1, workload: str = ""
) -> IntervalMeasurement:
    """Convert a pipeline :class:`ScenarioResult` into a scatter point."""
    trace = result.trace
    fit = result.fit.power_fit
    return IntervalMeasurement(
        workload=workload or trace.name,
        seed=seed,
        flow_kind=result.accounting.flows.key_kind,
        utilization=trace.utilization,
        mean_rate_bps=trace.mean_rate_bps,
        n_flows=len(result.accounting.flows),
        statistics=result.estimation.statistics,
        measured_cov=result.estimation.series.coefficient_of_variation,
        measured_variance=result.estimation.series.variance,
        model_cov=dict(result.fit.model_cov),
        fitted_power=fit.power,
        fitted_kappa=fit.kappa,
    )


def _measure_interval(
    trace: PacketTrace,
    *,
    flow_kind: str,
    delta: float,
    timeout: float,
    powers,
    workload: str = "",
    seed: int = -1,
) -> tuple[IntervalMeasurement, FlowSet]:
    spec = _measurement_spec(
        name=workload or trace.name,
        flow_kind=flow_kind,
        delta=delta,
        timeout=timeout,
        powers=powers,
    )
    result = ScenarioRunner(_MEASURE_STAGES).run(spec, trace=trace)
    measurement = measurement_from_result(result, seed=seed, workload=workload)
    return measurement, result.accounting.flows


def measure_trace(
    trace: PacketTrace,
    *,
    flow_kind: str = "five_tuple",
    delta: float = DELTA,
    timeout: float = SCALED_TIMEOUT,
    powers=(0.0, 1.0, 2.0),
    workload: str = "",
    seed: int = -1,
) -> tuple[IntervalMeasurement, FlowSet]:
    """Run the section VI measurement pipeline on one interval.

    .. deprecated:: 1.1
        Thin shim over the scenario pipeline; use
        :func:`repro.pipeline.run_scenario` (with
        ``repro.pipeline.MEASUREMENT_STAGES`` and ``trace=...``) instead.

    Returns the measurement point plus the exported flow set (reused by
    figure-specific diagnostics).
    """
    warnings.warn(
        "measure_trace is deprecated; use repro.pipeline.run_scenario("
        "spec, trace=..., stages=repro.pipeline.MEASUREMENT_STAGES)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _measure_interval(
        trace,
        flow_kind=flow_kind,
        delta=delta,
        timeout=timeout,
        powers=powers,
        workload=workload,
        seed=seed,
    )


def validation_workloads(
    *, interval: float = SCALED_INTERVAL, scale: float = DEFAULT_SCALE
) -> list[LinkWorkload]:
    """The seven Table I links, each cut to one analysis interval."""
    return table_i_workloads(scale=scale, duration=interval)


def cov_validation_points(
    *,
    flow_kind: str = "five_tuple",
    seeds=range(4),
    workloads: list[LinkWorkload] | None = None,
    powers=(0.0, 1.0, 2.0),
    delta: float = DELTA,
    timeout: float = SCALED_TIMEOUT,
    workers: int = 1,
) -> list[IntervalMeasurement]:
    """Produce the scatter points behind Figures 9-13 (pipeline-backed).

    Each (workload, seed) pair is one independent interval; the paper's
    clusters come from the spread of link utilisations in Table I.  Pairs
    fan out over the generation engine's worker pool (``workers``); each
    carries its own seed, so the point list is deterministic regardless
    of the worker count.
    """
    if workloads is None:
        workloads = validation_workloads()

    def one(task):
        workload, seed = task
        trace = workload.synthesize(seed=seed).trace
        measurement, _ = _measure_interval(
            trace,
            flow_kind=flow_kind,
            delta=delta,
            timeout=timeout,
            powers=powers,
            workload=workload.name,
            seed=int(seed),
        )
        return measurement

    tasks = [(w, s) for w in workloads for s in seeds]
    engine = GenerationEngine(workers=int(workers))
    return engine.map_ordered(one, tasks)


def run_cov_validation(
    *,
    flow_kind: str = "five_tuple",
    seeds=range(4),
    workloads: list[LinkWorkload] | None = None,
    powers=(0.0, 1.0, 2.0),
    delta: float = DELTA,
    timeout: float = SCALED_TIMEOUT,
) -> list[IntervalMeasurement]:
    """Deprecated alias of :func:`cov_validation_points`.

    .. deprecated:: 1.1
        Use :func:`cov_validation_points` (same output, engine-parallel)
        or run registry scenarios via :func:`repro.pipeline.run_scenarios`.
    """
    warnings.warn(
        "run_cov_validation is deprecated; use cov_validation_points or "
        "repro.pipeline.run_scenarios",
        DeprecationWarning,
        stacklevel=2,
    )
    return cov_validation_points(
        flow_kind=flow_kind,
        seeds=seeds,
        workloads=workloads,
        powers=powers,
        delta=delta,
        timeout=timeout,
    )
