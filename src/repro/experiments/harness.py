"""Shared experiment pipeline: synthesise -> measure -> model -> compare.

Every validation experiment in the paper follows the same loop (section
VI): take one measurement interval, export flows under one of the two
definitions, measure the coefficient of variation of the 200 ms-averaged
rate, parameterise the model from the flow statistics, and compare.  This
module implements that loop once; the per-figure benchmarks drive it.

Scaled constants
----------------
The paper's quantities and our scaled equivalents (DESIGN.md section 2):

====================  ==============  =====================
quantity              paper           here (scale 1/32-ish)
====================  ==============  =====================
analysis interval     30 min          120 s
averaging Delta       200 ms          200 ms
flow idle timeout     60 s            8 s
link                  OC-12 622 Mb/s  19.4 Mb/s
====================  ==============  =====================
"""

from __future__ import annotations

from dataclasses import dataclass, field


from ..core.fitting import fit_power_from_variance
from ..core.model import PoissonShotNoiseModel
from ..core.parameters import FlowStatistics
from ..core.shots import PowerShot
from ..flows.exporter import export_flows
from ..flows.records import FlowSet
from ..netsim.workloads import DEFAULT_SCALE, LinkWorkload, table_i_workloads
from ..stats.timeseries import RateSeries
from ..trace.packet import PacketTrace

__all__ = [
    "DELTA",
    "SCALED_TIMEOUT",
    "SCALED_INTERVAL",
    "IntervalMeasurement",
    "measure_trace",
    "run_cov_validation",
    "utilization_class",
    "validation_workloads",
]

#: Averaging/sampling interval for the measured rate (paper: 200 ms).
DELTA = 0.2

#: Flow idle timeout scaled to our 120 s intervals (paper: 60 s / 30 min).
SCALED_TIMEOUT = 8.0

#: Analysis interval (paper: 30 minutes).
SCALED_INTERVAL = 120.0


@dataclass(frozen=True)
class IntervalMeasurement:
    """One point of the Figures 9-13 scatter plots."""

    workload: str
    seed: int
    flow_kind: str  # "five_tuple" or "prefix"
    utilization: float
    mean_rate_bps: float
    n_flows: int
    statistics: FlowStatistics
    measured_cov: float
    measured_variance: float
    model_cov: dict[float, float] = field(default_factory=dict)  # power -> CoV
    fitted_power: float = float("nan")
    fitted_kappa: float = float("nan")

    def relative_error(self, power: float) -> float:
        """(model - measured)/measured for the given shot power."""
        return self.model_cov[power] / self.measured_cov - 1.0

    def within_band(self, power: float, band: float = 0.20) -> bool:
        """Inside the paper's +-20% dashed lines?"""
        return abs(self.relative_error(power)) <= band

    @property
    def utilization_class(self) -> str:
        return utilization_class(self.mean_rate_bps)


def utilization_class(
    mean_rate_bps: float, *, scale: float = DEFAULT_SCALE
) -> str:
    """The paper's three marker classes: <50, 50-125, >125 Mbps (scaled).

    Figures 9-13 mark intervals by average rate: crosses below 50 Mbps,
    triangles between 50 and 125 Mbps, dots above 125 Mbps.
    """
    low_edge = 50e6 * scale
    high_edge = 125e6 * scale
    if mean_rate_bps < low_edge:
        return "low"
    if mean_rate_bps < high_edge:
        return "medium"
    return "high"


def measure_trace(
    trace: PacketTrace,
    *,
    flow_kind: str = "five_tuple",
    delta: float = DELTA,
    timeout: float = SCALED_TIMEOUT,
    powers=(0.0, 1.0, 2.0),
    workload: str = "",
    seed: int = -1,
) -> tuple[IntervalMeasurement, FlowSet]:
    """Run the section VI measurement pipeline on one interval.

    Returns the measurement point plus the exported flow set (reused by
    figure-specific diagnostics).
    """
    flows = export_flows(
        trace, key=flow_kind, timeout=timeout, keep_packet_map=True
    )
    mask = flows.packet_flow_ids >= 0
    series = RateSeries.from_packets(trace, delta, packet_mask=mask)
    statistics = flows.statistics(trace.duration)
    model = PoissonShotNoiseModel.from_flows(
        flows.sizes, flows.durations, trace.duration
    )
    model_cov = {
        float(b): model.with_shot(PowerShot(b)).coefficient_of_variation
        for b in powers
    }
    fit = fit_power_from_variance(series.variance, statistics)
    measurement = IntervalMeasurement(
        workload=workload or trace.name,
        seed=seed,
        flow_kind=flow_kind,
        utilization=trace.utilization,
        mean_rate_bps=trace.mean_rate_bps,
        n_flows=len(flows),
        statistics=statistics,
        measured_cov=series.coefficient_of_variation,
        measured_variance=series.variance,
        model_cov=model_cov,
        fitted_power=fit.power,
        fitted_kappa=fit.kappa,
    )
    return measurement, flows


def validation_workloads(
    *, interval: float = SCALED_INTERVAL, scale: float = DEFAULT_SCALE
) -> list[LinkWorkload]:
    """The seven Table I links, each cut to one analysis interval."""
    return table_i_workloads(scale=scale, duration=interval)


def run_cov_validation(
    *,
    flow_kind: str = "five_tuple",
    seeds=range(4),
    workloads: list[LinkWorkload] | None = None,
    powers=(0.0, 1.0, 2.0),
    delta: float = DELTA,
    timeout: float = SCALED_TIMEOUT,
) -> list[IntervalMeasurement]:
    """Produce the scatter points behind Figures 9-13.

    Each (workload, seed) pair is one independent interval; the paper's
    clusters come from the spread of link utilisations in Table I.
    """
    if workloads is None:
        workloads = validation_workloads()
    points = []
    for workload in workloads:
        for seed in seeds:
            synthesis = workload.synthesize(seed=seed)
            measurement, _ = measure_trace(
                synthesis.trace,
                flow_kind=flow_kind,
                delta=delta,
                timeout=timeout,
                powers=powers,
                workload=workload.name,
                seed=int(seed),
            )
            points.append(measurement)
    return points
