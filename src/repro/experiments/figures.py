"""Data builders for every figure of the paper.

Each ``figN_*`` function returns the numeric series the corresponding
figure plots; the benchmark harness prints them in paper-shaped rows and
EXPERIMENTS.md records paper-vs-measured.  Keeping the builders here (and
out of the benchmarks) makes them importable from notebooks and examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.covariance import autocorrelation as model_autocorrelation
from ..core.shots import PowerShot, Shot
from ..flows.intervals import SplitExcess, boundary_split_excess, cumulative_arrival_curve
from ..flows.records import FlowSet
from ..stats.correlation import correlogram
from ..stats.qq import QQData, qq_exponential
from .harness import IntervalMeasurement

__all__ = [
    "fig1_flow_splitting",
    "fig2_shot_construction",
    "fig3_4_interarrivals",
    "fig5_6_sequence_correlation",
    "fig7_shot_shapes",
    "fig8_rate_autocorrelation",
    "fig9_13_scatter",
    "fig11_power_histogram",
]


@dataclass(frozen=True)
class FlowSplittingData:
    """Figure 1: cumulative arrivals with the boundary-splitting spike."""

    times: np.ndarray
    cumulative: np.ndarray
    zoom_times: np.ndarray
    zoom_cumulative: np.ndarray
    excess: SplitExcess


def fig1_flow_splitting(
    flows: FlowSet, interval_length: float, *, head_fraction: float = 0.015
) -> FlowSplittingData:
    """Cumulative flow-arrival curve and early-interval excess (Figure 1)."""
    head = max(head_fraction * interval_length, 1e-6)
    times, counts = cumulative_arrival_curve(
        flows, 512, horizon=interval_length
    )
    zoom_times, zoom_counts = cumulative_arrival_curve(
        flows, 256, horizon=interval_length / 30.0
    )
    excess = boundary_split_excess(flows, interval_length, head=head)
    return FlowSplittingData(
        times=times,
        cumulative=counts,
        zoom_times=zoom_times,
        zoom_cumulative=zoom_counts,
        excess=excess,
    )


@dataclass(frozen=True)
class ShotConstructionData:
    """Figure 2: a handful of flows and the total rate they superpose to."""

    arrival_times: np.ndarray
    sizes: np.ndarray
    durations: np.ndarray
    grid: np.ndarray
    per_flow_rates: np.ndarray  # (n_flows, n_grid)
    total_rate: np.ndarray


def fig2_shot_construction(
    shot: Shot | None = None, *, n_flows: int = 4, horizon: float = 10.0, seed: int = 3
) -> ShotConstructionData:
    """Small deterministic shot-noise construction (the Figure 2 cartoon)."""
    shot = shot or PowerShot(1.0)
    rng = np.random.default_rng(seed)
    arrivals = np.sort(rng.uniform(0.0, horizon * 0.6, n_flows))
    sizes = rng.uniform(1e4, 5e4, n_flows)
    durations = rng.uniform(horizon * 0.2, horizon * 0.5, n_flows)
    grid = np.linspace(0.0, horizon, 512)
    per_flow = np.stack(
        [
            shot.rate(grid - t, s, d)
            for t, s, d in zip(arrivals, sizes, durations)
        ]
    )
    return ShotConstructionData(
        arrival_times=arrivals,
        sizes=sizes,
        durations=durations,
        grid=grid,
        per_flow_rates=per_flow,
        total_rate=per_flow.sum(axis=0),
    )


@dataclass(frozen=True)
class InterarrivalData:
    """Figures 3-4: Poisson-ness of flow arrivals for one flow definition."""

    qq: QQData
    lags: np.ndarray
    autocorrelation: np.ndarray
    mean_interarrival: float


def fig3_4_interarrivals(flows: FlowSet, *, max_lag: int = 20) -> InterarrivalData:
    """QQ-plot vs exponential + correlogram of flow inter-arrival times."""
    inter = flows.interarrival_times
    lags, rho = correlogram(inter, max_lag)
    return InterarrivalData(
        qq=qq_exponential(inter),
        lags=lags,
        autocorrelation=rho,
        mean_interarrival=float(inter.mean()),
    )


@dataclass(frozen=True)
class SequenceCorrelationData:
    """Figures 5-6: serial correlation of {D_n} and {S_n} (arrival order)."""

    lags: np.ndarray
    duration_autocorrelation: np.ndarray
    size_autocorrelation: np.ndarray


def fig5_6_sequence_correlation(
    flows: FlowSet, *, max_lag: int = 20
) -> SequenceCorrelationData:
    """Correlograms of the duration and size sequences in arrival order."""
    order = np.argsort(flows.starts, kind="stable")
    lags, rho_d = correlogram(flows.durations[order], max_lag)
    _, rho_s = correlogram(flows.sizes[order], max_lag)
    return SequenceCorrelationData(
        lags=lags,
        duration_autocorrelation=rho_d,
        size_autocorrelation=rho_s,
    )


def fig7_shot_shapes(
    powers=(0.0, 1.0, 0.5, 2.0), n_points: int = 101
) -> dict[float, np.ndarray]:
    """Normalised shot profiles g(v) on [0,1] for the Figure 7 panels."""
    v = np.linspace(0.0, 1.0, n_points)
    return {float(b): PowerShot(b).profile(v) for b in powers}


def fig8_rate_autocorrelation(
    flows: FlowSet,
    interval_length: float,
    *,
    powers=(0.0, 1.0, 2.0),
    max_lag: float = 0.4,
    n_points: int = 41,
) -> tuple[np.ndarray, dict[float, np.ndarray]]:
    """Theorem 2 autocorrelation of the total rate over [0, max_lag] s.

    Reproduces Figure 8: one curve per shot power, computed from the
    measured (S, D) sample of one interval.
    """
    lags = np.linspace(0.0, max_lag, n_points)
    ensemble = flows.to_ensemble()
    arrival_rate = len(flows) / interval_length
    curves = {
        float(b): model_autocorrelation(
            arrival_rate, ensemble, PowerShot(b), lags
        )
        for b in powers
    }
    return lags, curves


@dataclass(frozen=True)
class ScatterData:
    """Figures 9-13: model CoV vs measured CoV, one point per interval."""

    measured: np.ndarray
    modeled: np.ndarray
    classes: list[str]
    power: float

    @property
    def within_20pct(self) -> float:
        """Fraction of points inside the paper's dashed +-20% band."""
        rel = np.abs(self.modeled / self.measured - 1.0)
        return float(np.mean(rel <= 0.20))

    @property
    def mean_relative_error(self) -> float:
        return float(np.mean(self.modeled / self.measured - 1.0))


def fig9_13_scatter(
    measurements: list[IntervalMeasurement], power: float
) -> ScatterData:
    """Assemble one scatter plot from validation measurements."""
    return ScatterData(
        measured=np.array([m.measured_cov for m in measurements]),
        modeled=np.array([m.model_cov[float(power)] for m in measurements]),
        classes=[m.utilization_class for m in measurements],
        power=float(power),
    )


def fig11_power_histogram(
    measurements: list[IntervalMeasurement], bins=None
) -> tuple[np.ndarray, np.ndarray, float]:
    """Histogram of fitted powers b (Figure 11): (edges, share%, mean b)."""
    powers = np.array([m.fitted_power for m in measurements])
    if bins is None:
        bins = np.arange(0.0, max(8.0, powers.max()) + 1.0)
    counts, edges = np.histogram(powers, bins=bins)
    share = 100.0 * counts / max(powers.size, 1)
    return edges, share, float(powers.mean())
