"""Data builders for the paper's tables.

Table I (the trace summary) and Table II (prediction errors) in the same
shape the paper prints them, from synthetic workloads.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..core.model import PoissonShotNoiseModel
from ..core.shots import TriangularShot
from ..flows.exporter import export_flows
from ..netsim.workloads import LinkWorkload, table_i_workloads
from ..prediction.evaluation import Table2Row, compare_predictors
from ..stats.timeseries import RateSeries
from .harness import DELTA, SCALED_TIMEOUT

__all__ = ["Table1Row", "build_table1", "build_table2"]


@dataclass(frozen=True)
class Table1Row:
    """One row of the reproduced Table I."""

    date: str
    length_seconds: float
    target_mbps: float
    measured_mbps: float
    n_packets: int
    utilization: float

    @property
    def relative_error(self) -> float:
        return self.measured_mbps / self.target_mbps - 1.0


def build_table1(
    workloads: list[LinkWorkload] | None = None, *, seed: int = 0
) -> list[Table1Row]:
    """Synthesise each Table I link once and summarise it, paper-style."""
    if workloads is None:
        workloads = table_i_workloads()
    rows = []
    for workload in workloads:
        trace = workload.synthesize(seed=seed).trace
        rows.append(
            Table1Row(
                date=workload.name,
                length_seconds=trace.duration,
                target_mbps=workload.target_mean_rate_bps / 1e6,
                measured_mbps=trace.mean_rate_bps / 1e6,
                n_packets=len(trace),
                utilization=trace.utilization,
            )
        )
    return rows


def build_table2(
    workload: LinkWorkload,
    *,
    seed: int = 0,
    prediction_intervals=(1.0, 2.0, 4.0, 8.0, 16.0),
    base_delta: float = DELTA,
    timeout: float = SCALED_TIMEOUT,
    max_order: int = 8,
    shot=None,
) -> list[Table2Row]:
    """Reproduce Table II on one synthetic interval.

    The paper's horizons {2, 5, 10, 30, 60} s on a 30-minute interval
    scale to roughly {1, 2, 4, 8, 16} s on our 120 s-class intervals (the
    ratio horizon/interval is what matters for sample scarcity).

    The model-based predictor uses triangular shots, as in the paper's
    prediction experiment.
    """
    synthesis = workload.synthesize(seed=seed)
    trace = synthesis.trace
    flows = export_flows(
        trace, key="five_tuple", timeout=timeout, keep_packet_map=True
    )
    mask = flows.packet_flow_ids >= 0
    base = RateSeries.from_packets(trace, base_delta, packet_mask=mask)
    model = PoissonShotNoiseModel.from_flows(
        flows.sizes, flows.durations, trace.duration, shot or TriangularShot()
    )
    series_by_interval = {}
    for theta in prediction_intervals:
        factor = int(round(theta / base_delta))
        if factor < 1:
            continue
        series = base.resample(factor)
        if len(series) < 6:
            continue  # too few samples even for order 1 + evaluation
        series_by_interval[float(factor * base_delta)] = series
    return compare_predictors(series_by_interval, model, max_order=max_order)
