"""Experiment harness shared by the benchmarks and examples."""

from .figures import (
    fig1_flow_splitting,
    fig2_shot_construction,
    fig3_4_interarrivals,
    fig5_6_sequence_correlation,
    fig7_shot_shapes,
    fig8_rate_autocorrelation,
    fig9_13_scatter,
    fig11_power_histogram,
)
from .harness import (
    DELTA,
    SCALED_INTERVAL,
    SCALED_TIMEOUT,
    IntervalMeasurement,
    cov_validation_points,
    measure_trace,
    measurement_from_result,
    run_cov_validation,
    utilization_class,
    validation_workloads,
)
from .tables import Table1Row, build_table1, build_table2

__all__ = [
    "DELTA",
    "SCALED_TIMEOUT",
    "SCALED_INTERVAL",
    "IntervalMeasurement",
    "cov_validation_points",
    "measure_trace",
    "measurement_from_result",
    "run_cov_validation",
    "utilization_class",
    "validation_workloads",
    "fig1_flow_splitting",
    "fig2_shot_construction",
    "fig3_4_interarrivals",
    "fig5_6_sequence_correlation",
    "fig7_shot_shapes",
    "fig8_rate_autocorrelation",
    "fig9_13_scatter",
    "fig11_power_histogram",
    "Table1Row",
    "build_table1",
    "build_table2",
]
