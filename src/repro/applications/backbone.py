"""Edge-measurement + routing = per-link models (sections VI-A and VII-A).

The paper observes that flow statistics can be collected at the *edges* of
the backbone and combined with routing information to infer the traffic —
mean and variance — on **every** internal link without monitoring it.

Since the :mod:`repro.network` subsystem landed, the moment-sum logic
lives in :func:`repro.network.analytic.superpose_link_moments` and this
module is a thin, stable front door over it (see MIGRATION.md): declare
a topology and statistics-carrying demands, get per-link
mean/variance/required-capacity reports.  For *flow-population* demands
— full packet-level simulation of every link, ECMP, outages — use
:class:`repro.network.NetworkEngine` instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from .._util import check_positive, check_probability
from ..core.gaussian import GaussianApproximation
from ..core.parameters import FlowStatistics
from ..exceptions import TopologyError
from ..network.analytic import superpose_link_moments
from ..network.routing import ShortestPathRouting
from ..network.topology import Topology

__all__ = ["Demand", "LinkLoadReport", "BackboneNetwork"]


@dataclass(frozen=True)
class Demand:
    """An origin-destination traffic demand with edge-measured statistics."""

    source: str
    sink: str
    statistics: FlowStatistics
    shape_factor: float = 1.8  # parabolic default, as in Figures 10-11

    def __post_init__(self) -> None:
        check_positive("shape_factor", self.shape_factor)
        if self.source == self.sink:
            raise TopologyError("demand source and sink must differ")


@dataclass(frozen=True)
class LinkLoadReport:
    """Predicted traffic on one backbone link."""

    link: tuple[str, str]
    capacity_bps: float
    mean_rate: float  # bytes/s
    std: float  # bytes/s
    arrival_rate: float  # flows/s crossing the link
    n_demands: int
    required_capacity_bps: float
    utilization: float

    @property
    def cov(self) -> float:
        return self.std / self.mean_rate if self.mean_rate else 0.0

    @property
    def overloaded(self) -> bool:
        """True when installed capacity misses the epsilon-quantile need."""
        return self.required_capacity_bps > self.capacity_bps


class BackboneNetwork:
    """A provisioned backbone: topology + routed demands + per-link models.

    A compatibility shim over :mod:`repro.network`: the graph lives in a
    :class:`~repro.network.Topology`, routing is
    :class:`~repro.network.ShortestPathRouting`, and the per-link moment
    sums come from
    :func:`~repro.network.analytic.superpose_link_moments`.
    """

    def __init__(self) -> None:
        self.topology = Topology()
        self.demands: list[Demand] = []

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying annotated graph (mutations are honoured)."""
        return self.topology.graph

    # -- topology ---------------------------------------------------------

    def add_router(self, name: str) -> None:
        """Add a node (idempotent)."""
        self.topology.add_router(name)

    def add_link(
        self, a: str, b: str, *, capacity_bps: float, weight: float = 1.0,
        bidirectional: bool = True,
    ) -> None:
        """Add a link with capacity in bits/second and an IGP weight."""
        self.topology.add_link(
            a, b, capacity_bps=capacity_bps, weight=weight,
            bidirectional=bidirectional,
        )

    @property
    def links(self) -> list[tuple[str, str]]:
        return self.topology.links

    # -- demands ----------------------------------------------------------

    def add_demand(self, demand: Demand) -> None:
        """Register an OD demand; endpoints must exist in the topology."""
        for node in (demand.source, demand.sink):
            if node not in self.graph:
                raise TopologyError(f"unknown router {node!r}")
        self.demands.append(demand)

    def route(self, demand: Demand) -> list[str]:
        """IGP shortest path for a demand (weight attribute)."""
        routed = ShortestPathRouting().route(
            self.topology, demand.source, demand.sink
        )
        return list(routed.paths[0])

    # -- per-link models ----------------------------------------------------

    def link_statistics(self) -> dict[tuple[str, str], list[Demand]]:
        """Demands crossing each link after routing."""
        loads: dict[tuple[str, str], list[Demand]] = {
            edge: [] for edge in self.graph.edges()
        }
        for demand in self.demands:
            path = self.route(demand)
            for a, b in zip(path[:-1], path[1:]):
                loads[(a, b)].append(demand)
        return loads

    def link_report(self, epsilon: float = 0.01) -> list[LinkLoadReport]:
        """Per-link predicted mean/std and required capacity.

        Superposition: means and variances of independent Poisson
        shot-noise classes add (section VIII multi-class extension), so a
        link's predicted traffic follows directly from the edge-measured
        statistics of the demands routed over it — the moment sums are
        computed by :func:`repro.network.analytic.superpose_link_moments`.
        """
        epsilon = check_probability("epsilon", epsilon)
        moments = superpose_link_moments(
            self.topology, self.demands, routing=ShortestPathRouting()
        )
        reports = []
        for edge, entry in moments.items():
            if entry.mean_rate > 0 and entry.variance > 0:
                gaussian = GaussianApproximation(
                    entry.mean_rate, float(np.sqrt(entry.variance))
                )
                required = 8.0 * gaussian.required_capacity(epsilon)
            else:
                required = 0.0
            reports.append(
                LinkLoadReport(
                    link=edge,
                    capacity_bps=entry.capacity_bps,
                    mean_rate=entry.mean_rate,
                    std=float(np.sqrt(entry.variance)),
                    arrival_rate=entry.arrival_rate,
                    n_demands=entry.n_demands,
                    required_capacity_bps=required,
                    utilization=8.0 * entry.mean_rate / entry.capacity_bps,
                )
            )
        return reports

    def overloaded_links(self, epsilon: float = 0.01) -> list[LinkLoadReport]:
        """Links whose installed capacity misses the epsilon target."""
        return [r for r in self.link_report(epsilon) if r.overloaded]
