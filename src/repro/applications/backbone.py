"""Edge-measurement + routing = per-link models (sections VI-A and VII-A).

The paper observes that flow statistics can be collected at the *edges* of
the backbone and combined with routing information to infer the traffic —
mean and variance — on **every** internal link without monitoring it.
This module implements that engineering loop on a networkx topology:

1. declare a backbone graph with link capacities;
2. declare origin-destination *demands*, each carrying the three-parameter
   flow statistics measured at its ingress;
3. demands are routed (shortest path by default);
4. each link superposes the statistics of the demands crossing it —
   Poisson shot-noises add, so per-link ``lambda`` and
   ``lambda * E[S^2/D]`` are sums — yielding a
   :class:`~repro.core.model.ThreeParameterModel` per link;
5. reports flag links whose required capacity exceeds what is installed.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from .._util import check_positive, check_probability
from ..core.gaussian import GaussianApproximation
from ..core.parameters import FlowStatistics
from ..exceptions import TopologyError

__all__ = ["Demand", "LinkLoadReport", "BackboneNetwork"]


@dataclass(frozen=True)
class Demand:
    """An origin-destination traffic demand with edge-measured statistics."""

    source: str
    sink: str
    statistics: FlowStatistics
    shape_factor: float = 1.8  # parabolic default, as in Figures 10-11

    def __post_init__(self) -> None:
        check_positive("shape_factor", self.shape_factor)
        if self.source == self.sink:
            raise TopologyError("demand source and sink must differ")


@dataclass(frozen=True)
class LinkLoadReport:
    """Predicted traffic on one backbone link."""

    link: tuple[str, str]
    capacity_bps: float
    mean_rate: float  # bytes/s
    std: float  # bytes/s
    arrival_rate: float  # flows/s crossing the link
    n_demands: int
    required_capacity_bps: float
    utilization: float

    @property
    def cov(self) -> float:
        return self.std / self.mean_rate if self.mean_rate else 0.0

    @property
    def overloaded(self) -> bool:
        """True when installed capacity misses the epsilon-quantile need."""
        return self.required_capacity_bps > self.capacity_bps


class BackboneNetwork:
    """A provisioned backbone: topology + routed demands + per-link models."""

    def __init__(self) -> None:
        self.graph = nx.DiGraph()
        self.demands: list[Demand] = []

    # -- topology ---------------------------------------------------------

    def add_router(self, name: str) -> None:
        """Add a node (idempotent)."""
        self.graph.add_node(str(name))

    def add_link(
        self, a: str, b: str, *, capacity_bps: float, weight: float = 1.0,
        bidirectional: bool = True,
    ) -> None:
        """Add a link with capacity in bits/second and an IGP weight."""
        capacity_bps = check_positive("capacity_bps", capacity_bps)
        weight = check_positive("weight", weight)
        self.graph.add_edge(a, b, capacity_bps=capacity_bps, weight=weight)
        if bidirectional:
            self.graph.add_edge(b, a, capacity_bps=capacity_bps, weight=weight)

    @property
    def links(self) -> list[tuple[str, str]]:
        return list(self.graph.edges())

    # -- demands ----------------------------------------------------------

    def add_demand(self, demand: Demand) -> None:
        """Register an OD demand; endpoints must exist in the topology."""
        for node in (demand.source, demand.sink):
            if node not in self.graph:
                raise TopologyError(f"unknown router {node!r}")
        self.demands.append(demand)

    def route(self, demand: Demand) -> list[str]:
        """IGP shortest path for a demand (weight attribute)."""
        try:
            return nx.shortest_path(
                self.graph, demand.source, demand.sink, weight="weight"
            )
        except nx.NetworkXNoPath as exc:
            raise TopologyError(
                f"no route from {demand.source!r} to {demand.sink!r}"
            ) from exc

    # -- per-link models ----------------------------------------------------

    def link_statistics(self) -> dict[tuple[str, str], list[Demand]]:
        """Demands crossing each link after routing."""
        loads: dict[tuple[str, str], list[Demand]] = {
            edge: [] for edge in self.graph.edges()
        }
        for demand in self.demands:
            path = self.route(demand)
            for a, b in zip(path[:-1], path[1:]):
                loads[(a, b)].append(demand)
        return loads

    def link_report(self, epsilon: float = 0.01) -> list[LinkLoadReport]:
        """Per-link predicted mean/std and required capacity.

        Superposition: means and variances of independent Poisson
        shot-noise classes add (section VIII multi-class extension), so a
        link's predicted traffic follows directly from the edge-measured
        statistics of the demands routed over it.
        """
        epsilon = check_probability("epsilon", epsilon)
        reports = []
        for edge, demands in self.link_statistics().items():
            capacity = self.graph.edges[edge]["capacity_bps"]
            mean = sum(d.statistics.mean_rate for d in demands)
            variance = sum(
                d.statistics.variance(d.shape_factor) for d in demands
            )
            arrival = sum(d.statistics.arrival_rate for d in demands)
            if mean > 0 and variance > 0:
                gaussian = GaussianApproximation(mean, float(np.sqrt(variance)))
                required = 8.0 * gaussian.required_capacity(epsilon)
            else:
                required = 0.0
            reports.append(
                LinkLoadReport(
                    link=edge,
                    capacity_bps=capacity,
                    mean_rate=mean,
                    std=float(np.sqrt(variance)),
                    arrival_rate=arrival,
                    n_demands=len(demands),
                    required_capacity_bps=required,
                    utilization=8.0 * mean / capacity,
                )
            )
        return reports

    def overloaded_links(self, epsilon: float = 0.01) -> list[LinkLoadReport]:
        """Links whose installed capacity misses the epsilon target."""
        return [r for r in self.link_report(epsilon) if r.overloaded]
