"""Section VII applications: dimensioning, anomaly detection, backbone
monitoring from edge measurements + routing."""

from .anomaly import AnomalyDetector, AnomalyEvent, inject_flood, inject_outage
from .backbone import BackboneNetwork, Demand, LinkLoadReport
from .dimensioning import (
    ProvisioningReport,
    SmoothingPoint,
    bandwidth_savings,
    provision_capacity,
    smoothing_curve,
    what_if,
)

__all__ = [
    "ProvisioningReport",
    "provision_capacity",
    "SmoothingPoint",
    "smoothing_curve",
    "bandwidth_savings",
    "what_if",
    "AnomalyDetector",
    "AnomalyEvent",
    "inject_flood",
    "inject_outage",
    "BackboneNetwork",
    "Demand",
    "LinkLoadReport",
]
