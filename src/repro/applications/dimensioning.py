"""Network dimensioning and provisioning — section VII-A of the paper.

Three tools the paper describes:

* :func:`provision_capacity` — pick the link bandwidth
  ``C = E[R] + F(epsilon) * sigma`` so congestion occurs less than a
  fraction ``epsilon`` of time (Gaussian approximation of section V-E);
* :func:`smoothing_curve` — the effect of growing the flow arrival rate:
  the mean grows like ``lambda`` but the standard deviation only like
  ``sqrt(lambda)``, so traffic smooths and bandwidth need not scale
  linearly with demand;
* :func:`what_if` — impact of changes in the flow population (new
  applications with bigger transfers, congested access links stretching
  durations) on the moments the model predicts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import check_positive, check_probability
from ..core.gaussian import normal_quantile
from ..core.parameters import FlowStatistics

__all__ = [
    "ProvisioningReport",
    "provision_capacity",
    "SmoothingPoint",
    "smoothing_curve",
    "bandwidth_savings",
    "what_if",
]


@dataclass(frozen=True)
class ProvisioningReport:
    """Capacity recommendation for one link."""

    mean_rate: float  # bytes/second
    std: float  # bytes/second
    epsilon: float  # tolerated congestion fraction
    quantile: float  # F(epsilon)
    capacity: float  # bytes/second

    @property
    def capacity_bps(self) -> float:
        """Capacity in bits/second (how link speeds are quoted)."""
        return 8.0 * self.capacity

    @property
    def headroom_ratio(self) -> float:
        """Provisioned capacity over mean rate (>= 1)."""
        return self.capacity / self.mean_rate


def provision_capacity(
    statistics: FlowStatistics,
    epsilon: float = 0.01,
    *,
    shape_factor: float = 1.8,
) -> ProvisioningReport:
    """Bandwidth so that ``P(R > C) <= epsilon`` under the Gaussian law.

    ``shape_factor`` is the shot variance multiplier ``(b+1)^2/(2b+1)``;
    the default 1.8 is the parabolic shot the paper finds best for 5-tuple
    flows.
    """
    epsilon = check_probability("epsilon", epsilon)
    mean = statistics.mean_rate
    std = statistics.std(shape_factor)
    quantile = normal_quantile(epsilon)
    return ProvisioningReport(
        mean_rate=mean,
        std=std,
        epsilon=epsilon,
        quantile=quantile,
        capacity=mean + quantile * std,
    )


@dataclass(frozen=True)
class SmoothingPoint:
    """One point of the lambda-scaling study."""

    arrival_factor: float
    mean_rate: float
    std: float
    cov: float
    capacity: float

    @property
    def capacity_per_mean(self) -> float:
        return self.capacity / self.mean_rate


def smoothing_curve(
    statistics: FlowStatistics,
    factors,
    *,
    epsilon: float = 0.01,
    shape_factor: float = 1.8,
) -> list[SmoothingPoint]:
    """Sweep the arrival rate: the section VII-A aggregation-smoothing law.

    For each multiplier ``f`` the returned point has mean ``f * mean``,
    standard deviation ``sqrt(f) * std`` and hence CoV shrinking as
    ``1/sqrt(f)`` — multiplexing more flows makes backbone traffic
    smoother.
    """
    points = []
    for factor in np.asarray(list(factors), dtype=np.float64):
        scaled = statistics.scaled_arrivals(float(factor))
        report = provision_capacity(scaled, epsilon, shape_factor=shape_factor)
        points.append(
            SmoothingPoint(
                arrival_factor=float(factor),
                mean_rate=report.mean_rate,
                std=report.std,
                cov=report.std / report.mean_rate,
                capacity=report.capacity,
            )
        )
    return points


def bandwidth_savings(
    statistics: FlowStatistics,
    factor: float,
    *,
    epsilon: float = 0.01,
    shape_factor: float = 1.8,
) -> float:
    """Fractional capacity saved versus linear scaling when traffic grows.

    A naive operator scales capacity by ``factor``; the model says only
    the mean scales that way while the fluctuation term scales by
    ``sqrt(factor)``.  Returns ``1 - C_model / (factor * C_now)``.
    """
    factor = check_positive("factor", factor)
    now = provision_capacity(statistics, epsilon, shape_factor=shape_factor)
    scaled = provision_capacity(
        statistics.scaled_arrivals(factor), epsilon, shape_factor=shape_factor
    )
    return 1.0 - scaled.capacity / (factor * now.capacity)


def what_if(
    statistics: FlowStatistics,
    *,
    arrival_factor: float = 1.0,
    size_factor: float = 1.0,
    duration_factor: float = 1.0,
) -> FlowStatistics:
    """Transform the three parameters under population changes (§VII-A).

    * ``size_factor`` a: sizes S -> aS, so ``E[S] -> a E[S]`` and
      ``E[S^2/D] -> a^2 E[S^2/D]`` (e.g. a new application with larger
      transfers);
    * ``duration_factor`` d: durations D -> dD, so ``E[S^2/D] -> E[S^2/D]/d``
      (e.g. more users congesting access networks stretches durations and
      *reduces* backbone burstiness);
    * ``arrival_factor``: multiplies ``lambda``.
    """
    check_positive("arrival_factor", arrival_factor)
    check_positive("size_factor", size_factor)
    check_positive("duration_factor", duration_factor)
    return FlowStatistics(
        arrival_rate=statistics.arrival_rate * arrival_factor,
        mean_size=statistics.mean_size * size_factor,
        mean_square_size_over_duration=(
            statistics.mean_square_size_over_duration
            * size_factor**2
            / duration_factor
        ),
        mean_duration=statistics.mean_duration * duration_factor,
        flow_count=statistics.flow_count,
    )
