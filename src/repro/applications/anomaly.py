"""Model-based anomaly detection (the paper's introduction motivates the
model with "detection of anomalies (e.g., denial of service attacks or
link failures)").

The detector compares measured rate samples against the model's Gaussian
band: a run of samples beyond ``threshold_sigma`` standard deviations
flags an anomaly — upward runs look like floods (DoS), downward runs like
failures or routing changes.  Helper generators inject both kinds of
events into synthetic traces for end-to-end testing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import as_rng, check_positive
from ..core.gaussian import GaussianApproximation
from ..exceptions import ParameterError
from ..flows.keys import PROTO_UDP
from ..stats.timeseries import RateSeries
from ..trace.io import merge_packets
from ..trace.packet import PacketTrace, packets_from_columns

__all__ = [
    "AnomalyEvent",
    "AnomalyDetector",
    "inject_flood",
    "inject_outage",
]


@dataclass(frozen=True)
class AnomalyEvent:
    """A detected anomalous episode in a rate series."""

    start_index: int
    end_index: int  # exclusive
    kind: str  # "flood" or "drop"
    peak_z: float  # most extreme standardised deviation in the run

    @property
    def n_samples(self) -> int:
        return self.end_index - self.start_index

    def start_time(self, delta: float) -> float:
        return self.start_index * delta


class AnomalyDetector:
    """Run-length z-score detector on Delta-averaged rate samples.

    Parameters
    ----------
    gaussian:
        The model's Gaussian approximation of the rate (mean + std from
        flow statistics — what a router could maintain online).
    threshold_sigma:
        Samples beyond this many sigmas are anomalous candidates.
    min_run:
        Minimum consecutive anomalous samples to raise an event;
        suppresses isolated bursts the model explains as normal
        variability.
    """

    def __init__(
        self,
        gaussian: GaussianApproximation,
        *,
        threshold_sigma: float = 3.0,
        min_run: int = 3,
    ) -> None:
        self.gaussian = gaussian
        self.threshold_sigma = check_positive("threshold_sigma", threshold_sigma)
        if min_run < 1:
            raise ParameterError("min_run must be >= 1")
        self.min_run = int(min_run)

    def scores(self, series: RateSeries) -> np.ndarray:
        """Standardised deviations ``(x - mean)/std`` per sample."""
        return self.gaussian.standardize(series.values)

    def detect(self, series: RateSeries) -> list[AnomalyEvent]:
        """All anomalous runs in the series, in time order."""
        z = self.scores(series)
        above = z > self.threshold_sigma
        below = z < -self.threshold_sigma
        events: list[AnomalyEvent] = []
        for mask, kind in ((above, "flood"), (below, "drop")):
            events.extend(self._runs(mask, z, kind))
        return sorted(events, key=lambda e: e.start_index)

    def _runs(self, mask: np.ndarray, z: np.ndarray, kind: str):
        edges = np.diff(mask.astype(np.int8), prepend=0, append=0)
        starts = np.flatnonzero(edges == 1)
        ends = np.flatnonzero(edges == -1)
        for start, end in zip(starts, ends):
            if end - start >= self.min_run:
                window = z[start:end]
                peak = window[np.argmax(np.abs(window))]
                yield AnomalyEvent(
                    start_index=int(start),
                    end_index=int(end),
                    kind=kind,
                    peak_z=float(peak),
                )


def inject_flood(
    trace: PacketTrace,
    *,
    start: float,
    duration: float,
    rate_bytes_per_s: float,
    packet_size: int = 60,
    target_addr: int = 0x0A0A0A0A,
    rng=None,
) -> PacketTrace:
    """Overlay a constant-rate small-packet flood (DoS-like) on a trace.

    The flood consists of minimum-size packets from random spoofed
    sources to one victim address — the classic SYN/UDP flood signature.
    """
    check_positive("duration", duration)
    check_positive("rate_bytes_per_s", rate_bytes_per_s)
    if not 0.0 <= start < trace.duration:
        raise ParameterError("flood must start inside the trace")
    rng = as_rng(rng)
    end = min(start + duration, trace.duration)
    n_packets = int(rate_bytes_per_s * (end - start) / packet_size)
    if n_packets == 0:
        raise ParameterError("flood rate too low to produce a single packet")
    timestamps = np.sort(start + rng.random(n_packets) * (end - start))
    flood = packets_from_columns(
        timestamps,
        rng.integers(0, 2**32 - 1, n_packets, dtype=np.int64).astype(np.uint32),
        np.full(n_packets, target_addr, dtype=np.uint32),
        rng.integers(1024, 65535, n_packets, dtype=np.int64).astype(np.uint16),
        np.full(n_packets, 80, dtype=np.uint16),
        np.full(n_packets, PROTO_UDP, dtype=np.uint8),
        np.full(n_packets, packet_size, dtype=np.uint16),
    )
    merged = merge_packets(trace.packets, flood)
    return PacketTrace(
        merged,
        link_capacity=trace.link_capacity,
        duration=trace.duration,
        name=f"{trace.name}+flood",
    )


def inject_outage(
    trace: PacketTrace, *, start: float, duration: float, drop_fraction: float = 0.9,
    rng=None,
) -> PacketTrace:
    """Drop a fraction of packets in a window (link failure / reroute)."""
    check_positive("duration", duration)
    if not 0.0 <= start < trace.duration:
        raise ParameterError("outage must start inside the trace")
    if not 0.0 < drop_fraction <= 1.0:
        raise ParameterError("drop_fraction must lie in (0, 1]")
    rng = as_rng(rng)
    ts = trace.packets["timestamp"]
    in_window = (ts >= start) & (ts < start + duration)
    drop = in_window & (rng.random(ts.size) < drop_fraction)
    return PacketTrace(
        trace.packets[~drop].copy(),
        link_capacity=trace.link_capacity,
        duration=trace.duration,
        name=f"{trace.name}+outage",
    )
