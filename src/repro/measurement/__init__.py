"""Streaming, sharded measurement engine — the section III/V pipeline at scale.

The measurement mirror of :mod:`repro.generation`: where the generation
engine streams synthetic traffic *out* in bounded memory, the
:class:`MeasurementEngine` streams captures *in* — chunked flow
accounting with an open-flow carry table, key-space sharding over a
worker pool, and single-pass filtered rate measurement — while staying
bit-for-bit equal to the in-memory ``export_flows`` +
``RateSeries.from_packets`` path for any ``chunk`` and ``workers``.

Quickstart::

    from repro.measurement import MeasurementEngine

    engine = MeasurementEngine(chunk=1_000_000, workers=4)
    result = engine.measure_file("capture.rptr", delta=0.2, timeout=60.0)
    print(result.flows, result.series.coefficient_of_variation)
"""

from .engine import (
    DEFAULT_FILE_CHUNK,
    MeasurementConfig,
    MeasurementEngine,
    MeasurementResult,
    iter_packet_chunks,
)
from .reference import reference_export_flows, reference_ewma_replay
from .streaming import StreamingMeasurement

__all__ = [
    "DEFAULT_FILE_CHUNK",
    "MeasurementConfig",
    "MeasurementEngine",
    "MeasurementResult",
    "StreamingMeasurement",
    "iter_packet_chunks",
    "reference_export_flows",
    "reference_ewma_replay",
]
