"""Chunked flow accounting with an open-flow carry table.

:class:`StreamingMeasurement` is the out-of-core core of the measurement
engine: it consumes a time-ordered packet trace chunk by chunk and
produces exactly the artifacts of the in-memory section III/V pipeline —
the :class:`~repro.flows.records.FlowSet` of
:func:`~repro.flows.exporter.export_flows` and the single-packet-filtered
:class:`~repro.stats.timeseries.RateSeries` of
``RateSeries.from_packets(trace, delta, packet_mask=...)`` — **bit for
bit**, for any chunking and any shard count.

Three properties make exact streaming possible:

* **Exact integer arithmetic.**  Packet sizes are integers, so per-flow
  byte sums and per-bin byte volumes are integer-valued float64 values
  far below 2**53.  Integer sums are associative in float64, which frees
  the accumulation from the ordering constraints the generation engine
  had to engineer around: chunk partials and cross-shard merges reproduce
  the monolithic result bitwise.
* **An open-flow carry table.**  Flows are split at idle gaps
  ``> timeout`` exactly like the exporter; a flow whose last packet falls
  within ``timeout`` of the chunk boundary stays *open* in a carry table
  (key words, start, last seen, byte/packet totals) and is either
  continued by the next chunk (boundary gap ``<= timeout``), closed when
  its key reappears later, or closed as *stale* once the stream has
  advanced more than ``timeout`` past it — so carry size tracks the
  active-flow population, not the trace length.
* **Deferred discard accounting.**  The rate series must exclude packets
  of discarded flows (single-packet / zero-duration / ``< min_packets``),
  but a flow's fate is unknown while it is open.  All packets are added
  to the bin accumulator immediately; an open flow that is not yet
  provably kept carries a tiny compressed ``(bin, bytes)`` pending list
  (at most ``max(1, min_packets - 1)`` entries — an unresolved flow has
  fewer than ``min_packets`` packets or a single distinct timestamp), and
  the pending amounts are subtracted if the flow closes discarded.

The key space is sharded by a pure function of the packed key words, so
independent shards can be processed by a worker pool; shard results merge
exactly (integer arithmetic again) and the final flow ordering — by key,
then start time, the exporter's order — is restored with one flow-level
lexsort.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import FlowExportError
from ..execution import check_backend, make_pool, stage_timer
from ..flows.exporter import DEFAULT_TIMEOUT
from ..flows.keys import (
    five_tuple_key_dtype,
    pack_packet_keys,
    packed_key_order,
    unpack_packet_keys,
)
from ..flows.records import FlowSet
from ..stats.timeseries import RateSeries
from ..trace.packet import PACKET_DTYPE, PacketTrace

__all__ = ["StreamingMeasurement"]

_EMPTY_I64 = np.zeros(0, dtype=np.int64)
_EMPTY_U64 = np.zeros(0, dtype=np.uint64)
_EMPTY_F64 = np.zeros(0, dtype=np.float64)

#: Sentinel for "no accumulator bin" (out-of-range packet or empty slot).
_NO_BIN = np.int64(-1)


def _match_sorted(a_hi, a_lo, b_hi, b_lo):
    """Indices ``(ai, bi)`` of equal keys between two sorted unique lists."""
    na = a_hi.size
    if na == 0 or b_hi.size == 0:
        return _EMPTY_I64, _EMPTY_I64
    cat_hi = np.concatenate([a_hi, b_hi])
    cat_lo = np.concatenate([a_lo, b_lo])
    order = packed_key_order(cat_hi, cat_lo)
    oh = cat_hi[order]
    ol = cat_lo[order]
    eq = (oh[1:] == oh[:-1]) & (ol[1:] == ol[:-1])
    at = np.flatnonzero(eq)
    # lexsort is stable and a-entries precede b-entries in the
    # concatenation, so of an equal pair the first index is the a side
    return order[at].astype(np.int64), (order[at + 1] - na).astype(np.int64)


class _ShardState:
    """Open-flow carry table of one key shard (arrays sorted by key)."""

    __slots__ = (
        "hi", "lo", "start", "last", "size", "count",
        "pend_n", "pend_bin", "pend_byte",
    )

    def __init__(self, pend_width: int) -> None:
        self.hi = _EMPTY_U64
        self.lo = _EMPTY_U64
        self.start = _EMPTY_F64
        self.last = _EMPTY_F64
        self.size = _EMPTY_F64
        self.count = _EMPTY_I64
        self.pend_n = _EMPTY_I64
        self.pend_bin = np.zeros((0, pend_width), dtype=np.int64)
        self.pend_byte = np.zeros((0, pend_width), dtype=np.float64)


class _ChunkResult:
    """Closed flows and accumulator corrections of one shard-chunk step."""

    __slots__ = ("flows", "sub_bins", "sub_bytes", "discarded_packets")

    def __init__(self) -> None:
        self.flows: list[tuple] = []
        self.sub_bins: list[np.ndarray] = []
        self.sub_bytes: list[np.ndarray] = []
        self.discarded_packets = 0


def _compress_pairs(bins2, bytes2, width_out):
    """Row-wise merge of ``(bin, bytes)`` slots, summing duplicate bins.

    ``bins2`` is ``(m, w)`` with :data:`_NO_BIN` marking empty slots; the
    result has at most ``width_out`` populated slots per row (guaranteed
    by the pending-size invariant, asserted here).
    """
    m, w = bins2.shape
    sentinel = np.iinfo(np.int64).max
    key = np.where(bins2 < 0, sentinel, bins2)
    order = np.argsort(key, axis=1, kind="stable")
    kb = np.take_along_axis(key, order, axis=1)
    vb = np.take_along_axis(bytes2, order, axis=1)
    out_bin = np.full((m, width_out), _NO_BIN, dtype=np.int64)
    out_byte = np.zeros((m, width_out), dtype=np.float64)
    col = np.full(m, -1, dtype=np.int64)
    for j in range(w):
        kj = kb[:, j]
        valid = kj != sentinel
        if not valid.any():
            break
        new_run = valid if j == 0 else valid & (kj != kb[:, j - 1])
        col = col + new_run.astype(np.int64)
        rows = np.flatnonzero(valid)
        cols = col[rows]
        if cols.size and int(cols.max()) >= width_out:
            raise FlowExportError(
                "internal error: pending byte map overflowed its bound"
            )
        out_bin[rows, cols] = kj[rows]
        # duplicate bins accumulate into the run's first slot
        np.add.at(out_byte, (rows, cols), vb[:, j][rows])
    return out_bin, out_byte, col + 1


def _pend_pairs(result: _ChunkResult, pend_bin, pend_byte, pend_n):
    """Queue the valid pending pairs of discarded flows for subtraction."""
    if pend_bin.size == 0:
        return
    width = pend_bin.shape[1]
    valid = (np.arange(width)[None, :] < pend_n[:, None]) & (pend_bin >= 0)
    if valid.any():
        result.sub_bins.append(pend_bin[valid])
        result.sub_bytes.append(pend_byte[valid])


@dataclass(frozen=True)
class _ShardParams:
    """The per-shard constants of one measurement (picklable)."""

    timeout: float
    min_packets: int
    pend_width: int
    track: bool  # whether a rate series is being accumulated


def _kept(params: _ShardParams, counts, starts, ends):
    return (counts >= params.min_packets) & (ends > starts)


def _close_carry(params, state: _ShardState, idx, result: _ChunkResult):
    """Emit carried flows ``idx`` (closed), with discard corrections."""
    if idx.size == 0:
        return
    kept = _kept(params, state.count[idx], state.start[idx], state.last[idx])
    k = idx[kept]
    if k.size:
        result.flows.append((
            state.start[k], state.last[k], state.size[k],
            state.count[k], state.hi[k], state.lo[k],
        ))
    d = idx[~kept]
    if d.size:
        result.discarded_packets += int(state.count[d].sum())
        if params.track:
            _pend_pairs(
                result, state.pend_bin[d], state.pend_byte[d],
                state.pend_n[d],
            )


def _rebuild_carry(params, state: _ShardState, keep_mask, new_rows, new_pend):
    """Replace the carry table with kept rows + the chunk's open flows."""
    if new_rows is None:
        n_hi = n_lo = _EMPTY_U64
        n_start = n_last = n_size = _EMPTY_F64
        n_count = _EMPTY_I64
        n_pn = _EMPTY_I64
        n_pb = np.zeros((0, params.pend_width), dtype=np.int64)
        n_py = np.zeros((0, params.pend_width), dtype=np.float64)
    else:
        n_hi, n_lo, n_start, n_last, n_size, n_count = new_rows
        n_pn, n_pb, n_py = new_pend
    hi = np.concatenate([state.hi[keep_mask], n_hi])
    lo = np.concatenate([state.lo[keep_mask], n_lo])
    order = packed_key_order(hi, lo)
    state.hi = hi[order]
    state.lo = lo[order]
    state.start = np.concatenate([state.start[keep_mask], n_start])[order]
    state.last = np.concatenate([state.last[keep_mask], n_last])[order]
    state.size = np.concatenate([state.size[keep_mask], n_size])[order]
    state.count = np.concatenate([state.count[keep_mask], n_count])[order]
    state.pend_n = np.concatenate([state.pend_n[keep_mask], n_pn])[order]
    state.pend_bin = np.concatenate([state.pend_bin[keep_mask], n_pb])[order]
    state.pend_byte = np.concatenate(
        [state.pend_byte[keep_mask], n_py]
    )[order]


def _process_shard(task):  # noqa: E741
    """One shard-chunk step: ``task -> (updated state, result)``.

    A pure function of the task tuple (the state is mutated and
    returned), so shards can run on any backend — with the process
    backend the worker operates on its own copy and the parent adopts
    the returned table.
    """
    params, state, t, s, h, l, b, t_max, time_sorted = task
    result = _ChunkResult()
    timeout = params.timeout
    track = params.track
    width = params.pend_width

    if t.size == 0:
        # no packets for this shard, but time still advanced: close
        # carried flows the stream has moved more than timeout past
        stale = np.flatnonzero(state.last < t_max - timeout)
        if stale.size:
            _close_carry(params, state, stale, result)
            keep = np.ones(state.hi.size, dtype=bool)
            keep[stale] = False
            _rebuild_carry(params, state, keep, None, None)
        return state, result

    order = packed_key_order(h, l, within=None if time_sorted else t)
    t = t[order]
    s = s[order]
    h = h[order]
    l = l[order]  # noqa: E741
    if track:
        b = b[order]

    key_change = np.concatenate(
        [[True], (h[1:] != h[:-1]) | (l[1:] != l[:-1])]
    )
    gap_split = np.concatenate([[False], (t[1:] - t[:-1]) > timeout])
    new_seg = key_change | gap_split
    seg_id = np.cumsum(new_seg) - 1
    nseg = int(seg_id[-1]) + 1
    seg_first = np.flatnonzero(new_seg)
    seg_last = np.concatenate([seg_first[1:] - 1, [t.size - 1]])
    seg_t0 = t[seg_first]
    seg_t1 = t[seg_last]
    seg_size = np.bincount(seg_id, weights=s, minlength=nseg)
    seg_count = np.bincount(seg_id, minlength=nseg)
    seg_hi = h[seg_first]
    seg_lo = l[seg_first]
    first_of_key = key_change[seg_first]
    last_of_key = np.concatenate([first_of_key[1:], [True]])

    # effective per-segment flow values (merged with carry where the
    # boundary gap is within the timeout)
    eff_start = seg_t0.copy()
    eff_size = seg_size.copy()
    eff_count = seg_count.copy()
    inh_pend_n = np.zeros(nseg, dtype=np.int64)
    inh_pend_bin = np.full((nseg, width), _NO_BIN, dtype=np.int64)
    inh_pend_byte = np.zeros((nseg, width), dtype=np.float64)

    kf_idx = np.flatnonzero(first_of_key)
    ci, si = _match_sorted(
        state.hi, state.lo, seg_hi[kf_idx], seg_lo[kf_idx]
    )
    seg_m = kf_idx[si]
    cont = seg_t0[seg_m] - state.last[ci] <= timeout
    # carried flow continued by this chunk: fold it into the first
    # segment of its key run
    mci = ci[cont]
    msi = seg_m[cont]
    eff_start[msi] = state.start[mci]
    eff_size[msi] += state.size[mci]
    eff_count[msi] += state.count[mci]
    if track:
        inh_pend_n[msi] = state.pend_n[mci]
        inh_pend_bin[msi] = state.pend_bin[mci]
        inh_pend_byte[msi] = state.pend_byte[mci]
    # carried flow whose key reappears only after the timeout: closed
    _close_carry(params, state, ci[~cont], result)

    carry_keep = np.ones(state.hi.size, dtype=bool)
    carry_keep[ci] = False  # consumed (merged) or closed above
    # stale carries: the stream advanced > timeout past their last
    # packet, so nothing can continue them — close now
    stale = np.flatnonzero(carry_keep & (state.last < t_max - timeout))
    if stale.size:
        _close_carry(params, state, stale, result)
        carry_keep[stale] = False

    kept_seg = _kept(params, eff_count, eff_start, seg_t1)

    # segments closed inside the chunk (a later segment of the same
    # key follows after a gap > timeout)
    closed = ~last_of_key
    ck = np.flatnonzero(closed & kept_seg)
    if ck.size:
        result.flows.append((
            eff_start[ck], seg_t1[ck], eff_size[ck],
            eff_count[ck], seg_hi[ck], seg_lo[ck],
        ))
    cd = np.flatnonzero(closed & ~kept_seg)
    if cd.size:
        result.discarded_packets += int(eff_count[cd].sum())
        if track:
            # in-chunk packets of the discarded segments ...
            pk = (closed & ~kept_seg)[seg_id]
            bb = b[pk]
            ok = bb >= 0
            if ok.any():
                result.sub_bins.append(bb[ok])
                result.sub_bytes.append(s[pk][ok])
            # ... plus whatever a merged carry had pending
            _pend_pairs(
                result, inh_pend_bin[cd], inh_pend_byte[cd],
                inh_pend_n[cd],
            )

    # the last segment of each key stays open in the carry table
    open_idx = np.flatnonzero(last_of_key)
    open_resolved = kept_seg[open_idx]
    pend_n = np.zeros(open_idx.size, dtype=np.int64)
    pend_bin = np.full((open_idx.size, width), _NO_BIN, dtype=np.int64)
    pend_byte = np.zeros((open_idx.size, width), dtype=np.float64)
    if track and not open_resolved.all():
        u_rel = np.flatnonzero(~open_resolved)
        u_seg = open_idx[u_rel]
        comb_bin = np.full(
            (u_rel.size, 2 * width), _NO_BIN, dtype=np.int64
        )
        comb_byte = np.zeros((u_rel.size, 2 * width), dtype=np.float64)
        comb_bin[:, :width] = inh_pend_bin[u_seg]
        comb_byte[:, :width] = inh_pend_byte[u_seg]
        # compressed (bin, bytes) runs of the unresolved segments'
        # in-chunk packets (same-bin packets are adjacent: packets are
        # time-sorted within a segment)
        lengths = seg_last[u_seg] - seg_first[u_seg] + 1
        total = int(lengths.sum())
        offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        owner = np.repeat(np.arange(u_seg.size), lengths)
        pidx = np.repeat(seg_first[u_seg], lengths) + (
            np.arange(total) - np.repeat(offsets, lengths)
        )
        pb = b[pidx]
        run_new = np.concatenate(
            [[True], (owner[1:] != owner[:-1]) | (pb[1:] != pb[:-1])]
        )
        run_id = np.cumsum(run_new) - 1
        run_first = np.flatnonzero(run_new)
        run_owner = owner[run_first]
        run_bin = pb[run_first]
        run_byte = np.bincount(run_id, weights=s[pidx])
        owner_first = np.searchsorted(run_owner, np.arange(u_seg.size))
        slot = np.arange(run_owner.size) - owner_first[run_owner]
        if slot.size and int(slot.max()) >= width:
            raise FlowExportError(
                "internal error: unresolved segment produced more "
                "pending bins than its packet budget allows"
            )
        comb_bin[run_owner, width + slot] = run_bin
        comb_byte[run_owner, width + slot] = run_byte
        pend_bin[u_rel], pend_byte[u_rel], pend_n[u_rel] = (
            _compress_pairs(comb_bin, comb_byte, width)
        )

    _rebuild_carry(
        params,
        state,
        carry_keep,
        (
            seg_hi[open_idx], seg_lo[open_idx], eff_start[open_idx],
            seg_t1[open_idx], eff_size[open_idx], eff_count[open_idx],
        ),
        (pend_n, pend_bin, pend_byte),
    )
    return state, result


class StreamingMeasurement:
    """Streaming flow accounting + rate measurement over packet chunks.

    Parameters mirror :func:`~repro.flows.exporter.export_flows`; pass
    ``delta`` and ``duration`` to additionally accumulate the
    single-packet-filtered rate series (``delta=None`` accounts flows
    only).  ``shards`` splits the key space into independently processed
    carry tables, run concurrently on a thread pool that persists across
    chunks (created lazily, released by :meth:`finalize`); pass ``pool``
    (anything with ``map_ordered(fn, items)``, e.g. a
    :class:`~repro.generation.engine.GenerationEngine`) to supply the
    pool externally instead.  Results are invariant to both.

    Chunks must be time-ordered across calls (a valid capture); packets
    *within* a chunk may be in any order.
    """

    def __init__(
        self,
        *,
        key: str = "five_tuple",
        timeout: float = DEFAULT_TIMEOUT,
        min_packets: int = 2,
        prefix_length: int = 24,
        delta: float | None = None,
        duration: float | None = None,
        shards: int = 1,
        backend: str = "thread",
        retry=None,
        pool=None,
        keep_raw_series: bool = False,
    ) -> None:
        check_backend("backend", backend)
        if key not in ("five_tuple", "prefix"):
            raise FlowExportError(
                f"unknown flow key {key!r}; use 'five_tuple' or 'prefix'"
            )
        if timeout <= 0:
            raise FlowExportError(f"timeout must be > 0, got {timeout}")
        if min_packets < 1:
            raise FlowExportError(
                f"min_packets must be >= 1, got {min_packets}"
            )
        if shards < 1:
            raise FlowExportError(f"shards must be >= 1, got {shards}")
        self.key = key
        self.timeout = float(timeout)
        self.min_packets = int(min_packets)
        self.prefix_length = int(prefix_length)
        self.delta = None
        self.n_bins = 0
        if delta is not None:
            if delta <= 0:
                raise FlowExportError(f"delta must be > 0, got {delta}")
            if duration is None:
                raise FlowExportError(
                    "a rate series needs an explicit duration; pass "
                    "duration=... alongside delta"
                )
            self.delta = float(delta)
            self.n_bins = int(np.floor(duration / self.delta))
            if self.n_bins < 1:
                raise FlowExportError(
                    f"duration {duration} shorter than one bin of {delta}s"
                )
        if keep_raw_series and self.delta is None:
            raise FlowExportError(
                "keep_raw_series needs a rate series; pass delta (and "
                "duration) alongside it"
            )
        self._pend_width = max(1, self.min_packets - 1)
        self._params = _ShardParams(
            timeout=self.timeout,
            min_packets=self.min_packets,
            pend_width=self._pend_width,
            track=self.delta is not None,
        )
        self._states = [_ShardState(self._pend_width) for _ in range(shards)]
        self.backend = str(backend)
        self.retry = retry
        self._pool = pool
        self._owned_pool = None
        self._volumes = np.zeros(self.n_bins)
        # pre-discard volumes: what RateSeries.from_packets with no mask
        # sees — a router watching the raw link rate (anomaly detection)
        self._raw_volumes = np.zeros(self.n_bins) if keep_raw_series else None
        self.raw_series: RateSeries | None = None
        self._flows: list[tuple] = []
        self._discarded = 0
        self._prev_max = -np.inf
        self._finalized = False
        self.packet_count = 0
        self.total_bytes = 0.0

    # -- public API -------------------------------------------------------

    def update(self, packets) -> None:
        """Fold one time-ordered packet chunk into the measurement."""
        if self._finalized:
            raise FlowExportError("measurement already finalized")
        if isinstance(packets, PacketTrace):
            packets = packets.packets
        packets = np.asarray(packets)
        if packets.dtype != PACKET_DTYPE:
            raise FlowExportError(
                f"expected PACKET_DTYPE packets, got dtype {packets.dtype}"
            )
        if packets.size == 0:
            return
        ts = packets["timestamp"].astype(np.float64, copy=False)
        t_min = float(ts.min())
        t_max = float(ts.max())
        if t_min < self._prev_max:
            raise FlowExportError(
                "chunks must be time-ordered: got a packet at "
                f"{t_min:g}s after seeing {self._prev_max:g}s; streaming "
                "flow accounting needs a time-sorted capture"
            )
        self._prev_max = t_max
        self.packet_count += packets.size

        hi, lo = pack_packet_keys(packets, self.key, self.prefix_length)
        sizes = packets["size"].astype(np.float64)
        self.total_bytes += float(sizes.sum())
        bins = None
        if self.delta is not None:
            bins = np.floor(ts / self.delta).astype(np.int64)
            in_range = (bins >= 0) & (bins < self.n_bins)
            if in_range.any():
                increment = np.bincount(
                    bins[in_range], weights=sizes[in_range],
                    minlength=self.n_bins,
                )
                self._volumes += increment
                if self._raw_volumes is not None:
                    # raw accumulation: same packets, no later discard
                    # subtraction — equals the unmasked from_packets bins
                    self._raw_volumes += increment
            bins = np.where(in_range, bins, _NO_BIN)

        # a time-sorted chunk lets the shard sort drop its timestamp pass
        # entirely (stability preserves arrival order within a key); shard
        # subsets of a sorted chunk stay sorted
        time_sorted = bool(np.all(ts[1:] >= ts[:-1]))
        n_shards = len(self._states)
        params = self._params
        if n_shards == 1:
            tasks = [
                (params, self._states[0], ts, sizes, hi, lo, bins, t_max,
                 time_sorted)
            ]
        else:
            shard_of = (hi ^ lo) % np.uint64(n_shards)
            tasks = []
            for s in range(n_shards):
                mask = shard_of == s
                tasks.append((
                    params,
                    self._states[s],
                    ts[mask],
                    sizes[mask],
                    hi[mask],
                    lo[mask],
                    None if bins is None else bins[mask],
                    t_max,
                    time_sorted,
                ))
        for s, (state, result) in enumerate(self._run_shards(tasks)):
            self._states[s] = state
            self._apply(result)

    def _run_shards(self, tasks):
        """Process shard tasks, concurrently when more than one shard."""
        with stage_timer("measurement.shards"):
            if len(tasks) <= 1:
                return [_process_shard(task) for task in tasks]
            if self._pool is not None:
                return self._pool.map_ordered(_process_shard, tasks)
            if self._owned_pool is None:
                # one pool for the whole measurement, not one per chunk
                self._owned_pool = make_pool(
                    self.backend, len(self._states), retry=self.retry
                )
            return self._owned_pool.map_ordered(_process_shard, tasks)

    def close(self) -> None:
        """Release the shard worker pool (idempotent; finalize calls it).

        Call from a ``finally`` when feeding chunks that may raise, so a
        failed measurement does not strand workers (or shared-memory
        segments) until GC.
        """
        if self._owned_pool is not None:
            self._owned_pool.close()
            self._owned_pool = None

    def finalize(self) -> tuple[FlowSet, RateSeries | None]:
        """Close all open flows and assemble the final artifacts."""
        if self._finalized:
            raise FlowExportError("measurement already finalized")
        self._finalized = True
        self.close()
        for state in self._states:
            result = _ChunkResult()
            _close_carry(
                self._params, state,
                np.arange(state.hi.size, dtype=np.int64), result,
            )
            self._apply(result)
        with stage_timer("measurement.assemble"):
            flows = self._assemble_flows()
        series = None
        if self.delta is not None:
            series = RateSeries(self._volumes / self.delta, self.delta)
            if self._raw_volumes is not None:
                self.raw_series = RateSeries(
                    self._raw_volumes / self.delta, self.delta
                )
        return flows, series

    # -- internals --------------------------------------------------------

    def _apply(self, result: _ChunkResult) -> None:
        with stage_timer("measurement.apply"):
            self._flows.extend(result.flows)
            self._discarded += result.discarded_packets
            for bins_, bytes_ in zip(result.sub_bins, result.sub_bytes):
                self._volumes -= np.bincount(
                    bins_, weights=bytes_, minlength=self.n_bins
                )

    def _assemble_flows(self) -> FlowSet:
        if not self._flows:
            keys = (
                np.zeros(0, dtype=five_tuple_key_dtype(PACKET_DTYPE))
                if self.key == "five_tuple"
                else np.zeros(0, dtype=np.uint32)
            )
            return FlowSet(
                np.zeros(0), np.zeros(0), np.zeros(0),
                np.zeros(0, dtype=np.int64),
                key_kind=self.key, keys=keys,
                prefix_length=self.prefix_length, timeout=self.timeout,
                discarded_packets=self._discarded,
            )
        starts, ends, sizes, counts, hi, lo = (
            np.concatenate(cols) for cols in zip(*self._flows)
        )
        # the exporter's canonical order: key ascending, then start time
        order = packed_key_order(hi, lo, within=starts)
        return FlowSet(
            starts[order],
            ends[order],
            sizes[order],
            counts[order].astype(np.int64),
            key_kind=self.key,
            keys=unpack_packet_keys(
                hi[order], lo[order], self.key, PACKET_DTYPE,
                self.prefix_length,
            ),
            prefix_length=self.prefix_length,
            timeout=self.timeout,
            discarded_packets=self._discarded,
        )
