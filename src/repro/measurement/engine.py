"""Streaming, sharded measurement engine (sections III and V at scale).

The generation engine (PR 1) made the *synthesis* half of the paper's
pipeline chunked, vectorized and parallel; this module does the same for
the *measurement* half.  A :class:`MeasurementEngine` digests a packet
trace — an in-memory array, a ``.rptr`` file, or any iterable of
time-ordered packet chunks — and produces the flow set and the
single-packet-filtered rate series in bounded memory:

* **Chunking** (``chunk`` packets): the trace is consumed block by block
  through :class:`~repro.measurement.streaming.StreamingMeasurement`,
  whose open-flow carry table preserves the exporter's 60 s idle-timeout
  semantics bit-for-bit across chunk boundaries.  Peak memory is bounded
  by the chunk size plus the active-flow population, not the trace.
* **Sharding** (``workers``): the packed flow-key space is partitioned
  into ``workers`` independent carry tables processed concurrently on a
  persistent worker thread pool.  All accumulation is exact
  integer arithmetic in float64, so results are invariant to both
  ``chunk`` and ``workers`` — the same FlowSet and RateSeries, bitwise,
  as :func:`~repro.flows.exporter.export_flows` +
  ``RateSeries.from_packets(trace, delta, packet_mask=...)``.

``measure_file`` is the out-of-core entry point: multi-GB captures are
measured straight off disk through
:meth:`~repro.trace.io.TraceReader.chunks` without ever materialising
the packet array.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..exceptions import ParameterError
from ..execution import check_backend
from ..flows.exporter import DEFAULT_TIMEOUT
from ..flows.records import FlowSet
from ..stats.timeseries import RateSeries
from ..trace.io import TraceReader
from ..trace.packet import PACKET_DTYPE, PacketTrace
from .streaming import StreamingMeasurement

__all__ = [
    "DEFAULT_FILE_CHUNK",
    "MeasurementConfig",
    "MeasurementEngine",
    "MeasurementResult",
    "iter_packet_chunks",
]

#: Packets per block when reading a trace file with no explicit chunk.
DEFAULT_FILE_CHUNK = 1_000_000


def iter_packet_chunks(packets, chunk: int | None):
    """Yield consecutive views of at most ``chunk`` packets.

    The bridge from in-memory packet arrays (or :class:`PacketTrace`) to
    the chunked measurement path; ``chunk=None`` yields one block.
    """
    if isinstance(packets, PacketTrace):
        packets = packets.packets
    packets = np.asarray(packets)
    if packets.dtype != PACKET_DTYPE:
        raise ParameterError(
            f"expected PACKET_DTYPE packets, got dtype {packets.dtype}"
        )
    if chunk is None:
        yield packets
        return
    chunk = int(chunk)
    if chunk < 1:
        raise ParameterError(f"chunk must be >= 1 packet, got {chunk}")
    for i in range(0, packets.size, chunk):
        yield packets[i: i + chunk]


@dataclass(frozen=True)
class MeasurementConfig:
    """Knobs of the measurement engine.

    Parameters
    ----------
    chunk:
        Packets per processing block; ``None`` measures the whole trace
        as one chunk.  Peak working memory scales with ``chunk``.
    workers:
        Key-space shards, processed concurrently on a worker pool that
        persists for the whole measurement pass.  Results never depend
        on it.
    backend:
        Pool flavour: ``"serial"``, ``"thread"`` (default) or
        ``"process"`` (fork-based shared-memory pool, see
        :mod:`repro.execution`).  Results never depend on it.
    """

    chunk: int | None = None
    workers: int = 1
    backend: str = "thread"

    def __post_init__(self) -> None:
        if self.chunk is not None:
            chunk = int(self.chunk)
            if chunk != self.chunk or chunk < 1:
                raise ParameterError(
                    f"measurement chunk must be an integer >= 1 packet, "
                    f"got {self.chunk!r}"
                )
            object.__setattr__(self, "chunk", chunk)
        workers = int(self.workers)
        if workers != self.workers or workers < 1:
            raise ParameterError(
                f"workers must be an integer >= 1, got {self.workers!r}"
            )
        object.__setattr__(self, "workers", workers)
        check_backend("backend", self.backend)


@dataclass(frozen=True)
class MeasurementResult:
    """Everything one streaming measurement pass produced."""

    flows: FlowSet
    series: RateSeries | None
    duration: float
    packet_count: int
    link_capacity: float | None = None
    total_bytes: float = 0.0
    #: Pre-discard rate series (``keep_raw_series=True``): what a router
    #: watching the raw link rate sees — the anomaly detector's input.
    raw_series: RateSeries | None = None

    def statistics(self):
        """The paper's three-parameter summary over the measured interval."""
        return self.flows.statistics(self.duration)

    @property
    def mean_rate_bps(self) -> float:
        """Average link throughput (all packets, pre-discard) in bits/s."""
        if self.duration == 0.0:
            return 0.0
        return 8.0 * self.total_bytes / self.duration

    @property
    def utilization(self) -> float:
        """Mean rate over capacity (0.0 when the capacity is unknown)."""
        if not self.link_capacity:
            return 0.0
        return self.mean_rate_bps / self.link_capacity


class MeasurementEngine:
    """Scalable measurement for packet traces (see module docs)."""

    def __init__(
        self,
        config: MeasurementConfig | None = None,
        *,
        chunk: int | None = None,
        workers: int | None = None,
        backend: str | None = None,
    ) -> None:
        if config is None:
            config = MeasurementConfig()
        overrides = {
            k: v
            for k, v in {
                "chunk": chunk, "workers": workers, "backend": backend,
            }.items()
            if v is not None
        }
        if overrides:
            config = replace(config, **overrides)
        self.config = config

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        c = self.config
        return f"MeasurementEngine(chunk={c.chunk}, workers={c.workers})"

    def _streamer(self, *, delta, duration, keep_raw_series=False, **flow_kwargs):
        return StreamingMeasurement(
            delta=delta,
            duration=duration,
            shards=self.config.workers,
            backend=self.config.backend,
            keep_raw_series=keep_raw_series,
            **flow_kwargs,
        )

    # -- entry points -----------------------------------------------------

    def measure_chunks(
        self,
        chunks,
        *,
        duration: float | None = None,
        delta: float | None = None,
        key: str = "five_tuple",
        timeout: float = DEFAULT_TIMEOUT,
        min_packets: int = 2,
        prefix_length: int = 24,
        link_capacity: float | None = None,
        keep_raw_series: bool = False,
    ) -> MeasurementResult:
        """Measure an iterable of time-ordered packet chunks.

        The most general entry point: anything yielding ``PACKET_DTYPE``
        blocks in time order works — :meth:`TraceReader.chunks`,
        :func:`iter_packet_chunks`, or the synthesis engine's
        :class:`~repro.synthesis.StreamingSynthesis` (via
        :meth:`~repro.netsim.workloads.LinkWorkload.synthesize_chunks`),
        which is how a scenario synthesizes → measures without ever
        materialising the trace.  With ``delta`` set, the
        single-packet-filtered rate series is accumulated in the same
        pass; ``keep_raw_series=True`` additionally accumulates the
        pre-discard series (the anomaly detector's input).

        ``duration`` and ``link_capacity`` default to the chunk source's
        own attributes when it carries them (a ``StreamingSynthesis``
        does, mirroring how :meth:`measure_file` reads the trace
        header), so utilisation comes out right without re-plumbing
        workload metadata by hand.
        """
        if duration is None:
            duration = getattr(chunks, "duration", None)
            if duration is None:
                raise ParameterError(
                    "measure_chunks needs a duration: pass duration=... "
                    "(the chunk source carries none)"
                )
        if link_capacity is None:
            link_capacity = getattr(chunks, "link_capacity", None)
        streamer = self._streamer(
            delta=delta,
            duration=duration,
            key=key,
            timeout=timeout,
            min_packets=min_packets,
            prefix_length=prefix_length,
            keep_raw_series=keep_raw_series,
        )
        try:
            for block in chunks:
                streamer.update(block)
            flows, series = streamer.finalize()
        finally:
            # a malformed chunk mid-stream must not strand shard threads
            streamer.close()
        return MeasurementResult(
            flows=flows,
            series=series,
            duration=float(duration),
            packet_count=streamer.packet_count,
            link_capacity=link_capacity,
            total_bytes=streamer.total_bytes,
            raw_series=streamer.raw_series,
        )

    def measure_trace(
        self,
        trace,
        *,
        delta: float | None = None,
        duration: float | None = None,
        **flow_kwargs,
    ) -> MeasurementResult:
        """Measure an in-memory :class:`PacketTrace` (or packet array).

        Chunking is simulated by slicing ``config.chunk``-packet views,
        so the result is pinned to the streaming code path while the
        input stays wherever it already lives.  An unsorted trace is
        time-sorted (stably) before it is cut into chunks, so the result
        is independent of ``chunk`` even for invalid-capture inputs —
        the ``measurement`` spec section stays pure execution strategy.
        """
        link_capacity = None
        if isinstance(trace, PacketTrace):
            if duration is None:
                duration = trace.duration
            link_capacity = trace.link_capacity
            trace = trace.packets
        if duration is None:
            raise ParameterError(
                "measuring a bare packet array needs an explicit duration"
            )
        packets = np.asarray(trace)
        if packets.dtype != PACKET_DTYPE:
            raise ParameterError(
                f"expected PACKET_DTYPE packets, got dtype {packets.dtype}"
            )
        timestamps = packets["timestamp"]
        if not bool(np.all(timestamps[1:] >= timestamps[:-1])):
            packets = packets[np.argsort(timestamps, kind="stable")]
        return self.measure_chunks(
            iter_packet_chunks(packets, self.config.chunk),
            duration=duration,
            delta=delta,
            link_capacity=link_capacity,
            **flow_kwargs,
        )

    def measure_file(
        self,
        path,
        *,
        delta: float | None = None,
        duration: float | None = None,
        **flow_kwargs,
    ) -> MeasurementResult:
        """Measure a ``.rptr`` trace file out-of-core.

        Packets stream through :meth:`TraceReader.chunks`; only
        ``config.chunk`` packets (default :data:`DEFAULT_FILE_CHUNK`)
        plus the open-flow carry tables are ever in memory.
        """
        reader = TraceReader(path)
        if duration is None:
            duration = reader.duration
        return self.measure_chunks(
            reader.chunks(self.config.chunk or DEFAULT_FILE_CHUNK),
            duration=duration,
            delta=delta,
            link_capacity=reader.link_capacity,
            **flow_kwargs,
        )

    def account_flows(self, packets, *, duration=None, **flow_kwargs) -> FlowSet:
        """Chunked/sharded flow accounting only (no rate series).

        Drop-in for :func:`~repro.flows.exporter.export_flows` on sorted
        traces, minus ``keep_packet_map`` (the streaming path never holds
        per-packet state; use :meth:`measure_trace` to get the filtered
        rate series instead of applying a packet mask yourself).
        """
        if duration is None:
            duration = (
                packets.duration if isinstance(packets, PacketTrace) else 0.0
            )
        return self.measure_trace(
            packets, delta=None, duration=duration, **flow_kwargs
        ).flows
