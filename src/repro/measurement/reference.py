"""Reference (pre-engine) measurement implementations, kept verbatim.

These are the hot loops the measurement engine replaced, preserved as
oracles — exactly like :func:`repro.generation.reference_rate_series`
stays next to the generation engine.  ``benchmarks/
bench_measurement_scaling.py`` races the engine against them on the same
trace and asserts the outputs agree; tests use them to pin equivalence.

* :func:`reference_export_flows` — flow accounting via the original
  structured-dtype ``np.unique`` grouping (a 23-byte struct compare per
  element) instead of the packed two-word lexsort.
* :func:`reference_ewma_replay` — the per-flow Python loop through
  :class:`~repro.stats.estimators.OnlineFlowStatistics` that
  ``repro.pipeline`` used for ``estimator="ewma"`` before the closed-form
  vectorized replay.

The direct O(n·max_lag) autocovariance remains available as
``autocovariance_series(..., method="direct")``.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import FlowExportError
from ..flows.exporter import DEFAULT_TIMEOUT, _as_packet_array
from ..flows.keys import FIVE_TUPLE_FIELDS, prefix_of
from ..flows.records import FlowSet
from ..stats.estimators import OnlineFlowStatistics

__all__ = ["reference_export_flows", "reference_ewma_replay"]


def _group_indices(packets: np.ndarray, key: str, prefix_length: int):
    """Return (unique_keys, inverse) grouping packets by flow key."""
    if key == "five_tuple":
        # A packed contiguous copy of the key fields; np.unique sorts
        # structured arrays lexicographically.
        key_view = np.empty(
            packets.size,
            dtype=[(f, packets.dtype[f]) for f in FIVE_TUPLE_FIELDS],
        )
        for field in FIVE_TUPLE_FIELDS:
            key_view[field] = packets[field]
        return np.unique(key_view, return_inverse=True)
    if key == "prefix":
        prefixes = prefix_of(packets["dst_addr"], prefix_length)
        return np.unique(prefixes, return_inverse=True)
    raise FlowExportError(f"unknown flow key {key!r}; use 'five_tuple' or 'prefix'")


def reference_export_flows(
    packets,
    *,
    key: str = "five_tuple",
    timeout: float = DEFAULT_TIMEOUT,
    min_packets: int = 2,
    prefix_length: int = 24,
    keep_packet_map: bool = False,
) -> FlowSet:
    """The pre-engine :func:`~repro.flows.exporter.export_flows` body."""
    packets = _as_packet_array(packets)
    if timeout <= 0:
        raise FlowExportError(f"timeout must be > 0, got {timeout}")
    if min_packets < 1:
        raise FlowExportError(f"min_packets must be >= 1, got {min_packets}")

    if packets.size == 0:
        keys = (
            np.zeros(0, dtype=[(f, packets.dtype[f]) for f in FIVE_TUPLE_FIELDS])
            if key == "five_tuple"
            else np.zeros(0, dtype=np.uint32)
        )
        return FlowSet(
            np.zeros(0), np.zeros(0), np.zeros(0), np.zeros(0, dtype=np.int64),
            key_kind=key, keys=keys, prefix_length=prefix_length, timeout=timeout,
        )

    unique_keys, inverse = _group_indices(packets, key, prefix_length)
    timestamps = packets["timestamp"]

    # Order by (flow group, time); split groups at gaps > timeout.
    order = np.lexsort((timestamps, inverse))
    grp = inverse[order]
    ts = timestamps[order]
    same_group = grp[1:] == grp[:-1]
    gap_ok = (ts[1:] - ts[:-1]) <= timeout
    new_flow = np.concatenate([[True], ~(same_group & gap_ok)])
    flow_ids = np.cumsum(new_flow) - 1
    n_flows = int(flow_ids[-1]) + 1

    first_idx = np.flatnonzero(new_flow)
    last_idx = np.concatenate([first_idx[1:] - 1, [order.size - 1]])

    starts = ts[first_idx]
    ends = ts[last_idx]
    sizes = np.bincount(
        flow_ids, weights=packets["size"][order].astype(np.float64),
        minlength=n_flows,
    )
    counts = np.bincount(flow_ids, minlength=n_flows)
    key_index = grp[first_idx]

    keep = (counts >= min_packets) & (ends > starts)
    discarded_packets = int(counts[~keep].sum())

    packet_flow_ids = None
    if keep_packet_map:
        renumber = np.full(n_flows, -1, dtype=np.int64)
        renumber[keep] = np.arange(int(keep.sum()))
        packet_flow_ids = np.empty(packets.size, dtype=np.int64)
        packet_flow_ids[order] = renumber[flow_ids]

    return FlowSet(
        starts[keep],
        ends[keep],
        sizes[keep],
        counts[keep],
        key_kind=key,
        keys=unique_keys[key_index[keep]],
        prefix_length=prefix_length,
        timeout=timeout,
        discarded_packets=discarded_packets,
        packet_flow_ids=packet_flow_ids,
    )


def reference_ewma_replay(flows: FlowSet, eps: float):
    """The pre-engine per-flow EWMA replay loop (section V-G).

    Feeds every flow arrival and departure through the router-style
    :class:`OnlineFlowStatistics` estimators one Python call at a time;
    returns the snapshot, or ``None`` before the estimators are ready.
    """
    online = OnlineFlowStatistics(eps=eps)
    for start in np.sort(flows.starts):
        online.observe_arrival(float(start))
    order = np.argsort(flows.ends, kind="stable")
    for size, duration in zip(flows.sizes[order], flows.durations[order]):
        online.observe_departure(float(size), float(duration))
    return online.snapshot() if online.ready else None
