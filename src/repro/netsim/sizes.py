"""Flow size / rate / RTT distributions for workload synthesis.

The self-similarity literature the paper builds on ([9], [19], [22])
attributes backbone traffic variability to *heavy-tailed* flow sizes, so
the default size law here is a bounded Pareto; access rates and round-trip
times are lognormal.  All distributions expose the small protocol
``rvs(size=..., random_state=...)`` / ``mean()`` used by
:class:`repro.core.SizeRateEnsemble`, so they plug into both the workload
generator and the analytic model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import as_rng
from ..exceptions import ParameterError

__all__ = [
    "BoundedPareto",
    "LogNormal",
    "LognormalParetoMixture",
    "Exponential",
    "Constant",
    "Mixture",
    "Empirical",
]


def _rng_of(random_state) -> np.random.Generator:
    return as_rng(random_state)


@dataclass(frozen=True)
class BoundedPareto:
    """Pareto law truncated to ``[minimum, maximum]``.

    Density proportional to ``x^-(alpha+1)``.  Bounding the support keeps
    every moment finite (so Monte Carlo converges) while preserving the
    many-orders-of-magnitude size spread: mice and elephants.
    """

    alpha: float
    minimum: float
    maximum: float

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ParameterError(f"alpha must be > 0, got {self.alpha}")
        if not 0 < self.minimum < self.maximum:
            raise ParameterError("need 0 < minimum < maximum")

    def rvs(self, size=1, random_state=None) -> np.ndarray:
        rng = _rng_of(random_state)
        u = rng.random(size)
        a, lo, hi = self.alpha, self.minimum, self.maximum
        ratio = (lo / hi) ** a
        # inverse CDF of the truncated Pareto
        return lo / (1.0 - u * (1.0 - ratio)) ** (1.0 / a)

    def mean(self) -> float:
        a, lo, hi = self.alpha, self.minimum, self.maximum
        norm = 1.0 - (lo / hi) ** a
        if a == 1.0:
            return lo * np.log(hi / lo) / norm
        return (a / (a - 1.0)) * lo * (1.0 - (lo / hi) ** (a - 1.0)) / norm

    def second_moment(self) -> float:
        a, lo, hi = self.alpha, self.minimum, self.maximum
        norm = 1.0 - (lo / hi) ** a
        if a == 2.0:
            return 2.0 * lo**2 * np.log(hi / lo) / norm
        return (a / (a - 2.0)) * lo**2 * (1.0 - (lo / hi) ** (a - 2.0)) / norm

    def ccdf(self, x) -> np.ndarray:
        """``P(X > x)`` — used by the heavy-tail diagnostics."""
        x = np.asarray(x, dtype=np.float64)
        a, lo, hi = self.alpha, self.minimum, self.maximum
        norm = 1.0 - (lo / hi) ** a
        tail = ((lo / np.clip(x, lo, hi)) ** a - (lo / hi) ** a) / norm
        return np.where(x < lo, 1.0, np.where(x >= hi, 0.0, tail))


@dataclass(frozen=True)
class LogNormal:
    """Lognormal with given *median* and log-space sigma.

    ``median`` parameterisation keeps workload presets readable:
    ``LogNormal(median=50e3, sigma=0.6)`` is a 50 kB/s typical access rate.
    """

    median: float
    sigma: float

    def __post_init__(self) -> None:
        if self.median <= 0:
            raise ParameterError("median must be > 0")
        if self.sigma < 0:
            raise ParameterError("sigma must be >= 0")

    def rvs(self, size=1, random_state=None) -> np.ndarray:
        rng = _rng_of(random_state)
        return rng.lognormal(np.log(self.median), self.sigma, size)

    def mean(self) -> float:
        return float(self.median * np.exp(self.sigma**2 / 2.0))


@dataclass(frozen=True)
class LognormalParetoMixture:
    """Lognormal body + bounded-Pareto tail flow-size law.

    The mixture documented for campus/enterprise flow populations
    (Jurkiewicz et al., "Flow length and size distributions in campus
    Internet traffic"): the bulk of flows follows a lognormal body of
    median ``median`` and log-sigma ``sigma`` with probability
    ``body_weight``; the remaining mass is a bounded Pareto tail of
    exponent ``alpha`` on ``[minimum, maximum]``.  Bounding the tail
    keeps every moment finite, so the law plugs into the shot-noise
    model's Monte Carlo calibration like the other families.

    This is the family ``repro.calibration`` fits to real traces
    (:mod:`repro.calibration.families` registers it next to the pure
    lognormal/Pareto/exponential laws); the ``campus-mixture-*``
    registry scenarios carry the published campus fits as presets.
    """

    body_weight: float
    median: float
    sigma: float
    alpha: float
    minimum: float
    maximum: float

    def __post_init__(self) -> None:
        if not 0.0 < self.body_weight < 1.0:
            raise ParameterError(
                f"body_weight must lie in (0, 1), got {self.body_weight}"
            )
        # component validation is delegated: construct both parts once
        self.body  # noqa: B018 — validates median/sigma
        self.tail  # noqa: B018 — validates alpha/minimum/maximum

    @property
    def body(self) -> LogNormal:
        return LogNormal(median=self.median, sigma=self.sigma)

    @property
    def tail(self) -> BoundedPareto:
        return BoundedPareto(
            alpha=self.alpha, minimum=self.minimum, maximum=self.maximum
        )

    def rvs(self, size=1, random_state=None) -> np.ndarray:
        rng = _rng_of(random_state)
        count = int(size) if np.isscalar(size) else int(np.prod(size))
        from_body = rng.random(count) < self.body_weight
        out = np.empty(count, dtype=np.float64)
        n_body = int(from_body.sum())
        if n_body:
            out[from_body] = self.body.rvs(size=n_body, random_state=rng)
        if count - n_body:
            out[~from_body] = self.tail.rvs(
                size=count - n_body, random_state=rng
            )
        return out

    def mean(self) -> float:
        return float(
            self.body_weight * self.body.mean()
            + (1.0 - self.body_weight) * self.tail.mean()
        )

    def second_moment(self) -> float:
        body_m2 = self.median**2 * np.exp(2.0 * self.sigma**2)
        return float(
            self.body_weight * body_m2
            + (1.0 - self.body_weight) * self.tail.second_moment()
        )

    def cdf(self, x) -> np.ndarray:
        """``P(X <= x)`` — the calibration goodness-of-fit input."""
        from scipy.special import ndtr

        x = np.asarray(x, dtype=np.float64)
        with np.errstate(divide="ignore"):
            z = (np.log(np.maximum(x, 1e-300)) - np.log(self.median)) / max(
                self.sigma, 1e-12
            )
        body_cdf = np.where(x <= 0.0, 0.0, ndtr(z))
        tail_cdf = 1.0 - self.tail.ccdf(x)
        return (
            self.body_weight * body_cdf
            + (1.0 - self.body_weight) * tail_cdf
        )

    def ccdf(self, x) -> np.ndarray:
        """``P(X > x)`` — used by the heavy-tail diagnostics."""
        return 1.0 - self.cdf(x)


@dataclass(frozen=True)
class Exponential:
    """Exponential with the given mean."""

    mean_value: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ParameterError("mean_value must be > 0")

    def rvs(self, size=1, random_state=None) -> np.ndarray:
        rng = _rng_of(random_state)
        return rng.exponential(self.mean_value, size)

    def mean(self) -> float:
        return float(self.mean_value)


@dataclass(frozen=True)
class Constant:
    """Degenerate distribution (useful for CBR streams and tests)."""

    value: float

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ParameterError("value must be > 0")

    def rvs(self, size=1, random_state=None) -> np.ndarray:
        return np.full(size, float(self.value))

    def mean(self) -> float:
        return float(self.value)


class Mixture:
    """Finite mixture of component distributions.

    E.g. a mice/elephants size law:
    ``Mixture([(0.95, BoundedPareto(...small...)), (0.05, BoundedPareto(...big...))])``.
    """

    def __init__(self, components) -> None:
        components = list(components)
        if not components:
            raise ParameterError("mixture needs at least one component")
        weights = np.array([w for w, _ in components], dtype=np.float64)
        if np.any(weights < 0) or weights.sum() <= 0:
            raise ParameterError("mixture weights must be >= 0 and not all zero")
        self.weights = weights / weights.sum()
        self.distributions = [d for _, d in components]

    def rvs(self, size=1, random_state=None) -> np.ndarray:
        rng = _rng_of(random_state)
        size = int(size) if np.isscalar(size) else int(np.prod(size))
        which = rng.choice(len(self.distributions), size=size, p=self.weights)
        out = np.empty(size, dtype=np.float64)
        for i, dist in enumerate(self.distributions):
            mask = which == i
            count = int(mask.sum())
            if count:
                out[mask] = dist.rvs(size=count, random_state=rng)
        return out

    def mean(self) -> float:
        return float(
            sum(w * d.mean() for w, d in zip(self.weights, self.distributions))
        )


class Empirical:
    """Resampling distribution over observed values (bootstrap)."""

    def __init__(self, values) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise ParameterError("values must not be empty")
        if np.any(~np.isfinite(values)) or np.any(values <= 0):
            raise ParameterError("values must be finite and > 0")
        self.values = values

    def rvs(self, size=1, random_state=None) -> np.ndarray:
        rng = _rng_of(random_state)
        return rng.choice(self.values, size=size, replace=True)

    def mean(self) -> float:
        return float(self.values.mean())
