"""Flow arrival processes.

Assumption 1 of the paper is a homogeneous Poisson flow arrival process,
which it justifies empirically (Figures 3-4) and by the high multiplexing
level of backbone links ([2], [6]).  Besides the Poisson process, this
module implements the relaxations the paper mentions:

* :class:`MMPPArrivals` — a Markov-modulated Poisson process (the "MAP"
  generalisation of section IV), for probing the model's sensitivity to
  arrival burstiness;
* :class:`NonHomogeneousPoissonArrivals` — deterministic rate modulation
  (diurnal patterns, or the ramp of a flash crowd / DoS onset);
* :class:`SessionArrivals` — Poisson *sessions* each spawning several
  flows ([13], [20]): arrivals are Poisson at the session level but
  clustered at the flow level.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from .._util import as_rng, check_nonnegative, check_positive
from ..exceptions import ParameterError

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "MMPPArrivals",
    "NonHomogeneousPoissonArrivals",
    "DiurnalArrivals",
    "SessionArrivals",
]


class ArrivalProcess(ABC):
    """A point process on [0, duration] generating flow start times."""

    #: Whether :meth:`cell_times` can sample one cell independently of all
    #: others (the restriction property).  Poisson and its deterministic-
    #: intensity and session generalisations are cellable; processes with
    #: sequential hidden state (MMPP) are not — the synthesis engine
    #: pre-samples those once from a reserved seed child instead.
    cellable: bool = False

    @abstractmethod
    def times(self, duration: float, rng=None) -> np.ndarray:
        """Sorted arrival times within ``[0, duration)``."""

    def cell_times(self, t0: float, t1: float, horizon: float, rng) -> np.ndarray:
        """Sorted arrival times of the cell ``[t0, t1)`` of a
        ``[0, horizon)`` timeline.

        All randomness of the returned flows must come from ``rng`` and
        be independent of every other cell, so that sampling cells in any
        order (or in parallel) reproduces the process — the contract the
        streaming synthesis engine builds on.  Session-style processes
        may return times beyond ``t1`` (a session *starting* in the cell
        owns its whole flow train) but never at or beyond ``horizon``.
        """
        raise ParameterError(
            f"{type(self).__name__} cannot be sampled per arrival cell "
            "(it has sequential state); the synthesis engine pre-samples "
            "such processes from a dedicated seed stream instead"
        )

    @property
    @abstractmethod
    def mean_rate(self) -> float:
        """Long-run arrivals per second (the model's ``lambda``)."""


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson process (Assumption 1)."""

    cellable = True

    def __init__(self, rate: float) -> None:
        self.rate = check_positive("rate", rate)

    def __repr__(self) -> str:
        return f"PoissonArrivals(rate={self.rate:g})"

    def times(self, duration: float, rng=None) -> np.ndarray:
        duration = check_positive("duration", duration)
        rng = as_rng(rng)
        # conditional-uniform construction: exact and vectorised
        n = rng.poisson(self.rate * duration)
        return np.sort(rng.random(n) * duration)

    def cell_times(self, t0, t1, horizon, rng) -> np.ndarray:
        # the Poisson restriction property: counts and positions on
        # disjoint cells are independent
        width = t1 - t0
        if width <= 0.0:
            return np.zeros(0)
        n = rng.poisson(self.rate * width)
        return t0 + np.sort(rng.random(n)) * width

    @property
    def mean_rate(self) -> float:
        return self.rate


class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process.

    The arrival intensity alternates between ``rates[0]`` and ``rates[1]``
    with exponential sojourn times ``mean_sojourns``.  With equal rates it
    degenerates to a Poisson process.
    """

    def __init__(self, rates, mean_sojourns) -> None:
        rates = tuple(float(r) for r in rates)
        sojourns = tuple(float(s) for s in mean_sojourns)
        if len(rates) != 2 or len(sojourns) != 2:
            raise ParameterError("MMPP needs exactly two rates and two sojourns")
        for r in rates:
            check_nonnegative("rate", r)
        if max(rates) <= 0:
            raise ParameterError("at least one MMPP rate must be positive")
        for s in sojourns:
            check_positive("mean_sojourn", s)
        self.rates = rates
        self.mean_sojourns = sojourns

    def __repr__(self) -> str:
        return f"MMPPArrivals(rates={self.rates}, mean_sojourns={self.mean_sojourns})"

    @property
    def mean_rate(self) -> float:
        # stationary state probabilities proportional to mean sojourns
        s0, s1 = self.mean_sojourns
        return (self.rates[0] * s0 + self.rates[1] * s1) / (s0 + s1)

    def times(self, duration: float, rng=None) -> np.ndarray:
        duration = check_positive("duration", duration)
        rng = as_rng(rng)
        out = []
        # start in a state drawn from the stationary law
        s0, s1 = self.mean_sojourns
        state = 0 if rng.random() < s0 / (s0 + s1) else 1
        t = 0.0
        while t < duration:
            sojourn = rng.exponential(self.mean_sojourns[state])
            end = min(t + sojourn, duration)
            rate = self.rates[state]
            if rate > 0.0:
                n = rng.poisson(rate * (end - t))
                if n:
                    out.append(t + rng.random(n) * (end - t))
            t = end
            state = 1 - state
        if not out:
            return np.zeros(0)
        return np.sort(np.concatenate(out))


class NonHomogeneousPoissonArrivals(ArrivalProcess):
    """Poisson process with deterministic time-varying intensity.

    ``rate_fn(t)`` gives the instantaneous intensity; ``rate_max`` must
    bound it on the horizon (thinning construction).
    """

    cellable = True

    def __init__(
        self, rate_fn: Callable[[np.ndarray], np.ndarray], rate_max: float
    ) -> None:
        self.rate_fn = rate_fn
        self.rate_max = check_positive("rate_max", rate_max)

    def cell_times(self, t0, t1, horizon, rng) -> np.ndarray:
        # thinning restricted to the cell: candidate uniforms on [t0, t1)
        # thinned against the same deterministic intensity
        width = t1 - t0
        if width <= 0.0:
            return np.zeros(0)
        n = rng.poisson(self.rate_max * width)
        candidates = t0 + np.sort(rng.random(n)) * width
        intensities = np.asarray(self.rate_fn(candidates), dtype=np.float64)
        if np.any(intensities > self.rate_max * (1.0 + 1e-9)):
            raise ParameterError("rate_fn exceeds rate_max; thinning is invalid")
        keep = rng.random(candidates.size) * self.rate_max < intensities
        return candidates[keep]

    def times(self, duration: float, rng=None) -> np.ndarray:
        duration = check_positive("duration", duration)
        rng = as_rng(rng)
        n = rng.poisson(self.rate_max * duration)
        candidates = np.sort(rng.random(n) * duration)
        intensities = np.asarray(self.rate_fn(candidates), dtype=np.float64)
        if np.any(intensities > self.rate_max * (1.0 + 1e-9)):
            raise ParameterError("rate_fn exceeds rate_max; thinning is invalid")
        keep = rng.random(candidates.size) * self.rate_max < intensities
        return candidates[keep]

    @property
    def mean_rate(self) -> float:
        # numeric average of the intensity over a unit-scale grid is not
        # well-defined without a horizon; report the bound's midpoint by
        # sampling the rate function over [0, 1] as a best effort.
        grid = np.linspace(0.0, 1.0, 256)
        return float(np.mean(self.rate_fn(grid)))


class DiurnalArrivals(NonHomogeneousPoissonArrivals):
    """Sinusoidal time-of-day intensity ramp around a base rate.

    The intensity is ``base_rate * (1 + a * sin(2 pi t / period + phase))``
    with relative amplitude ``0 <= a < 1``, so it stays positive and
    averages to ``base_rate`` over whole periods — the diurnal pattern the
    paper's per-interval analysis sidesteps by treating each 30-minute
    window as stationary.  Unlike the free-form
    :class:`NonHomogeneousPoissonArrivals`, this process is fully described
    by four scalars, which makes it expressible in a serialized
    :class:`~repro.pipeline.ScenarioSpec`.
    """

    def __init__(
        self,
        base_rate: float,
        relative_amplitude: float = 0.5,
        period: float = 86400.0,
        phase: float = 0.0,
    ) -> None:
        self.base_rate = check_positive("base_rate", base_rate)
        if not 0.0 <= relative_amplitude < 1.0:
            raise ParameterError(
                "relative_amplitude must lie in [0, 1) so the intensity "
                f"stays positive, got {relative_amplitude!r}"
            )
        self.relative_amplitude = float(relative_amplitude)
        self.period = check_positive("period", period)
        self.phase = float(phase)

        def rate_fn(t: np.ndarray) -> np.ndarray:
            angle = 2.0 * np.pi * np.asarray(t, dtype=np.float64) / self.period
            return self.base_rate * (
                1.0 + self.relative_amplitude * np.sin(angle + self.phase)
            )

        super().__init__(rate_fn, self.base_rate * (1.0 + self.relative_amplitude))

    def __repr__(self) -> str:
        return (
            f"DiurnalArrivals(base_rate={self.base_rate:g}, "
            f"relative_amplitude={self.relative_amplitude:g}, "
            f"period={self.period:g})"
        )

    @property
    def mean_rate(self) -> float:
        return self.base_rate


class SessionArrivals(ArrivalProcess):
    """Poisson sessions, each spawning a geometric number of flows.

    Sessions arrive at ``session_rate``; a session contains ``k >= 1``
    flows where ``k`` is geometric with mean ``flows_per_session``, spaced
    by exponential think times of mean ``think_time``.  Flow-level
    arrivals are then *clustered*, not Poisson — the paper's remark that
    the model may be applied at the session level instead.
    """

    cellable = True

    def __init__(
        self,
        session_rate: float,
        flows_per_session: float = 4.0,
        think_time: float = 2.0,
    ) -> None:
        self.session_rate = check_positive("session_rate", session_rate)
        if flows_per_session < 1.0:
            raise ParameterError("flows_per_session must be >= 1")
        self.flows_per_session = float(flows_per_session)
        self.think_time = check_positive("think_time", think_time)

    @property
    def mean_rate(self) -> float:
        return self.session_rate * self.flows_per_session

    def times(self, duration: float, rng=None) -> np.ndarray:
        duration = check_positive("duration", duration)
        rng = as_rng(rng)
        return self._session_flow_times(0.0, duration, duration, rng)

    def cell_times(self, t0, t1, horizon, rng) -> np.ndarray:
        # sessions are Poisson, so session *starts* restrict to cells
        # independently; a session starting in the cell owns its whole
        # flow train (which may spill past t1, but never past horizon)
        if t1 - t0 <= 0.0:
            return np.zeros(0)
        return self._session_flow_times(t0, t1, horizon, rng)

    def _session_flow_times(self, t0, t1, horizon, rng) -> np.ndarray:
        """Flows of the sessions starting in [t0, t1), cut at ``horizon``."""
        n_sessions = rng.poisson(self.session_rate * (t1 - t0))
        if n_sessions == 0:
            return np.zeros(0)
        session_starts = t0 + rng.random(n_sessions) * (t1 - t0)
        p = 1.0 / self.flows_per_session
        flows_per = rng.geometric(p, n_sessions)
        total = int(flows_per.sum())
        session_of_flow = np.repeat(np.arange(n_sessions), flows_per)
        # think-time gaps; the first flow of each session starts with it
        first_flow_idx = np.concatenate([[0], np.cumsum(flows_per)[:-1]])
        gaps = rng.exponential(self.think_time, total)
        gaps[first_flow_idx] = 0.0
        cumulative = np.cumsum(gaps)
        offsets = cumulative - np.repeat(cumulative[first_flow_idx], flows_per)
        times = session_starts[session_of_flow] + offsets
        times = times[times < horizon]
        return np.sort(times)
