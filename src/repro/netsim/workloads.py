"""Workload presets mirroring the paper's Table I.

The paper evaluates on seven OC-12 (622 Mbps) Sprint backbone links with
average utilisations between 26 and 262 Mbps.  ``scale`` multiplies each
preset's rates while keeping the flow size distribution, which preserves
every dimensionless quantity the paper reports (utilisation ratios,
coefficients of variation, cluster structure, fitted shot powers);
EXPERIMENTS.md records the mapping experiment by experiment.

The default remains ``scale=1/32`` (a ~19 Mbps link) so interactive runs
and the test suite stay snappy, but full-rate presets are first-class:
``table_i_workload(row, scale=1.0)`` synthesizes a genuine OC-12 trace
(10^7-10^8 packets for the paper's 30-minute-to-hours intervals) through
the streaming synthesis engine — :meth:`LinkWorkload.synthesize_chunks`
produces time-ordered packet blocks in bounded memory, which feed the
streaming measurement engine or a :class:`~repro.trace.TraceWriter`
without the capture ever being materialised.

Each preset computes the flow arrival rate ``lambda`` needed to hit its
target mean rate from the size law's mean wire bytes per flow, so measured
utilisation lands on target without hand calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .._util import as_rng, check_positive
from ..exceptions import ParameterError
from .addresses import AddressSpace
from .arrivals import ArrivalProcess, PoissonArrivals
from .link import LinkSynthesis
from .sizes import BoundedPareto, LogNormal, Mixture
from .tcp import TcpParameters

__all__ = [
    "OC12_BPS",
    "DEFAULT_SCALE",
    "TableIRow",
    "TABLE_I_ROWS",
    "LinkWorkload",
    "default_size_distribution",
    "table_i_workload",
    "table_i_workloads",
    "low_utilization_link",
    "medium_utilization_link",
    "high_utilization_link",
    "synthesize_scenario",
    "multi_link_rate_series",
]

#: An OC-12 link in bits/second (the paper's monitored links).
OC12_BPS = 622e6

#: Default rate scale: our synthetic "OC-12" runs at 622/32 ~= 19.4 Mbps.
DEFAULT_SCALE = 1.0 / 32.0


@dataclass(frozen=True)
class TableIRow:
    """One row of the paper's Table I (summary of OC-12 link traces)."""

    date: str
    length_hours: float
    avg_utilization_mbps: float


#: The seven traces of Table I.
TABLE_I_ROWS: tuple[TableIRow, ...] = (
    TableIRow("Nov 8th, 2001", 7.0, 243.0),
    TableIRow("Nov 8th, 2001", 10.0, 180.0),
    TableIRow("Nov 8th, 2001", 6.0, 262.0),
    TableIRow("Nov 8th, 2001", 39.5, 26.0),
    TableIRow("Sep 5th, 2001", 10.0, 136.0),
    TableIRow("Sep 5th, 2001", 7.0, 187.0),
    TableIRow("Sep 5th, 2001", 16.0, 72.0),
)


def default_size_distribution() -> Mixture:
    """Mice-and-elephants flow size law (bytes).

    85% bounded-Pareto body+tail (the heavy tail the self-similarity
    literature documents) plus 15% tiny transactional flows, most of which
    become single-packet flows and exercise the exporter's discard rule.
    """
    return Mixture(
        [
            (0.15, LogNormal(median=300.0, sigma=0.5)),
            (0.85, BoundedPareto(alpha=1.15, minimum=2000.0, maximum=5e5)),
        ]
    )


@dataclass
class LinkWorkload:
    """A reproducible synthetic backbone-link workload.

    ``arrival_rate`` is derived from ``target_mean_rate_bps`` and the mean
    wire bytes per flow of ``size_dist`` (estimated once by seeded Monte
    Carlo), so ``synthesize()`` hits the target utilisation.
    """

    name: str
    target_mean_rate_bps: float
    link_capacity_bps: float = OC12_BPS * DEFAULT_SCALE
    duration: float = 120.0
    size_dist: object = field(default_factory=default_size_distribution)
    address_space: AddressSpace = field(default_factory=AddressSpace)
    tcp_params: TcpParameters = field(default_factory=TcpParameters)
    rtt_dist: object = field(default_factory=lambda: LogNormal(2.0, 0.5))
    cbr_rate_dist: object = field(default_factory=lambda: LogNormal(20e3, 0.5))
    arrivals: ArrivalProcess | None = None  # default: Poisson at arrival_rate

    def __post_init__(self) -> None:
        check_positive("target_mean_rate_bps", self.target_mean_rate_bps)
        check_positive("link_capacity_bps", self.link_capacity_bps)
        check_positive("duration", self.duration)
        if self.target_mean_rate_bps > self.link_capacity_bps:
            raise ParameterError(
                "target rate exceeds link capacity; the paper's links stay "
                "below 50% utilisation"
            )

    @property
    def mean_wire_bytes_per_flow(self) -> float:
        """``E[S + header * ceil(S/mss)]`` by seeded Monte Carlo."""
        rng = as_rng(12345)
        sizes = np.asarray(
            self.size_dist.rvs(size=50_000, random_state=rng), dtype=np.float64
        )
        sizes = np.maximum(sizes, 40.0)
        packets = np.maximum(np.ceil(sizes / self.tcp_params.mss), 1.0)
        return float(np.mean(sizes + self.tcp_params.header_bytes * packets))

    @property
    def arrival_rate(self) -> float:
        """Flow arrival rate (flows/s) implied by the target mean rate."""
        bytes_per_second = self.target_mean_rate_bps / 8.0
        return bytes_per_second / self.mean_wire_bytes_per_flow

    @property
    def target_utilization(self) -> float:
        return self.target_mean_rate_bps / self.link_capacity_bps

    def with_duration(self, duration: float) -> "LinkWorkload":
        return replace(self, duration=duration)

    def model_ensemble(self):
        """Flow (size, duration) law for model-driven generation.

        Pairs the workload's size distribution with its access-rate law
        (``D = S / r``), the analytically convenient
        :class:`~repro.core.SizeRateEnsemble` of section V — this is the
        ensemble the generation engine feeds from when the workload is
        generated by the shot-noise model rather than the TCP simulator.
        """
        from ..core.ensemble import SizeRateEnsemble

        return SizeRateEnsemble(self.size_dist, self.cbr_rate_dist)

    def _synthesis_kwargs(self) -> dict:
        return dict(
            arrivals=self.arrivals or PoissonArrivals(self.arrival_rate),
            size_dist=self.size_dist,
            duration=self.duration,
            link_capacity=self.link_capacity_bps,
            address_space=self.address_space,
            tcp_params=self.tcp_params,
            rtt_dist=self.rtt_dist,
            cbr_rate_dist=self.cbr_rate_dist,
            name=self.name,
        )

    def synthesize(self, seed=None, *, engine=None) -> LinkSynthesis:
        """Generate a packet trace for this workload.

        ``engine`` optionally supplies a configured
        :class:`~repro.synthesis.SynthesisEngine`; the default engine is
        equivalent for any ``chunk``/``workers`` (bit-for-bit, pinned by
        ``tests/synthesis/``).
        """
        from ..synthesis.engine import SynthesisEngine

        engine = engine or SynthesisEngine()
        return engine.synthesize(seed, **self._synthesis_kwargs())

    def synthesize_chunks(
        self,
        seed=None,
        *,
        chunk: int = 1_000_000,
        workers: int = 1,
        backend: str = "thread",
        engine=None,
    ):
        """Stream this workload as time-ordered packet blocks of ``chunk``.

        A true bounded-memory producer (a
        :class:`~repro.synthesis.StreamingSynthesis`): cells of the
        arrival timeline are synthesized on ``workers`` threads and
        merged into consecutive ``PACKET_DTYPE`` blocks ready for the
        streaming measurement engine
        (:meth:`repro.measurement.MeasurementEngine.measure_chunks`) or a
        :class:`~repro.trace.TraceWriter` — the same shape a chunked
        :class:`~repro.trace.TraceReader` yields, so measurement code is
        agnostic to whether its input was captured or synthesized.  Peak
        memory is bounded by the active-flow population plus one merge
        window, never the trace, and the concatenated blocks equal
        :meth:`synthesize` bit for bit for any ``chunk``/``workers``.
        """
        from ..synthesis.engine import SynthesisEngine

        engine = engine or SynthesisEngine(
            chunk=chunk, workers=workers, backend=backend
        )
        return engine.synthesize_chunks(seed, **self._synthesis_kwargs())


def table_i_workload(
    row: int | TableIRow,
    *,
    scale: float = DEFAULT_SCALE,
    duration: float = 120.0,
) -> LinkWorkload:
    """Scaled workload for one Table I trace.

    ``row`` is an index into :data:`TABLE_I_ROWS` or a row object.  Rates
    are multiplied by ``scale``; trace length is replaced by ``duration``
    seconds (the paper's hours-long captures are summarised per 30-minute
    interval; our intervals are ``duration``-long).

    ``scale=1.0`` gives the full-rate OC-12 link of the paper: with
    ``duration=1800.0`` (one 30-minute analysis interval) that is a
    10^7-10^8-packet synthesis, which streams end-to-end in bounded
    memory through :meth:`LinkWorkload.synthesize_chunks` and the
    measurement engine — materialising it via :meth:`LinkWorkload.synthesize`
    also works but holds the whole packet array (~23 bytes/packet).
    """
    if isinstance(row, (int, np.integer)):
        row = TABLE_I_ROWS[int(row)]
    check_positive("scale", scale)
    return LinkWorkload(
        name=f"{row.date} ({row.avg_utilization_mbps:g} Mbps)",
        target_mean_rate_bps=row.avg_utilization_mbps * 1e6 * scale,
        link_capacity_bps=OC12_BPS * scale,
        duration=duration,
    )


def table_i_workloads(
    *, scale: float = DEFAULT_SCALE, duration: float = 120.0
) -> list[LinkWorkload]:
    """All seven Table I workloads, scaled."""
    return [
        table_i_workload(row, scale=scale, duration=duration)
        for row in TABLE_I_ROWS
    ]


def low_utilization_link(
    *, duration: float = 120.0, scale: float = DEFAULT_SCALE
) -> LinkWorkload:
    """The 26 Mbps-class link: highest traffic variability (~30% CoV).

    Pass ``scale=1.0`` for the full-rate link (see :func:`table_i_workload`).
    """
    return table_i_workload(3, scale=scale, duration=duration)


def medium_utilization_link(
    *, duration: float = 120.0, scale: float = DEFAULT_SCALE
) -> LinkWorkload:
    """A 136 Mbps-class link: the middle CoV cluster of Figures 9-13."""
    return table_i_workload(4, scale=scale, duration=duration)


def high_utilization_link(
    *, duration: float = 120.0, scale: float = DEFAULT_SCALE
) -> LinkWorkload:
    """A 262 Mbps-class link: smooth traffic (bottom-left cluster)."""
    return table_i_workload(2, scale=scale, duration=duration)


# -- multi-link scenarios (engine-parallel) ------------------------------


def synthesize_scenario(
    workloads,
    *,
    seed: int = 0,
    workers: int = 1,
) -> list[LinkSynthesis]:
    """Synthesize many independent links in parallel.

    Each link draws from its own ``SeedSequence`` child keyed by position,
    so the result list is deterministic for a given ``seed`` regardless of
    ``workers`` — the engine's multi-seed fan-out applied to the TCP-level
    synthesiser.  This is how whole Table I campaigns (seven links, many
    seeds) are produced in one call.
    """
    from ..generation.engine import GenerationEngine

    workloads = list(workloads)
    if not workloads:
        raise ParameterError("workloads must not be empty")
    engine = GenerationEngine(workers=workers)

    def run(index, child):
        return workloads[index].synthesize(seed=as_rng(child))

    return engine.map_seeded(run, len(workloads), seed=seed)


def multi_link_rate_series(
    workloads,
    shot,
    *,
    delta: float = 0.2,
    seed: int = 0,
    chunk: float | None = None,
    workers: int = 1,
):
    """Model-driven rate paths for many links, generated by the engine.

    For each workload, feeds its implied arrival rate and
    :meth:`LinkWorkload.model_ensemble` flow law through
    :meth:`~repro.generation.engine.GenerationEngine.rate_series` with a
    per-link ``SeedSequence`` child.  Returns one
    :class:`~repro.stats.timeseries.RateSeries` of byte rates per link,
    in workload order, deterministic for a given ``seed`` regardless of
    ``workers`` or ``chunk``.
    """
    from ..generation.engine import GenerationEngine

    workloads = list(workloads)
    if not workloads:
        raise ParameterError("workloads must not be empty")
    # parallelism lives at the link level; the per-link engine stays
    # single-worker so pools do not nest (workers^2 threads otherwise)
    outer = GenerationEngine(workers=workers)
    per_link = GenerationEngine(chunk=chunk)

    def run(index, child):
        workload = workloads[index]
        return per_link.rate_series(
            workload.arrival_rate,
            workload.model_ensemble(),
            shot,
            workload.duration,
            delta,
            rng=as_rng(child),
        )

    return outer.map_seeded(run, len(workloads), seed=seed)
