"""Synthetic backbone workload substrate (the Sprint-trace stand-in).

Generates packet-level traces of uncongested backbone links: Poisson (or
MMPP / session-clustered) flow arrivals, heavy-tailed sizes, TCP-like or
CBR transmission dynamics, Zipf destination prefixes, full packetization.
"""

from .addresses import WELL_KNOWN_PORTS, AddressSpace
from .arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    MMPPArrivals,
    NonHomogeneousPoissonArrivals,
    PoissonArrivals,
    SessionArrivals,
)
from .link import LinkSynthesis, synthesize_link_trace
from .packetize import packetize_shots
from .sizes import BoundedPareto, Constant, Empirical, Exponential, LogNormal, Mixture
from .tcp import PacketSchedule, TcpParameters, simulate_tcp_flows
from .workloads import (
    DEFAULT_SCALE,
    OC12_BPS,
    TABLE_I_ROWS,
    LinkWorkload,
    TableIRow,
    default_size_distribution,
    high_utilization_link,
    low_utilization_link,
    medium_utilization_link,
    multi_link_rate_series,
    synthesize_scenario,
    table_i_workload,
    table_i_workloads,
)

__all__ = [
    "AddressSpace",
    "WELL_KNOWN_PORTS",
    "ArrivalProcess",
    "PoissonArrivals",
    "DiurnalArrivals",
    "MMPPArrivals",
    "NonHomogeneousPoissonArrivals",
    "SessionArrivals",
    "BoundedPareto",
    "LogNormal",
    "Exponential",
    "Constant",
    "Mixture",
    "Empirical",
    "TcpParameters",
    "PacketSchedule",
    "simulate_tcp_flows",
    "packetize_shots",
    "LinkSynthesis",
    "synthesize_link_trace",
    "OC12_BPS",
    "DEFAULT_SCALE",
    "TableIRow",
    "TABLE_I_ROWS",
    "LinkWorkload",
    "default_size_distribution",
    "table_i_workload",
    "table_i_workloads",
    "low_utilization_link",
    "medium_utilization_link",
    "high_utilization_link",
    "synthesize_scenario",
    "multi_link_rate_series",
]
