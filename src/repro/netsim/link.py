"""Backbone-link trace synthesis: flows -> packets -> capture.

This is the stand-in for the paper's monitored Sprint OC-12 links.  Flows
arrive by an :class:`~repro.netsim.arrivals.ArrivalProcess`, draw a size
from a heavy-tailed law and endpoints from an
:class:`~repro.netsim.addresses.AddressSpace`; TCP flows transmit through
the round-based window model of :mod:`repro.netsim.tcp`, UDP flows as CBR
streams.  All packets are merged in timestamp order, exactly what a
passive tap records.

The synthesised link is *uncongested by construction* (no queueing model):
that is the paper's operating regime — backbone links are kept below 50%
utilisation, so flows do not interact on the monitored hop (Assumption 2's
independence).

Since the streaming synthesis engine (:mod:`repro.synthesis`) became the
canonical implementation, :func:`synthesize_link_trace` is cell-seeded:
the arrival timeline is cut into fixed
:data:`~repro.synthesis.DEFAULT_SYNTHESIS_CELL`-second cells, each owning
its own ``SeedSequence`` child, and the per-cell packet blocks are merged
in time order.  The output is therefore a pure function of ``seed`` (and
the workload), identical bit for bit whether it is materialised here or
streamed chunk by chunk with any ``chunk``/``workers`` configuration via
:meth:`~repro.synthesis.SynthesisEngine.synthesize_chunks`.  The
pre-engine single-stream implementation survives as
:func:`repro.synthesis.reference_synthesize_link_trace` (equal in
distribution, not draw for draw).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .addresses import AddressSpace
from .arrivals import ArrivalProcess
from .tcp import TcpParameters

__all__ = ["LinkSynthesis", "synthesize_link_trace"]


@dataclass
class LinkSynthesis:
    """Result of one synthesis run: the trace plus generation ground truth.

    Ground truth (true flow start times, sizes, protocols) lets tests and
    experiments compare what the flow exporter *measures* against what was
    actually generated.  Flows are listed in arrival-cell order: sorted by
    start time within each cell (and globally sorted for memoryless
    arrival processes; session trains may interleave across cell
    boundaries).
    """

    trace: "PacketTrace"  # noqa: F821 - forward ref, see repro.trace
    flow_start_times: np.ndarray
    flow_sizes: np.ndarray
    flow_protocols: np.ndarray

    @property
    def n_flows(self) -> int:
        return int(self.flow_start_times.size)


def synthesize_link_trace(
    *,
    arrivals: ArrivalProcess,
    size_dist,
    duration: float,
    link_capacity: float,
    address_space: AddressSpace | None = None,
    tcp_params: TcpParameters = TcpParameters(),
    rtt_dist=None,
    cbr_rate_dist=None,
    warmup: float | None = None,
    name: str = "synthetic",
    seed=None,
) -> LinkSynthesis:
    """Synthesise a packet trace for one uncongested backbone link.

    Parameters
    ----------
    arrivals:
        Flow arrival process (Poisson for the paper's Assumption 1).
    size_dist:
        Flow payload size distribution (bytes); e.g.
        :class:`~repro.netsim.sizes.BoundedPareto`.
    duration:
        Capture length in seconds.  Flows starting near the end are
        truncated at the capture boundary, as in any real trace.
    link_capacity:
        Link speed in bits/second (only recorded as metadata; the link is
        assumed uncongested and imposes no queueing).
    warmup:
        Lead-in time (seconds) during which flows already arrive before
        the capture starts, so the trace opens in steady state: the tails
        of pre-capture flows compensate the bytes lost to end-of-capture
        truncation, and the interval genuinely starts with split flows —
        the paper's Figure 1 boundary effect.  Defaults to half the
        capture, capped at 90 s.
    address_space:
        Endpoint population; defaults to :class:`AddressSpace()`.
    tcp_params:
        Window dynamics for TCP flows.
    rtt_dist:
        Per-flow RTT distribution (seconds); defaults to
        LogNormal(median=0.5, sigma=0.4)-like behaviour via numpy.
    cbr_rate_dist:
        Rate distribution for UDP/CBR flows (bytes/second); defaults to a
        lognormal around 20 kB/s.
    seed:
        Seed, ``SeedSequence`` or Generator; the whole synthesis is
        reproducible from it.  Per-cell ``SeedSequence`` children make
        the result identical to the streamed engine output for any
        ``chunk``/``workers``.
    """
    # lazy import: repro.synthesis imports this module for LinkSynthesis
    from ..synthesis.engine import SynthesisEngine

    return SynthesisEngine().synthesize(
        seed,
        arrivals=arrivals,
        size_dist=size_dist,
        duration=duration,
        link_capacity=link_capacity,
        address_space=address_space,
        tcp_params=tcp_params,
        rtt_dist=rtt_dist,
        cbr_rate_dist=cbr_rate_dist,
        warmup=warmup,
        name=name,
    )
