"""Backbone-link trace synthesis: flows -> packets -> capture.

This is the stand-in for the paper's monitored Sprint OC-12 links.  Flows
arrive by an :class:`~repro.netsim.arrivals.ArrivalProcess`, draw a size
from a heavy-tailed law and endpoints from an
:class:`~repro.netsim.addresses.AddressSpace`; TCP flows transmit through
the round-based window model of :mod:`repro.netsim.tcp`, UDP flows as CBR
streams.  All packets are merged in timestamp order, exactly what a
passive tap records.

The synthesised link is *uncongested by construction* (no queueing model):
that is the paper's operating regime — backbone links are kept below 50%
utilisation, so flows do not interact on the monitored hop (Assumption 2's
independence).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import as_rng, check_positive
from ..core.shots import RectangularShot
from ..exceptions import ParameterError
from ..flows.keys import PROTO_TCP
from ..trace.packet import PacketTrace, packets_from_columns
from .addresses import AddressSpace
from .arrivals import ArrivalProcess
from .packetize import packetize_shots
from .tcp import PacketSchedule, TcpParameters, simulate_tcp_flows

__all__ = ["LinkSynthesis", "synthesize_link_trace"]


@dataclass
class LinkSynthesis:
    """Result of one synthesis run: the trace plus generation ground truth.

    Ground truth (true flow start times, sizes, protocols) lets tests and
    experiments compare what the flow exporter *measures* against what was
    actually generated.
    """

    trace: PacketTrace
    flow_start_times: np.ndarray
    flow_sizes: np.ndarray
    flow_protocols: np.ndarray

    @property
    def n_flows(self) -> int:
        return int(self.flow_start_times.size)


def synthesize_link_trace(
    *,
    arrivals: ArrivalProcess,
    size_dist,
    duration: float,
    link_capacity: float,
    address_space: AddressSpace | None = None,
    tcp_params: TcpParameters = TcpParameters(),
    rtt_dist=None,
    cbr_rate_dist=None,
    warmup: float | None = None,
    name: str = "synthetic",
    seed=None,
) -> LinkSynthesis:
    """Synthesise a packet trace for one uncongested backbone link.

    Parameters
    ----------
    arrivals:
        Flow arrival process (Poisson for the paper's Assumption 1).
    size_dist:
        Flow payload size distribution (bytes); e.g.
        :class:`~repro.netsim.sizes.BoundedPareto`.
    duration:
        Capture length in seconds.  Flows starting near the end are
        truncated at the capture boundary, as in any real trace.
    link_capacity:
        Link speed in bits/second (only recorded as metadata; the link is
        assumed uncongested and imposes no queueing).
    warmup:
        Lead-in time (seconds) during which flows already arrive before
        the capture starts, so the trace opens in steady state: the tails
        of pre-capture flows compensate the bytes lost to end-of-capture
        truncation, and the interval genuinely starts with split flows —
        the paper's Figure 1 boundary effect.  Defaults to half the
        capture, capped at 90 s.
    address_space:
        Endpoint population; defaults to :class:`AddressSpace()`.
    tcp_params:
        Window dynamics for TCP flows.
    rtt_dist:
        Per-flow RTT distribution (seconds); defaults to
        LogNormal(median=0.5, sigma=0.4)-like behaviour via numpy.
    cbr_rate_dist:
        Rate distribution for UDP/CBR flows (bytes/second); defaults to a
        lognormal around 20 kB/s.
    seed:
        Seed or Generator; the whole synthesis is reproducible from it.
    """
    duration = check_positive("duration", duration)
    check_positive("link_capacity", link_capacity)
    rng = as_rng(seed)
    if address_space is None:
        address_space = AddressSpace()
    if warmup is None:
        warmup = min(duration / 2.0, 90.0)
    warmup = max(float(warmup), 0.0)

    start_times = arrivals.times(duration + warmup, rng) - warmup
    n = start_times.size
    if n == 0:
        raise ParameterError(
            "arrival process produced zero flows; increase rate or duration"
        )

    sizes = np.asarray(size_dist.rvs(size=n, random_state=rng), dtype=np.float64)
    sizes = np.maximum(sizes, 40.0)
    src_addr, dst_addr, src_port, dst_port, protocol = (
        address_space.sample_endpoints(n, rng)
    )

    is_tcp = protocol == PROTO_TCP
    schedules = []

    if np.any(is_tcp):
        tcp_idx = np.flatnonzero(is_tcp)
        if rtt_dist is None:
            rtts = rng.lognormal(np.log(0.5), 0.4, tcp_idx.size)
        else:
            rtts = np.asarray(
                rtt_dist.rvs(size=tcp_idx.size, random_state=rng), dtype=np.float64
            )
        sched = simulate_tcp_flows(sizes[tcp_idx], rtts, tcp_params, rng)
        sched.flow_index = tcp_idx[sched.flow_index]
        schedules.append(sched)

    if np.any(~is_tcp):
        udp_idx = np.flatnonzero(~is_tcp)
        if cbr_rate_dist is None:
            rates = rng.lognormal(np.log(20e3), 0.5, udp_idx.size)
        else:
            rates = np.asarray(
                cbr_rate_dist.rvs(size=udp_idx.size, random_state=rng),
                dtype=np.float64,
            )
        udp_durations = np.maximum(sizes[udp_idx] / rates, 1e-3)
        sched = packetize_shots(
            sizes[udp_idx],
            udp_durations,
            RectangularShot(),
            mss=tcp_params.mss,
            header_bytes=tcp_params.header_bytes,
            jitter=0.5,
            rng=rng,
        )
        sched.flow_index = udp_idx[sched.flow_index]
        schedules.append(sched)

    schedule = PacketSchedule.concatenate(schedules)
    timestamps = start_times[schedule.flow_index] + schedule.offset

    # keep only packets inside the capture window: pre-capture packets of
    # warm-up flows fall away, end-of-capture flows are truncated — exactly
    # what a tap observing [0, duration) records
    keep = (timestamps >= 0.0) & (timestamps < duration)
    timestamps = timestamps[keep]
    flow_of_packet = schedule.flow_index[keep]
    wire_sizes = schedule.wire_size[keep]

    packets = packets_from_columns(
        timestamps,
        src_addr[flow_of_packet],
        dst_addr[flow_of_packet],
        src_port[flow_of_packet],
        dst_port[flow_of_packet],
        protocol[flow_of_packet],
        wire_sizes,
    )
    order = np.argsort(packets["timestamp"], kind="stable")
    trace = PacketTrace(
        packets[order],
        link_capacity=link_capacity,
        duration=duration,
        name=name,
    )
    return LinkSynthesis(
        trace=trace,
        flow_start_times=start_times,
        flow_sizes=sizes,
        flow_protocols=protocol,
    )
