"""TCP-like per-flow rate dynamics (round-based window evolution).

The validation must not be circular: the model assumes an idealised shot
shape, so the synthetic traffic has to transmit with *different*, more
realistic dynamics.  We use the classic round model of TCP ([7], [21] in
the paper's bibliography): a flow sends a window of packets per round-trip
time, the window doubling each round in slow start up to ``ssthresh`` and
then growing by one segment per round (congestion avoidance), capped by
the receiver window.  Short flows therefore ramp up super-linearly (the
reason the paper finds ``b ~= 2`` for 5-tuple flows) while long flows
spend most of their life at a plateau (closer to rectangular).

The simulator is vectorised across flows: the Python-level loop runs over
*rounds* (tens to hundreds of iterations), never over packets or flows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import as_rng
from ..exceptions import ParameterError
from ..kernels import expand_rounds

__all__ = ["TcpParameters", "PacketSchedule", "simulate_tcp_flows"]


@dataclass(frozen=True)
class TcpParameters:
    """Window-evolution parameters of the round-based TCP model."""

    mss: int = 1460  # payload bytes per segment
    header_bytes: int = 40  # IP + TCP header overhead on the wire
    initial_window: int = 2  # packets
    ssthresh: int = 64  # slow start -> congestion avoidance threshold
    max_window: int = 64  # receiver window, packets
    rtt_jitter: float = 0.1  # lognormal sigma applied per flow round time

    def __post_init__(self) -> None:
        if self.mss < 1:
            raise ParameterError("mss must be >= 1")
        if self.header_bytes < 0:
            raise ParameterError("header_bytes must be >= 0")
        if self.initial_window < 1:
            raise ParameterError("initial_window must be >= 1")
        if self.ssthresh < self.initial_window:
            raise ParameterError("ssthresh must be >= initial_window")
        if self.max_window < self.ssthresh:
            raise ParameterError("max_window must be >= ssthresh")
        if self.rtt_jitter < 0:
            raise ParameterError("rtt_jitter must be >= 0")


@dataclass
class PacketSchedule:
    """Flat per-packet schedule: flow index, time offset from the flow's
    start, and wire size.  The link synthesiser adds arrival times and
    endpoint fields."""

    flow_index: np.ndarray  # int64, which flow each packet belongs to
    offset: np.ndarray  # float64 seconds since the flow started
    wire_size: np.ndarray  # uint16 bytes on the wire

    def __len__(self) -> int:
        return int(self.flow_index.size)

    @classmethod
    def concatenate(cls, schedules) -> "PacketSchedule":
        schedules = [s for s in schedules if len(s)]
        if not schedules:
            return cls(
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.float64),
                np.zeros(0, dtype=np.uint16),
            )
        return cls(
            np.concatenate([s.flow_index for s in schedules]),
            np.concatenate([s.offset for s in schedules]),
            np.concatenate([s.wire_size for s in schedules]),
        )


def _packet_counts(sizes: np.ndarray, mss: int) -> np.ndarray:
    return np.maximum(np.ceil(sizes / mss).astype(np.int64), 1)


def simulate_tcp_flows(
    sizes,
    rtts,
    params: TcpParameters = TcpParameters(),
    rng=None,
) -> PacketSchedule:
    """Simulate the packet schedule of TCP flows.

    Parameters
    ----------
    sizes:
        Per-flow transfer sizes in payload bytes.
    rtts:
        Per-flow round-trip times in seconds.
    params:
        Window dynamics; see :class:`TcpParameters`.
    rng:
        Seed or Generator for per-round RTT jitter.

    Returns
    -------
    PacketSchedule
        Packets of all flows with time offsets measured from each flow's
        first round.  Within a round, packets are paced evenly over the
        round duration (modern TCP pacing; keeps the schedule fluid at
        sub-RTT timescales without modelling queueing).
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    rtts = np.asarray(rtts, dtype=np.float64)
    if sizes.shape != rtts.shape:
        raise ParameterError("sizes and rtts must have the same shape")
    if np.any(sizes <= 0) or np.any(rtts <= 0):
        raise ParameterError("sizes and rtts must be strictly positive")
    rng = as_rng(rng)

    n = sizes.size
    if n == 0:
        # zero flows are a legal (empty) schedule: the streaming synthesis
        # engine feeds this simulator per arrival cell, and cells may be
        # empty — only a whole workload with no flows is an error, raised
        # at the workload level
        return PacketSchedule(
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
            np.zeros(0, dtype=np.uint16),
        )
    remaining = _packet_counts(sizes, params.mss)
    total_packets = remaining.copy()
    window = np.full(n, params.initial_window, dtype=np.int64)
    clock = np.zeros(n, dtype=np.float64)
    sent = np.zeros(n, dtype=np.int64)

    flow_chunks: list[np.ndarray] = []
    start_chunks: list[np.ndarray] = []
    count_chunks: list[np.ndarray] = []
    length_chunks: list[np.ndarray] = []
    sent_before_chunks: list[np.ndarray] = []

    active = remaining > 0
    while np.any(active):
        idx = np.flatnonzero(active)
        send = np.minimum(window[idx], remaining[idx])
        if params.rtt_jitter > 0.0:
            jitter = rng.lognormal(0.0, params.rtt_jitter, idx.size)
        else:
            jitter = np.ones(idx.size)
        round_length = rtts[idx] * jitter

        flow_chunks.append(idx)
        start_chunks.append(clock[idx].copy())
        count_chunks.append(send)
        length_chunks.append(round_length)
        sent_before_chunks.append(sent[idx].copy())

        remaining[idx] -= send
        sent[idx] += send
        clock[idx] += round_length
        in_slow_start = window[idx] < params.ssthresh
        window[idx] = np.where(
            in_slow_start,
            np.minimum(window[idx] * 2, params.max_window),
            np.minimum(window[idx] + 1, params.max_window),
        )
        active = remaining > 0

    round_flow = np.concatenate(flow_chunks)
    round_start = np.concatenate(start_chunks)
    round_count = np.concatenate(count_chunks)
    round_length = np.concatenate(length_chunks)
    round_sent_before = np.concatenate(sent_before_chunks)

    # expand rounds -> packets via the hot kernel (numba when available,
    # vectorised NumPy otherwise).  Both implementations perform every
    # arithmetic operation on the same operand values in the same order,
    # so the schedule is bit-for-bit identical either way — pinned by the
    # reference_* equivalence tests.
    last_payload = sizes - (total_packets - 1) * params.mss
    pkt_flow, pkt_offset, wire = expand_rounds(
        round_flow,
        round_start,
        round_count,
        round_length,
        round_sent_before,
        total_packets,
        last_payload,
        params.mss,
        params.header_bytes,
    )

    return PacketSchedule(
        flow_index=pkt_flow,
        offset=pkt_offset,
        wire_size=wire,
    )
