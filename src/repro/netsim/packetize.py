"""Shot-driven packetization: place packets along a shot's byte curve.

Given flows with sizes, durations and a :class:`~repro.core.shots.Shot`,
packet ``j`` of a flow leaves the source when the shot's cumulative byte
curve crosses the end of its payload — the fluid-to-packet bridge used by
CBR/UDP traffic in the synthesiser and by the section VII-C traffic
generator.
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng, broadcast_flows
from ..core.shots import Shot
from ..exceptions import ParameterError
from .tcp import PacketSchedule

__all__ = ["packetize_shots"]


def packetize_shots(
    sizes,
    durations,
    shot: Shot,
    *,
    mss: int = 1460,
    header_bytes: int = 40,
    jitter: float = 0.0,
    rng=None,
) -> PacketSchedule:
    """Build the packet schedule of flows transmitting along ``shot``.

    Parameters
    ----------
    sizes, durations:
        Per-flow payload bytes and durations (seconds).
    shot:
        Rate profile; packets are placed at
        ``shot.inverse_cumulative(cumulative_payload, S, D)``.
    mss:
        Payload bytes per packet; the last packet carries the remainder.
    header_bytes:
        Per-packet wire overhead.
    jitter:
        Optional uniform dithering of packet times by up to ``jitter``
        fractions of the mean inter-packet gap (keeps packet trains from
        being perfectly periodic).
    """
    sizes, durations = broadcast_flows(sizes, durations)
    if mss < 1:
        raise ParameterError("mss must be >= 1")
    if header_bytes < 0:
        raise ParameterError("header_bytes must be >= 0")
    if jitter < 0.0:
        raise ParameterError("jitter must be >= 0")
    rng = as_rng(rng)

    counts = np.maximum(np.ceil(sizes / mss).astype(np.int64), 1)
    total = int(counts.sum())
    pkt_flow = np.repeat(np.arange(sizes.size), counts)
    first_idx = np.concatenate([[0], np.cumsum(counts)[:-1]])
    within = np.arange(total) - np.repeat(first_idx, counts)

    payload = np.full(total, float(mss))
    is_last = within == counts[pkt_flow] - 1
    payload[is_last] = sizes - (counts - 1) * mss

    # cumulative payload *after* each packet; the packet leaves when the
    # fluid curve reaches it
    cumulative = (within + 1.0) * mss
    cumulative[is_last] = sizes[pkt_flow[is_last]]
    offsets = shot.inverse_cumulative(
        cumulative, sizes[pkt_flow], durations[pkt_flow]
    )
    if jitter > 0.0:
        gap = durations[pkt_flow] / counts[pkt_flow]
        offsets = offsets + (rng.random(total) - 0.5) * jitter * gap
        offsets = np.clip(offsets, 0.0, durations[pkt_flow])

    wire = np.minimum(payload + header_bytes, 65535.0)
    return PacketSchedule(
        flow_index=pkt_flow,
        offset=offsets,
        wire_size=wire.astype(np.uint16),
    )
