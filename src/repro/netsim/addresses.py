"""Synthetic address population for backbone traffic.

Backbone links multiplex flows between very many sources and destinations
(the paper's Assumption 2 rests on this diversity).  To make the /24-prefix
flow definition meaningful, destinations are drawn from a finite population
of /24 networks with Zipf-like popularity — a handful of popular prefixes
(large server farms) attract many concurrent 5-tuple flows, which the
prefix exporter merges into fewer, longer flows, exactly the aggregation
effect the paper reports (section VI-A: one order of magnitude fewer flows
to track, longer durations, rectangular shots suffice).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._util import as_rng
from ..exceptions import ParameterError
from ..flows.keys import PROTO_TCP, PROTO_UDP

__all__ = ["AddressSpace", "WELL_KNOWN_PORTS"]

#: Popular destination ports and their relative weights (web-dominated mix,
#: as on 2001-era backbone links).
WELL_KNOWN_PORTS = {
    80: 0.55,  # http
    443: 0.15,  # https
    25: 0.08,  # smtp
    53: 0.06,  # dns
    21: 0.04,  # ftp
    110: 0.04,  # pop3
    119: 0.03,  # nntp
    8080: 0.05,  # http-alt
}


@dataclass
class AddressSpace:
    """Random endpoint generator with Zipf destination-prefix popularity.

    Parameters
    ----------
    n_dst_prefixes:
        Number of distinct /24 destination networks in the population.
    zipf_exponent:
        Popularity skew: weight of prefix ``k`` is ``(k+1)^-zipf_exponent``.
        1.0 gives the classic heavy concentration on a few prefixes.
    n_src_networks:
        Number of distinct /16 source networks (sources are diffuse).
    udp_fraction:
        Fraction of flows carried over UDP; the rest is TCP.
    """

    n_dst_prefixes: int = 4096
    zipf_exponent: float = 0.8
    n_hot_prefixes: int = 16
    hot_fraction: float = 0.5
    n_src_networks: int = 8192
    udp_fraction: float = 0.08
    dst_base: int = field(default=0x0A000000, repr=False)  # 10.0.0.0
    src_base: int = field(default=0x64000000, repr=False)  # 100.0.0.0

    def __post_init__(self) -> None:
        if self.n_dst_prefixes < 1:
            raise ParameterError("n_dst_prefixes must be >= 1")
        if not 0 <= self.n_hot_prefixes <= self.n_dst_prefixes:
            raise ParameterError(
                "n_hot_prefixes must lie in [0, n_dst_prefixes]"
            )
        if not 0.0 <= self.hot_fraction < 1.0:
            raise ParameterError("hot_fraction must lie in [0, 1)")
        if self.n_src_networks < 1:
            raise ParameterError("n_src_networks must be >= 1")
        if not 0.0 <= self.udp_fraction <= 1.0:
            raise ParameterError("udp_fraction must lie in [0, 1]")
        if self.zipf_exponent < 0.0:
            raise ParameterError("zipf_exponent must be >= 0")
        # two-tier popularity: a "hot" tier of server-farm prefixes that
        # each attract a steady share of flows (creating genuinely
        # concurrent flows to the same /24, like the paper's popular
        # destinations), plus a diffuse Zipf body
        ranks = np.arange(1, self.n_dst_prefixes + 1, dtype=np.float64)
        weights = ranks**-self.zipf_exponent
        weights /= weights.sum()
        if self.n_hot_prefixes and self.hot_fraction > 0.0:
            weights *= 1.0 - self.hot_fraction
            weights[: self.n_hot_prefixes] += (
                self.hot_fraction / self.n_hot_prefixes
            )
        self._prefix_weights = weights / weights.sum()
        ports = np.array(list(WELL_KNOWN_PORTS.keys()), dtype=np.uint16)
        port_weights = np.array(list(WELL_KNOWN_PORTS.values()), dtype=np.float64)
        self._ports = ports
        self._port_weights = port_weights / port_weights.sum()

    def sample_endpoints(self, n: int, rng=None):
        """Draw endpoint fields for ``n`` flows.

        Returns ``(src_addr, dst_addr, src_port, dst_port, protocol)``
        arrays suitable for :func:`repro.trace.packets_from_columns` after
        per-packet expansion.
        """
        rng = as_rng(rng)
        n = int(n)
        prefix_idx = rng.choice(
            self.n_dst_prefixes, size=n, p=self._prefix_weights
        ).astype(np.uint32)
        dst_host = rng.integers(1, 255, size=n, dtype=np.uint32)
        dst_addr = (np.uint32(self.dst_base) + (prefix_idx << np.uint32(8))) | dst_host

        src_net = rng.integers(0, self.n_src_networks, size=n, dtype=np.uint32)
        src_host = rng.integers(1, 0xFFFF, size=n, dtype=np.uint32)
        src_addr = (np.uint32(self.src_base) + (src_net << np.uint32(16))) | src_host

        src_port = rng.integers(1024, 65535, size=n, dtype=np.uint16)
        dst_port = rng.choice(self._ports, size=n, p=self._port_weights)

        protocol = np.where(
            rng.random(n) < self.udp_fraction,
            np.uint8(PROTO_UDP),
            np.uint8(PROTO_TCP),
        )
        return src_addr, dst_addr, src_port, dst_port, protocol

    @property
    def prefix_popularity(self) -> np.ndarray:
        """Per-prefix selection probabilities (descending)."""
        return self._prefix_weights.copy()
