"""Compiled hot kernels with a graceful pure-NumPy fallback.

The three hottest inner loops of the pipeline — the TCP round→packet
expansion, the power-shot rate-series scatter and the EWMA replay — are
provided here twice: a vectorised NumPy implementation (extracted
verbatim from the engines; always available and always correct) and a
``numba.njit`` version that removes the remaining full-trace-size
temporaries and Python dispatch.  When numba is importable the public
functions route to the compiled versions; otherwise they fall back to
NumPy with identical results:

* :func:`expand_rounds` — the compiled loop performs every arithmetic
  operation on the same operand values in the same order as the NumPy
  expansion, so the packet schedule is **bit-for-bit identical**.
* :func:`powershot_scatter` — accumulates per-row increments in flow
  order exactly like ``np.bincount`` over the expanded rows, so it stays
  bit-for-bit equal to ``reference_rate_series`` (the engines only use
  it for :class:`~repro.core.shots.PowerShot`; table-interpolated shots
  keep the NumPy path).
* :func:`ewma` — the compiled version *is* the sequential recurrence
  ``y ← (1-eps)·y + eps·x`` (exactly ``EwmaEstimator``); the NumPy
  fallback is the blocked closed form, equal to ~1e-12 relative.

Nothing here imports an engine, so the module is safely importable from
worker processes before the heavyweight packages.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "njit",
    "expand_rounds",
    "powershot_scatter",
    "ewma",
]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - the live path in minimal installs
    HAVE_NUMBA = False

    def njit(*args, **kwargs):
        """No-op ``numba.njit`` stand-in (decorates to the plain function)."""
        if args and callable(args[0]):
            return args[0]

        def decorate(fn):
            return fn

        return decorate


#: Observations folded per closed-form step in the NumPy EWMA fallback.
#: Bounds the weight ``(1-eps)^k`` evaluated in one block so it cannot
#: underflow even for the smallest gains.
EWMA_BLOCK = 4096


# -- TCP round -> packet expansion -------------------------------------


def _expand_rounds_numpy(
    round_flow,
    round_start,
    round_count,
    round_length,
    round_sent_before,
    total_packets,
    last_payload,
    mss,
    header_bytes,
):
    total = int(round_count.sum())
    n_rounds = round_count.size
    pkt_round = np.repeat(np.arange(n_rounds), round_count)
    pkt_flow = round_flow[pkt_round]

    within_round = np.arange(total, dtype=np.int64)
    first_of_round = np.cumsum(round_count) - round_count  # no length-copy
    within_round -= first_of_round[pkt_round]

    pace = round_length / round_count  # per round, gathered per packet
    pkt_offset = within_round * pace[pkt_round]
    pkt_offset += round_start[pkt_round]

    within_flow = round_sent_before[pkt_round]
    within_flow += within_round
    is_last = within_flow == total_packets[pkt_flow] - 1
    payload = np.where(is_last, last_payload[pkt_flow], mss)
    wire = np.minimum(payload + header_bytes, 65535.0)
    return pkt_flow, pkt_offset, wire.astype(np.uint16)


@njit(cache=True)
def _expand_rounds_njit(
    round_flow,
    round_start,
    round_count,
    round_length,
    round_sent_before,
    total_packets,
    last_payload,
    mss,
    header_bytes,
):  # pragma: no cover - compiled only where numba is installed
    total = 0
    for r in range(round_count.size):
        total += round_count[r]
    pkt_flow = np.empty(total, np.int64)
    pkt_offset = np.empty(total, np.float64)
    wire = np.empty(total, np.uint16)
    k = 0
    for r in range(round_count.size):
        f = round_flow[r]
        pace = round_length[r] / round_count[r]
        start = round_start[r]
        sent0 = round_sent_before[r]
        last_index = total_packets[f] - 1
        for w in range(round_count[r]):
            pkt_flow[k] = f
            pkt_offset[k] = w * pace + start
            if sent0 + w == last_index:
                payload = last_payload[f]
            else:
                payload = mss
            size = payload + header_bytes
            if size > 65535.0:
                size = 65535.0
            wire[k] = np.uint16(size)
            k += 1
    return pkt_flow, pkt_offset, wire


def expand_rounds(
    round_flow,
    round_start,
    round_count,
    round_length,
    round_sent_before,
    total_packets,
    last_payload,
    mss: float,
    header_bytes: float,
):
    """Expand per-round send records into the flat per-packet schedule.

    Returns ``(pkt_flow, pkt_offset, wire_size)`` — flow index (int64),
    offset from the flow start (float64) and wire size (uint16) per
    packet, packets laid out round by round.
    """
    impl = _expand_rounds_njit if HAVE_NUMBA else _expand_rounds_numpy
    return impl(
        round_flow,
        round_start,
        round_count,
        round_length,
        round_sent_before,
        total_packets,
        last_payload,
        float(mss),
        float(header_bytes),
    )


# -- power-shot rate-series scatter ------------------------------------


def _powershot_scatter_numpy(
    starts, sizes, durations, a, b, power, delta, b0, b1
):
    volumes = np.zeros(b1 - b0)
    sel = b > a
    if not np.any(sel):
        return volumes
    counts = b[sel] - a[sel]
    total = int(counts.sum())
    flow = np.repeat(np.flatnonzero(sel), counts)
    row_start = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(total) - np.repeat(row_start, counts)
    gbin = np.repeat(a[sel], counts) + within

    t = starts[flow]
    s = sizes[flow]
    d = durations[flow]
    gb = gbin.astype(np.float64)
    p1 = power + 1.0
    # Same edge values the reference builds via ``delta * arange``:
    # delta * j is one correctly-rounded product.
    v_left = np.clip((delta * gb - t) / d, 0.0, 1.0)
    v_right = np.clip((delta * (gb + 1.0) - t) / d, 0.0, 1.0)
    c_left = s * np.power(v_left, p1)
    c_right = s * np.power(v_right, p1)
    return np.bincount(gbin - b0, weights=c_right - c_left, minlength=b1 - b0)


@njit(cache=True)
def _powershot_scatter_njit(
    starts, sizes, durations, a, b, power, delta, b0, b1
):  # pragma: no cover - compiled only where numba is installed
    volumes = np.zeros(b1 - b0)
    p1 = power + 1.0
    for i in range(a.size):
        hi = b[i]
        if hi <= a[i]:
            continue
        t = starts[i]
        s = sizes[i]
        d = durations[i]
        for j in range(a[i], hi):
            gb = float(j)
            v_left = (delta * gb - t) / d
            if v_left < 0.0:
                v_left = 0.0
            elif v_left > 1.0:
                v_left = 1.0
            v_right = (delta * (gb + 1.0) - t) / d
            if v_right < 0.0:
                v_right = 0.0
            elif v_right > 1.0:
                v_right = 1.0
            volumes[j - b0] += s * v_right**p1 - s * v_left**p1
    return volumes


def powershot_scatter(
    starts, sizes, durations, a, b, power: float, delta: float, b0: int, b1: int
):
    """Exact power-shot byte scatter over the bin range ``[b0, b1)``.

    ``a``/``b`` give each flow's half-open touched-bin range already
    clamped to the chunk.  Rows are accumulated in flow order, so every
    bin sums its floating-point contributions in exactly the order the
    reference per-flow loop performed them.
    """
    args = (
        np.ascontiguousarray(starts, dtype=np.float64),
        np.ascontiguousarray(sizes, dtype=np.float64),
        np.ascontiguousarray(durations, dtype=np.float64),
        np.ascontiguousarray(a, dtype=np.int64),
        np.ascontiguousarray(b, dtype=np.int64),
        float(power),
        float(delta),
        int(b0),
        int(b1),
    )
    impl = _powershot_scatter_njit if HAVE_NUMBA else _powershot_scatter_numpy
    return impl(*args)


# -- EWMA replay --------------------------------------------------------


def _ewma_numpy(x, eps):
    q = 1.0 - eps
    y = float(x[0])
    if x.size == 1:
        return y
    weights = eps * np.power(q, np.arange(EWMA_BLOCK - 1, -1, -1.0))
    decay_full = q**EWMA_BLOCK
    for i0 in range(1, x.size, EWMA_BLOCK):
        block = x[i0: i0 + EWMA_BLOCK]
        m = block.size
        if m == EWMA_BLOCK:
            y = decay_full * y + float(np.dot(weights, block))
        else:
            y = (q**m) * y + float(np.dot(weights[-m:], block))
    return y


@njit(cache=True)
def _ewma_njit(x, eps):  # pragma: no cover - compiled only with numba
    y = x[0]
    q = 1.0 - eps
    for i in range(1, x.size):
        y = q * y + eps * x[i]
    return y


def ewma(values: np.ndarray, eps: float) -> float:
    """Final value of ``y ← (1-eps)·y + eps·x`` over ``values``.

    The compiled version is the recurrence itself; the NumPy fallback is
    the blocked closed form (one dot product per ``EWMA_BLOCK``
    observations), equal to the loop to ~1e-12 relative at any length.
    """
    x = np.ascontiguousarray(values, dtype=np.float64)
    if HAVE_NUMBA:
        return float(_ewma_njit(x, float(eps)))
    return float(_ewma_numpy(x, float(eps)))
