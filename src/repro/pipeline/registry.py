"""Named scenario registry — the paper's presets plus new families.

The default registry carries one spec per Table I link (``table-i-0`` …
``table-i-6``), the three utilisation aliases (``low``/``medium``/
``high``) the CLI has always exposed, and scenario families the pre-
pipeline API could not express at all:

* ``mice-elephants`` — the section VIII multi-class extension: flows are
  split at a byte threshold and a per-class :class:`SuperposedModel` is
  fitted next to the single-class model;
* ``diurnal-ramp`` — a time-of-day sinusoidal arrival-rate ramp
  (:class:`~repro.netsim.arrivals.DiurnalArrivals`), probing Assumption 1
  under non-stationarity;
* ``session-arrivals`` — Poisson sessions spawning clustered flows, the
  paper's remark that the model may be applied at the session level;
* ``flash-flood`` / ``link-outage`` — anomaly injection plus the model-
  based detector of :mod:`repro.applications.anomaly`, validating the
  introduction's anomaly-detection motivation end-to-end.

All registry scenarios are plain :class:`ScenarioSpec` values: serialize
one with ``spec.to_json()`` to seed a custom spec file.
"""

from __future__ import annotations

from ..exceptions import ParameterError
from ..netsim.workloads import TABLE_I_ROWS
from .spec import (
    AnomalySpec,
    ArrivalSpec,
    CalibrationSpec,
    DemandSpec,
    FitSpec,
    IngestSpec,
    NetworkEventSpec,
    NetworkSpec,
    PRESET_ALIASES,
    ScenarioSpec,
    SizeDistributionSpec,
    SweepSpec,
    TopologySpec,
    ValidationSpec,
    WorkloadSpec,
)

__all__ = ["ScenarioRegistry", "default_registry"]


class ScenarioRegistry:
    """Name → :class:`ScenarioSpec` mapping with friendly failure modes."""

    def __init__(self, specs=()) -> None:
        self._specs: dict[str, ScenarioSpec] = {}
        for spec in specs:
            self.register(spec)

    def register(
        self, spec: ScenarioSpec, *, overwrite: bool = False
    ) -> ScenarioSpec:
        """Add a spec under its own name; duplicate names are errors."""
        if not isinstance(spec, ScenarioSpec):
            raise ParameterError(
                f"registry entries must be ScenarioSpec, got {type(spec).__name__}"
            )
        if spec.name in self._specs and not overwrite:
            raise ParameterError(
                f"scenario {spec.name!r} is already registered; pass "
                "overwrite=True to replace it"
            )
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> ScenarioSpec:
        """Look a scenario up by name; unknown names list the valid ones."""
        try:
            return self._specs[name]
        except KeyError:
            known = ", ".join(self.names())
            raise ParameterError(
                f"unknown scenario {name!r}; registered scenarios: {known}"
            ) from None

    def names(self) -> tuple[str, ...]:
        return tuple(self._specs)

    def specs(self) -> tuple[ScenarioSpec, ...]:
        return tuple(self._specs.values())

    def describe(self) -> list[tuple[str, str]]:
        """(name, description) pairs in registration order."""
        return [(s.name, s.description) for s in self._specs.values()]

    def families(self) -> dict[str, list[tuple[str, str]]]:
        """(name, description) pairs grouped by scenario family.

        Families (``single-link``, ``network``) keep the growing
        registry scannable; within a family, registration order is
        preserved.  This is what ``list-scenarios`` prints.
        """
        grouped: dict[str, list[tuple[str, str]]] = {}
        for spec in self._specs.values():
            grouped.setdefault(spec.family, []).append(
                (spec.name, spec.description)
            )
        return grouped

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self):
        return iter(self._specs)

    def run(self, name: str, **run_kwargs):
        """Run one registered scenario (see :func:`run_scenario`)."""
        from .runner import run_scenario

        return run_scenario(self.get(name), **run_kwargs)

    def run_all(self, names=None, *, workers: int = 1, stages=None):
        """Run several registered scenarios over the engine worker pool."""
        from .runner import run_scenarios

        picked = self.names() if names is None else tuple(names)
        return run_scenarios(
            [self.get(name) for name in picked],
            workers=workers,
            stages=stages,
        )


def _builtin_specs() -> list[ScenarioSpec]:
    specs: list[ScenarioSpec] = []

    for alias, row_index in sorted(PRESET_ALIASES.items()):
        row = TABLE_I_ROWS[row_index]
        specs.append(
            ScenarioSpec(
                name=alias,
                description=(
                    f"Table I row {row_index} ({row.avg_utilization_mbps:g} "
                    f"Mbps class), the classic {alias}-utilisation preset"
                ),
                workload=WorkloadSpec(preset=alias),
            )
        )

    for index, row in enumerate(TABLE_I_ROWS):
        specs.append(
            ScenarioSpec(
                name=f"table-i-{index}",
                description=(
                    f"Table I row {index}: {row.date}, "
                    f"{row.avg_utilization_mbps:g} Mbps average utilisation"
                ),
                workload=WorkloadSpec(preset=f"table-i-{index}"),
            )
        )

    specs.append(
        ScenarioSpec(
            name="mice-elephants",
            description=(
                "section VIII multi-class mix: mice/elephants split at "
                "20 kB, per-class models superposed"
            ),
            workload=WorkloadSpec(preset="medium"),
            fit=FitSpec(class_split_bytes=20e3),
        )
    )

    specs.append(
        ScenarioSpec(
            name="diurnal-ramp",
            description=(
                "time-of-day lambda ramp: sinusoidal arrival intensity, "
                "+-60% around the medium preset's rate"
            ),
            workload=WorkloadSpec(
                preset="medium",
                arrivals=ArrivalSpec(kind="diurnal", relative_amplitude=0.6),
            ),
        )
    )

    specs.append(
        ScenarioSpec(
            name="session-arrivals",
            description=(
                "clustered flow arrivals: Poisson sessions spawning ~4 "
                "flows each (the paper's session-level remark)"
            ),
            workload=WorkloadSpec(
                preset="medium",
                arrivals=ArrivalSpec(
                    kind="sessions", flows_per_session=4.0, think_time=1.0
                ),
            ),
        )
    )

    specs.append(
        ScenarioSpec(
            name="flash-flood",
            description=(
                "DoS-like small-packet flood injected into the low-"
                "utilisation link; model-based detector must flag it"
            ),
            workload=WorkloadSpec(preset="low"),
            anomaly=AnomalySpec(
                kind="flood", start=40.0, duration=20.0,
                rate_bytes_per_s=250e3,
            ),
            validation=ValidationSpec(detect_anomalies=True),
        )
    )

    specs.append(
        ScenarioSpec(
            name="link-outage",
            description=(
                "link failure: 90% of packets dropped for 15 s on the "
                "medium link; detector must flag the rate drop"
            ),
            workload=WorkloadSpec(preset="medium"),
            anomaly=AnomalySpec(kind="outage", start=60.0, duration=15.0),
            validation=ValidationSpec(detect_anomalies=True),
        )
    )

    specs.extend(_campus_mixture_specs())
    specs.extend(_ingest_specs())
    specs.extend(_network_specs())

    return specs


#: Lognormal-body / Pareto-tail flow-size mixture in the style of the
#: published campus-traffic fits (Jurkiewicz et al., "Flow length and
#: size distributions in campus Internet traffic"): ~97% of flows are
#: mice from a wide lognormal body, the rest a shallow (alpha ~ 1.05)
#: bounded Pareto elephant tail that carries most of the bytes.
_CAMPUS_MIXTURE_SIZES = SizeDistributionSpec(
    kind="lognormal_pareto",
    body_weight=0.97,
    median=2800.0,
    sigma=2.0,
    alpha=1.05,
    minimum=1e5,
    maximum=5e7,
)


def _campus_mixture_specs() -> list[ScenarioSpec]:
    """The ``campus-mixture-*`` family: published mixture fits, replayed.

    Each preset swaps the Table I bounded-Pareto size law for the
    campus lognormal+Pareto mixture on one of the classic utilisation
    aliases, and runs the ``calibration`` stage so every result carries
    a :class:`~repro.calibration.CalibrationReport` — fitting the very
    family the flows were drawn from closes the loop on the calibration
    subsystem itself.
    """
    specs: list[ScenarioSpec] = []
    for alias in ("low", "medium", "high"):
        specs.append(
            ScenarioSpec(
                name=f"campus-mixture-{alias}",
                description=(
                    "campus lognormal-body / Pareto-tail size mixture "
                    "(published campus-traffic fit) on the "
                    f"{alias}-utilisation preset, calibrated in-loop"
                ),
                workload=WorkloadSpec(
                    preset=alias, sizes=_CAMPUS_MIXTURE_SIZES
                ),
                calibration=CalibrationSpec(),
            )
        )
    return specs


def _ingest_specs() -> list[ScenarioSpec]:
    """The ``real-trace-fit`` family: fit the model to operator telemetry.

    These are *templates* — ``ingest.path`` is empty and must be pointed
    at a real file (``repro run real-trace-netflow5 --ingest-path
    router.nf5``, or ``spec.with_overrides(ingest={...})``).  One preset
    per supported wire format, all running the same import → account →
    estimate → fit → validate chain.
    """
    specs: list[ScenarioSpec] = []
    for fmt, label in (
        ("netflow5", "a NetFlow v5/cflowd flow archive"),
        ("ipfix", "an IPFIX (RFC 7011) flow archive"),
        ("pcap", "a pcap packet capture"),
    ):
        specs.append(
            ScenarioSpec(
                name=f"real-trace-{fmt}",
                description=(
                    f"fit the paper's model to {label} exported by a real "
                    "router (set ingest.path / --ingest-path)"
                ),
                ingest=IngestSpec(format=fmt),
            )
        )
    return specs


def _network_specs() -> list[ScenarioSpec]:
    """The whole-backbone scenario family (``repro network``)."""
    specs: list[ScenarioSpec] = []

    specs.append(
        ScenarioSpec(
            name="abilene-table-i",
            description=(
                "Abilene backbone (11 PoPs, 28 directed links) carrying "
                "six Table I demands, ECMP-routed, per-link models + "
                "provisioning verdicts"
            ),
            network=NetworkSpec(
                topology=TopologySpec(preset="abilene"),
                demands=(
                    DemandSpec("seattle", "newyork", preset="table-i-4"),
                    DemandSpec("sunnyvale", "washington", preset="table-i-6"),
                    DemandSpec("losangeles", "atlanta", preset="table-i-3"),
                    DemandSpec("denver", "newyork", preset="table-i-6"),
                    DemandSpec("houston", "chicago", preset="table-i-3"),
                    DemandSpec("newyork", "losangeles", preset="table-i-4"),
                ),
                routing="ecmp",
                duration=60.0,
            ),
        )
    )

    specs.append(
        ScenarioSpec(
            name="abilene-single-failure-2x",
            description=(
                "capacity sweep over the Abilene Table I scenario: every "
                "single-fibre failure x {1, 1.5, 2}x demand growth, "
                "closed-form pre-filter, marginal cells simulated"
            ),
            network=NetworkSpec(
                topology=TopologySpec(preset="abilene"),
                demands=(
                    DemandSpec("seattle", "newyork", preset="table-i-4"),
                    DemandSpec("sunnyvale", "washington", preset="table-i-6"),
                    DemandSpec("losangeles", "atlanta", preset="table-i-3"),
                    DemandSpec("denver", "newyork", preset="table-i-6"),
                    DemandSpec("houston", "chicago", preset="table-i-3"),
                    DemandSpec("newyork", "losangeles", preset="table-i-4"),
                ),
                routing="ecmp",
                duration=60.0,
            ),
            # the +-15% band around the SLA absorbs the closed form's
            # fixed shape factor vs the engine's fitted one (ana/sim
            # ratios track within ~6% on this grid)
            sweep=SweepSpec(
                demand_factors=(1.0, 1.5, 2.0),
                failures="single",
                margin=0.15,
            ),
        )
    )

    specs.append(
        ScenarioSpec(
            name="ecmp-flash-flood",
            description=(
                "flash crowd (6x arrivals for 20 s) on an ECMP-balanced "
                "demand over two equal-cost paths; the detector must "
                "flag both branches"
            ),
            network=NetworkSpec(
                topology=TopologySpec(preset="parallel-paths", size=2),
                demands=(
                    DemandSpec("src", "dst", preset="medium"),
                    DemandSpec("dst", "src", preset="low"),
                ),
                routing="ecmp",
                duration=120.0,
                events=(
                    NetworkEventSpec(
                        kind="flash_crowd", demand=0, start=60.0,
                        duration=20.0, factor=6.0,
                    ),
                ),
            ),
            validation=ValidationSpec(detect_anomalies=True),
        )
    )

    specs.append(
        ScenarioSpec(
            name="outage-reroute",
            description=(
                "mid-trace fibre outage on one of two equal-cost paths: "
                "affected flows reroute, the failed link's rate drop and "
                "the backup link's surge are both detected"
            ),
            network=NetworkSpec(
                topology=TopologySpec(preset="parallel-paths", size=2),
                demands=(DemandSpec("src", "dst", preset="medium"),),
                routing="shortest_path",
                duration=120.0,
                events=(
                    NetworkEventSpec(
                        kind="outage", link=("src", "mid0"), start=60.0,
                        duration=25.0,
                    ),
                ),
            ),
            validation=ValidationSpec(detect_anomalies=True),
        )
    )

    return specs


_DEFAULT_REGISTRY: ScenarioRegistry | None = None


def default_registry() -> ScenarioRegistry:
    """The shared built-in registry (constructed once, then cached)."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = ScenarioRegistry(_builtin_specs())
    return _DEFAULT_REGISTRY
