"""Declarative scenario specifications — the pipeline's serializable layer.

A :class:`ScenarioSpec` is a frozen, validated, JSON-round-trippable
description of one end-to-end experiment: which link/workload to
synthesize (or which trace to measure), how to account flows, how to
estimate the three-parameter summary (``lambda``, ``E[S]``, ``E[S^2/D]``),
which shot powers to compare, how to generate model-driven traffic, and
what to validate.  Specs are plain data — no callables, no live objects —
so they can live in version-controlled JSON files, be listed in a
:class:`~repro.pipeline.registry.ScenarioRegistry`, and be fanned out in
parallel over the generation engine's worker pool.

Every nested section is itself a frozen dataclass with its own validation;
``ScenarioSpec.from_dict`` rejects unknown keys with a message listing the
valid ones, so a typo in a spec file fails loudly instead of silently
falling back to a default.
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from dataclasses import InitVar, dataclass, field, fields
from pathlib import Path

import numpy as np

from .._util import check_positive
from ..exceptions import ParameterError
from ..execution import BACKENDS, RetryPolicy
from ..netsim.arrivals import (
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    SessionArrivals,
)
from ..netsim.workloads import (
    DEFAULT_SCALE,
    OC12_BPS,
    TABLE_I_ROWS,
    LinkWorkload,
    table_i_workload,
)

__all__ = [
    "PRESET_ALIASES",
    "resolve_preset",
    "ArrivalSpec",
    "WorkloadSpec",
    "FlowAccountingSpec",
    "ExecutionSpec",
    "RetryPolicy",
    "IngestSpec",
    "INGEST_FORMATS",
    "SynthesisSpec",
    "MeasurementSpec",
    "EstimationSpec",
    "FitSpec",
    "CALIBRATION_FAMILIES",
    "SELECTION_CRITERIA",
    "SIZE_DISTRIBUTION_KINDS",
    "SizeDistributionSpec",
    "CalibrationSpec",
    "GenerationSpec",
    "AnomalySpec",
    "ValidationSpec",
    "TopologySpec",
    "TopologyLinkSpec",
    "DemandSpec",
    "NetworkEventSpec",
    "NetworkSpec",
    "SweepSpec",
    "ScenarioSpec",
]

#: Named presets mapping to Table I rows (matches the original CLI names:
#: ``low`` is the 26 Mbps-class link, ``medium`` the 136 Mbps-class one,
#: ``high`` the 262 Mbps-class one).
PRESET_ALIASES: dict[str, int] = {"low": 3, "medium": 4, "high": 2}


def resolve_preset(preset) -> int:
    """Map a preset name or Table I row reference to a row index.

    Accepts ``"low" | "medium" | "high"``, a row index ``0..6`` (as int or
    string), or ``"table-i-<row>"``.  Raises :class:`ParameterError` with
    the full list of valid choices on anything else — no bare
    ``int(...)`` crashes on unknown names.
    """
    n_rows = len(TABLE_I_ROWS)
    if isinstance(preset, (int, np.integer)):
        index = int(preset)
    else:
        text = str(preset).strip().lower()
        if text in PRESET_ALIASES:
            return PRESET_ALIASES[text]
        tail = text[len("table-i-"):] if text.startswith("table-i-") else text
        try:
            index = int(tail)
        except ValueError:
            choices = ", ".join(sorted(PRESET_ALIASES))
            raise ParameterError(
                f"unknown preset {preset!r}; valid presets are {choices}, "
                f"a Table I row index 0-{n_rows - 1}, or 'table-i-<row>'"
            ) from None
    if not 0 <= index < n_rows:
        raise ParameterError(
            f"Table I row index must lie in 0-{n_rows - 1}, got {index}"
        )
    return index


# -- serialization helpers -------------------------------------------------

#: Nested spec types, keyed by (owner class name, field name); used by the
#: strict dict decoder to rebuild sub-specs.
_NESTED: dict[tuple[str, str], type] = {}


def _register_nested(owner: str, name: str, spec_type: type) -> None:
    _NESTED[(owner, name)] = spec_type


def _to_jsonable(value):
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _to_jsonable(getattr(value, f.name)) for f in fields(value)
        }
    if isinstance(value, (tuple, list)):
        return [_to_jsonable(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


#: Sections that accept the deprecated flat ``chunk``/``workers`` keys in
#: addition to their canonical ``execution`` sub-section (class name →
#: section label used in error messages and deprecation warnings).
_LEGACY_EXECUTION_SECTIONS: dict[str, str] = {}

#: The deprecated per-section execution keys (pre-ExecutionSpec spelling).
_LEGACY_EXECUTION_KEYS = ("chunk", "workers")


def _spec_from_dict(cls, data, *, path: str, stacklevel: int = 2):
    """Strictly decode ``data`` into spec dataclass ``cls``.

    Unknown keys raise with the list of valid keys; nested sections recurse
    with a dotted path so the error pinpoints the offending entry.
    Sections registered in :data:`_LEGACY_EXECUTION_SECTIONS` additionally
    accept the deprecated flat ``chunk``/``workers`` keys (decoded through
    the constructor's shim with a :class:`DeprecationWarning`).

    ``stacklevel`` is the deprecation warning's distance to the *user's*
    line: every public entry point (``from_dict``, ``from_json``,
    ``from_file``, ``with_overrides``) calls this function directly and
    passes 3, and each recursion adds one, so the warning always points
    at the caller's line, not at this module.
    """
    if not isinstance(data, dict):
        raise ParameterError(
            f"{path} must be a JSON object, got {type(data).__name__}"
        )
    valid = {f.name for f in fields(cls)}
    legacy: tuple[str, ...] = ()
    if cls.__name__ in _LEGACY_EXECUTION_SECTIONS:
        legacy = tuple(k for k in _LEGACY_EXECUTION_KEYS if k in data)
        valid |= set(_LEGACY_EXECUTION_KEYS)
    unknown = sorted(set(data) - valid)
    if unknown:
        raise ParameterError(
            f"{path}: unknown key(s) {unknown}; valid keys are {sorted(valid)}"
        )
    if legacy and "execution" in data:
        raise ParameterError(
            f"{path}: give execution knobs either as 'execution': "
            f"{{\"chunk\": ..., \"workers\": ...}} or as the deprecated "
            f"flat {list(legacy)} key(s), not both"
        )
    if legacy:
        warnings.warn(
            f"{path}: the flat {list(legacy)} key(s) are deprecated; "
            "spell execution knobs as 'execution': {\"chunk\": ..., "
            "\"workers\": ...} (see MIGRATION.md)",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
    kwargs = {}
    for name in valid:
        if name not in data:
            continue
        value = data[name]
        nested = _NESTED.get((cls.__name__, name))
        if nested is not None and value is not None:
            value = _spec_from_dict(
                nested, value, path=f"{path}.{name}",
                stacklevel=stacklevel + 1,
            )
        kwargs[name] = value
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        # ParameterError is a ValueError; plain ValueError/TypeError come
        # from mistyped values (e.g. "duration": "long") hitting float()
        # casts — wrap them all so a bad spec file fails with the path,
        # never a raw traceback.
        raise ParameterError(f"{path}: {exc}") from None


def _freeze_tuple(spec, name: str, cast=float) -> None:
    value = getattr(spec, name)
    object.__setattr__(spec, name, tuple(cast(v) for v in value))


def _check_choice(path: str, value: str, choices: tuple[str, ...]) -> str:
    if value not in choices:
        raise ParameterError(
            f"{path} must be one of {sorted(choices)}, got {value!r}"
        )
    return value


# -- spec sections ---------------------------------------------------------


@dataclass(frozen=True)
class ArrivalSpec:
    """Serializable flow-arrival process description.

    ``kind`` selects the process; only the parameters of that kind are
    consulted.  Rates are *relative* to the workload's derived arrival rate
    so the spec stays valid when the target utilisation changes:

    * ``poisson`` — homogeneous Poisson (Assumption 1; the default).
    * ``mmpp`` — two-state MMPP at ``rate_factors x lambda`` with the given
      mean sojourns (seconds).
    * ``diurnal`` — sinusoidal time-of-day ramp of relative amplitude
      ``relative_amplitude`` and ``period`` seconds (``None`` = one full
      period per workload duration).
    * ``sessions`` — Poisson sessions each spawning a geometric number of
      flows; the session rate is scaled so the mean *flow* rate stays
      ``lambda``.
    """

    kind: str = "poisson"
    rate_factors: tuple[float, float] = (0.5, 2.0)
    mean_sojourns: tuple[float, float] = (10.0, 10.0)
    relative_amplitude: float = 0.5
    period: float | None = None
    phase: float = 0.0
    flows_per_session: float = 4.0
    think_time: float = 2.0

    def __post_init__(self) -> None:
        _check_choice(
            "arrivals.kind", self.kind, ("poisson", "mmpp", "diurnal", "sessions")
        )
        _freeze_tuple(self, "rate_factors")
        _freeze_tuple(self, "mean_sojourns")
        if len(self.rate_factors) != 2 or len(self.mean_sojourns) != 2:
            raise ParameterError(
                "arrivals.rate_factors and arrivals.mean_sojourns must each "
                "have exactly two entries (two MMPP states)"
            )
        if not 0.0 <= float(self.relative_amplitude) < 1.0:
            raise ParameterError(
                "arrivals.relative_amplitude must lie in [0, 1), got "
                f"{self.relative_amplitude!r}"
            )
        if self.period is not None:
            check_positive("arrivals.period", self.period)
        if self.flows_per_session < 1.0:
            raise ParameterError(
                "arrivals.flows_per_session must be >= 1, got "
                f"{self.flows_per_session!r}"
            )
        check_positive("arrivals.think_time", self.think_time)

    def build(self, arrival_rate: float, duration: float):
        """Materialise the arrival process for a derived flow rate."""
        if self.kind == "poisson":
            return PoissonArrivals(arrival_rate)
        if self.kind == "mmpp":
            return MMPPArrivals(
                [arrival_rate * f for f in self.rate_factors],
                self.mean_sojourns,
            )
        if self.kind == "diurnal":
            return DiurnalArrivals(
                arrival_rate,
                relative_amplitude=self.relative_amplitude,
                period=self.period if self.period is not None else duration,
                phase=self.phase,
            )
        return SessionArrivals(
            arrival_rate / self.flows_per_session,
            flows_per_session=self.flows_per_session,
            think_time=self.think_time,
        )


#: Flow-size families a spec can name.  Mirrors
#: ``repro.calibration.CALIBRATION_FAMILIES`` (pinned by a test); kept
#: literal here so the spec layer stays pure data with no engine imports.
SIZE_DISTRIBUTION_KINDS = (
    "lognormal", "pareto", "exponential", "lognormal_pareto",
)

#: Parameters each size-law kind requires (and accepts — extras error).
_SIZE_KIND_PARAMS: dict[str, tuple[str, ...]] = {
    "lognormal": ("median", "sigma"),
    "pareto": ("alpha", "minimum", "maximum"),
    "exponential": ("mean_bytes",),
    "lognormal_pareto": (
        "body_weight", "median", "sigma", "alpha", "minimum", "maximum",
    ),
}


@dataclass(frozen=True)
class SizeDistributionSpec:
    """A serializable flow-size law for the workload to draw from.

    ``kind`` names one of the calibration subsystem's registered
    families; exactly the parameters of that kind must be set (anything
    else is an error, so a stray ``alpha`` on a lognormal fails loudly).
    This is the section :meth:`CalibrationReport.to_scenario_spec`
    emits, and the one behind the ``campus-mixture-*`` registry presets.
    """

    kind: str
    median: float | None = None
    sigma: float | None = None
    alpha: float | None = None
    minimum: float | None = None
    maximum: float | None = None
    mean_bytes: float | None = None
    body_weight: float | None = None

    def __post_init__(self) -> None:
        _check_choice("sizes.kind", self.kind, SIZE_DISTRIBUTION_KINDS)
        required = _SIZE_KIND_PARAMS[self.kind]
        missing = [p for p in required if getattr(self, p) is None]
        if missing:
            raise ParameterError(
                f"sizes: kind {self.kind!r} requires {sorted(required)}, "
                f"missing {missing}"
            )
        all_params = {p for ps in _SIZE_KIND_PARAMS.values() for p in ps}
        extras = sorted(
            p
            for p in all_params - set(required)
            if getattr(self, p) is not None
        )
        if extras:
            raise ParameterError(
                f"sizes: kind {self.kind!r} takes only {sorted(required)}; "
                f"remove {extras}"
            )
        self.build()  # delegate value validation to the distribution

    def params(self) -> dict:
        """The kind's parameters as the calibration layer's dict form."""
        return {
            p: float(getattr(self, p)) for p in _SIZE_KIND_PARAMS[self.kind]
        }

    @classmethod
    def from_family(cls, family: str, params: dict) -> "SizeDistributionSpec":
        """Build from a calibration ``(family, params)`` pair."""
        _check_choice("sizes.kind", family, SIZE_DISTRIBUTION_KINDS)
        allowed = set(_SIZE_KIND_PARAMS[family])
        return cls(
            kind=family,
            **{k: float(v) for k, v in params.items() if k in allowed},
        )

    def build(self):
        """Materialise the ``repro.netsim.sizes`` distribution."""
        from ..calibration.families import build_distribution

        return build_distribution(self.kind, self.params())


@dataclass(frozen=True)
class WorkloadSpec:
    """Which link to synthesize: a Table I preset or custom rates.

    Exactly one of ``preset`` and ``target_mean_rate_bps`` must be set.
    ``arrivals`` optionally replaces the default Poisson flow arrivals;
    ``sizes`` optionally replaces the default mice-and-elephants flow
    size law (this is how calibrated specs carry their fitted family).
    """

    preset: str | None = None
    target_mean_rate_bps: float | None = None
    link_capacity_bps: float | None = None
    scale: float = DEFAULT_SCALE
    duration: float = 120.0
    name: str = ""
    arrivals: ArrivalSpec | None = None
    sizes: SizeDistributionSpec | None = None

    def __post_init__(self) -> None:
        if (self.preset is None) == (self.target_mean_rate_bps is None):
            raise ParameterError(
                "workload needs exactly one of 'preset' (low/medium/high or "
                "a Table I row) or 'target_mean_rate_bps' (a custom link)"
            )
        if self.preset is not None:
            resolve_preset(self.preset)  # fail fast on unknown presets
        else:
            check_positive(
                "workload.target_mean_rate_bps", self.target_mean_rate_bps
            )
        if self.link_capacity_bps is not None:
            check_positive("workload.link_capacity_bps", self.link_capacity_bps)
        check_positive("workload.scale", self.scale)
        check_positive("workload.duration", self.duration)

    def build(self) -> LinkWorkload:
        """Materialise the :class:`LinkWorkload` this spec describes."""
        if self.preset is not None:
            workload = table_i_workload(
                resolve_preset(self.preset),
                scale=self.scale,
                duration=self.duration,
            )
            if self.link_capacity_bps is not None:
                workload = dataclasses.replace(
                    workload, link_capacity_bps=self.link_capacity_bps
                )
        else:
            workload = LinkWorkload(
                name=self.name or "custom",
                target_mean_rate_bps=self.target_mean_rate_bps,
                link_capacity_bps=(
                    self.link_capacity_bps
                    if self.link_capacity_bps is not None
                    else OC12_BPS * self.scale
                ),
                duration=self.duration,
            )
        if self.sizes is not None:
            workload = dataclasses.replace(
                workload, size_dist=self.sizes.build()
            )
        if self.name:
            workload = dataclasses.replace(workload, name=self.name)
        if self.arrivals is not None and self.arrivals.kind != "poisson":
            workload = dataclasses.replace(
                workload,
                arrivals=self.arrivals.build(
                    workload.arrival_rate, self.duration
                ),
            )
        return workload


_register_nested("WorkloadSpec", "arrivals", ArrivalSpec)
_register_nested("WorkloadSpec", "sizes", SizeDistributionSpec)


@dataclass(frozen=True)
class FlowAccountingSpec:
    """Flow-definition knobs for the NetFlow-style exporter (section III)."""

    kind: str = "five_tuple"
    timeout: float = 8.0
    prefix_length: int = 24
    min_packets: int = 2

    def __post_init__(self) -> None:
        _check_choice("flows.kind", self.kind, ("five_tuple", "prefix"))
        check_positive("flows.timeout", self.timeout)
        if not 1 <= int(self.prefix_length) <= 32:
            raise ParameterError(
                f"flows.prefix_length must lie in 1-32, got {self.prefix_length!r}"
            )
        if int(self.min_packets) < 1:
            raise ParameterError(
                f"flows.min_packets must be >= 1, got {self.min_packets!r}"
            )


#: Sentinel distinguishing "legacy key not given" from any real value.
_UNSET = object()


def _validate_execution(section: str, chunk, workers, backend="thread") -> None:
    """The one validation path for execution knobs, section-qualified.

    ``section`` prefixes the error (``"synthesis"``, ``"measurement"``,
    ``"network"``, ``"sweep"`` or the standalone ``"execution"``), so a
    bad value always names the spec section it came from.
    """
    if chunk is not None and (int(chunk) != chunk or int(chunk) < 1):
        raise ParameterError(
            f"{section}.chunk must be an integer >= 1 packet, got {chunk!r}"
        )
    if int(workers) != workers or int(workers) < 1:
        raise ParameterError(
            f"{section}.workers must be an integer >= 1, got {workers!r}"
        )
    _check_choice(f"{section}.backend", backend, BACKENDS)


@dataclass(frozen=True)
class ExecutionSpec:
    """How a stage executes — never *what* it computes.

    The one schema for execution strategy across the pipeline:
    ``chunk`` (packets per streamed block; ``null`` = the section's
    in-memory/default path), ``workers`` (tasks processed concurrently
    on the engine worker pool) and ``backend`` (pool flavour —
    ``"serial"``, ``"thread"`` or ``"process"``; the process backend
    moves packet chunks through shared-memory ring buffers, see
    :mod:`repro.execution`).  Reused by the ``synthesis``,
    ``measurement``, ``network`` and ``sweep`` sections — every engine
    is chunk/worker/backend invariant, so an ``ExecutionSpec`` never
    changes a scenario's results, only its memory footprint and
    wall-clock.  The legacy flat ``chunk``/``workers`` keys of those
    sections still decode via deprecation shims, and specs written
    before the ``backend`` key default to the previous thread-pool
    behaviour (see MIGRATION.md).

    ``retry`` arms the process backend's watchdog (per-task deadline,
    pool respawn, deterministic re-execution — see
    :class:`repro.execution.RetryPolicy`).  ``null`` (the default, and
    what every pre-existing spec decodes to) disables retries entirely:
    the exact legacy failure behaviour.  Like the other knobs it never
    changes results, only whether lost work is re-run.
    """

    chunk: int | None = None
    workers: int = 1
    backend: str = "thread"
    retry: RetryPolicy | None = None

    def __post_init__(self) -> None:
        _validate_execution(
            "execution", self.chunk, self.workers, self.backend
        )
        if self.chunk is not None:
            object.__setattr__(self, "chunk", int(self.chunk))
        object.__setattr__(self, "workers", int(self.workers))
        object.__setattr__(self, "backend", str(self.backend))
        if self.retry is not None:
            if isinstance(self.retry, dict):
                object.__setattr__(self, "retry", RetryPolicy(**self.retry))
            elif not isinstance(self.retry, RetryPolicy):
                raise ParameterError(
                    "execution.retry must be a RetryPolicy (or a JSON "
                    f"object), got {type(self.retry).__name__}"
                )

    @property
    def uses_engine(self) -> bool:
        """True when either knob engages the streaming/parallel path."""
        return self.chunk is not None or int(self.workers) > 1


_register_nested("ExecutionSpec", "retry", RetryPolicy)


def _merge_execution(section: str, execution, chunk, workers) -> ExecutionSpec:
    """Resolve a section's ``execution`` field against its legacy keys.

    One spelling at a time: the canonical ``execution`` section, or the
    deprecated flat ``chunk``/``workers`` keys.  *Conflicting* values
    across the two raise a section-qualified :class:`ParameterError`.
    Equal duplicates are tolerated because :func:`dataclasses.replace`
    re-passes the read-through alias values alongside the stored spec;
    the JSON decoder (:func:`_spec_from_dict`) rejects any mixing
    outright, so spec files stay unambiguous.
    """
    has_chunk = chunk is not _UNSET
    has_workers = workers is not _UNSET
    if execution is not None:
        if not isinstance(execution, ExecutionSpec):
            raise ParameterError(
                f"{section}.execution must be an ExecutionSpec (or a JSON "
                f"object), got {type(execution).__name__}"
            )
        if (has_chunk and chunk != execution.chunk) or (
            has_workers and workers != execution.workers
        ):
            raise ParameterError(
                f"{section}: give execution knobs either as "
                f"'execution': {{\"chunk\": ..., \"workers\": ...}} or as "
                f"the deprecated flat 'chunk'/'workers' keys, not both"
            )
        return execution
    chunk = None if not has_chunk else chunk
    workers = 1 if not has_workers else workers
    _validate_execution(section, chunk, workers)
    return ExecutionSpec(chunk=chunk, workers=workers)


def _alias_execution(cls):
    """Attach read-through ``chunk``/``workers``/``backend`` aliases.

    Pre-ExecutionSpec call sites (and specs) read the knobs directly off
    the section; the aliases (plus ``uses_engine``) keep those reads
    working while the stored representation is normalised to one
    ``execution`` field — so legacy and canonical spellings compare
    equal and serialize identically.
    """
    cls.chunk = property(lambda self: self.execution.chunk)
    cls.workers = property(lambda self: self.execution.workers)
    cls.backend = property(lambda self: self.execution.backend)
    cls.retry = property(lambda self: self.execution.retry)
    cls.uses_engine = property(lambda self: self.execution.uses_engine)

    def with_execution(
        self, execution=None, *, chunk=_UNSET, workers=_UNSET,
        backend=_UNSET, retry=_UNSET,
    ):
        """A copy with only the execution strategy swapped out.

        Give either a whole :class:`ExecutionSpec` or individual knobs;
        omitted knobs keep their current values.  This is the supported
        way to retune ``chunk``/``workers``/``backend``/``retry`` on a
        frozen section spec (``dataclasses.replace`` with the flat keys
        conflicts with the stored ``execution`` field).
        """
        if execution is None:
            execution = ExecutionSpec(
                chunk=self.execution.chunk if chunk is _UNSET else chunk,
                workers=(
                    self.execution.workers if workers is _UNSET else workers
                ),
                backend=(
                    self.execution.backend if backend is _UNSET else backend
                ),
                retry=self.execution.retry if retry is _UNSET else retry,
            )
        return dataclasses.replace(
            self,
            execution=execution,
            chunk=execution.chunk,
            workers=execution.workers,
        )

    cls.with_execution = with_execution
    return cls


@dataclass(frozen=True)
class SynthesisSpec:
    """How the synthesize stage executes (not *what* it synthesizes).

    ``execution.chunk`` (packets) and ``execution.workers`` drive the
    streaming :class:`~repro.synthesis.SynthesisEngine`: the workload's
    arrival timeline is cut into seed-owning cells, synthesized on
    ``workers`` threads and merged into time-ordered packet chunks that
    stream straight into the measurement stage — the trace is never
    materialised.  The defaults keep the classic in-memory trace; either
    knob switches to streaming, whose output is bit-for-bit identical
    for any setting — this section is pure execution strategy, so it
    never changes a scenario's results.  (Scenarios that need the
    materialised trace — anomaly injection — fall back to in-memory
    synthesis through the same engine, with identical packets.)
    """

    execution: ExecutionSpec | None = None
    chunk: InitVar[object] = _UNSET
    workers: InitVar[object] = _UNSET

    def __post_init__(self, chunk, workers) -> None:
        object.__setattr__(
            self,
            "execution",
            _merge_execution("synthesis", self.execution, chunk, workers),
        )


@dataclass(frozen=True)
class MeasurementSpec:
    """How the measurement stages execute (not *what* they measure).

    ``execution.chunk`` (packets) and ``execution.workers`` drive the
    streaming :class:`~repro.measurement.MeasurementEngine`: flow
    accounting and rate measurement run chunk by chunk with the key
    space sharded over a worker pool.  The defaults keep the classic
    in-memory path; either knob switches to the engine, whose output is
    bit-for-bit identical for any setting — this section is pure
    execution strategy, so it never changes a scenario's results.
    """

    execution: ExecutionSpec | None = None
    chunk: InitVar[object] = _UNSET
    workers: InitVar[object] = _UNSET

    def __post_init__(self, chunk, workers) -> None:
        object.__setattr__(
            self,
            "execution",
            _merge_execution("measurement", self.execution, chunk, workers),
        )


_alias_execution(SynthesisSpec)
_alias_execution(MeasurementSpec)
_register_nested("SynthesisSpec", "execution", ExecutionSpec)
_register_nested("MeasurementSpec", "execution", ExecutionSpec)
_LEGACY_EXECUTION_SECTIONS["SynthesisSpec"] = "synthesis"
_LEGACY_EXECUTION_SECTIONS["MeasurementSpec"] = "measurement"


#: Telemetry formats the ingest stage accepts (``"auto"`` sniffs magic
#: bytes).  Mirrors ``repro.interop.IMPORT_FORMATS``; kept literal here so
#: the spec layer stays pure data with no engine imports.
INGEST_FORMATS = ("auto", "rptr", "netflow5", "ipfix", "pcap")


@dataclass(frozen=True)
class IngestSpec:
    """Where a real-trace scenario's packets come from.

    Replaces the ``workload`` section for the ``real-trace-fit`` family:
    instead of synthesizing traffic, the pipeline streams an operator
    telemetry file — a NetFlow v5/cflowd or IPFIX flow archive, a pcap
    capture, or a native ``.rptr`` trace — through the measurement
    engine's open-flow carry table, so the paper's idle-timeout flow
    semantics are re-applied uniformly and the archive never needs to
    fit in memory.

    ``order`` governs flow-record archives: ``"start"`` streams records
    that are already start-ordered (erroring if they are not),
    ``"export"`` sorts the record table in memory (still out-of-core
    with respect to *packets*), ``"auto"`` scans once and picks.
    ``rebase`` moves epoch-anchored clocks to a 0-based capture clock
    (``"auto"`` rebases only epoch-like timestamps).  ``duration``
    (seconds) and ``link_capacity_bps`` override what the scan/header
    provides — capacity is needed for utilisation whenever the archive
    does not carry it (every format except ``.rptr``).

    ``errors`` chooses how malformed telemetry is handled: ``"strict"``
    (the default) aborts on the first bad datagram/record with a
    :class:`~repro.exceptions.TraceFormatError`; ``"skip"`` drops the
    bad unit, counts it, and keeps streaming — the operator-friendly
    mode for multi-GB archives with the odd truncated export packet.
    """

    path: str = ""
    format: str = "auto"
    order: str = "auto"
    rebase: str = "auto"
    errors: str = "strict"
    duration: float | None = None
    link_capacity_bps: float | None = None
    execution: ExecutionSpec | None = None
    chunk: InitVar[object] = _UNSET
    workers: InitVar[object] = _UNSET

    def __post_init__(self, chunk, workers) -> None:
        _check_choice("ingest.format", self.format, INGEST_FORMATS)
        _check_choice("ingest.order", self.order, ("auto", "start", "export"))
        _check_choice(
            "ingest.rebase", self.rebase, ("auto", "always", "never")
        )
        _check_choice("ingest.errors", self.errors, ("strict", "skip"))
        if self.duration is not None:
            object.__setattr__(self, "duration", float(self.duration))
            check_positive("ingest.duration", self.duration)
        if self.link_capacity_bps is not None:
            object.__setattr__(
                self, "link_capacity_bps", float(self.link_capacity_bps)
            )
            check_positive("ingest.link_capacity_bps", self.link_capacity_bps)
        object.__setattr__(
            self,
            "execution",
            _merge_execution("ingest", self.execution, chunk, workers),
        )

    def require_path(self) -> str:
        """The telemetry path, or a clear error if the spec is a template.

        Registry presets ship with ``path: ""`` — the user points them at
        their own archive via ``with_overrides``/``--ingest-path``.
        """
        if not str(self.path).strip():
            raise ParameterError(
                "ingest.path is empty: point the scenario at a telemetry "
                "file (NetFlow v5, IPFIX, pcap or .rptr)"
            )
        return str(self.path)


_alias_execution(IngestSpec)
_register_nested("IngestSpec", "execution", ExecutionSpec)


@dataclass(frozen=True)
class EstimationSpec:
    """Rate measurement and parameter estimation (sections V-F and V-G).

    ``estimator`` chooses how the three-parameter summary is reported:
    ``"batch"`` computes the interval means the paper uses; ``"ewma"``
    additionally replays the flows through the router-style
    :class:`~repro.stats.estimators.OnlineFlowStatistics` EWMA loop and
    reports its snapshot alongside (the batch summary always feeds the
    fit, so the two estimators can be compared on equal footing).
    """

    delta: float = 0.2
    estimator: str = "batch"
    ewma_eps: float = 0.01

    def __post_init__(self) -> None:
        check_positive("estimation.delta", self.delta)
        _check_choice("estimation.estimator", self.estimator, ("batch", "ewma"))
        if not 0.0 < float(self.ewma_eps) <= 1.0:
            raise ParameterError(
                f"estimation.ewma_eps must lie in (0, 1], got {self.ewma_eps!r}"
            )


@dataclass(frozen=True)
class FitSpec:
    """Shot comparison and fitting (section V-D).

    ``powers`` are the shot exponents whose model CoV is reported next to
    the fitted one.  ``class_split_bytes`` enables the section VIII
    multi-class extension: flows are partitioned into mice/elephants at
    the byte threshold and a per-class :class:`SuperposedModel` is built
    alongside the single-class fit.
    """

    powers: tuple[float, ...] = (0.0, 1.0, 2.0)
    class_split_bytes: float | None = None

    def __post_init__(self) -> None:
        _freeze_tuple(self, "powers")
        _validate_powers("fit", self.powers)
        if self.class_split_bytes is not None:
            check_positive("fit.class_split_bytes", self.class_split_bytes)


def _validate_powers(section: str, powers) -> None:
    """The one validation path for shot-power lists, section-qualified.

    Shared by ``fit:`` and ``calibration:`` so both sections reject bad
    powers with identical, section-named messages (see MIGRATION.md on
    when to use which section).
    """
    if not powers:
        raise ParameterError(
            f"{section}.powers must name at least one shot power"
        )
    for p in powers:
        if not np.isfinite(p) or p < 0.0:
            raise ParameterError(
                f"{section}.powers entries must be finite and >= 0, got {p!r}"
            )


#: Model-selection criteria the calibration stage accepts.  Mirrors
#: ``repro.calibration.SELECTION_CRITERIA`` (pinned by a test); literal
#: here so the spec layer stays pure data with no engine imports.
SELECTION_CRITERIA = ("bic", "aic", "loglik", "ks")

#: Size-law families calibration fits by default.  Mirrors
#: ``repro.calibration.CALIBRATION_FAMILIES`` (pinned by a test).
CALIBRATION_FAMILIES = (
    "lognormal", "pareto", "exponential", "lognormal_pareto",
)


@dataclass(frozen=True)
class CalibrationSpec:
    """Fit the paper's model to the measured flows (``repro.calibration``).

    Rides after flow accounting: whatever produced the flows — a
    synthesized workload or ingested telemetry — this section fits every
    family in ``families`` to the flow-size population through
    bounded-memory accumulators, selects the winner under ``select``,
    and lands a :class:`~repro.calibration.CalibrationReport` in the
    scenario result.  ``validate: true`` additionally runs the closed
    loop — synthesize from the fitted spec, compare λ, E[S], utilization
    moments and tail quantiles within the declared tolerances.

    ``powers`` defaults to the ``fit:`` section's shot powers; setting
    both to different values is a :class:`ParameterError` (the two
    sections share one validation path — see MIGRATION.md for when to
    use which).  ``seed`` defaults to the scenario seed; it drives the
    EM restarts and the closed-loop synthesis, so a fixed seed makes
    the whole calibration bitwise reproducible across
    ``{serial, thread, process}`` x ``{chunk, workers}``.
    """

    families: tuple[str, ...] = CALIBRATION_FAMILIES
    select: str = "bic"
    bins: int = 512
    tail_k: int = 512
    time_bins: int = 24
    restarts: int = 4
    seed: int | None = None
    powers: tuple[float, ...] | None = None
    tail_quantiles: tuple[float, ...] = (0.5, 0.9, 0.99, 0.999)
    validate: bool = False
    validate_duration: float | None = None
    lambda_rtol: float = 0.02
    mean_rtol: float = 0.02
    rate_rtol: float = 0.10
    tail_rtol: float = 0.35
    cov_atol: float = 0.25
    execution: ExecutionSpec | None = None
    chunk: InitVar[object] = _UNSET
    workers: InitVar[object] = _UNSET

    def __post_init__(self, chunk, workers) -> None:
        object.__setattr__(
            self,
            "execution",
            _merge_execution("calibration", self.execution, chunk, workers),
        )
        object.__setattr__(self, "families", tuple(self.families))
        if not self.families:
            raise ParameterError(
                "calibration.families must name at least one size-law family"
            )
        for family in self.families:
            _check_choice(
                "calibration.families", family, CALIBRATION_FAMILIES
            )
        _check_choice("calibration.select", self.select, SELECTION_CRITERIA)
        if int(self.bins) < 16:
            raise ParameterError(
                f"calibration.bins must be >= 16, got {self.bins!r}"
            )
        if int(self.tail_k) < 8:
            raise ParameterError(
                f"calibration.tail_k must be >= 8, got {self.tail_k!r}"
            )
        if int(self.time_bins) < 1:
            raise ParameterError(
                f"calibration.time_bins must be >= 1, got {self.time_bins!r}"
            )
        if int(self.restarts) < 1:
            raise ParameterError(
                f"calibration.restarts must be >= 1, got {self.restarts!r}"
            )
        if self.seed is not None and int(self.seed) < 0:
            raise ParameterError(
                f"calibration.seed must be >= 0, got {self.seed!r}"
            )
        if self.powers is not None:
            _freeze_tuple(self, "powers")
            _validate_powers("calibration", self.powers)
        _freeze_tuple(self, "tail_quantiles")
        if not self.tail_quantiles:
            raise ParameterError(
                "calibration.tail_quantiles must name at least one quantile"
            )
        for q in self.tail_quantiles:
            if not 0.0 < q < 1.0:
                raise ParameterError(
                    "calibration.tail_quantiles entries must lie in (0, 1), "
                    f"got {q!r}"
                )
        if self.validate_duration is not None:
            check_positive(
                "calibration.validate_duration", self.validate_duration
            )
        for name in (
            "lambda_rtol", "mean_rtol", "rate_rtol", "tail_rtol", "cov_atol",
        ):
            check_positive(f"calibration.{name}", getattr(self, name))


_alias_execution(CalibrationSpec)
_register_nested("CalibrationSpec", "execution", ExecutionSpec)


@dataclass(frozen=True)
class GenerationSpec:
    """Model-driven generation of section VII-C traffic via the engine.

    ``mode``: ``"exact"`` reproduces the reference sampler bit-for-bit,
    ``"fast"`` allows the rectangular closed-form path, ``"streamed"``
    uses the bounded-memory cell sampler (chunk/worker invariant).
    ``duration``/``delta``/``seed`` default to the workload duration, the
    estimation delta and the scenario seed respectively.
    """

    duration: float | None = None
    delta: float | None = None
    chunk: float | None = None
    workers: int = 1
    backend: str = "thread"
    mode: str = "exact"
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.duration is not None:
            check_positive("generation.duration", self.duration)
        if self.delta is not None:
            check_positive("generation.delta", self.delta)
        if self.chunk is not None:
            # generation.chunk is a *time window in seconds* (the rate
            # sampler's horizon splitting), not a packet count — the one
            # execution knob ExecutionSpec does not cover, so this
            # section keeps its own keys; workers/backend share the
            # common validation path.
            check_positive("generation.chunk", self.chunk)
        _validate_execution("generation", None, self.workers, self.backend)
        _check_choice(
            "generation.mode", self.mode, ("exact", "fast", "streamed")
        )
        if self.seed is not None and int(self.seed) < 0:
            raise ParameterError(
                f"generation.seed must be >= 0, got {self.seed!r}"
            )


@dataclass(frozen=True)
class AnomalySpec:
    """Anomaly injected into the synthesized trace (flood or outage)."""

    kind: str = "flood"
    start: float = 40.0
    duration: float = 20.0
    rate_bytes_per_s: float = 250e3
    packet_size: int = 60
    drop_fraction: float = 0.9

    def __post_init__(self) -> None:
        _check_choice("anomaly.kind", self.kind, ("flood", "outage"))
        if float(self.start) < 0.0:
            raise ParameterError(
                f"anomaly.start must be >= 0, got {self.start!r}"
            )
        check_positive("anomaly.duration", self.duration)
        if self.kind == "flood":
            check_positive("anomaly.rate_bytes_per_s", self.rate_bytes_per_s)
            if int(self.packet_size) < 1:
                raise ParameterError(
                    f"anomaly.packet_size must be >= 1, got {self.packet_size!r}"
                )
        else:
            if not 0.0 < float(self.drop_fraction) <= 1.0:
                raise ParameterError(
                    "anomaly.drop_fraction must lie in (0, 1], got "
                    f"{self.drop_fraction!r}"
                )


@dataclass(frozen=True)
class ValidationSpec:
    """What the final stage checks and reports."""

    epsilon: float = 0.01
    cov_band: float = 0.20
    max_lag: int = 25
    qq_points: int = 50
    detect_anomalies: bool = False
    threshold_sigma: float = 3.0
    min_run: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < float(self.epsilon) < 1.0:
            raise ParameterError(
                f"validation.epsilon must lie in (0, 1), got {self.epsilon!r}"
            )
        check_positive("validation.cov_band", self.cov_band)
        if int(self.max_lag) < 1:
            raise ParameterError(
                f"validation.max_lag must be >= 1, got {self.max_lag!r}"
            )
        if int(self.qq_points) < 10:
            raise ParameterError(
                f"validation.qq_points must be >= 10, got {self.qq_points!r}"
            )
        check_positive("validation.threshold_sigma", self.threshold_sigma)
        if int(self.min_run) < 1:
            raise ParameterError(
                f"validation.min_run must be >= 1, got {self.min_run!r}"
            )


def _freeze_spec_list(spec, name: str, cls, *, path: str) -> None:
    """Normalise a list field of nested specs (dicts are decoded)."""
    entries = []
    for i, value in enumerate(getattr(spec, name)):
        if isinstance(value, dict):
            value = _spec_from_dict(cls, value, path=f"{path}[{i}]")
        elif not isinstance(value, cls):
            raise ParameterError(
                f"{path}[{i}] must be a {cls.__name__} (or a JSON object), "
                f"got {type(value).__name__}"
            )
        entries.append(value)
    object.__setattr__(spec, name, tuple(entries))


@dataclass(frozen=True)
class TopologyLinkSpec:
    """One link of a spec-declared topology."""

    a: str
    b: str
    capacity_bps: float
    weight: float = 1.0
    bidirectional: bool = True

    def __post_init__(self) -> None:
        check_positive("network.topology.links[].capacity_bps", self.capacity_bps)
        check_positive("network.topology.links[].weight", self.weight)
        if str(self.a) == str(self.b):
            raise ParameterError(
                f"topology link endpoints must differ, got {self.a!r}"
            )


#: Named topology presets (see :mod:`repro.network.topology`).
_TOPOLOGY_PRESETS = ("abilene", "parallel-paths", "line")


@dataclass(frozen=True)
class TopologySpec:
    """A topology preset name, or explicit routers + links.

    ``preset`` is one of ``abilene`` (11-PoP research backbone),
    ``parallel-paths`` (``size`` equal-cost two-hop paths) or ``line``
    (a ``size``-router chain); ``capacity_bps`` scales preset links.
    Alternatively declare ``links`` (and optionally isolated
    ``routers``) explicitly.
    """

    preset: str | None = None
    size: int = 2
    capacity_bps: float | None = None
    routers: tuple[str, ...] = ()
    links: tuple[TopologyLinkSpec, ...] = ()

    def __post_init__(self) -> None:
        _freeze_spec_list(
            self, "links", TopologyLinkSpec, path="network.topology.links"
        )
        object.__setattr__(
            self, "routers", tuple(str(r) for r in self.routers)
        )
        if (self.preset is None) == (not self.links):
            raise ParameterError(
                "network.topology needs exactly one of 'preset' "
                f"({', '.join(_TOPOLOGY_PRESETS)}) or explicit 'links'"
            )
        if self.preset is not None:
            _check_choice(
                "network.topology.preset", self.preset, _TOPOLOGY_PRESETS
            )
        minimum = 2 if self.preset == "line" else 1
        if int(self.size) < minimum:
            raise ParameterError(
                f"network.topology.size must be >= {minimum} for preset "
                f"{self.preset or 'links'!r}, got {self.size!r}"
            )
        if self.capacity_bps is not None:
            check_positive("network.topology.capacity_bps", self.capacity_bps)

    def build(self):
        """Materialise the :class:`~repro.network.Topology`."""
        from ..network import topology as topo

        if self.preset is not None:
            kwargs = {}
            if self.capacity_bps is not None:
                kwargs["capacity_bps"] = float(self.capacity_bps)
            if self.preset == "abilene":
                return topo.abilene(**kwargs)
            if self.preset == "parallel-paths":
                return topo.parallel_paths(int(self.size), **kwargs)
            return topo.line(int(self.size), **kwargs)
        built = topo.Topology()
        for router in self.routers:
            built.add_router(router)
        for link in self.links:
            built.add_link(
                link.a,
                link.b,
                capacity_bps=float(link.capacity_bps),
                weight=float(link.weight),
                bidirectional=bool(link.bidirectional),
            )
        return built


@dataclass(frozen=True)
class DemandSpec:
    """One OD demand: endpoints plus a Table I preset or a custom rate.

    The demand's flow population reuses the :class:`WorkloadSpec`
    machinery (preset/scale/rate); its duration comes from the
    enclosing :class:`NetworkSpec`.  (The engine tiles every demand's
    destination block by position, so populations never collide on a
    shared link.)
    """

    source: str
    sink: str
    preset: str | None = None
    target_mean_rate_bps: float | None = None
    scale: float = DEFAULT_SCALE
    name: str = ""
    seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "source", str(self.source))
        object.__setattr__(self, "sink", str(self.sink))
        if self.source == self.sink:
            raise ParameterError(
                f"demand source and sink must differ, got {self.source!r}"
            )
        if (self.preset is None) == (self.target_mean_rate_bps is None):
            raise ParameterError(
                "each network demand needs exactly one of 'preset' or "
                "'target_mean_rate_bps'"
            )
        if self.preset is not None:
            resolve_preset(self.preset)
        else:
            check_positive(
                "network.demands[].target_mean_rate_bps",
                self.target_mean_rate_bps,
            )
        check_positive("network.demands[].scale", self.scale)
        if self.seed is not None and int(self.seed) < 0:
            raise ParameterError(
                f"network.demands[].seed must be >= 0, got {self.seed!r}"
            )

    def build(self, duration: float):
        """Materialise the :class:`~repro.network.NetworkDemand`.

        Address-block tiling is *not* applied here: the engine tiles
        every demand matrix by position
        (:meth:`~repro.network.DemandMatrix.with_tiled_addresses`), so
        spec-built and directly-built matrices share one mechanism.
        """
        from ..network.demands import NetworkDemand

        workload_spec = WorkloadSpec(
            preset=self.preset,
            target_mean_rate_bps=self.target_mean_rate_bps,
            scale=self.scale,
            duration=float(duration),
            name=self.name or f"{self.source}->{self.sink}",
        )
        return NetworkDemand(
            source=self.source,
            sink=self.sink,
            workload=workload_spec.build(),
            seed=self.seed,
        )


@dataclass(frozen=True)
class NetworkEventSpec:
    """A dynamic event: a link outage or a demand flash crowd."""

    kind: str
    start: float
    duration: float
    link: tuple[str, str] | None = None  # outage
    demand: int = 0  # flash_crowd: demand index
    factor: float = 4.0  # flash_crowd: rate multiplier

    def __post_init__(self) -> None:
        _check_choice(
            "network.events[].kind", self.kind, ("outage", "flash_crowd")
        )
        if float(self.start) < 0.0:
            raise ParameterError(
                f"network.events[].start must be >= 0, got {self.start!r}"
            )
        check_positive("network.events[].duration", self.duration)
        if self.kind == "outage":
            if self.link is None or len(self.link) != 2:
                raise ParameterError(
                    "an outage event needs 'link': [a, b]"
                )
            object.__setattr__(
                self, "link", (str(self.link[0]), str(self.link[1]))
            )
        else:
            if int(self.demand) < 0:
                raise ParameterError(
                    f"network.events[].demand must be >= 0, got {self.demand!r}"
                )
            check_positive("network.events[].factor", self.factor)

    def build(self):
        from ..network.events import FlashCrowd, LinkOutage

        if self.kind == "outage":
            return LinkOutage(
                link=self.link,
                start=float(self.start),
                duration=float(self.duration),
            )
        return FlashCrowd(
            demand=int(self.demand),
            start=float(self.start),
            duration=float(self.duration),
            factor=float(self.factor),
        )


@dataclass(frozen=True)
class NetworkSpec:
    """A whole-backbone simulation: topology, demands, routing, events.

    Per-link flow accounting, estimation delta and validation knobs come
    from the enclosing scenario's ``flows``/``estimation``/``validation``
    sections, so single-link and network scenarios share one vocabulary.
    ``execution`` is strategy only (workers = links simulated
    concurrently, chunk = packets per streamed block inside each
    per-link pass); results are bitwise invariant to it.
    """

    topology: TopologySpec = field(
        default_factory=lambda: TopologySpec(preset="line")
    )
    demands: tuple[DemandSpec, ...] = ()
    routing: str = "ecmp"
    duration: float = 60.0
    events: tuple[NetworkEventSpec, ...] = ()
    execution: ExecutionSpec | None = None
    chunk: InitVar[object] = _UNSET
    workers: InitVar[object] = _UNSET

    def __post_init__(self, chunk, workers) -> None:
        object.__setattr__(
            self,
            "execution",
            _merge_execution("network", self.execution, chunk, workers),
        )
        _freeze_spec_list(
            self, "demands", DemandSpec, path="network.demands"
        )
        _freeze_spec_list(
            self, "events", NetworkEventSpec, path="network.events"
        )
        if not self.demands:
            raise ParameterError(
                "network needs at least one entry in 'demands'"
            )
        _check_choice(
            "network.routing", self.routing, ("shortest_path", "ecmp")
        )
        check_positive("network.duration", self.duration)
        for event in self.events:
            if (
                event.kind == "flash_crowd"
                and int(event.demand) >= len(self.demands)
            ):
                raise ParameterError(
                    f"network event targets demand {event.demand}, but only "
                    f"{len(self.demands)} demands are declared"
                )

    def build(self):
        """``(topology, demand_matrix, events)`` ready for the engine."""
        from ..network.demands import DemandMatrix

        topology = self.topology.build()
        demands = DemandMatrix(
            spec.build(self.duration) for spec in self.demands
        )
        demands.validate_endpoints(topology)
        events = tuple(event.build() for event in self.events)
        return topology, demands, events


# (list-valued sections — topology links, demands, events — are decoded
# by _freeze_spec_list in their owners' __post_init__, not _NESTED)
_alias_execution(NetworkSpec)
_register_nested("NetworkSpec", "topology", TopologySpec)
_register_nested("NetworkSpec", "execution", ExecutionSpec)
_LEGACY_EXECUTION_SECTIONS["NetworkSpec"] = "network"


#: Routing policies a sweep may range over (the ``network.routing`` set).
_ROUTING_CHOICES = ("shortest_path", "ecmp")


@dataclass(frozen=True)
class SweepSpec:
    """A capacity-planning sweep over a base ``network`` scenario.

    The sweep expands a cartesian product of axes into concrete
    per-cell scenarios: ``demand_factors`` scale every demand's arrival
    rate (aggregation smoothing keeps the per-flow laws), ``failures``
    auto-enumerates :class:`~repro.network.events.LinkOutage` sets from
    the topology's physical fibres (``"none"``, every ``"single"``
    fibre, or singles plus all ``"dual"`` pairs), and ``routing``
    optionally ranges over routing policies (empty = inherit the
    network section's policy).

    Every cell first gets the closed-form
    :func:`~repro.network.analytic.superpose_link_moments` assessment;
    full :class:`~repro.network.NetworkEngine` simulation is dispatched
    only on cells whose worst analytic link ratio — required capacity
    over ``sla_utilization`` × capacity — lands inside the marginal
    band ``[1 - margin, 1 + margin]`` (``simulate: "all"``/``"none"``
    override the band for ground-truth and enumeration-only runs).
    ``execution.workers`` fans simulated cells out over the engine
    worker pool; per-cell results are bitwise equal to running the
    cell's spec directly, for any ``execution`` setting.
    """

    demand_factors: tuple[float, ...] = (1.0, 1.5, 2.0)
    failures: str = "single"
    include_baseline: bool = True
    routing: tuple[str, ...] = ()
    sla_utilization: float = 1.0
    margin: float = 0.25
    simulate: str = "marginal"
    shape_factor: float = 1.8
    execution: ExecutionSpec | None = None
    chunk: InitVar[object] = _UNSET
    workers: InitVar[object] = _UNSET

    def __post_init__(self, chunk, workers) -> None:
        object.__setattr__(
            self,
            "execution",
            _merge_execution("sweep", self.execution, chunk, workers),
        )
        _freeze_tuple(self, "demand_factors")
        if not self.demand_factors:
            raise ParameterError(
                "sweep.demand_factors must name at least one scaling factor"
            )
        for factor in self.demand_factors:
            if not np.isfinite(factor) or factor <= 0.0:
                raise ParameterError(
                    f"sweep.demand_factors entries must be finite and > 0, "
                    f"got {factor!r}"
                )
        _check_choice(
            "sweep.failures", self.failures, ("none", "single", "dual")
        )
        object.__setattr__(
            self, "routing", tuple(str(r) for r in self.routing)
        )
        for policy in self.routing:
            _check_choice("sweep.routing[]", policy, _ROUTING_CHOICES)
        check_positive("sweep.sla_utilization", self.sla_utilization)
        if not 0.0 <= float(self.margin) < 1.0:
            raise ParameterError(
                f"sweep.margin must lie in [0, 1), got {self.margin!r}"
            )
        _check_choice(
            "sweep.simulate", self.simulate, ("marginal", "all", "none")
        )
        check_positive("sweep.shape_factor", self.shape_factor)
        if self.failures == "none" and not self.include_baseline:
            raise ParameterError(
                "sweep with failures='none' and include_baseline=false "
                "would enumerate zero cells"
            )


_alias_execution(SweepSpec)
_register_nested("SweepSpec", "execution", ExecutionSpec)
_LEGACY_EXECUTION_SECTIONS["SweepSpec"] = "sweep"


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative synthesize → measure → fit → generate → validate run.

    ``workload`` may be ``None`` only when the pipeline is run on an
    externally provided trace (``run_scenario(spec, trace=...)``);
    ``generation: null`` in JSON skips the generation stage.
    """

    name: str
    description: str = ""
    seed: int = 0
    workload: WorkloadSpec | None = None
    ingest: IngestSpec | None = None
    network: NetworkSpec | None = None
    sweep: SweepSpec | None = None
    flows: FlowAccountingSpec = field(default_factory=FlowAccountingSpec)
    synthesis: SynthesisSpec = field(default_factory=SynthesisSpec)
    measurement: MeasurementSpec = field(default_factory=MeasurementSpec)
    estimation: EstimationSpec = field(default_factory=EstimationSpec)
    fit: FitSpec = field(default_factory=FitSpec)
    calibration: CalibrationSpec | None = None
    generation: GenerationSpec | None = field(default_factory=GenerationSpec)
    anomaly: AnomalySpec | None = None
    validation: ValidationSpec = field(default_factory=ValidationSpec)

    def __post_init__(self) -> None:
        if not str(self.name).strip():
            raise ParameterError("scenario name must be a non-empty string")
        if int(self.seed) < 0:
            raise ParameterError(f"seed must be >= 0, got {self.seed!r}")
        if self.network is not None and self.workload is not None:
            raise ParameterError(
                "a scenario is either single-link ('workload') or "
                "network-wide ('network'), not both"
            )
        if self.ingest is not None and self.workload is not None:
            raise ParameterError(
                "a scenario either synthesizes traffic ('workload') or "
                "imports real telemetry ('ingest'), not both"
            )
        if self.ingest is not None and self.network is not None:
            raise ParameterError(
                "ingest scenarios fit one link's telemetry; 'ingest' and "
                "'network' cannot be combined"
            )
        if self.ingest is not None and self.anomaly is not None:
            raise ParameterError(
                "anomaly injection perturbs synthesized traffic; it cannot "
                "be applied to imported telemetry ('ingest')"
            )
        if self.network is not None and self.anomaly is not None:
            raise ParameterError(
                "network scenarios express anomalies as network events "
                "(outage / flash_crowd), not an 'anomaly' section"
            )
        if self.anomaly is not None and self.workload is None:
            raise ParameterError(
                "anomaly injection needs a synthesized workload; give the "
                "spec a 'workload' section"
            )
        if self.sweep is not None and self.network is None:
            raise ParameterError(
                "a 'sweep' section scales and fails a base network "
                "scenario; give the spec a 'network' section"
            )
        if self.calibration is not None and self.network is not None:
            raise ParameterError(
                "calibration fits one link's flow population; "
                "'calibration' and 'network' cannot be combined"
            )
        if (
            self.calibration is not None
            and self.calibration.powers is not None
            and self.fit.powers != FitSpec().powers
            and tuple(self.calibration.powers) != tuple(self.fit.powers)
        ):
            raise ParameterError(
                "fit.powers and calibration.powers contradict each other "
                f"({tuple(self.fit.powers)} vs "
                f"{tuple(self.calibration.powers)}); set the shot powers in "
                "one section (calibration.powers defaults to fit.powers — "
                "see MIGRATION.md)"
            )

    @property
    def family(self) -> str:
        """``"sweep"``, ``"network"``, ``"real-trace-fit"`` or ``"single-link"``."""
        if self.sweep is not None:
            return "sweep"
        if self.network is not None:
            return "network"
        return "real-trace-fit" if self.ingest is not None else "single-link"

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        """Plain JSON-safe dict; ``from_dict`` inverts it exactly."""
        return _to_jsonable(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Strict inverse of :meth:`to_dict` (unknown keys are errors)."""
        return _spec_from_dict(cls, data, path="spec", stacklevel=3)

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ParameterError(f"spec is not valid JSON: {exc}") from None
        return _spec_from_dict(cls, data, path="spec", stacklevel=3)

    def to_file(self, path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def from_file(cls, path) -> "ScenarioSpec":
        path = Path(path)
        if not path.is_file():
            raise ParameterError(
                f"spec file {path} does not exist or is not a regular file"
            )
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ParameterError(f"spec is not valid JSON: {exc}") from None
        return _spec_from_dict(cls, data, path="spec", stacklevel=3)

    # -- convenience -----------------------------------------------------

    def with_overrides(self, **changes) -> "ScenarioSpec":
        """A copy with top-level fields replaced (dicts are decoded)."""
        decoded = {}
        for key, value in changes.items():
            nested = _NESTED.get(("ScenarioSpec", key))
            if nested is not None and isinstance(value, dict):
                value = _spec_from_dict(
                    nested, value, path=f"spec.{key}", stacklevel=3
                )
            decoded[key] = value
        return dataclasses.replace(self, **decoded)


for _name, _type in (
    ("workload", WorkloadSpec),
    ("ingest", IngestSpec),
    ("network", NetworkSpec),
    ("sweep", SweepSpec),
    ("flows", FlowAccountingSpec),
    ("synthesis", SynthesisSpec),
    ("measurement", MeasurementSpec),
    ("estimation", EstimationSpec),
    ("fit", FitSpec),
    ("calibration", CalibrationSpec),
    ("generation", GenerationSpec),
    ("anomaly", AnomalySpec),
    ("validation", ValidationSpec),
):
    _register_nested("ScenarioSpec", _name, _type)
